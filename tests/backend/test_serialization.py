"""Tests for the upload wire format and cloud-side decoding."""

import json

import numpy as np
import pytest

from repro.backend.serialization import (
    decode_array,
    encode_array,
    payload_to_session,
    session_to_payload,
)


class TestArrayCodec:
    def test_roundtrip_float(self):
        arr = np.random.default_rng(0).random((7, 5))
        assert np.array_equal(decode_array(encode_array(arr)), arr)

    def test_roundtrip_uint8(self):
        arr = np.random.default_rng(1).integers(0, 256, (4, 6, 3)).astype(np.uint8)
        out = decode_array(encode_array(arr))
        assert out.dtype == np.uint8
        assert np.array_equal(out, arr)

    def test_json_compatible(self):
        blob = encode_array(np.arange(10.0))
        restored = json.loads(json.dumps(blob))
        assert np.array_equal(decode_array(restored), np.arange(10.0))


class TestSessionCodec:
    @pytest.fixture(scope="class")
    def payload(self, sws_session):
        return session_to_payload(sws_session)

    def test_ground_truth_not_uploaded(self, payload):
        text = json.dumps(payload)
        assert "ground_truth" not in text

    def test_payload_json_serializable(self, payload):
        assert json.loads(json.dumps(payload))["task"] == "SWS"

    def test_decode_reconstructs_frames(self, payload, sws_session):
        decoded = payload_to_session(payload)
        assert decoded.n_frames == sws_session.n_frames
        # 8-bit quantization: pixels match within 1/255.
        orig = sws_session.frames[0].pixels
        rest = decoded.frames[0].pixels
        assert np.abs(orig - rest).max() <= (1.0 / 255.0) + 1e-9

    def test_decode_recovers_trajectory_scale(self, payload, sws_session):
        decoded = payload_to_session(payload)
        original = sws_session.device_trajectory
        # The cloud re-runs dead reckoning on the same IMU bytes: lengths
        # agree closely (identical algorithm, identical data).
        assert decoded.device_trajectory.length() == pytest.approx(
            original.length(), rel=0.05
        )

    def test_decode_annotates_frame_headings(self, payload, sws_session):
        decoded = payload_to_session(payload)
        for orig, rest in zip(sws_session.frames[:5], decoded.frames[:5]):
            assert rest.heading == pytest.approx(orig.heading, abs=0.2)

    def test_metadata_carried(self, payload):
        decoded = payload_to_session(payload)
        assert decoded.building == "Lab1"
        assert decoded.floor == 1
        assert decoded.task == "SWS"

    def test_pipeline_accepts_decoded_session(self, payload):
        from repro.core.config import CrowdMapConfig
        from repro.core.pipeline import CrowdMapPipeline

        decoded = payload_to_session(payload)
        pipe = CrowdMapPipeline(CrowdMapConfig())
        anchored = pipe.anchor_session(decoded)
        assert anchored.keyframes
