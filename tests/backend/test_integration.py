"""Backend integration: the full upload -> decode -> pipeline dataflow.

Exercises the paper's deployment path end to end in-process: sessions are
serialized like the mobile front-end would, streamed as shuffled chunks to
the ingest server, decoded by the worker pool, and aggregated by the
scheduled cascade — with telemetry observing every stage.
"""

import json
import random

import pytest

from repro.backend import (
    DocumentStore,
    IngestServer,
    SimulatedScheduler,
    TaskQueue,
    TelemetryRegistry,
    WorkerPool,
    chunk_payload,
    payload_to_session,
    session_to_payload,
)
from repro.core.config import CrowdMapConfig
from repro.core.pipeline import CrowdMapPipeline


@pytest.fixture(scope="module")
def uploaded_backend(small_dataset):
    telemetry = TelemetryRegistry()
    store = DocumentStore()
    queue = TaskQueue()
    server = IngestServer(store, queue, telemetry=telemetry)
    rng = random.Random(0)
    sessions = small_dataset.sws_sessions()[:4]
    for session in sessions:
        blob = json.dumps(session_to_payload(session)).encode("utf-8")
        upload_id = server.open_upload(
            session.user_id,
            {"building": session.building, "floor": session.floor},
        )
        chunks = chunk_payload(upload_id, blob, chunk_size=128 * 1024)
        rng.shuffle(chunks)
        for chunk in chunks:
            server.receive_chunk(chunk)
        server.finalize_upload(upload_id)
    return telemetry, store, queue, server, sessions


class TestUploadDataflow:
    def test_all_uploads_stored(self, uploaded_backend):
        _, store, _, server, sessions = uploaded_backend
        assert store.count(IngestServer.RAW_COLLECTION) == len(sessions)
        assert server.pending_uploads() == []

    def test_telemetry_counts(self, uploaded_backend):
        telemetry, _, _, _, sessions = uploaded_backend
        scrape = telemetry.scrape()
        assert "ingest_uploads_finalized 4" in scrape
        assert "ingest_chunks_received" in scrape

    def test_workers_decode_and_anchor(self, uploaded_backend):
        telemetry, store, queue, _, sessions = uploaded_backend
        config = CrowdMapConfig()
        pipeline = CrowdMapPipeline(config)
        anchored_out = {}

        def process(payload):
            doc = store.find_one(
                IngestServer.RAW_COLLECTION,
                {"upload_id": payload["upload_id"]},
            )
            decoded = payload_to_session(
                json.loads(doc["payload"].decode("utf-8"))
            )
            anchored = pipeline.anchor_session(decoded)
            anchored_out[decoded.session_id] = anchored
            return len(anchored.keyframes)

        pool = WorkerPool(queue, n_workers=2, telemetry=telemetry)
        pool.register("process_upload", process)
        with pool:
            pool.drain(timeout=180.0)
        assert len(anchored_out) == len(sessions)
        assert all(len(a.keyframes) > 0 for a in anchored_out.values())
        assert "worker_tasks_done 4" in telemetry.scrape()

        # Scheduled cascade: one aggregation pass over the decoded corpus.
        results = {}

        def aggregate_job():
            anchored = list(anchored_out.values())
            results["agg"] = pipeline.aggregator.aggregate(anchored)

        scheduler = SimulatedScheduler()
        scheduler.add_job("aggregate", interval=30.0, callback=aggregate_job)
        scheduler.advance(30.0)
        assert "agg" in results
        assert len(results["agg"].trajectories) == len(sessions)
