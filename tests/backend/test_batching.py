"""Frame-batch planner: grouping, determinism, scatter, telemetry."""

from __future__ import annotations

import pytest

from repro.backend.batching import FrameBatch, plan_batches, scatter_results
from repro.backend.telemetry import TelemetryRegistry


class TestPlanBatches:
    def test_groups_by_shape_preserving_order(self):
        shapes = [(2, 3), (4, 4), (2, 3), (2, 3), (4, 4)]
        batches = plan_batches(shapes, batch_size=16)
        assert [b.shape for b in batches] == [(2, 3), (4, 4)]
        assert batches[0].indices == (0, 2, 3)
        assert batches[1].indices == (1, 4)

    def test_batch_size_caps_groups(self):
        batches = plan_batches([(8, 8)] * 10, batch_size=4)
        assert [len(b) for b in batches] == [4, 4, 2]
        assert batches[0].indices == (0, 1, 2, 3)
        assert batches[2].indices == (8, 9)

    def test_indices_are_a_permutation(self):
        shapes = [(i % 3, 5) for i in range(23)]
        batches = plan_batches(shapes, batch_size=4)
        flat = [i for b in batches for i in b.indices]
        assert sorted(flat) == list(range(23))

    def test_plan_is_deterministic(self):
        shapes = [(3, 3), (5, 5), (3, 3), (7, 7), (5, 5), (3, 3)]
        assert plan_batches(shapes, batch_size=2) == plan_batches(
            shapes, batch_size=2
        )

    def test_empty_input(self):
        assert plan_batches([]) == []

    def test_rejects_bad_batch_size(self):
        with pytest.raises(ValueError):
            plan_batches([(2, 2)], batch_size=0)

    def test_telemetry_counters(self):
        telemetry = TelemetryRegistry()
        plan_batches(
            [(2, 2), (2, 2), (3, 3)], batch_size=16, telemetry=telemetry
        )
        assert telemetry.value("batch_plans") == 1
        assert telemetry.value("batch_groups") == 2
        assert telemetry.value("batch_frames") == 3
        assert telemetry.value("batch_singleton_frames") == 1


class TestScatterResults:
    def test_roundtrip_restores_input_order(self):
        shapes = [(2,), (3,), (2,), (3,), (2,)]
        batches = plan_batches(shapes, batch_size=2)
        per_batch = [[f"r{i}" for i in b.indices] for b in batches]
        assert scatter_results(batches, per_batch, len(shapes)) == [
            "r0", "r1", "r2", "r3", "r4",
        ]

    def test_length_mismatch_rejected(self):
        batches = [FrameBatch(indices=(0, 1), shape=(2, 2))]
        with pytest.raises(ValueError):
            scatter_results(batches, [["only-one"]], 2)
