"""Serial, shm-process and pickle-process pipelines are bit-identical.

The zero-copy transport and the process backend are pure execution
strategies: whatever combination runs the stages, the reconstruction
must be the same bits. This is the end-to-end version of the per-kernel
identity tests — one rendered dataset, three executions, artifact-level
exact comparison.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend.cache import ResultCache, set_cache
from repro.backend.shm import audit_dev_shm, shm_available
from repro.core.config import CrowdMapConfig
from repro.core.pipeline import CrowdMapPipeline
from repro.world.buildings import build_lab1
from repro.world.crowd import CrowdConfig, generate_crowd_dataset

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="platform has no POSIX shared memory"
)


@pytest.fixture(scope="module")
def three_runs():
    dataset = generate_crowd_dataset(
        build_lab1(),
        CrowdConfig(n_users=2, sws_per_user=1, srs_rooms_per_user=1, seed=11),
    )
    configs = {
        "serial": CrowdMapConfig(),
        "shm": CrowdMapConfig(worker_backend="process", worker_transport="shm"),
        "pickle": CrowdMapConfig(
            worker_backend="process", worker_transport="pickle"
        ),
    }
    results = {}
    for name, config in configs.items():
        set_cache(ResultCache(mode="memory"))  # every run cache-cold
        results[name] = CrowdMapPipeline(config).run(dataset)
    set_cache(None)
    return results


class TestTransportIdentity:
    @pytest.mark.parametrize("variant", ["shm", "pickle"])
    def test_skeleton_bit_identical(self, three_runs, variant):
        a, b = three_runs["serial"], three_runs[variant]
        assert np.array_equal(a.skeleton.probability, b.skeleton.probability)
        assert np.array_equal(a.skeleton.skeleton, b.skeleton.skeleton)

    @pytest.mark.parametrize("variant", ["shm", "pickle"])
    def test_panoramas_bit_identical(self, three_runs, variant):
        a, b = three_runs["serial"], three_runs[variant]
        assert [p.room_hint for p in a.panoramas] == [
            p.room_hint for p in b.panoramas
        ]
        for pa, pb in zip(a.panoramas, b.panoramas):
            assert np.array_equal(pa.panorama.pixels, pb.panorama.pixels)

    @pytest.mark.parametrize("variant", ["shm", "pickle"])
    def test_floorplan_bit_identical(self, three_runs, variant):
        a, b = three_runs["serial"], three_runs[variant]
        assert len(a.floorplan.rooms) == len(b.floorplan.rooms)
        for ra, rb in zip(a.floorplan.rooms, b.floorplan.rooms):
            assert ra.name == rb.name
            assert (ra.center.x, ra.center.y) == (rb.center.x, rb.center.y)
            assert (
                ra.layout.width, ra.layout.depth, ra.layout.orientation
            ) == (rb.layout.width, rb.layout.depth, rb.layout.orientation)
        assert a.floorplan.render_ascii() == b.floorplan.render_ascii()

    @pytest.mark.parametrize("variant", ["shm", "pickle"])
    def test_clean_runs_quarantine_nothing(self, three_runs, variant):
        assert three_runs[variant].failures == []

    def test_no_leaked_segments(self, three_runs):
        # Every stage arena must have been closed and unlinked.
        assert audit_dev_shm() == []
