"""Tests for the chunked upload protocol."""

import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend.chunking import (
    Chunk,
    ChunkReassemblyError,
    chunk_payload,
    reassemble_chunks,
)


import numpy as np

# Incompressible payload so chunking actually splits it.
PAYLOAD = bytes(np.random.default_rng(0).integers(0, 256, 20000, dtype=np.uint8))


class TestChunking:
    def test_roundtrip(self):
        chunks = chunk_payload("u1", PAYLOAD, chunk_size=1024)
        assert len(chunks) > 1
        assert reassemble_chunks(chunks) == PAYLOAD

    def test_roundtrip_uncompressed(self):
        chunks = chunk_payload("u1", PAYLOAD, chunk_size=4096, compress=False)
        assert reassemble_chunks(chunks, compressed=False) == PAYLOAD

    def test_single_chunk_for_small_payload(self):
        chunks = chunk_payload("u1", b"tiny")
        assert len(chunks) == 1
        assert chunks[0].total == 1

    def test_reordered_chunks_reassemble(self):
        chunks = chunk_payload("u1", PAYLOAD, chunk_size=512)
        assert reassemble_chunks(list(reversed(chunks))) == PAYLOAD

    def test_duplicate_chunks_tolerated(self):
        chunks = chunk_payload("u1", PAYLOAD, chunk_size=2048)
        assert reassemble_chunks(chunks + [chunks[0]]) == PAYLOAD

    def test_missing_chunk_detected(self):
        chunks = chunk_payload("u1", PAYLOAD, chunk_size=512)
        with pytest.raises(ChunkReassemblyError, match="missing"):
            reassemble_chunks(chunks[:-1])

    def test_corrupt_chunk_detected(self):
        chunks = chunk_payload("u1", PAYLOAD, chunk_size=1024)
        bad = Chunk(
            upload_id=chunks[0].upload_id,
            index=chunks[0].index,
            total=chunks[0].total,
            payload=b"garbage" + chunks[0].payload[7:],
            crc32=chunks[0].crc32,
        )
        with pytest.raises(ChunkReassemblyError, match="CRC"):
            reassemble_chunks([bad] + chunks[1:])

    def test_conflicting_duplicates_detected(self):
        chunks = chunk_payload("u1", PAYLOAD, chunk_size=1024)
        other = b"x" * len(chunks[0].payload)
        conflict = Chunk(
            upload_id="u1", index=0, total=chunks[0].total,
            payload=other, crc32=zlib.crc32(other),
        )
        with pytest.raises(ChunkReassemblyError, match="conflicting"):
            reassemble_chunks(chunks + [conflict])

    def test_mixed_upload_ids_rejected(self):
        a = chunk_payload("a", b"data-a")
        b = chunk_payload("b", b"data-b")
        with pytest.raises(ChunkReassemblyError, match="mixed"):
            reassemble_chunks(a + b)

    def test_inconsistent_totals_rejected(self):
        chunks = chunk_payload("u1", PAYLOAD, chunk_size=1024)
        wrong = Chunk(
            upload_id="u1", index=0, total=chunks[0].total + 5,
            payload=chunks[0].payload, crc32=chunks[0].crc32,
        )
        with pytest.raises(ChunkReassemblyError, match="totals"):
            reassemble_chunks([wrong] + chunks[1:])

    def test_empty_chunk_list(self):
        with pytest.raises(ChunkReassemblyError):
            reassemble_chunks([])

    def test_invalid_chunk_size(self):
        with pytest.raises(ValueError):
            chunk_payload("u1", b"data", chunk_size=0)

    @given(st.binary(min_size=0, max_size=5000), st.integers(64, 2048))
    @settings(max_examples=40)
    def test_roundtrip_property(self, data, chunk_size):
        chunks = chunk_payload("u", data, chunk_size=chunk_size)
        assert reassemble_chunks(chunks) == data
