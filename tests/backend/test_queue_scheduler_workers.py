"""Tests for the task queue, scheduler and worker pool."""

import threading

import pytest

from repro.backend.queue import TaskQueue, TaskState
from repro.backend.scheduler import SimulatedScheduler
from repro.backend.workers import WorkerPool, map_parallel


class TestTaskQueue:
    def test_submit_lease_ack(self):
        q = TaskQueue()
        task = q.submit("work", {"n": 1})
        leased = q.lease()
        assert leased.task_id == task.task_id
        assert leased.state is TaskState.LEASED
        q.ack(leased.task_id, result=42)
        assert q.task(task.task_id).result == 42
        assert q.all_settled()

    def test_fifo_order(self):
        q = TaskQueue()
        ids = [q.submit("w", i).task_id for i in range(5)]
        leased = [q.lease().task_id for _ in range(5)]
        assert leased == ids

    def test_nack_requeues(self):
        q = TaskQueue(max_attempts=3)
        q.submit("w", None)
        t = q.lease()
        q.nack(t.task_id, error="boom")
        assert q.pending_count() == 1
        t2 = q.lease()
        assert t2.task_id == t.task_id
        assert t2.attempts == 2

    def test_dead_letter_after_max_attempts(self):
        q = TaskQueue(max_attempts=2)
        q.submit("w", None)
        for _ in range(2):
            t = q.lease()
            q.nack(t.task_id, error="boom")
        assert q.tasks_in_state(TaskState.DEAD)
        assert q.lease() is None
        assert q.all_settled()

    def test_ack_requires_leased_state(self):
        q = TaskQueue()
        t = q.submit("w", None)
        with pytest.raises(ValueError):
            q.ack(t.task_id)

    def test_unknown_task(self):
        q = TaskQueue()
        with pytest.raises(KeyError):
            q.ack(999)

    def test_lease_empty_returns_none(self):
        assert TaskQueue().lease() is None

    def test_invalid_max_attempts(self):
        with pytest.raises(ValueError):
            TaskQueue(max_attempts=0)


class TestScheduler:
    def test_job_fires_on_interval(self):
        sched = SimulatedScheduler()
        calls = []
        sched.add_job("tick", interval=10.0, callback=lambda: calls.append(sched.now))
        executed = sched.advance(35.0)
        assert executed == 3
        assert calls == [10.0, 20.0, 30.0]

    def test_delay_controls_first_run(self):
        sched = SimulatedScheduler()
        calls = []
        sched.add_job("t", interval=10.0, callback=lambda: calls.append(1), delay=1.0)
        sched.advance(2.0)
        assert calls == [1]

    def test_failures_recorded_and_job_survives(self):
        sched = SimulatedScheduler()

        def boom():
            raise RuntimeError("crash")

        job = sched.add_job("bad", interval=1.0, callback=boom)
        sched.advance(3.0)
        assert job.failures == 3
        assert job.runs == 3
        assert "crash" in job.last_error

    def test_max_failures_pauses(self):
        sched = SimulatedScheduler()

        def boom():
            raise RuntimeError("crash")

        job = sched.add_job("bad", interval=1.0, callback=boom, max_failures=2)
        sched.advance(10.0)
        assert job.failures == 2
        assert job.paused

    def test_pause_resume(self):
        sched = SimulatedScheduler()
        calls = []
        job = sched.add_job("t", interval=1.0, callback=lambda: calls.append(1))
        sched.advance(2.0)
        sched.pause_job(job.job_id)
        sched.advance(5.0)
        assert len(calls) == 2
        sched.resume_job(job.job_id)
        sched.advance(2.0)
        assert len(calls) == 4

    def test_jobs_fire_in_time_order(self):
        sched = SimulatedScheduler()
        order = []
        sched.add_job("slow", interval=3.0, callback=lambda: order.append("slow"))
        sched.add_job("fast", interval=1.0, callback=lambda: order.append("fast"))
        sched.advance(3.0)
        assert order == ["fast", "fast", "slow", "fast"] or order == [
            "fast", "fast", "fast", "slow",
        ]

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            SimulatedScheduler().add_job("x", interval=0.0, callback=lambda: None)

    def test_cannot_rewind(self):
        with pytest.raises(ValueError):
            SimulatedScheduler().advance(-1.0)

    def test_remove_job(self):
        sched = SimulatedScheduler()
        calls = []
        job = sched.add_job("t", interval=1.0, callback=lambda: calls.append(1))
        sched.remove_job(job.job_id)
        sched.advance(5.0)
        assert calls == []


class TestMapParallel:
    def test_preserves_order(self):
        result = map_parallel(lambda x: x * 2, list(range(20)), max_workers=4)
        assert result == [x * 2 for x in range(20)]

    def test_empty_input(self):
        assert map_parallel(lambda x: x, []) == []

    def test_single_worker_sequential(self):
        result = map_parallel(lambda x: x + 1, [1, 2, 3], max_workers=1)
        assert result == [2, 3, 4]

    def test_exception_propagates(self):
        def bad(x):
            if x == 3:
                raise ValueError("x=3")
            return x

        with pytest.raises(ValueError):
            map_parallel(bad, [1, 2, 3, 4], max_workers=2)

    def test_actually_parallel(self):
        barrier = threading.Barrier(4, timeout=5.0)

        def wait(x):
            barrier.wait()  # deadlocks unless 4 run concurrently
            return x

        assert map_parallel(wait, [1, 2, 3, 4], max_workers=4) == [1, 2, 3, 4]


class TestWorkerPool:
    def test_processes_tasks(self):
        q = TaskQueue()
        pool = WorkerPool(q, n_workers=2)
        pool.register("square", lambda n: n * n)
        ids = [q.submit("square", n).task_id for n in range(8)]
        with pool:
            pool.drain(timeout=10.0)
        assert [q.task(i).result for i in ids] == [n * n for n in range(8)]

    def test_handler_error_nacks(self):
        q = TaskQueue(max_attempts=2)

        def bad(_):
            raise RuntimeError("handler failure")

        pool = WorkerPool(q, n_workers=1)
        pool.register("bad", bad)
        t = q.submit("bad", None)
        with pool:
            pool.drain(timeout=10.0)
        final = q.task(t.task_id)
        assert final.state is TaskState.DEAD
        assert "handler failure" in final.last_error

    def test_unregistered_kind_dead_letters(self):
        q = TaskQueue(max_attempts=1)
        pool = WorkerPool(q, n_workers=1)
        t = q.submit("mystery", None)
        with pool:
            pool.drain(timeout=10.0)
        assert q.task(t.task_id).state is TaskState.DEAD

    def test_double_start_rejected(self):
        pool = WorkerPool(TaskQueue(), n_workers=1)
        with pool:
            with pytest.raises(RuntimeError):
                pool.start()

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            WorkerPool(TaskQueue(), n_workers=0)
