"""Fault-injection substrate tests: injectors, retry/backoff, dead-letter."""

import numpy as np
import pytest

from repro.backend.chunking import (
    ChunkReassemblyError,
    chunk_payload,
    reassemble_chunks,
)
from repro.backend.datastore import DocumentStore
from repro.backend.faults import (
    FaultInjectionError,
    FaultInjector,
    FlakyHandler,
    SlowHandler,
)
from repro.backend.queue import RetryPolicy, TaskQueue, TaskState
from repro.backend.serialization import decode_array, session_to_payload
from repro.backend.server import IngestServer
from repro.backend.telemetry import TelemetryRegistry
from repro.backend.workers import WorkerPool


class FakeClock:
    """Hand-cranked monotonic clock for deterministic backoff tests."""

    def __init__(self):
        self.t = 0.0

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


class TestFaultInjector:
    def test_plan_is_deterministic(self):
        ids = [f"s{i}" for i in range(20)]
        a = FaultInjector(seed=5, fault_rate=0.25).plan(ids)
        b = FaultInjector(seed=5, fault_rate=0.25).plan(ids)
        assert a == b
        assert len(a) == 5  # round(0.25 * 20)

    def test_plan_respects_rate(self):
        ids = [f"s{i}" for i in range(10)]
        assert FaultInjector(seed=0, fault_rate=0.0).plan(ids) == []
        assert len(FaultInjector(seed=0, fault_rate=1.0).plan(ids)) == 10

    def test_different_seeds_differ(self):
        ids = [f"s{i}" for i in range(40)]
        a = FaultInjector(seed=1, fault_rate=0.5).plan(ids)
        b = FaultInjector(seed=2, fault_rate=0.5).plan(ids)
        assert a != b

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            FaultInjector(fault_rate=1.5)
        with pytest.raises(ValueError):
            FaultInjector(kinds=("not_a_fault",))
        with pytest.raises(ValueError):
            FaultInjector(kinds=())

    def test_corrupt_chunk_fails_crc(self):
        chunks = chunk_payload("up-1", b"hello world" * 100, chunk_size=64)
        bad = FaultInjector(seed=0).corrupt_chunk(chunks[0])
        assert not bad.verify()
        assert chunks[0].verify()  # the original is untouched
        with pytest.raises(ChunkReassemblyError):
            reassemble_chunks([bad] + chunks[1:])

    def test_truncate_imu_payload(self, sws_session):
        payload = session_to_payload(sws_session)
        faulted = FaultInjector(seed=0).truncate_imu_payload(
            payload, keep_fraction=0.25
        )
        full = decode_array(payload["imu"]["t"])
        cut = decode_array(faulted["imu"]["t"])
        assert len(cut) == int(0.25 * len(full))
        # The original payload dict is untouched.
        assert len(decode_array(payload["imu"]["t"])) == len(full)

    def test_corrupt_session_frames(self, sws_session):
        faulted = FaultInjector(seed=0).corrupt_session_frames(
            sws_session, fraction=0.5
        )
        n_bad = sum(
            not np.all(np.isfinite(f.pixels)) for f in faulted.frames
        )
        assert n_bad == max(1, round(0.5 * len(sws_session.frames)))
        # Fixture frames stay pristine (session-scoped, shared).
        assert all(np.all(np.isfinite(f.pixels)) for f in sws_session.frames)

    def test_truncate_session_imu(self, sws_session):
        faulted = FaultInjector(seed=0).truncate_session_imu(
            sws_session, keep_fraction=0.5
        )
        assert len(faulted.imu.samples) == len(sws_session.imu.samples) // 2


class TestRetryPolicy:
    def test_exponential_schedule(self):
        policy = RetryPolicy(backoff_base=1.0, backoff_factor=2.0,
                             backoff_max=5.0)
        import random
        rng = random.Random(0)
        assert policy.delay_for(1, rng) == 1.0
        assert policy.delay_for(2, rng) == 2.0
        assert policy.delay_for(3, rng) == 4.0
        assert policy.delay_for(4, rng) == 5.0  # capped

    def test_zero_base_means_immediate(self):
        import random
        assert RetryPolicy().delay_for(3, random.Random(0)) == 0.0

    def test_jitter_bounded_and_seeded(self):
        import random
        policy = RetryPolicy(backoff_base=1.0, jitter=0.5)
        delays = [policy.delay_for(1, random.Random(7)) for _ in range(5)]
        assert all(0.5 <= d <= 1.5 for d in delays)
        assert len(set(delays)) == 1  # same seed, same jitter

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=2.0)


class TestQueueBackoff:
    def _queue(self, **policy_kwargs):
        clock = FakeClock()
        telemetry = TelemetryRegistry()
        q = TaskQueue(
            retry_policy=RetryPolicy(**policy_kwargs),
            telemetry=telemetry,
            clock=clock,
        )
        return q, clock, telemetry

    def test_backoff_gates_lease(self):
        q, clock, _ = self._queue(max_attempts=3, backoff_base=1.0)
        q.submit("w", None)
        t = q.lease()
        q.nack(t.task_id, error="boom")
        assert q.lease() is None  # still inside the backoff window
        assert q.next_ready_in() == pytest.approx(1.0)
        clock.advance(1.0)
        t2 = q.lease()
        assert t2 is not None and t2.attempts == 2

    def test_backoff_grows_exponentially(self):
        q, clock, _ = self._queue(
            max_attempts=5, backoff_base=1.0, backoff_factor=2.0
        )
        q.submit("w", None)
        q.nack(q.lease().task_id, error="a")
        assert q.next_ready_in() == pytest.approx(1.0)
        clock.advance(1.0)
        q.nack(q.lease().task_id, error="b")
        assert q.next_ready_in() == pytest.approx(2.0)

    def test_ready_tasks_lease_past_backing_off_ones(self):
        q, clock, _ = self._queue(max_attempts=3, backoff_base=10.0)
        first = q.submit("w", "cooling")
        q.nack(q.lease().task_id, error="boom")
        second = q.submit("w", "fresh")
        leased = q.lease()
        assert leased.task_id == second.task_id
        assert first.state is TaskState.PENDING

    def test_retry_and_dead_letter_telemetry(self):
        q, clock, telemetry = self._queue(max_attempts=3)
        q.submit("w", None)
        for _ in range(3):
            q.nack(q.lease().task_id, error="boom")
        assert telemetry.value("tasks_retried") == 2
        assert telemetry.value("tasks_dead_lettered") == 1
        (dead,) = q.dead_letters()
        assert dead.attempt_errors == ["boom", "boom", "boom"]

    def test_retry_dead_resurrects(self):
        q, clock, _ = self._queue(max_attempts=1)
        t = q.submit("w", None)
        q.nack(q.lease().task_id, error="boom")
        assert q.task(t.task_id).state is TaskState.DEAD
        q.retry_dead(t.task_id)
        leased = q.lease()
        assert leased.task_id == t.task_id
        assert leased.attempts == 1

    def test_retry_dead_requires_dead_state(self):
        q, _, _ = self._queue()
        t = q.submit("w", None)
        with pytest.raises(ValueError):
            q.retry_dead(t.task_id)

    def test_next_ready_in_empty(self):
        q, _, _ = self._queue()
        assert q.next_ready_in() is None


class TestHandlerWrappers:
    def test_flaky_recovers_through_retries(self):
        telemetry = TelemetryRegistry()
        q = TaskQueue(max_attempts=5, telemetry=telemetry)
        pool = WorkerPool(q, n_workers=2, telemetry=telemetry)
        handler = FlakyHandler(lambda n: n * n, fail_times=2)
        pool.register("square", handler)
        t = q.submit("square", 6)
        with pool:
            pool.drain(timeout=10.0)
        final = q.task(t.task_id)
        assert final.state is TaskState.DONE
        assert final.result == 36
        assert final.attempts == 3
        assert len(final.attempt_errors) == 2
        assert telemetry.value("tasks_retried") == 2
        assert telemetry.value("tasks_dead_lettered") == 0

    def test_flaky_exhausts_into_dead_letter(self):
        telemetry = TelemetryRegistry()
        q = TaskQueue(max_attempts=2, telemetry=telemetry)
        pool = WorkerPool(q, n_workers=1, telemetry=telemetry)
        pool.register("doomed", FlakyHandler(lambda n: n, fail_times=99))
        t = q.submit("doomed", 0)
        with pool:
            pool.drain(timeout=10.0)
        assert q.task(t.task_id).state is TaskState.DEAD
        assert telemetry.value("tasks_dead_lettered") == 1
        assert "injected transient failure" in q.task(t.task_id).last_error

    def test_flaky_custom_error(self):
        handler = FlakyHandler(lambda n: n, fail_times=1,
                               error=KeyError("custom"))
        with pytest.raises(KeyError):
            handler(1)
        assert handler(1) == 1

    def test_flaky_raises_fault_injection_error(self):
        with pytest.raises(FaultInjectionError):
            FlakyHandler(lambda n: n, fail_times=1)(0)

    def test_slow_handler_still_completes(self):
        telemetry = TelemetryRegistry()
        q = TaskQueue(telemetry=telemetry)
        pool = WorkerPool(q, n_workers=2, telemetry=telemetry)
        slow = SlowHandler(lambda n: n + 1, delay=0.02)
        pool.register("slow", slow)
        ids = [q.submit("slow", n).task_id for n in range(6)]
        with pool:
            pool.drain(timeout=10.0)
        assert [q.task(i).result for i in ids] == [n + 1 for n in range(6)]
        assert slow.calls == 6

    def test_slow_handler_rejects_negative_delay(self):
        with pytest.raises(ValueError):
            SlowHandler(lambda n: n, delay=-1.0)


class TestIngestFaults:
    def _server(self):
        telemetry = TelemetryRegistry()
        server = IngestServer(DocumentStore(), queue=TaskQueue(),
                              telemetry=telemetry)
        return server, telemetry

    def test_corrupt_chunk_asks_for_resend(self):
        server, telemetry = self._server()
        upload_id = server.open_upload("u1", {"building": "Lab1", "floor": 1})
        chunks = chunk_payload(upload_id, b"payload" * 1000, chunk_size=512)
        bad = FaultInjector(seed=0).corrupt_chunk(chunks[0])
        ack = server.receive_chunk(bad)
        assert ack["status"] == "retry"
        assert telemetry.value("ingest_chunk_crc_failures") == 1
        # The client resends the pristine chunk and the upload completes.
        for chunk in chunks:
            assert server.receive_chunk(chunk)["status"] == "ok"
        assert server.finalize_upload(upload_id) > 0

    def test_incomplete_finalize_counts_failure(self):
        server, telemetry = self._server()
        upload_id = server.open_upload("u1", {"building": "Lab1", "floor": 1})
        data = np.random.default_rng(0).integers(
            0, 256, size=4096, dtype=np.uint8
        ).tobytes()  # incompressible, so it spans several chunks
        chunks = chunk_payload(upload_id, data, chunk_size=512)
        assert len(chunks) > 1
        server.receive_chunk(chunks[0])
        with pytest.raises(ChunkReassemblyError):
            server.finalize_upload(upload_id)
        assert telemetry.value("ingest_finalize_failures") == 1

    def test_abandon_upload(self):
        server, telemetry = self._server()
        upload_id = server.open_upload("u1", {"building": "Lab1", "floor": 1})
        assert server.abandon_upload(upload_id)
        assert upload_id not in server.pending_uploads()
        assert telemetry.value("ingest_uploads_abandoned") == 1
        # Unknown and repeated abandons are no-ops.
        assert not server.abandon_upload(upload_id)
        assert not server.abandon_upload("up-999999")


class TestLinkFaultModel:
    def test_default_link_always_delivers(self):
        from repro.backend.faults import LinkFaultModel

        link = LinkFaultModel()
        assert all(
            link.delivers("a", "b", tick, now=0.0) for tick in range(50)
        )

    def test_loss_is_deterministic_and_roughly_calibrated(self):
        from repro.backend.faults import LinkFaultModel

        link = LinkFaultModel(seed=3, loss_rate=0.3)
        outcomes = [link.delivers("a", "b", tick, 0.0) for tick in range(400)]
        again = [link.delivers("a", "b", tick, 0.0) for tick in range(400)]
        assert outcomes == again
        dropped = outcomes.count(False)
        assert 60 <= dropped <= 180  # ~120 expected at p=0.3

    def test_latency_is_bounded_and_replayable(self):
        from repro.backend.faults import LinkFaultModel

        link = LinkFaultModel(base_latency=0.05, latency_jitter=0.02)
        for tick in range(20):
            delay = link.latency("a", "b", tick)
            assert delay == link.latency("a", "b", tick)
            assert 0.05 <= delay <= 0.07

    def test_partition_blocks_cross_group_both_ways(self):
        from repro.backend.faults import LinkFaultModel, Partition

        partition = Partition(
            start=1.0, end=5.0, groups=(("a",), ("b", "c"))
        )
        link = LinkFaultModel(partitions=(partition,))
        assert link.delivers("a", "b", 0, now=0.5)  # before the window
        assert not link.delivers("a", "b", 1, now=1.0)
        assert not link.delivers("b", "a", 1, now=4.9)
        assert link.delivers("b", "c", 1, now=2.0)  # same side
        assert link.delivers("a", "b", 2, now=5.0)  # healed (end exclusive)

    def test_unlisted_nodes_form_their_own_component(self):
        from repro.backend.faults import Partition

        partition = Partition(start=0.0, end=1.0, groups=(("a",), ("b",)))
        assert partition.blocks("a", "zz", now=0.0)
        assert not partition.blocks("zz", "yy", now=0.0)

    def test_link_model_validation(self):
        from repro.backend.faults import LinkFaultModel

        with pytest.raises(ValueError):
            LinkFaultModel(loss_rate=1.5)
        with pytest.raises(ValueError):
            LinkFaultModel(base_latency=-0.1)
        with pytest.raises(ValueError):
            LinkFaultModel(latency_jitter=-0.01)
