"""Tests for the ingest server (upload -> store -> queue flow)."""

import pytest

from repro.backend.chunking import Chunk, ChunkReassemblyError, chunk_payload
from repro.backend.datastore import DocumentStore
from repro.backend.queue import TaskQueue
from repro.backend.server import (
    IngestServer,
    decode_session_payload,
    encode_session_payload,
)


@pytest.fixture()
def server():
    return IngestServer(DocumentStore(), TaskQueue())


META = {"building": "Lab1", "floor": 1}
import numpy as np

DATA = bytes(np.random.default_rng(1).integers(0, 256, 8000, dtype=np.uint8))


def upload(server, data=DATA, meta=META, user="u1", chunk_size=1024):
    upload_id = server.open_upload(user, meta)
    for chunk in chunk_payload(upload_id, data, chunk_size=chunk_size):
        ack = server.receive_chunk(chunk)
        assert ack["status"] == "ok"
    return upload_id


class TestUploadFlow:
    def test_full_flow_stores_and_enqueues(self, server):
        upload_id = upload(server)
        doc_id = server.finalize_upload(upload_id)
        doc = server.store.find_one(IngestServer.RAW_COLLECTION, {"upload_id": upload_id})
        assert doc.doc_id == doc_id
        assert doc["payload"] == DATA
        assert doc["building"] == "Lab1"
        task = server.queue.lease()
        assert task.kind == "process_upload"
        assert task.payload == {"doc_id": doc_id, "upload_id": upload_id}

    def test_out_of_order_chunks(self, server):
        upload_id = server.open_upload("u1", META)
        chunks = chunk_payload(upload_id, DATA, chunk_size=512)
        for chunk in reversed(chunks):
            server.receive_chunk(chunk)
        server.finalize_upload(upload_id)
        doc = server.store.find_one(IngestServer.RAW_COLLECTION, {"upload_id": upload_id})
        assert doc["payload"] == DATA

    def test_missing_chunk_blocks_finalize(self, server):
        upload_id = server.open_upload("u1", META)
        chunks = chunk_payload(upload_id, DATA, chunk_size=512)
        for chunk in chunks[:-1]:
            server.receive_chunk(chunk)
        with pytest.raises(ChunkReassemblyError, match="incomplete"):
            server.finalize_upload(upload_id)
        assert upload_id in server.pending_uploads()

    def test_corrupt_chunk_requests_retry(self, server):
        upload_id = server.open_upload("u1", META)
        chunks = chunk_payload(upload_id, DATA, chunk_size=1024)
        bad = Chunk(
            upload_id=upload_id, index=0, total=chunks[0].total,
            payload=chunks[0].payload, crc32=chunks[0].crc32 ^ 0xFF,
        )
        ack = server.receive_chunk(bad)
        assert ack["status"] == "retry"

    def test_metadata_required(self, server):
        with pytest.raises(ValueError):
            server.open_upload("u1", {"building": "Lab1"})  # no floor

    def test_unknown_upload(self, server):
        chunk = chunk_payload("nope", b"x")[0]
        with pytest.raises(KeyError):
            server.receive_chunk(chunk)
        with pytest.raises(KeyError):
            server.finalize_upload("nope")

    def test_double_finalize_rejected(self, server):
        upload_id = upload(server)
        server.finalize_upload(upload_id)
        chunk = chunk_payload(upload_id, b"more")[0]
        with pytest.raises(ValueError):
            server.receive_chunk(chunk)

    def test_total_mismatch_rejected(self, server):
        upload_id = server.open_upload("u1", META)
        chunks = chunk_payload(upload_id, DATA, chunk_size=512)
        server.receive_chunk(chunks[0])
        wrong = Chunk(
            upload_id=upload_id, index=1, total=chunks[0].total + 1,
            payload=chunks[1].payload, crc32=chunks[1].crc32,
        )
        with pytest.raises(ValueError, match="mismatch"):
            server.receive_chunk(wrong)

    def test_server_without_queue(self):
        server = IngestServer(DocumentStore())
        upload_id = upload(server)
        assert server.finalize_upload(upload_id) > 0

    def test_multiple_concurrent_uploads(self, server):
        id_a = server.open_upload("a", META)
        id_b = server.open_upload("b", {"building": "Gym", "floor": 2})
        chunks_a = chunk_payload(id_a, b"payload-a" * 100, chunk_size=256)
        chunks_b = chunk_payload(id_b, b"payload-b" * 100, chunk_size=256)
        for ca, cb in zip(chunks_a, chunks_b):
            server.receive_chunk(cb)
            server.receive_chunk(ca)
        server.finalize_upload(id_a)
        server.finalize_upload(id_b)
        assert server.store.count(IngestServer.RAW_COLLECTION) == 2


class TestPayloadCodec:
    def test_roundtrip(self):
        payload = {"frames": [[0.0, 1.0], [2.0, 3.0]], "user": "u1", "floor": 3}
        assert decode_session_payload(encode_session_payload(payload)) == payload

    def test_deterministic_encoding(self):
        a = encode_session_payload({"b": 1, "a": 2})
        b = encode_session_payload({"a": 2, "b": 1})
        assert a == b
