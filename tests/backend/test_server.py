"""Tests for the ingest server (upload -> store -> queue flow)."""

import pytest

from repro.backend.chunking import Chunk, ChunkReassemblyError, chunk_payload
from repro.backend.datastore import DocumentStore
from repro.backend.queue import TaskQueue
from repro.backend.scheduler import SimulatedScheduler
from repro.backend.server import (
    IngestServer,
    decode_session_payload,
    encode_session_payload,
)
from repro.backend.telemetry import TelemetryRegistry


@pytest.fixture()
def server():
    return IngestServer(DocumentStore(), TaskQueue())


META = {"building": "Lab1", "floor": 1}
import numpy as np

DATA = bytes(np.random.default_rng(1).integers(0, 256, 8000, dtype=np.uint8))


def upload(server, data=DATA, meta=META, user="u1", chunk_size=1024):
    upload_id = server.open_upload(user, meta)
    for chunk in chunk_payload(upload_id, data, chunk_size=chunk_size):
        ack = server.receive_chunk(chunk)
        assert ack["status"] == "ok"
    return upload_id


class TestUploadFlow:
    def test_full_flow_stores_and_enqueues(self, server):
        upload_id = upload(server)
        doc_id = server.finalize_upload(upload_id)
        doc = server.store.find_one(IngestServer.RAW_COLLECTION, {"upload_id": upload_id})
        assert doc.doc_id == doc_id
        assert doc["payload"] == DATA
        assert doc["building"] == "Lab1"
        task = server.queue.lease()
        assert task.kind == "process_upload"
        assert task.payload == {"doc_id": doc_id, "upload_id": upload_id}

    def test_out_of_order_chunks(self, server):
        upload_id = server.open_upload("u1", META)
        chunks = chunk_payload(upload_id, DATA, chunk_size=512)
        for chunk in reversed(chunks):
            server.receive_chunk(chunk)
        server.finalize_upload(upload_id)
        doc = server.store.find_one(IngestServer.RAW_COLLECTION, {"upload_id": upload_id})
        assert doc["payload"] == DATA

    def test_missing_chunk_blocks_finalize(self, server):
        upload_id = server.open_upload("u1", META)
        chunks = chunk_payload(upload_id, DATA, chunk_size=512)
        for chunk in chunks[:-1]:
            server.receive_chunk(chunk)
        with pytest.raises(ChunkReassemblyError, match="incomplete"):
            server.finalize_upload(upload_id)
        assert upload_id in server.pending_uploads()

    def test_corrupt_chunk_requests_retry(self, server):
        upload_id = server.open_upload("u1", META)
        chunks = chunk_payload(upload_id, DATA, chunk_size=1024)
        bad = Chunk(
            upload_id=upload_id, index=0, total=chunks[0].total,
            payload=chunks[0].payload, crc32=chunks[0].crc32 ^ 0xFF,
        )
        ack = server.receive_chunk(bad)
        assert ack["status"] == "retry"

    def test_metadata_required(self, server):
        with pytest.raises(ValueError):
            server.open_upload("u1", {"building": "Lab1"})  # no floor

    def test_unknown_upload(self, server):
        chunk = chunk_payload("nope", b"x")[0]
        with pytest.raises(KeyError):
            server.receive_chunk(chunk)
        with pytest.raises(KeyError):
            server.finalize_upload("nope")

    def test_double_finalize_rejected(self, server):
        upload_id = upload(server)
        server.finalize_upload(upload_id)
        chunk = chunk_payload(upload_id, b"more")[0]
        with pytest.raises(ValueError):
            server.receive_chunk(chunk)

    def test_total_mismatch_rejected(self, server):
        upload_id = server.open_upload("u1", META)
        chunks = chunk_payload(upload_id, DATA, chunk_size=512)
        server.receive_chunk(chunks[0])
        wrong = Chunk(
            upload_id=upload_id, index=1, total=chunks[0].total + 1,
            payload=chunks[1].payload, crc32=chunks[1].crc32,
        )
        with pytest.raises(ValueError, match="mismatch"):
            server.receive_chunk(wrong)

    def test_server_without_queue(self):
        server = IngestServer(DocumentStore())
        upload_id = upload(server)
        assert server.finalize_upload(upload_id) > 0

    def test_multiple_concurrent_uploads(self, server):
        id_a = server.open_upload("a", META)
        id_b = server.open_upload("b", {"building": "Gym", "floor": 2})
        chunks_a = chunk_payload(id_a, b"payload-a" * 100, chunk_size=256)
        chunks_b = chunk_payload(id_b, b"payload-b" * 100, chunk_size=256)
        for ca, cb in zip(chunks_a, chunks_b):
            server.receive_chunk(cb)
            server.receive_chunk(ca)
        server.finalize_upload(id_a)
        server.finalize_upload(id_b)
        assert server.store.count(IngestServer.RAW_COLLECTION) == 2


class TestUploadTtl:
    def make_server(self, clock=None, telemetry=None):
        return IngestServer(
            DocumentStore(), TaskQueue(),
            telemetry=telemetry or TelemetryRegistry(), clock=clock,
        )

    def test_expire_stale_abandons_idle_uploads(self):
        clock = {"now": 0.0}
        telemetry = TelemetryRegistry()
        server = self.make_server(
            clock=lambda: clock["now"], telemetry=telemetry
        )
        stale_id = server.open_upload("u1", META)
        clock["now"] = 100.0
        fresh_id = server.open_upload("u2", META)
        expired = server.expire_stale(ttl=60.0, now=clock["now"])
        assert expired == [stale_id]
        assert server.pending_uploads() == [fresh_id]
        assert telemetry.value("ingest_uploads_expired") == 1
        assert telemetry.value("ingest_uploads_abandoned") == 1

    def test_chunk_activity_refreshes_ttl(self):
        clock = {"now": 0.0}
        server = self.make_server(clock=lambda: clock["now"])
        upload_id = server.open_upload("u1", META)
        chunks = chunk_payload(upload_id, DATA, chunk_size=4096)
        clock["now"] = 50.0
        server.receive_chunk(chunks[0])  # keeps the session alive
        assert server.expire_stale(ttl=60.0, now=90.0) == []
        assert server.expire_stale(ttl=60.0, now=110.0) == [upload_id]

    def test_finalized_uploads_never_expire(self):
        server = self.make_server()
        upload_id = upload(server)
        server.finalize_upload(upload_id)
        assert server.expire_stale(ttl=1.0, now=1e9) == []

    def test_ttl_must_be_positive(self):
        with pytest.raises(ValueError):
            self.make_server().expire_stale(ttl=0.0)

    def test_sweep_job_expires_on_schedule(self):
        """attach_ttl_sweep + SimulatedScheduler: the integration path."""
        telemetry = TelemetryRegistry()
        server = self.make_server(telemetry=telemetry)
        scheduler = SimulatedScheduler()
        job = server.attach_ttl_sweep(scheduler, ttl=30.0, interval=10.0)
        assert job.name == "upload_ttl_sweep"
        # The server adopted the scheduler clock, so sessions opened at
        # different virtual times age independently.
        early = server.open_upload("u1", META)
        scheduler.advance(25.0)  # sweeps at 10 and 20: early still fresh
        assert server.pending_uploads() == [early]
        late = server.open_upload("u2", META)
        scheduler.advance(10.0)  # sweep at 30: early is now 30s idle
        assert server.pending_uploads() == [late]
        scheduler.advance(30.0)  # sweep at 60: late expires too
        assert server.pending_uploads() == []
        assert telemetry.value("ingest_uploads_expired") == 2

    def test_injected_clock_wins_over_scheduler(self):
        clock = {"now": 500.0}
        server = self.make_server(clock=lambda: clock["now"])
        scheduler = SimulatedScheduler()
        server.attach_ttl_sweep(scheduler, ttl=30.0)
        upload_id = server.open_upload("u1", META)
        # Session stamped from the injected clock (500), not scheduler (0):
        # sweeps judge it against their own `now`, so it is already stale
        # relative to the scheduler clock ... unless expire_stale is given
        # the matching now.
        assert server.expire_stale(ttl=30.0, now=clock["now"]) == []
        clock["now"] = 540.0
        assert server.expire_stale(ttl=30.0, now=clock["now"]) == [upload_id]


class TestPayloadCodec:
    def test_roundtrip(self):
        payload = {"frames": [[0.0, 1.0], [2.0, 3.0]], "user": "u1", "floor": 3}
        assert decode_session_payload(encode_session_payload(payload)) == payload

    def test_deterministic_encoding(self):
        a = encode_session_payload({"b": 1, "a": 2})
        b = encode_session_payload({"a": 2, "b": 1})
        assert a == b
