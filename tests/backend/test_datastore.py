"""Tests for the in-memory document store."""

import threading

import pytest

from repro.backend.datastore import DocumentStore


@pytest.fixture()
def store():
    s = DocumentStore()
    col = s.collection("sessions")
    col.insert({"user": "a", "frames": 10, "building": "Lab1"})
    col.insert({"user": "b", "frames": 25, "building": "Lab1"})
    col.insert({"user": "a", "frames": 40, "building": "Gym"})
    return s


class TestCrud:
    def test_insert_assigns_ids(self, store):
        docs = store.find("sessions")
        ids = [d.doc_id for d in docs]
        assert len(set(ids)) == 3

    def test_find_by_equality(self, store):
        docs = store.find("sessions", {"user": "a"})
        assert len(docs) == 2

    def test_find_conjunction(self, store):
        docs = store.find("sessions", {"user": "a", "building": "Gym"})
        assert len(docs) == 1
        assert docs[0]["frames"] == 40

    def test_find_one_lowest_id(self, store):
        doc = store.find_one("sessions", {"user": "a"})
        assert doc["frames"] == 10

    def test_find_one_missing(self, store):
        assert store.find_one("sessions", {"user": "zz"}) is None

    def test_update(self, store):
        n = store.update("sessions", {"user": "a"}, {"processed": True})
        assert n == 2
        assert all(d.get("processed") for d in store.find("sessions", {"user": "a"}))

    def test_delete(self, store):
        assert store.delete("sessions", {"building": "Lab1"}) == 2
        assert store.count("sessions") == 1

    def test_count(self, store):
        assert store.count("sessions") == 3
        assert store.count("sessions", {"building": "Lab1"}) == 2

    def test_collections_are_isolated(self, store):
        store.insert("other", {"x": 1})
        assert store.count("sessions") == 3
        assert store.count("other") == 1
        assert set(store.collection_names()) == {"sessions", "other"}


class TestOperators:
    def test_gt_lt(self, store):
        assert store.count("sessions", {"frames": {"$gt": 10}}) == 2
        assert store.count("sessions", {"frames": {"$lt": 25}}) == 1
        assert store.count("sessions", {"frames": {"$gte": 25}}) == 2
        assert store.count("sessions", {"frames": {"$lte": 10}}) == 1

    def test_ne_in(self, store):
        assert store.count("sessions", {"user": {"$ne": "a"}}) == 1
        assert store.count("sessions", {"building": {"$in": ["Gym", "Lab2"]}}) == 1

    def test_missing_field_with_gt(self, store):
        assert store.count("sessions", {"nonexistent": {"$gt": 0}}) == 0

    def test_unknown_operator(self, store):
        with pytest.raises(ValueError):
            store.find("sessions", {"frames": {"$regex": ".*"}})


class TestIndexes:
    def test_index_lookup_matches_scan(self, store):
        col = store.collection("sessions")
        before = store.find("sessions", {"user": "a"})
        col.create_index("user")
        after = store.find("sessions", {"user": "a"})
        assert {d.doc_id for d in before} == {d.doc_id for d in after}

    def test_index_tracks_updates(self, store):
        col = store.collection("sessions")
        col.create_index("user")
        store.update("sessions", {"user": "b"}, {"user": "c"})
        assert store.count("sessions", {"user": "c"}) == 1
        assert store.count("sessions", {"user": "b"}) == 0

    def test_index_tracks_deletes(self, store):
        col = store.collection("sessions")
        col.create_index("building")
        store.delete("sessions", {"building": "Gym"})
        assert store.count("sessions", {"building": "Gym"}) == 0


class TestConcurrency:
    def test_parallel_inserts(self):
        store = DocumentStore()

        def insert_many(tag):
            for i in range(100):
                store.insert("c", {"tag": tag, "i": i})

        threads = [
            threading.Thread(target=insert_many, args=(t,)) for t in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert store.count("c") == 400
        ids = [d.doc_id for d in store.find("c")]
        assert len(set(ids)) == 400
