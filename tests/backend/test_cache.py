"""Content-addressed result cache: keys, storage tiers, and the
cached-vs-uncached bit-identity contract the pipeline relies on.

The equivalence tests here are the cache's reason to exist: a warm cache
must be a pure speedup, never a semantic change, so the reconstruction
from a cached run is compared bit-for-bit against an uncached one.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend.cache import (
    CACHE_MODES,
    ResultCache,
    array_digest,
    config_fingerprint,
    frame_digest,
    get_cache,
    set_cache,
)
from repro.backend.telemetry import TelemetryRegistry
from repro.core.config import CrowdMapConfig


@pytest.fixture(autouse=True)
def _isolate_global_cache():
    """Each test starts and ends with the env-derived default cache."""
    set_cache(None)
    yield
    set_cache(None)


def fresh_cache(**kwargs) -> ResultCache:
    kwargs.setdefault("telemetry", TelemetryRegistry())
    return ResultCache(**kwargs)


class TestCoreApi:
    def test_miss_then_store_then_hit(self):
        cache = fresh_cache()
        hit, value = cache.lookup("hog", "k1")
        assert (hit, value) == (False, None)
        cache.store("hog", "k1", 123)
        hit, value = cache.lookup("hog", "k1")
        assert (hit, value) == (True, 123)

    def test_hit_miss_counters(self):
        cache = fresh_cache()
        cache.lookup("surf", "a")  # miss
        cache.store("surf", "a", "v")
        cache.lookup("surf", "a")  # hit
        cache.lookup("surf", "b")  # miss
        assert cache.telemetry.value("cache_hits") == 1
        assert cache.telemetry.value("cache_misses") == 2
        assert cache.telemetry.value("cache_hits_surf") == 1
        assert cache.telemetry.value("cache_misses_surf") == 2
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["hits"] == 1 and stats["misses"] == 2

    def test_get_or_compute_computes_once(self):
        cache = fresh_cache()
        calls = []

        def compute():
            calls.append(1)
            return 7

        assert cache.get_or_compute("ns", "k", compute) == 7
        assert cache.get_or_compute("ns", "k", compute) == 7
        assert len(calls) == 1

    def test_lru_eviction_evicts_oldest(self):
        cache = fresh_cache(max_entries=2)
        cache.store("ns", "a", 1)
        cache.store("ns", "b", 2)
        cache.store("ns", "c", 3)  # evicts "a"
        assert cache.lookup("ns", "a") == (False, None)
        assert cache.lookup("ns", "b") == (True, 2)
        assert cache.telemetry.value("cache_evictions") == 1
        assert len(cache) == 2

    def test_hit_refreshes_lru_order(self):
        cache = fresh_cache(max_entries=2)
        cache.store("ns", "a", 1)
        cache.store("ns", "b", 2)
        cache.lookup("ns", "a")  # "a" becomes most recent
        cache.store("ns", "c", 3)  # so "b" is evicted, not "a"
        assert cache.lookup("ns", "a") == (True, 1)
        assert cache.lookup("ns", "b") == (False, None)

    def test_off_mode_is_a_no_op(self):
        cache = fresh_cache(mode="off")
        cache.store("ns", "k", 1)
        assert cache.lookup("ns", "k") == (False, None)
        assert len(cache) == 0
        # Disabled lookups are not misses: nothing was attempted.
        assert cache.telemetry.value("cache_misses") == 0
        calls = []
        cache.get_or_compute("ns", "k", lambda: calls.append(1) or 9)
        cache.get_or_compute("ns", "k", lambda: calls.append(1) or 9)
        assert len(calls) == 2

    def test_invalid_construction_rejected(self):
        with pytest.raises(ValueError):
            ResultCache(mode="turbo")
        with pytest.raises(ValueError):
            ResultCache(max_entries=0)
        assert set(CACHE_MODES) == {"off", "memory", "disk"}

    def test_clear_drops_memory_entries(self):
        cache = fresh_cache()
        cache.store("ns", "k", 1)
        cache.clear()
        assert cache.lookup("ns", "k") == (False, None)


class TestContentKeys:
    def test_array_digest_tracks_content_shape_dtype(self):
        a = np.arange(12, dtype=np.float64).reshape(3, 4)
        assert array_digest(a) == array_digest(a.copy())
        # Non-contiguous views digest by content, not memory layout.
        assert array_digest(a.T) == array_digest(np.ascontiguousarray(a.T))
        assert array_digest(a) != array_digest(a.reshape(4, 3))
        assert array_digest(a) != array_digest(a.astype(np.float32))
        b = a.copy()
        b[0, 0] += 1e-12
        assert array_digest(a) != array_digest(b)

    def test_array_digest_zero_copy_paths_agree(self):
        """Every buffer layout of the same content digests identically.

        The digest feeds the content-addressed cache from both the
        serial path (plain contiguous arrays) and the shm path
        (read-only views, strided slices): a layout-dependent digest
        would silently split cache slots between transports.
        """
        base = np.random.default_rng(3).standard_normal((32, 48))
        reference = array_digest(np.ascontiguousarray(base))
        # Read-only view (how shm-backed frames arrive in workers).
        readonly = base.copy()
        readonly.setflags(write=False)
        assert array_digest(readonly) == reference
        # Fortran-order and strided layouts of the same values.
        assert array_digest(np.asfortranarray(base)) == reference
        strided = np.empty((64, 48))
        strided[::2] = base
        assert array_digest(strided[::2]) == reference

    def test_array_digest_memoized_per_object(self):
        from repro.backend.telemetry import default_registry

        arr = np.random.default_rng(5).standard_normal((16, 16))
        before = default_registry.value("digests_avoided")
        first = array_digest(arr)
        assert array_digest(arr) == first  # second call hits the memo
        assert default_registry.value("digests_avoided") == before + 1
        # A content twin is a different object: fresh hash, same digest.
        assert array_digest(arr.copy()) == first
        assert default_registry.value("digests_avoided") == before + 1

    def test_array_digest_memo_evicts_dead_arrays(self):
        import gc

        from repro.backend import cache as cache_module

        arr = np.ones((8, 8))
        array_digest(arr)
        key = id(arr)
        assert key in cache_module._digest_memo
        del arr
        gc.collect()
        # The weakref callback must drop the entry, or a recycled id
        # could serve a dead array's digest to an unrelated array.
        assert key not in cache_module._digest_memo

    def test_config_fingerprint_scoped_to_fields(self):
        base = CrowdMapConfig()
        tweaked_unrelated = CrowdMapConfig(force_iterations=base.force_iterations + 1)
        tweaked_relevant = CrowdMapConfig(hog_blur_sigma=base.hog_blur_sigma + 0.5)
        fields = ("hog_blur_sigma", "hog_cell_size")
        assert config_fingerprint(base, fields) == config_fingerprint(
            tweaked_unrelated, fields
        )
        assert config_fingerprint(base, fields) != config_fingerprint(
            tweaked_relevant, fields
        )
        # Full-config fingerprints see every field.
        assert config_fingerprint(base) != config_fingerprint(tweaked_unrelated)

    def test_frame_digest_memoizes_on_the_frame(self):
        class FakeFrame:
            def __init__(self, pixels):
                self.pixels = pixels

        frame = FakeFrame(np.zeros((4, 4, 3)))
        digest = frame_digest(frame)
        assert digest == array_digest(frame.pixels)
        assert frame._crowdmap_digest == digest
        # The memo is trusted even if pixels mutate: frames are immutable
        # in the pipeline, and that is exactly what this attribute assumes.
        assert frame_digest(frame) == digest

    def test_fingerprint_change_is_a_different_slot(self):
        cache = fresh_cache()
        frame = np.full((8, 8), 0.25)
        old = array_digest(frame) + config_fingerprint(
            CrowdMapConfig(), ("hog_blur_sigma",)
        )
        new = array_digest(frame) + config_fingerprint(
            CrowdMapConfig(hog_blur_sigma=9.9), ("hog_blur_sigma",)
        )
        cache.store("hog", old, "stale-descriptor")
        assert old != new
        assert cache.lookup("hog", new) == (False, None)


class TestDiskTier:
    def test_disk_entries_survive_a_new_process_cache(self, tmp_path):
        writer = fresh_cache(mode="disk", cache_dir=str(tmp_path))
        payload = {"descriptor": np.arange(5.0)}
        writer.store("hog", "deadbeef", payload)
        # A fresh cache (fresh memory tier) simulating a restarted worker.
        reader = fresh_cache(mode="disk", cache_dir=str(tmp_path))
        hit, value = reader.lookup("hog", "deadbeef")
        assert hit
        assert np.array_equal(value["descriptor"], payload["descriptor"])
        # The disk hit was promoted into the memory tier.
        assert len(reader) == 1

    def test_memory_mode_never_touches_disk(self, tmp_path):
        cache = fresh_cache(mode="memory", cache_dir=str(tmp_path))
        cache.store("hog", "cafe", 1)
        assert list(tmp_path.iterdir()) == []

    def test_corrupt_disk_entry_degrades_to_miss(self, tmp_path):
        cache = fresh_cache(mode="disk", cache_dir=str(tmp_path))
        cache.store("ns", "k", 42)
        cache.clear()
        path = cache._disk_path("ns", "k")
        with open(path, "wb") as fh:
            fh.write(b"not a pickle")
        assert cache.lookup("ns", "k") == (False, None)

    def test_env_configuration(self, monkeypatch, tmp_path):
        monkeypatch.setenv("CROWDMAP_CACHE", "disk")
        monkeypatch.setenv("CROWDMAP_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("CROWDMAP_CACHE_MAX", "33")
        set_cache(None)
        cache = get_cache()
        assert cache.mode == "disk"
        assert cache.cache_dir == str(tmp_path)
        assert cache.max_entries == 33

    def test_env_rejects_unknown_mode(self, monkeypatch):
        monkeypatch.setenv("CROWDMAP_CACHE", "sideways")
        set_cache(None)
        with pytest.raises(ValueError):
            get_cache()


# ----------------------------------------------------------------------
# Pipeline equivalence: caching and worker backends must be invisible
# ----------------------------------------------------------------------


def _small_dataset():
    from repro.world.buildings import build_lab1
    from repro.world.crowd import CrowdConfig, generate_crowd_dataset

    return generate_crowd_dataset(
        build_lab1(),
        CrowdConfig(n_users=2, sws_per_user=1, srs_rooms_per_user=1, seed=11),
    )


def _run(dataset, cache_mode: str, worker_backend: str = "serial"):
    from repro.core.pipeline import CrowdMapPipeline

    set_cache(ResultCache(mode=cache_mode, telemetry=TelemetryRegistry()))
    try:
        config = CrowdMapConfig(worker_backend=worker_backend)
        return CrowdMapPipeline(config).run(dataset)
    finally:
        set_cache(None)


def _assert_reconstructions_identical(a, b):
    assert np.array_equal(a.skeleton.probability, b.skeleton.probability)
    assert np.array_equal(a.skeleton.skeleton, b.skeleton.skeleton)
    assert len(a.floorplan.rooms) == len(b.floorplan.rooms)
    for ra, rb in zip(a.floorplan.rooms, b.floorplan.rooms):
        assert ra.name == rb.name
        assert (ra.center.x, ra.center.y) == (rb.center.x, rb.center.y)
    assert [p.room_hint for p in a.panoramas] == [p.room_hint for p in b.panoramas]
    for pa, pb in zip(a.panoramas, b.panoramas):
        assert np.array_equal(pa.panorama.pixels, pb.panorama.pixels)
    assert a.floorplan.render_ascii() == b.floorplan.render_ascii()


@pytest.fixture(scope="module")
def equivalence_dataset():
    return _small_dataset()


@pytest.fixture(scope="module")
def uncached_reference(equivalence_dataset):
    from repro.core.pipeline import CrowdMapPipeline

    set_cache(ResultCache(mode="off", telemetry=TelemetryRegistry()))
    try:
        return CrowdMapPipeline(CrowdMapConfig()).run(equivalence_dataset)
    finally:
        set_cache(None)


class TestPipelineEquivalence:
    def test_cached_run_matches_uncached_bit_for_bit(
        self, equivalence_dataset, uncached_reference
    ):
        """Cold cached run, then a fully warm rerun: both must match the
        cache-off reference exactly — the cache is a pure memo layer."""
        from repro.core.pipeline import CrowdMapPipeline

        cache = ResultCache(mode="memory", telemetry=TelemetryRegistry())
        set_cache(cache)
        try:
            cold = CrowdMapPipeline(CrowdMapConfig()).run(equivalence_dataset)
            warm = CrowdMapPipeline(CrowdMapConfig()).run(equivalence_dataset)
        finally:
            set_cache(None)
        _assert_reconstructions_identical(cold, uncached_reference)
        _assert_reconstructions_identical(warm, uncached_reference)
        # The warm rerun actually hit the memo layer.
        assert cache.telemetry.value("cache_hits") > 0

    def test_process_backend_matches_serial(
        self, equivalence_dataset, uncached_reference
    ):
        result = _run(equivalence_dataset, cache_mode="off", worker_backend="process")
        _assert_reconstructions_identical(result, uncached_reference)
