"""map_parallel edge cases: error modes, ordering, contention."""

import random
import time

import pytest

from repro.backend.telemetry import TelemetryRegistry
from repro.backend.workers import map_parallel, map_with_failures


def _flaky(x):
    if x % 3 == 0:
        raise ValueError(f"x={x}")
    return x * 10


class TestMapParallelModes:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            map_parallel(lambda x: x, [1], on_error="ignore")

    @pytest.mark.parametrize("on_error", ["raise", "skip"])
    def test_empty_input(self, on_error):
        assert map_parallel(lambda x: x, [], on_error=on_error) == []

    @pytest.mark.parametrize("on_error", ["raise", "skip"])
    def test_single_worker_sequential(self, on_error):
        result = map_parallel(
            lambda x: x + 1, [1, 2, 3], max_workers=1, on_error=on_error
        )
        assert result == [2, 3, 4]

    @pytest.mark.parametrize("max_workers", [1, 4])
    def test_raise_mode_propagates(self, max_workers):
        with pytest.raises(ValueError):
            map_parallel(_flaky, [1, 2, 3], max_workers=max_workers)

    @pytest.mark.parametrize("max_workers", [1, 4])
    def test_skip_mode_sheds_failures(self, max_workers):
        telemetry = TelemetryRegistry()
        result = map_parallel(
            _flaky, list(range(10)), max_workers=max_workers,
            on_error="skip", telemetry=telemetry,
        )
        expected = [x * 10 for x in range(10) if x % 3 != 0]
        assert result == expected  # survivors keep their relative order
        assert telemetry.value("map_parallel_items_skipped") == 4  # 0,3,6,9

    def test_skip_mode_all_fail(self):
        def bad(_):
            raise RuntimeError("always")

        assert map_parallel(bad, [1, 2, 3], on_error="skip") == []

    def test_order_preserved_under_contention(self):
        rng = random.Random(42)
        delays = [rng.uniform(0.0, 0.01) for _ in range(40)]

        def jittered(i):
            time.sleep(delays[i])
            return i

        result = map_parallel(jittered, list(range(40)), max_workers=8)
        assert result == list(range(40))

    def test_order_preserved_under_contention_with_skips(self):
        rng = random.Random(1)
        delays = [rng.uniform(0.0, 0.01) for _ in range(40)]

        def jittered(i):
            time.sleep(delays[i])
            if i % 5 == 0:
                raise ValueError(str(i))
            return i

        result = map_parallel(
            jittered, list(range(40)), max_workers=8, on_error="skip"
        )
        assert result == [i for i in range(40) if i % 5 != 0]

    def test_single_item_runs_inline(self):
        result = map_parallel(lambda x: x * 2, [21], max_workers=8)
        assert result == [42]


class TestMapWithFailures:
    def test_splits_successes_and_failures(self):
        successes, failures = map_with_failures(_flaky, list(range(7)),
                                                max_workers=4)
        assert successes == [(1, 10), (2, 20), (4, 40), (5, 50)]
        assert [idx for idx, _ in failures] == [0, 3, 6]
        assert all(isinstance(exc, ValueError) for _, exc in failures)

    def test_empty_input(self):
        assert map_with_failures(lambda x: x, []) == ([], [])

    def test_sequential_path_matches(self):
        par = map_with_failures(_flaky, list(range(7)), max_workers=4)
        seq = map_with_failures(_flaky, list(range(7)), max_workers=1)
        assert par[0] == seq[0]
        assert [i for i, _ in par[1]] == [i for i, _ in seq[1]]
