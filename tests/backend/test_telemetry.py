"""Tests for the backend telemetry registry."""

import threading
import time

import numpy as np
import pytest

from repro.backend.telemetry import (
    Counter,
    Gauge,
    Histogram,
    TelemetryRegistry,
)


class TestCounter:
    def test_increments(self):
        c = Counter("uploads")
        c.inc()
        c.inc(3)
        assert c.value == 4

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)

    def test_thread_safety(self):
        c = Counter("x")

        def bump():
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 4000


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("queue_depth")
        g.set(5)
        g.inc(2)
        g.dec()
        assert g.value == 6


class TestHistogram:
    def test_observe_and_stats(self):
        h = Histogram("latency", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0):
            h.observe(v)
        assert h.count == 4
        assert h.total == pytest.approx(6.05)
        assert h.mean() == pytest.approx(6.05 / 4)

    def test_quantiles(self):
        h = Histogram("latency", buckets=(1.0, 2.0, 4.0))
        for v in [0.5] * 50 + [3.0] * 50:
            h.observe(v)
        assert h.quantile(0.25) == 1.0
        assert h.quantile(0.9) == 4.0

    def test_quantile_validation(self):
        with pytest.raises(ValueError):
            Histogram("x").quantile(1.5)

    def test_empty_histogram(self):
        h = Histogram("x")
        assert h.mean() == 0.0
        assert h.quantile(0.5) == 0.0
        assert h.percentile(99.0) == 0.0
        assert h.summary() == {
            "count": 0.0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0,
        }

    def test_percentile_matches_numpy(self):
        """percentile() is exact (sample-based), unlike quantile()."""
        rng = np.random.default_rng(0)
        values = rng.lognormal(mean=-2.0, sigma=0.7, size=500)
        h = Histogram("latency")
        for v in values:
            h.observe(float(v))
        for q in (0.0, 10.0, 50.0, 90.0, 95.0, 99.0, 100.0):
            assert h.percentile(q) == pytest.approx(
                float(np.percentile(values, q)), rel=1e-12
            )

    def test_percentile_interpolates_between_ranks(self):
        h = Histogram("x")
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        # numpy-default linear interpolation: rank 1.5 -> 2.5.
        assert h.percentile(50.0) == pytest.approx(2.5)
        assert h.percentile(0.0) == 1.0
        assert h.percentile(100.0) == 4.0

    def test_percentile_validation(self):
        h = Histogram("x")
        with pytest.raises(ValueError):
            h.percentile(-1.0)
        with pytest.raises(ValueError):
            h.percentile(100.5)

    def test_summary_reports_sample_statistics(self):
        rng = np.random.default_rng(3)
        values = rng.exponential(scale=0.1, size=200)
        h = Histogram("latency")
        for v in values:
            h.observe(float(v))
        s = h.summary()
        assert s["count"] == 200.0
        assert s["mean"] == pytest.approx(float(np.mean(values)))
        assert s["p50"] == pytest.approx(float(np.percentile(values, 50)))
        assert s["p95"] == pytest.approx(float(np.percentile(values, 95)))
        assert s["p99"] == pytest.approx(float(np.percentile(values, 99)))


class TestRegistry:
    def test_get_or_create_returns_same(self):
        reg = TelemetryRegistry()
        assert reg.counter("a") is reg.counter("a")

    def test_kind_conflict_rejected(self):
        reg = TelemetryRegistry()
        reg.counter("a")
        with pytest.raises(TypeError):
            reg.gauge("a")

    def test_timer_records(self):
        reg = TelemetryRegistry()
        with reg.timer("stage"):
            time.sleep(0.01)
        h = reg.histogram("stage")
        assert h.count == 1
        assert h.total >= 0.01

    def test_timer_records_on_exception(self):
        reg = TelemetryRegistry()
        with pytest.raises(RuntimeError):
            with reg.timer("stage"):
                raise RuntimeError("boom")
        assert reg.histogram("stage").count == 1

    def test_scrape_format(self):
        reg = TelemetryRegistry()
        reg.counter("uploads").inc(2)
        reg.gauge("depth").set(7)
        reg.histogram("lat").observe(0.2)
        text = reg.scrape()
        assert "uploads 2" in text
        assert "depth 7" in text
        assert "lat_count 1" in text
