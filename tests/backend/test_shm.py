"""Shared-memory frame arena: handles, lifecycle, fallback, leak audit.

The zero-copy transport contract: any object graph the arena has walked
pickles its large arrays as tiny :class:`ShmHandle` records, receivers
rebuild them into views of the same physical pages, and closing the
arena unlinks every segment so nothing outlives the stage in
``/dev/shm`` — while degraded modes (disabled arena, small arrays,
closed segments) fall back to plain by-value pickling with identical
array contents.
"""

from __future__ import annotations

import multiprocessing
import pickle
from dataclasses import dataclass

import numpy as np
import pytest

from repro.backend.shm import (
    DEFAULT_MIN_BYTES,
    ShmArena,
    ShmArray,
    audit_dev_shm,
    shm_available,
    sweep_orphans,
)

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="platform has no POSIX shared memory"
)


@dataclass(frozen=True)
class _FrameLike:
    """Stands in for a Frame: one big pixel array plus scalar metadata."""

    index: int
    pixels: np.ndarray


def _child_probe(payload: bytes):
    """Spawn-side helper: rebuild a pickled arena view and describe it."""
    arr = pickle.loads(payload)
    return float(arr.sum()), type(arr).__name__, bool(arr.flags.writeable)


class TestShmArray:
    def test_share_array_returns_equal_view(self):
        arr = np.arange(65536, dtype=np.float64).reshape(256, 256)
        with ShmArena() as arena:
            view = arena.share_array(arr)
            assert isinstance(view, ShmArray)
            assert view.crowdmap_handle is not None
            assert np.array_equal(view, arr)
            # The arena copy is read-only: workers must not be able to
            # scribble on pages other workers are reading.
            assert not view.flags.writeable

    def test_handle_pickle_is_tiny(self):
        arr = np.random.default_rng(0).standard_normal((512, 512))
        with ShmArena() as arena:
            view = arena.share_array(arr)
            payload = pickle.dumps(view)
            # 2 MB of array bytes cross as a <1 kB handle.
            assert len(payload) < 1024
            assert np.array_equal(pickle.loads(payload), arr)

    def test_parent_rebuild_short_circuits_to_original(self):
        arr = np.ones((256, 256))
        with ShmArena() as arena:
            view = arena.share_array(arr)
            rebuilt = pickle.loads(pickle.dumps(view))
            # In the sharing process the handle resolves to the original
            # array object — not even a view copy.
            assert rebuilt is arr

    def test_derived_views_ship_by_value(self):
        arr = np.arange(65536, dtype=np.float64).reshape(256, 256)
        with ShmArena() as arena:
            view = arena.share_array(arr)
            half = view[:128]
            assert half.crowdmap_handle is None
            assert np.array_equal(pickle.loads(pickle.dumps(half)), arr[:128])

    def test_small_arrays_pass_through(self):
        small = np.ones(8)
        with ShmArena() as arena:
            assert small.nbytes < DEFAULT_MIN_BYTES
            assert arena.share_array(small) is small

    def test_spawned_child_attaches_and_reads(self):
        arr = np.arange(65536, dtype=np.float64).reshape(256, 256)
        with ShmArena() as arena:
            payload = pickle.dumps(arena.share_array(arr))
            # spawn (not fork): the child shares no state with this
            # process, so resolving the handle requires a genuine attach.
            ctx = multiprocessing.get_context("spawn")
            with ctx.Pool(1) as pool:
                total, type_name, writeable = pool.apply(
                    _child_probe, (payload,)
                )
        assert total == float(arr.sum())
        assert type_name == "ShmArray"
        assert not writeable


class TestShareWalker:
    def test_walks_dataclasses_and_preserves_metadata(self):
        frame = _FrameLike(index=7, pixels=np.ones((256, 256)))
        with ShmArena() as arena:
            shared = arena.share(frame)
            assert shared is not frame  # pixels were replaced
            assert shared.index == 7
            assert isinstance(shared.pixels, ShmArray)
            assert np.array_equal(shared.pixels, frame.pixels)

    def test_untouched_containers_are_not_rebuilt(self):
        obj = {"name": "session", "tags": ("a", "b"), "score": 1.5}
        with ShmArena() as arena:
            assert arena.share(obj) is obj

    def test_shared_subobjects_stay_shared(self):
        pixels = np.ones((256, 256))
        frames = [_FrameLike(0, pixels), _FrameLike(1, pixels)]
        with ShmArena() as arena:
            shared = arena.share(frames)
            assert shared[0].pixels is shared[1].pixels

    def test_disabled_arena_is_identity(self):
        frame = _FrameLike(index=0, pixels=np.ones((256, 256)))
        arena = ShmArena(enabled=False)
        assert arena.share(frame) is frame
        assert arena.share_array(frame.pixels) is frame.pixels


class TestArenaLifecycle:
    def test_close_unlinks_every_segment(self):
        arena = ShmArena()
        views = [
            arena.share_array(np.full((256, 256), i, dtype=np.float64))
            for i in range(3)
        ]
        assert audit_dev_shm(arena.prefix)  # segments exist while open
        del views
        arena.close()
        assert audit_dev_shm(arena.prefix) == []
        arena.close()  # idempotent

    def test_views_survive_close_and_fall_back_to_value_pickle(self):
        arena = ShmArena()
        arr = np.arange(65536, dtype=np.float64)
        view = arena.share_array(arr)
        arena.close()
        # Still readable (lease keeps the mapping) but no longer
        # attachable — pickling must carry the bytes.
        assert np.array_equal(view, arr)
        payload = pickle.dumps(view)
        assert len(payload) > arr.nbytes
        assert np.array_equal(pickle.loads(payload), arr)
        del view
        assert audit_dev_shm(arena.prefix) == []

    def test_sweep_orphans_reaps_by_prefix(self):
        from multiprocessing import shared_memory

        name = "cmshmtestorphan0"
        mem = shared_memory.SharedMemory(name=name, create=True, size=1024)
        mem.close()
        assert name in audit_dev_shm("cmshmtestorphan")
        assert sweep_orphans("cmshmtestorphan") == 1
        assert audit_dev_shm("cmshmtestorphan") == []
