"""Extended datastore tests: mixed workloads and operator composition."""

import threading

import pytest

from repro.backend.datastore import DocumentStore


class TestMixedWorkload:
    def test_interleaved_insert_update_delete(self):
        store = DocumentStore()
        for i in range(50):
            store.insert("c", {"i": i, "bucket": i % 5})
        store.update("c", {"bucket": 2}, {"flag": True})
        deleted = store.delete("c", {"bucket": {"$in": [0, 4]}})
        assert deleted == 20
        assert store.count("c") == 30
        flagged = store.find("c", {"flag": True})
        assert len(flagged) == 10
        assert all(d["bucket"] == 2 for d in flagged)

    def test_range_and_equality_combined(self):
        store = DocumentStore()
        for i in range(20):
            store.insert("c", {"i": i, "kind": "a" if i < 10 else "b"})
        docs = store.find("c", {"kind": "a", "i": {"$gte": 5, "$lt": 8}})
        assert sorted(d["i"] for d in docs) == [5, 6, 7]

    def test_update_then_query_with_index(self):
        store = DocumentStore()
        col = store.collection("c")
        col.create_index("state")
        for _ in range(5):
            store.insert("c", {"state": "new"})
        store.update("c", {"state": "new"}, {"state": "done"})
        assert store.count("c", {"state": "new"}) == 0
        assert store.count("c", {"state": "done"}) == 5

    def test_concurrent_readers_and_writers(self):
        store = DocumentStore()
        stop = threading.Event()
        errors = []

        def writer():
            for i in range(300):
                store.insert("c", {"i": i})

        def reader():
            while not stop.is_set():
                try:
                    store.find("c", {"i": {"$lt": 100}})
                except Exception as exc:  # noqa: BLE001 - test surface
                    errors.append(exc)
                    return

        readers = [threading.Thread(target=reader) for _ in range(2)]
        writers = [threading.Thread(target=writer) for _ in range(2)]
        for t in readers + writers:
            t.start()
        for t in writers:
            t.join()
        stop.set()
        for t in readers:
            t.join()
        assert not errors
        assert store.count("c") == 600

    def test_document_get_helpers(self):
        store = DocumentStore()
        doc = store.insert("c", {"a": 1})
        assert doc["a"] == 1
        assert doc.get("missing", "fallback") == "fallback"
        with pytest.raises(KeyError):
            _ = doc["missing"]
