"""Tests for the L-shaped room extension (paper Section VI future work)."""


import numpy as np
import pytest

from repro.core.config import CrowdMapConfig
from repro.core.keyframes import select_keyframes
from repro.core.panorama import PanoramaBuilder
from repro.core.room_layout import LShapedLayout, RoomLayout, RoomLayoutEstimator
from repro.geometry.primitives import BoundingBox, Point
from repro.world.floorplan_model import Door, FloorPlan, Room
from repro.world.walker import Walker, WalkerProfile


def make_rect(a, b, c, d, theta=0.0):
    return RoomLayout(
        center=Point(0, 0), width=a + b, depth=c + d, orientation=theta,
        consistency=0.0, wall_distances=(a, b, c, d),
    )


class TestLShapedGeometry:
    def test_union_area_identical_rects(self):
        rect = make_rect(2.0, 2.0, 1.5, 1.5)
        lshape = LShapedLayout(
            center=Point(0, 0), rect_a=rect, rect_b=rect,
            orientation=0.0, consistency=0.0,
        )
        assert lshape.area() == pytest.approx(rect.area())
        assert lshape.is_rectangular

    def test_union_area_true_l(self):
        # Core 4x3 plus an arm extending 3 m east over a 1 m band.
        core = make_rect(2.0, 2.0, 1.5, 1.5)
        arm = make_rect(5.0, 2.0, 0.5, 0.5)
        lshape = LShapedLayout(
            center=Point(0, 0), rect_a=core, rect_b=arm,
            orientation=0.0, consistency=0.0,
        )
        # overlap = (min(2,5)+min(2,2)) x (min(1.5,.5)+min(1.5,.5)) = 4 x 1
        expected = core.area() + arm.area() - 4.0
        assert lshape.area() == pytest.approx(expected)
        assert not lshape.is_rectangular

    def test_aspect_ratio_of_bounding_box(self):
        core = make_rect(2.0, 2.0, 1.0, 1.0)
        arm = make_rect(6.0, 2.0, 0.5, 0.5)
        lshape = LShapedLayout(
            center=Point(0, 0), rect_a=core, rect_b=arm,
            orientation=0.0, consistency=0.0,
        )
        assert lshape.aspect_ratio() == pytest.approx(8.0 / 2.0)


@pytest.fixture(scope="module")
def l_shaped_panorama():
    """An SRS spin in an L-shaped space (room + wide-open side room)."""
    hall = [BoundingBox(0, 0, 16, 2.5)]
    room_a = Room("a", Point(4.5, 6.5), 7.0, 7.0, door=Door("S", 3.5))
    room_b = Room("b", Point(10.25, 5.0), 4.0, 4.0,
                  door=Door("W", 2.0, width=3.8))
    plan = FloorPlan(
        "LWorld", hall, [room_a, room_b],
        waypoints={"w": Point(1, 1.25), "e": Point(15, 1.25)},
        waypoint_edges=[("w", "e")],
    )
    walker = Walker(plan, WalkerProfile(user_id="u"),
                    rng=np.random.default_rng(2))
    spin = Point(5.0, 5.5)
    srs = walker.perform_srs(spin, room_name="a")
    keyframes = select_keyframes(srs.frames, session_id="l")
    pano = PanoramaBuilder().build(keyframes, capture_position=spin)
    return pano, room_a.area() + room_b.area()


class TestLShapedEstimation:
    def test_lshape_fit_runs_and_is_sane(self, l_shaped_panorama):
        pano, true_union = l_shaped_panorama
        config = CrowdMapConfig().with_overrides(layout_samples=1000)
        estimator = RoomLayoutEstimator(config)
        lshape = estimator.estimate_lshape(pano)
        assert isinstance(lshape, LShapedLayout)
        assert 0.3 * true_union < lshape.area() < 3.0 * true_union
        assert np.isfinite(lshape.consistency)

    def test_auto_keeps_rectangles_rectangular(self, srs_session, lab1_plan):
        config = CrowdMapConfig().with_overrides(layout_samples=600)
        keyframes = select_keyframes(srs_session.frames, config,
                                     session_id="r")
        room = lab1_plan.room_by_name("s1")
        pano = PanoramaBuilder(config).build(
            keyframes, capture_position=room.center
        )
        estimator = RoomLayoutEstimator(config)
        chosen = estimator.estimate_auto(pano)
        assert isinstance(chosen, RoomLayout), (
            "a rectangular room must not be upgraded to an L"
        )

    def test_lshape_deterministic(self, l_shaped_panorama):
        pano, _ = l_shaped_panorama
        config = CrowdMapConfig().with_overrides(layout_samples=400)
        a = RoomLayoutEstimator(config).estimate_lshape(pano)
        b = RoomLayoutEstimator(config).estimate_lshape(pano)
        assert a.area() == pytest.approx(b.area())
