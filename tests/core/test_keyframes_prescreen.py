"""Aggressive key-frame pre-screen: oracle identity + thinning behaviour.

Two contracts. In default (bit-reproducible) mode the pre-screen must be
completely inert: every frame reaches the gray→blur→HOG chain no matter
what ``keyframe_prescreen_threshold`` says — enforced here by making the
pre-screen explode if called. Under ``CROWDMAP_PLANNER=aggressive`` it
thins near-duplicate frames before the HOG chain; its accuracy is gated
by the scorecard bands (tests/eval), so here we pin the mechanics:
endpoints always survive, duplicates are dropped, movement is kept, and
a non-positive threshold disables it.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.core.keyframes as keyframes_mod
from repro.core.config import CrowdMapConfig
from repro.core.keyframes import prescreen_survivors, select_keyframes


class TestPrescreenSurvivors:
    def test_endpoints_always_survive(self, sws_session):
        frames = sws_session.frames[:6]
        survivors = prescreen_survivors(frames, CrowdMapConfig())
        assert survivors[0] is frames[0]
        assert survivors[-1] is frames[-1]

    #: Mechanics tests pin the survival rule, not the shipped
    #: calibration: this threshold sits below the substrate's
    #: adjacent-frame energy (median ~0.075) so exact duplicates are
    #: the only frames it rejects.
    LOW = CrowdMapConfig(keyframe_prescreen_threshold=0.04)

    def test_duplicates_are_dropped(self, sws_session):
        f = sws_session.frames
        spaced = [f[0], f[0], f[10], f[10], f[20]]
        survivors = prescreen_survivors(spaced, self.LOW)
        assert survivors == [f[0], f[10], f[20]]

    def test_distinct_frames_survive(self, sws_session):
        spaced = [sws_session.frames[i] for i in (0, 10, 20, 30, 40)]
        survivors = prescreen_survivors(spaced, self.LOW)
        assert survivors == spaced

    def test_heading_sweep_survives_identical_pixels(self, sws_session):
        """The coverage guard: a frame whose heading turned past the cap
        survives even with zero pixel energy (spin sequences must keep
        their angular coverage for panorama stitching)."""
        import dataclasses

        f = sws_session.frames[0]
        config = CrowdMapConfig()
        turned = dataclasses.replace(
            f, heading=f.heading + config.keyframe_prescreen_heading + 0.01
        )
        survivors = prescreen_survivors([f, f, turned, f], config)
        assert survivors == [f, turned, f]

    def test_nonpositive_threshold_disables(self, sws_session):
        f = sws_session.frames
        spaced = [f[0], f[0], f[0], f[0]]
        config = CrowdMapConfig(keyframe_prescreen_threshold=0.0)
        assert prescreen_survivors(spaced, config) == spaced

    def test_short_sequences_untouched(self, sws_session):
        f = sws_session.frames
        assert prescreen_survivors([f[0], f[0]], CrowdMapConfig()) == [
            f[0], f[0]
        ]

    def test_shape_change_always_survives(self, sws_session):
        """A resolution switch resets the comparison instead of diffing
        mismatched planes (crowdsourced sessions mix devices)."""
        import dataclasses

        f = sws_session.frames
        small = dataclasses.replace(f[0], pixels=f[0].pixels[:32, :32])
        survivors = prescreen_survivors(
            [f[0], small, f[0]], CrowdMapConfig()
        )
        assert survivors == [f[0], small, f[0]]


class TestDefaultModeIdentity:
    def test_default_mode_never_prescreens(
        self, sws_session, monkeypatch
    ):
        """The oracle: in default mode the pre-screen must not run at
        all — selection output cannot depend on its threshold."""
        monkeypatch.delenv("CROWDMAP_PLANNER", raising=False)

        def explode(frames, config):
            raise AssertionError("pre-screen ran in default mode")

        monkeypatch.setattr(
            keyframes_mod, "prescreen_survivors", explode
        )
        selected = select_keyframes(
            sws_session.frames, CrowdMapConfig(), session_id="oracle"
        )
        assert selected

    def test_threshold_is_inert_in_default_mode(self, sws_session):
        """Same key-frames whether the knob is live or disabled."""
        on = select_keyframes(
            sws_session.frames, CrowdMapConfig(), session_id="s"
        )
        off = select_keyframes(
            sws_session.frames,
            CrowdMapConfig(keyframe_prescreen_threshold=0.0),
            session_id="s",
        )
        assert [kf.keyframe_id for kf in on] == [
            kf.keyframe_id for kf in off
        ]
        for a, b in zip(on, off):
            assert np.array_equal(a.frame.pixels, b.frame.pixels)


class TestAggressiveThinning:
    def test_duplicate_frames_skip_the_hog_chain(
        self, sws_session, monkeypatch
    ):
        """Under the aggressive profile a duplicate-heavy sequence is
        thinned before HOG: selection still returns key-frames, and
        every selected frame is a pre-screen survivor."""
        monkeypatch.setenv("CROWDMAP_PLANNER", "aggressive")
        f = sws_session.frames
        padded = []
        for frame in f[:20]:
            padded.extend([frame, frame, frame])
        config = CrowdMapConfig()
        survivor_ids = {
            id(frame) for frame in prescreen_survivors(padded, config)
        }
        selected = select_keyframes(padded, config, session_id="agg")
        assert selected
        assert all(id(kf.frame) in survivor_ids for kf in selected)
