"""Tests for navigation on the reconstructed map and energy accounting."""

import numpy as np
import pytest

from repro.core.config import CrowdMapConfig
from repro.core.navigation import SkeletonNavigator, route_to_room
from repro.core.skeleton import reconstruct_skeleton
from repro.geometry.primitives import BoundingBox, Point
from repro.sensors.energy import (
    BATTERY_WH,
    campaign_energy,
    per_user_battery_cost,
    session_energy,
)
from repro.sensors.trajectory import Trajectory


@pytest.fixture(scope="module")
def l_skeleton():
    """An L-shaped corridor skeleton from clean synthetic trajectories."""
    config = CrowdMapConfig()
    legs = [
        [[x, 2.0] for x in np.linspace(1, 18, 18)],
        [[18.0, y] for y in np.linspace(2, 12, 11)],
    ]
    trajectories = [
        Trajectory.from_arrays(np.array(leg)) for leg in legs
    ] * 3
    return reconstruct_skeleton(
        trajectories, BoundingBox(0, 0, 22, 15), config
    )


class TestNavigator:
    def test_straight_route(self, l_skeleton):
        nav = SkeletonNavigator(l_skeleton)
        path = nav.plan(Point(2, 2), Point(15, 2))
        assert path.found
        assert path.length == pytest.approx(13.0, abs=3.0)

    def test_route_around_corner(self, l_skeleton):
        nav = SkeletonNavigator(l_skeleton)
        path = nav.plan(Point(2, 2), Point(18, 11))
        assert path.found
        # Must follow the L, not cut the diagonal through un-walked space.
        assert path.length >= 23.0
        for p in path.waypoints:
            row, col = nav._cell_of(p)
            assert l_skeleton.skeleton[row, col]

    def test_unreachable_goal(self, l_skeleton):
        nav = SkeletonNavigator(l_skeleton)
        path = nav.plan(Point(2, 2), Point(2, 14))  # far off the skeleton
        assert not path.found

    def test_start_snaps_to_skeleton(self, l_skeleton):
        nav = SkeletonNavigator(l_skeleton)
        path = nav.plan(Point(2, 3.5), Point(10, 2))  # start slightly off
        assert path.found

    def test_same_cell_trivial_path(self, l_skeleton):
        nav = SkeletonNavigator(l_skeleton)
        path = nav.plan(Point(5, 2), Point(5.2, 2.1))
        assert path.found
        assert path.length < 1.5

    def test_route_to_room(self, l_skeleton):
        from repro.core.floorplan import FloorPlanAssembler
        from repro.core.room_layout import RoomLayout

        layout = RoomLayout(center=Point(10.0, 6.0), width=4.0, depth=3.0,
                            orientation=0.0, consistency=0.0)
        floorplan = FloorPlanAssembler().arrange(
            l_skeleton, [layout], names=["target"]
        )
        path = route_to_room(floorplan, Point(2, 2), "target")
        assert path.found

    def test_empty_skeleton(self):
        config = CrowdMapConfig()
        empty = reconstruct_skeleton([], BoundingBox(0, 0, 5, 5), config)
        nav = SkeletonNavigator(empty)
        assert not nav.plan(Point(1, 1), Point(4, 4)).found


class TestEnergy:
    def test_sws_session_energy(self, sws_session):
        report = session_energy(sws_session)
        duration = sws_session.duration()
        assert report.imu_joules == pytest.approx(0.030 * duration)
        assert report.video_joules == pytest.approx(0.350 * duration)
        assert report.total_joules == pytest.approx(0.380 * duration)

    def test_imu_only_session(self, lab1_plan):
        from repro.world.walker import Walker, WalkerProfile

        walker = Walker(lab1_plan, WalkerProfile(user_id="s"),
                        rng=np.random.default_rng(0))
        stairs = walker.perform_stairs(lab1_plan.waypoints["sw"], 1)
        report = session_energy(stairs)
        assert report.video_joules == 0.0
        assert report.imu_joules > 0.0

    def test_campaign_sums(self, small_dataset):
        total = campaign_energy(small_dataset.sessions)
        parts = [session_energy(s) for s in small_dataset.sessions]
        assert total.total_joules == pytest.approx(
            sum(p.total_joules for p in parts)
        )

    def test_paper_claim_insignificant_cost(self, small_dataset):
        """Several capture rounds stay well under 1% of a battery."""
        costs = per_user_battery_cost(small_dataset.sessions)
        assert costs
        for user, fraction in costs.items():
            assert fraction < 0.01, f"{user} spent {fraction:.2%} of battery"

    def test_one_minute_video_figure(self):
        # Sanity-check the paper's own figure: one minute of video+IMU
        # costs (0.35 + 0.03) W * 60 s = 22.8 J ~ 0.06% of a battery.
        joules = (0.35 + 0.03) * 60.0
        assert joules / 3600.0 / BATTERY_WH < 0.001
