"""Extended skeleton tests: property-based LCSS checks and failure injection."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregation import lcss_similarity
from repro.core.config import CrowdMapConfig
from repro.core.skeleton import reconstruct_skeleton
from repro.geometry.primitives import BoundingBox
from repro.sensors.trajectory import Trajectory


def brute_force_lcss(a, b, epsilon):
    """Reference unbanded LCSS for cross-checking the banded DP."""
    n, m = len(a), len(b)
    dp = np.zeros((n + 1, m + 1), dtype=int)
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            dx = a[i - 1][0] - b[j - 1][0]
            dy = a[i - 1][1] - b[j - 1][1]
            if dx * dx + dy * dy <= epsilon * epsilon:
                dp[i][j] = 1 + dp[i - 1][j - 1]
            else:
                dp[i][j] = max(dp[i - 1][j], dp[i][j - 1])
    return int(dp[n][m])


class TestLcssProperties:
    @given(
        st.lists(st.tuples(st.floats(-5, 5), st.floats(-5, 5)),
                 min_size=1, max_size=12),
        st.lists(st.tuples(st.floats(-5, 5), st.floats(-5, 5)),
                 min_size=1, max_size=12),
        st.floats(0.1, 3.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_unbanded_matches_brute_force(self, a, b, epsilon):
        """With delta wide open, the banded DP equals the textbook LCSS."""
        arr_a = np.array(a)
        arr_b = np.array(b)
        length, _ = lcss_similarity(arr_a, arr_b, epsilon, delta=100)
        assert length == brute_force_lcss(arr_a, arr_b, epsilon)

    @given(
        st.lists(st.tuples(st.floats(-5, 5), st.floats(-5, 5)),
                 min_size=2, max_size=15),
    )
    @settings(max_examples=30, deadline=None)
    def test_symmetry(self, a):
        arr = np.array(a)
        rng = np.random.default_rng(0)
        other = arr + rng.normal(0, 0.5, arr.shape)
        l_ab, _ = lcss_similarity(arr, other, 1.0, delta=100)
        l_ba, _ = lcss_similarity(other, arr, 1.0, delta=100)
        assert l_ab == l_ba

    @given(st.integers(1, 20))
    @settings(max_examples=20)
    def test_self_similarity_is_one(self, n):
        pts = np.array([[i * 0.9, (i % 3) * 0.4] for i in range(n)])
        length, s3 = lcss_similarity(pts, pts, 0.1, delta=5)
        assert length == n and s3 == 1.0


BOUNDS = BoundingBox(0, 0, 24, 12)


def corridor_walks(n, noise, rng):
    walks = []
    for _ in range(n):
        jitter = rng.normal(0, noise, 20)
        pts = np.stack([np.linspace(1, 22, 20), 3.0 + jitter], axis=1)
        walks.append(Trajectory.from_arrays(pts))
    return walks


class TestSkeletonFailureInjection:
    def test_survives_heavy_outlier_contamination(self):
        """A quarter of garbage trajectories must not derail the corridor."""
        rng = np.random.default_rng(0)
        good = corridor_walks(9, 0.15, rng)
        garbage = [
            Trajectory.from_arrays(rng.uniform(0, 24, (6, 2)))
            for _ in range(3)
        ]
        result = reconstruct_skeleton(good + garbage, BOUNDS, CrowdMapConfig())
        grid = result.grid
        row, col = grid.cell_of(12.0, 3.0)
        assert result.skeleton[row, col], "corridor core lost to outliers"

    def test_duplicate_trajectories_idempotent_shape(self):
        rng = np.random.default_rng(1)
        walks = corridor_walks(4, 0.1, rng)
        once = reconstruct_skeleton(walks, BOUNDS, CrowdMapConfig())
        tripled = reconstruct_skeleton(walks * 3, BOUNDS, CrowdMapConfig())
        # More copies of identical data must not change the shape much.
        overlap = np.count_nonzero(once.skeleton & tripled.skeleton)
        union = np.count_nonzero(once.skeleton | tripled.skeleton)
        assert union > 0 and overlap / union > 0.8

    def test_zero_length_trajectories_ignored(self):
        rng = np.random.default_rng(2)
        walks = corridor_walks(4, 0.1, rng)
        stubs = [Trajectory(points=[]) for _ in range(3)]
        result = reconstruct_skeleton(walks + stubs, BOUNDS, CrowdMapConfig())
        assert result.skeleton.any()

    def test_nonfinite_free_output(self):
        rng = np.random.default_rng(3)
        result = reconstruct_skeleton(
            corridor_walks(3, 0.2, rng), BOUNDS, CrowdMapConfig()
        )
        assert np.isfinite(result.probability).all()
