"""Aggregation robustness to mid-walk pauses (the LCSS delta assumption).

Paper: "Our aggregation algorithm is based on the assumption that the user
does not abruptly increase her walking speed above a certain limit" — and
the |i - j| < delta band absorbs moderate timing differences. These tests
verify that a contributor who pauses mid-walk still merges with a
non-pausing contributor on the same route, and that the band genuinely
bounds how much desynchronization is tolerated.
"""

import numpy as np
import pytest

from repro.core.aggregation import SequenceAggregator
from repro.core.config import CrowdMapConfig
from repro.core.pipeline import CrowdMapPipeline
from repro.world.walker import Walker, WalkerProfile


@pytest.fixture(scope="module")
def paused_pair(lab1_plan, lab1_renderer):
    route = lab1_plan.route_between("sw", "se")
    steady_walker = Walker(
        lab1_plan, WalkerProfile(user_id="steady"),
        rng=np.random.default_rng(0), renderer=lab1_renderer,
    )
    pausing_walker = Walker(
        lab1_plan, WalkerProfile(user_id="pausing"),
        rng=np.random.default_rng(1), renderer=lab1_renderer,
    )
    steady = steady_walker.perform_sws(route)
    paused = pausing_walker.perform_sws(route, pause_at=0.5, pause_s=6.0)
    pipe = CrowdMapPipeline(CrowdMapConfig())
    return pipe.anchor_session(steady), pipe.anchor_session(paused)


class TestPauseRobustness:
    def test_paused_walk_still_merges(self, paused_pair, config):
        steady, paused = paused_pair
        aggregator = SequenceAggregator(config)
        candidate = aggregator.score_pair(steady, paused)
        assert candidate.mergeable, (
            f"a 6 s pause broke the merge (S3={candidate.s3:.2f}, "
            f"anchors={candidate.n_anchor_matches})"
        )

    def test_tiny_delta_band_breaks_the_merge(self, paused_pair):
        """With delta ~ 1 the pause's index offset exceeds the band."""
        steady, paused = paused_pair
        config = CrowdMapConfig().with_overrides(lcss_delta=2)
        candidate = SequenceAggregator(config).score_pair(steady, paused)
        loose = CrowdMapConfig().with_overrides(lcss_delta=20)
        loose_candidate = SequenceAggregator(loose).score_pair(steady, paused)
        assert loose_candidate.s3 >= candidate.s3

    def test_pause_preserves_route_shape(self, paused_pair):
        steady, paused = paused_pair
        # Both device trajectories should span a similar distance.
        assert paused.trajectory.length() == pytest.approx(
            steady.trajectory.length(), rel=0.25
        )
