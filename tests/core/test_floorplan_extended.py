"""Extended floor-plan assembly tests: convergence and crowded layouts."""

import math

import numpy as np
import pytest

from repro.core.config import CrowdMapConfig
from repro.core.floorplan import FloorPlanAssembler
from repro.core.room_layout import RoomLayout
from repro.core.skeleton import reconstruct_skeleton
from repro.geometry.primitives import BoundingBox, Point
from repro.sensors.trajectory import Trajectory


@pytest.fixture(scope="module")
def corridor_skeleton():
    trajectories = [
        Trajectory.from_arrays(
            np.array([[x, 2.0] for x in np.linspace(1, 29, 29)])
        )
        for _ in range(4)
    ]
    return reconstruct_skeleton(
        trajectories, BoundingBox(0, 0, 30, 14), CrowdMapConfig()
    )


def room_at(x, y, w=4.0, d=4.0):
    return RoomLayout(center=Point(x, y), width=w, depth=d,
                      orientation=0.0, consistency=0.0)


class TestForceDirectedConvergence:
    def test_row_of_rooms_settles_without_overlap(self, corridor_skeleton):
        assembler = FloorPlanAssembler()
        # Five rooms anchored with heavy pairwise overlap along one row.
        layouts = [room_at(6 + 2.5 * i, 6.5) for i in range(5)]
        result = assembler.arrange(corridor_skeleton, layouts)
        rooms = result.rooms
        overlaps = 0
        for i, a in enumerate(rooms):
            for b in rooms[i + 1:]:
                bb_a, bb_b = a.bounding_box(), b.bounding_box()
                dx = min(bb_a.max_x, bb_b.max_x) - max(bb_a.min_x, bb_b.min_x)
                dy = min(bb_a.max_y, bb_b.max_y) - max(bb_a.min_y, bb_b.min_y)
                if dx > 1.0 and dy > 1.0:
                    overlaps += 1
        # The spring equilibrium trades a little residual overlap against
        # anchor fidelity; what must not survive is *heavy* interpenetration.
        assert overlaps == 0, f"{overlaps} room pairs still overlap heavily"

    def test_anchors_not_abandoned(self, corridor_skeleton):
        assembler = FloorPlanAssembler()
        layouts = [room_at(6 + 2.5 * i, 6.5) for i in range(5)]
        result = assembler.arrange(corridor_skeleton, layouts)
        for placed, layout in zip(result.rooms, layouts):
            drift = math.hypot(
                placed.center.x - layout.center.x,
                placed.center.y - layout.center.y,
            )
            assert drift < 8.0

    def test_iteration_budget_respected(self, corridor_skeleton):
        config = CrowdMapConfig().with_overrides(force_iterations=1)
        assembler = FloorPlanAssembler(config)
        layouts = [room_at(6.0, 6.5), room_at(6.5, 6.5)]
        result = assembler.arrange(corridor_skeleton, layouts)
        assert len(result.rooms) == 2  # terminates immediately, still valid

    def test_empty_layout_list(self, corridor_skeleton):
        result = FloorPlanAssembler().arrange(corridor_skeleton, [])
        assert result.rooms == []
        assert "#" in result.render_ascii()

    def test_names_preserved_in_order(self, corridor_skeleton):
        assembler = FloorPlanAssembler()
        layouts = [room_at(5, 6.5), room_at(12, 6.5)]
        result = assembler.arrange(
            corridor_skeleton, layouts, names=["alpha", "beta"]
        )
        assert [r.name for r in result.rooms] == ["alpha", "beta"]

    def test_rotated_room_bounding_box_used(self, corridor_skeleton):
        assembler = FloorPlanAssembler()
        tilted = RoomLayout(center=Point(10, 6.5), width=6.0, depth=2.0,
                            orientation=math.pi / 4.0, consistency=0.0)
        other = room_at(12.5, 6.5)
        result = assembler.arrange(corridor_skeleton, [tilted, other])
        assert len(result.rooms) == 2
