"""Extended room-layout tests: profile prediction math and junction pairing."""

import math

import numpy as np
import pytest

from repro.core.config import CrowdMapConfig
from repro.core.room_layout import RoomLayoutEstimator

TWO_PI = 2.0 * math.pi


class TestPredictProfile:
    def azimuths(self, n=360):
        return np.arange(n) / n * TWO_PI

    def test_square_room_centered(self):
        """Camera centred in a square room: profile between a and a*sqrt(2)."""
        az = self.azimuths()
        thetas = np.array([0.0])
        dists = np.array([[2.0, 2.0, 2.0, 2.0]])
        profile = RoomLayoutEstimator._predict_profile(az, thetas, dists)[0]
        assert profile.min() == pytest.approx(2.0, abs=1e-6)
        assert profile.max() == pytest.approx(2.0 * math.sqrt(2.0), rel=1e-3)

    def test_cardinal_directions_hit_named_walls(self):
        az = np.array([0.0, math.pi / 2.0, math.pi, 3 * math.pi / 2.0])
        thetas = np.array([0.0])
        dists = np.array([[1.0, 2.0, 3.0, 4.0]])  # +x, -x, +y, -y walls
        profile = RoomLayoutEstimator._predict_profile(az, thetas, dists)[0]
        assert profile[0] == pytest.approx(1.0)   # toward theta (+x)
        assert profile[1] == pytest.approx(3.0)   # toward theta+90 (+y)
        assert profile[2] == pytest.approx(2.0)   # toward theta+180 (-x)
        assert profile[3] == pytest.approx(4.0)   # toward theta-90 (-y)

    def test_rotation_shifts_profile(self):
        az = self.azimuths()
        dists = np.array([[1.0, 1.0, 3.0, 3.0]])
        p0 = RoomLayoutEstimator._predict_profile(az, np.array([0.0]), dists)[0]
        p45 = RoomLayoutEstimator._predict_profile(
            az, np.array([math.pi / 4.0]), dists
        )[0]
        shift = int(round(math.pi / 4.0 / TWO_PI * len(az)))
        assert np.allclose(np.roll(p0, shift), p45, rtol=1e-6)

    def test_profile_positive_everywhere(self):
        rng = np.random.default_rng(0)
        az = self.azimuths(180)
        thetas = rng.uniform(0, math.pi / 2, 32)
        dists = rng.uniform(0.5, 10.0, (32, 4))
        profiles = RoomLayoutEstimator._predict_profile(az, thetas, dists)
        assert (profiles > 0).all()
        assert np.isfinite(profiles).all()


class TestEstimateFromSyntheticProfile:
    """Drive the sampler with a hand-built panorama-free profile."""

    def make_estimator(self, profile, monkeypatch):
        config = CrowdMapConfig().with_overrides(layout_samples=1500)
        estimator = RoomLayoutEstimator(config)
        monkeypatch.setattr(
            estimator, "boundary_profile", lambda pano: profile
        )
        monkeypatch.setattr(estimator, "detect_corners", lambda pano: [])
        return estimator

    def test_recovers_rectangle_dimensions(self, monkeypatch):
        az = np.arange(720) / 720 * TWO_PI
        true = RoomLayoutEstimator._predict_profile(
            az, np.array([0.3]), np.array([[2.0, 3.0, 1.5, 2.5]])
        )[0]
        estimator = self.make_estimator(true, monkeypatch)

        class FakePano:
            capture_position = type("P", (), {"x": 0.0, "y": 0.0})()

        layout = estimator.estimate(FakePano())
        assert layout.width == pytest.approx(5.0, abs=0.4)
        assert layout.depth == pytest.approx(4.0, abs=0.4)

    def test_noisy_profile_still_recovers(self, monkeypatch):
        rng = np.random.default_rng(1)
        az = np.arange(720) / 720 * TWO_PI
        true = RoomLayoutEstimator._predict_profile(
            az, np.array([0.0]), np.array([[2.5, 2.5, 3.0, 3.0]])
        )[0]
        noisy = true * rng.lognormal(0.0, 0.05, len(true))
        estimator = self.make_estimator(noisy, monkeypatch)

        class FakePano:
            capture_position = type("P", (), {"x": 0.0, "y": 0.0})()

        layout = estimator.estimate(FakePano())
        area_err = abs(layout.area() - 30.0) / 30.0
        assert area_err < 0.2
