"""Tests for panorama building, room layout estimation and assembly."""

import math

import numpy as np
import pytest

from repro.core.config import CrowdMapConfig
from repro.core.floorplan import FloorPlanAssembler, PlacedRoom, _overlap_vector
from repro.core.keyframes import select_keyframes
from repro.core.panorama import PanoramaBuilder, PanoramaCoverageError
from repro.core.room_layout import RoomLayout, RoomLayoutEstimator, _interpolate_circular
from repro.core.skeleton import reconstruct_skeleton
from repro.geometry.primitives import BoundingBox, Point
from repro.sensors.trajectory import Trajectory


@pytest.fixture(scope="module")
def srs_keyframes(srs_session):
    return select_keyframes(srs_session.frames, session_id="srs")


@pytest.fixture(scope="module")
def room_panorama(srs_keyframes, lab1_plan):
    room = lab1_plan.room_by_name("s1")
    builder = PanoramaBuilder()
    return builder.build(srs_keyframes, capture_position=room.center,
                         room_hint="s1")


class TestPanoramaBuilder:
    def test_full_spin_builds(self, room_panorama):
        assert room_panorama.panorama.gap_fraction() <= 0.08
        assert room_panorama.room_hint == "s1"

    def test_partial_spin_rejected(self, srs_keyframes, lab1_plan):
        builder = PanoramaBuilder()
        # A quarter of the spin cannot cover 360 degrees.
        partial = srs_keyframes[: max(2, len(srs_keyframes) // 4)]
        with pytest.raises(PanoramaCoverageError):
            builder.build(partial, capture_position=Point(0, 0))

    def test_empty_keyframes_rejected(self):
        with pytest.raises(PanoramaCoverageError):
            PanoramaBuilder().build([], capture_position=Point(0, 0))

    def test_coverage_check(self, srs_keyframes):
        builder = PanoramaBuilder()
        assert builder.check_coverage(srs_keyframes)
        assert not builder.check_coverage(srs_keyframes[:3])


class TestInterpolateCircular:
    def test_no_nans_passthrough(self):
        v = np.array([1.0, 2.0, 3.0])
        assert np.array_equal(_interpolate_circular(v), v)

    def test_fills_gap(self):
        v = np.array([1.0, np.nan, 3.0, 4.0])
        filled = _interpolate_circular(v)
        assert np.isfinite(filled).all()
        assert filled[1] == pytest.approx(2.0)

    def test_wraps_around(self):
        v = np.array([np.nan, 2.0, 2.0, np.nan])
        filled = _interpolate_circular(v)
        assert np.isfinite(filled).all()

    def test_all_nan_fallback(self):
        filled = _interpolate_circular(np.full(5, np.nan))
        assert np.isfinite(filled).all()


class TestRoomLayout:
    def test_profile_matches_geometry(self, room_panorama, lab1_plan):
        estimator = RoomLayoutEstimator()
        profile = estimator.boundary_profile(room_panorama)
        room = lab1_plan.room_by_name("s1")
        # Median distance should sit between the room's inradius-ish and
        # circumradius-ish extents.
        half_min = min(room.width, room.depth) / 2.0
        assert half_min * 0.6 < np.median(profile) < half_min * 3.0

    def test_estimate_dimensions(self, room_panorama, lab1_plan):
        estimator = RoomLayoutEstimator()
        layout = estimator.estimate(room_panorama)
        room = lab1_plan.room_by_name("s1")
        area_err = abs(layout.area() - room.area()) / room.area()
        assert area_err < 0.35
        ar_err = abs(layout.aspect_ratio() - room.aspect_ratio()) / room.aspect_ratio()
        assert ar_err < 0.3

    def test_estimate_deterministic(self, room_panorama):
        config = CrowdMapConfig().with_overrides(layout_samples=500)
        a = RoomLayoutEstimator(config).estimate(room_panorama)
        b = RoomLayoutEstimator(config).estimate(room_panorama)
        assert a.width == b.width and a.depth == b.depth

    def test_detect_corners_returns_azimuths(self, room_panorama):
        estimator = RoomLayoutEstimator()
        corners = estimator.detect_corners(room_panorama)
        for az in corners:
            assert 0.0 <= az < 2 * math.pi + 1e-9

    def test_layout_properties(self):
        layout = RoomLayout(
            center=Point(0, 0), width=6.0, depth=4.0, orientation=0.1,
            consistency=0.0,
        )
        assert layout.area() == 24.0
        assert layout.aspect_ratio() == 1.5


class TestFloorPlanAssembly:
    @pytest.fixture()
    def skeleton(self):
        trajectories = [
            Trajectory.from_arrays(
                np.array([[x, 2.0] for x in np.linspace(1, 19, 19)])
            )
            for _ in range(4)
        ]
        return reconstruct_skeleton(
            trajectories, BoundingBox(0, 0, 20, 12), CrowdMapConfig()
        )

    def layout_at(self, x, y, w=4.0, d=4.0):
        return RoomLayout(center=Point(x, y), width=w, depth=d,
                          orientation=0.0, consistency=0.0)

    def test_overlap_vector(self):
        a = BoundingBox(0, 0, 4, 4)
        b = BoundingBox(3, 0, 7, 4)
        mtv = _overlap_vector(a, b)
        assert mtv == (-1.0, 0.0)
        assert _overlap_vector(a, BoundingBox(10, 10, 12, 12)) is None

    def test_separates_overlapping_rooms(self, skeleton):
        assembler = FloorPlanAssembler()
        layouts = [self.layout_at(8.0, 7.0), self.layout_at(9.0, 7.0)]
        result = assembler.arrange(skeleton, layouts, names=["a", "b"])
        a, b = result.rooms
        gap_x = abs(a.center.x - b.center.x)
        gap_y = abs(a.center.y - b.center.y)
        assert gap_x >= 3.5 or gap_y >= 3.5

    def test_isolated_room_stays_anchored(self, skeleton):
        assembler = FloorPlanAssembler()
        layouts = [self.layout_at(5.0, 8.0)]
        result = assembler.arrange(skeleton, layouts)
        room = result.rooms[0]
        assert math.hypot(room.center.x - 5.0, room.center.y - 8.0) < 0.5

    def test_room_pushed_off_skeleton(self, skeleton):
        assembler = FloorPlanAssembler()
        # Anchored right on the corridor: must be nudged away.
        layouts = [self.layout_at(10.0, 2.0)]
        result = assembler.arrange(skeleton, layouts)
        assert result.rooms[0].center.y != pytest.approx(2.0, abs=0.05)

    def test_room_by_name(self, skeleton):
        assembler = FloorPlanAssembler()
        result = assembler.arrange(skeleton, [self.layout_at(5, 8)], names=["r"])
        assert result.room_by_name("r").name == "r"
        with pytest.raises(KeyError):
            result.room_by_name("nope")

    def test_render_ascii(self, skeleton):
        assembler = FloorPlanAssembler()
        result = assembler.arrange(skeleton, [self.layout_at(5, 8)], names=["r"])
        art = result.render_ascii()
        assert "#" in art  # hallway cells
        assert "A" in art  # first room outline

    def test_placed_room_bbox_orientation_aware(self):
        layout = RoomLayout(center=Point(0, 0), width=4.0, depth=2.0,
                            orientation=math.pi / 2.0, consistency=0.0)
        room = PlacedRoom(layout=layout, center=Point(0, 0))
        bb = room.bounding_box()
        # Rotated 90 degrees: the bound swaps extents.
        assert bb.width == pytest.approx(2.0, abs=0.01)
        assert bb.height == pytest.approx(4.0, abs=0.01)
