"""Tests for LCSS similarity, rigid fitting and sequence aggregation."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregation import (
    SequenceAggregator,
    _longest_increasing_pairs,
    fit_rigid_transform,
    lcss_similarity,
)
from repro.core.config import CrowdMapConfig
from repro.core.pipeline import CrowdMapPipeline


def line(n, dx=1.0, start=(0.0, 0.0)):
    return np.array([[start[0] + i * dx, start[1]] for i in range(n)])


class TestLcss:
    def test_identical_sequences(self):
        pts = line(10)
        length, s3 = lcss_similarity(pts, pts, epsilon=0.5, delta=3)
        assert length == 10
        assert s3 == 1.0

    def test_disjoint_sequences(self):
        a = line(10)
        b = line(10, start=(100.0, 100.0))
        length, s3 = lcss_similarity(a, b, epsilon=1.0, delta=5)
        assert length == 0
        assert s3 == 0.0

    def test_partial_overlap(self):
        a = line(10)
        b = line(10, start=(5.0, 0.0))  # shares points 5..9 with a
        _, s3 = lcss_similarity(a, b, epsilon=0.5, delta=20)
        assert 0.3 <= s3 <= 0.7

    def test_delta_band_limits_matches(self):
        a = line(20)
        b = line(20, start=(10.0, 0.0))
        # The true alignment offset (10) exceeds delta=3: few matches.
        _, s3_narrow = lcss_similarity(a, b, epsilon=0.5, delta=3)
        _, s3_wide = lcss_similarity(a, b, epsilon=0.5, delta=15)
        assert s3_wide > s3_narrow

    def test_empty_sequences(self):
        assert lcss_similarity(np.zeros((0, 2)), line(5), 1.0, 3) == (0, 0.0)

    def test_epsilon_zero_tolerance(self):
        a = line(5)
        b = line(5) + np.array([0.0, 0.3])
        length, _ = lcss_similarity(a, b, epsilon=0.2, delta=3)
        assert length == 0
        length2, _ = lcss_similarity(a, b, epsilon=0.4, delta=3)
        assert length2 == 5

    @given(st.integers(2, 30))
    @settings(max_examples=20)
    def test_s3_bounded(self, n):
        rng = np.random.default_rng(n)
        a = rng.uniform(0, 10, (n, 2))
        b = rng.uniform(0, 10, (n + 3, 2))
        length, s3 = lcss_similarity(a, b, epsilon=2.0, delta=5)
        assert 0 <= length <= n
        assert 0.0 <= s3 <= 1.0


class TestRigidFit:
    def test_exact_recovery(self):
        rng = np.random.default_rng(0)
        src = rng.uniform(-5, 5, (12, 2))
        theta, tx, ty = 0.7, 3.0, -2.0
        c, s = math.cos(theta), math.sin(theta)
        dst = src @ np.array([[c, s], [-s, c]]) + np.array([tx, ty])
        t = fit_rigid_transform(src, dst)
        assert t.theta == pytest.approx(theta, abs=1e-9)
        assert t.tx == pytest.approx(tx, abs=1e-9)
        assert t.ty == pytest.approx(ty, abs=1e-9)

    def test_noisy_recovery(self):
        rng = np.random.default_rng(1)
        src = rng.uniform(-5, 5, (30, 2))
        theta = -0.4
        c, s = math.cos(theta), math.sin(theta)
        dst = src @ np.array([[c, s], [-s, c]]) + rng.normal(0, 0.05, (30, 2))
        t = fit_rigid_transform(src, dst)
        assert t.theta == pytest.approx(theta, abs=0.02)

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_rigid_transform(np.zeros((2, 2)), np.zeros((3, 2)))
        with pytest.raises(ValueError):
            fit_rigid_transform(np.zeros((0, 2)), np.zeros((0, 2)))


class TestLongestIncreasingPairs:
    def test_monotone_chain_kept(self):
        pairs = [(0, 0, 1.0), (1, 1, 1.0), (2, 2, 1.0)]
        assert _longest_increasing_pairs(pairs) == pairs

    def test_inconsistent_pair_dropped(self):
        pairs = [(0, 5, 1.0), (1, 1, 1.0), (2, 2, 1.0), (3, 3, 1.0)]
        chain = _longest_increasing_pairs(pairs)
        assert (0, 5, 1.0) not in chain
        assert len(chain) == 3

    def test_empty(self):
        assert _longest_increasing_pairs([]) == []

    def test_strictly_increasing_required(self):
        pairs = [(0, 0, 1.0), (0, 1, 1.0), (1, 1, 1.0)]
        chain = _longest_increasing_pairs(pairs)
        assert len(chain) == 2


@pytest.fixture(scope="module")
def anchored_sessions(small_dataset, lab1_plan):
    pipe = CrowdMapPipeline(CrowdMapConfig())
    return [pipe.anchor_session(s) for s in small_dataset.sws_sessions()]


class TestSequenceAggregator:
    def test_self_pair_merges(self, anchored_sessions, config):
        aggregator = SequenceAggregator(config)
        cand = aggregator.score_pair(anchored_sessions[0], anchored_sessions[0])
        assert cand.mergeable
        assert cand.s3 > 0.9

    def test_aggregate_produces_common_frame(self, anchored_sessions, config):
        aggregator = SequenceAggregator(config)
        result = aggregator.aggregate(anchored_sessions)
        assert len(result.trajectories) == len(anchored_sessions)
        assert len(result.transforms) == len(anchored_sessions)
        # Components partition the index set.
        flat = sorted(i for comp in result.components for i in comp)
        assert flat == list(range(len(anchored_sessions)))

    def test_candidates_cover_all_pairs(self, anchored_sessions, config):
        aggregator = SequenceAggregator(config)
        result = aggregator.aggregate(anchored_sessions)
        n = len(anchored_sessions)
        assert len(result.candidates) == n * (n - 1) // 2

    def test_no_anchors_no_merge(self, anchored_sessions, config):
        strict = config.with_overrides(min_anchor_matches=10**6)
        aggregator = SequenceAggregator(strict)
        cand = aggregator.score_pair(anchored_sessions[0], anchored_sessions[1])
        assert not cand.mergeable
        assert cand.s3 == 0.0

    def test_merged_pairs_listed(self, anchored_sessions, config):
        aggregator = SequenceAggregator(config)
        result = aggregator.aggregate(anchored_sessions)
        for i, j in result.merged_pairs():
            assert i < j
