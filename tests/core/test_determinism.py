"""End-to-end determinism: same seed in, bit-identical floor plan out.

This is the invariant crowdlint rule CM001 exists to protect. The test
runs the full pipeline twice on independently generated (same-seed)
datasets and asserts every artifact — occupancy grid, skeleton, room
placements — agrees bit-for-bit, not approximately.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import CrowdMapConfig
from repro.core.pipeline import CrowdMapPipeline
from repro.world.buildings import build_lab1
from repro.world.crowd import CrowdConfig, generate_crowd_dataset
from repro.world.walker import Walker, WalkerProfile


def _trajectory_array(trajectory):
    return np.array([[p.x, p.y, p.t, p.heading] for p in trajectory.points])


def _run_pipeline(seed: int = 11):
    plan = build_lab1()
    dataset = generate_crowd_dataset(
        plan,
        CrowdConfig(n_users=2, sws_per_user=1, srs_rooms_per_user=1, seed=seed),
    )
    return CrowdMapPipeline(CrowdMapConfig()).run(dataset)


@pytest.fixture(scope="module")
def twin_runs():
    return _run_pipeline(), _run_pipeline()


class TestPipelineDeterminism:
    def test_skeleton_bit_identical(self, twin_runs):
        a, b = twin_runs
        assert np.array_equal(a.skeleton.probability, b.skeleton.probability)
        assert np.array_equal(a.skeleton.binarized, b.skeleton.binarized)
        assert np.array_equal(a.skeleton.alpha_mask, b.skeleton.alpha_mask)
        assert np.array_equal(a.skeleton.skeleton, b.skeleton.skeleton)

    def test_aggregated_trajectories_bit_identical(self, twin_runs):
        a, b = twin_runs
        assert len(a.aggregation.trajectories) == len(b.aggregation.trajectories)
        for ta, tb in zip(a.aggregation.trajectories, b.aggregation.trajectories):
            assert np.array_equal(_trajectory_array(ta), _trajectory_array(tb))

    def test_room_placements_bit_identical(self, twin_runs):
        a, b = twin_runs
        assert len(a.floorplan.rooms) == len(b.floorplan.rooms)
        for ra, rb in zip(a.floorplan.rooms, b.floorplan.rooms):
            assert ra.name == rb.name
            # Exact equality on purpose: "close enough" placements would
            # mean nondeterminism crept in somewhere upstream.
            assert (ra.center.x, ra.center.y) == (rb.center.x, rb.center.y)
            assert (ra.layout.width, ra.layout.depth, ra.layout.orientation) == (
                rb.layout.width,
                rb.layout.depth,
                rb.layout.orientation,
            )

    def test_panoramas_bit_identical(self, twin_runs):
        a, b = twin_runs
        assert [p.room_hint for p in a.panoramas] == [p.room_hint for p in b.panoramas]
        for pa, pb in zip(a.panoramas, b.panoramas):
            assert np.array_equal(pa.panorama.pixels, pb.panorama.pixels)

    def test_ascii_rendering_identical(self, twin_runs):
        a, b = twin_runs
        assert a.floorplan.render_ascii() == b.floorplan.render_ascii()


class TestWalkerDeterminism:
    def test_same_seed_same_capture(self):
        plan = build_lab1()
        route = plan.route_between("sw", "se")
        sessions = []
        for _ in range(2):
            walker = Walker(
                plan,
                WalkerProfile(user_id="twin"),
                rng=np.random.default_rng(5),
            )
            sessions.append(walker.perform_sws(route))
        first, second = sessions
        assert np.array_equal(
            _trajectory_array(first.device_trajectory),
            _trajectory_array(second.device_trajectory),
        )
        assert np.array_equal(first.imu.accel(), second.imu.accel())
        assert np.array_equal(first.imu.gyro(), second.imu.gyro())

    def test_default_rng_fallback_is_seeded(self):
        """Omitting rng must give the documented seed-0 generator, i.e. two
        default-constructed walkers behave identically (the CM001 fix)."""
        plan = build_lab1()
        route = plan.route_between("sw", "se")
        captures = [
            Walker(plan, WalkerProfile(user_id="twin")).perform_sws(route)
            for _ in range(2)
        ]
        assert np.array_equal(
            _trajectory_array(captures[0].device_trajectory),
            _trajectory_array(captures[1].device_trajectory),
        )
