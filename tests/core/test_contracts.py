"""Unit tests for the @shaped array-contract decorator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import contracts
from repro.core.contracts import ContractError, ContractWarning, shaped
from repro.vision.homography import estimate_homography


@pytest.fixture(autouse=True)
def _strict_mode():
    """Contracts strict for every test here; restore the suite's mode after."""
    previous = contracts.get_mode()
    contracts.set_mode("strict")
    yield
    contracts.set_mode(previous)


@shaped(points="(N,2)", weights="(N,)", out="(2,)")
def weighted_mean(points, weights=None):
    if weights is None:
        return points.mean(axis=0)
    return (points * weights[:, None]).sum(axis=0) / weights.sum()


class TestChecking:
    def test_matching_arrays_pass_through(self):
        points = np.zeros((4, 2))
        assert weighted_mean(points).shape == (2,)

    def test_rank_mismatch_raises(self):
        with pytest.raises(ContractError, match="points"):
            weighted_mean(np.zeros((4, 2, 1)))

    def test_fixed_dim_mismatch_raises(self):
        with pytest.raises(ContractError, match="dim 2"):
            weighted_mean(np.zeros((4, 3)))

    def test_symbol_binds_across_arguments(self):
        weighted_mean(np.zeros((3, 2)), np.ones(3))  # N=3 agrees: fine
        with pytest.raises(ContractError, match="N=3"):
            weighted_mean(np.zeros((3, 2)), np.ones(4))

    def test_symbol_binds_within_one_argument(self):
        @shaped(image="(S,S)")
        def square_only(image):
            return image

        square_only(np.zeros((5, 5)))
        with pytest.raises(ContractError):
            square_only(np.zeros((5, 6)))

    def test_none_valued_parameter_is_skipped(self):
        assert weighted_mean(np.zeros((4, 2)), None).shape == (2,)

    def test_non_array_rejected(self):
        with pytest.raises(ContractError, match="numpy array"):
            weighted_mean([[0.0, 0.0], [1.0, 1.0]])

    def test_out_contract_checked(self):
        @shaped(out="(3,3)")
        def bad_matrix():
            return np.zeros((2, 2))

        with pytest.raises(ContractError, match="return value"):
            bad_matrix()

    def test_wildcard_dim_unconstrained(self):
        @shaped(x="(?,2)")
        def f(x):
            return x

        f(np.zeros((1, 2)))
        f(np.zeros((99, 2)))

    def test_dtype_token_enforced(self):
        @shaped(x="(N,) float64")
        def f(x):
            return x

        f(np.zeros(3, dtype=np.float64))
        with pytest.raises(ContractError, match="dtype"):
            f(np.zeros(3, dtype=np.float32))

    def test_trailing_comma_vector_spec(self):
        @shaped(x="(D,)")
        def f(x):
            return x

        f(np.zeros(7))
        with pytest.raises(ContractError):
            f(np.zeros((7, 1)))

    def test_alternatives_accept_either_shape(self):
        @shaped(image="(H,W)|(H,W,3)")
        def f(image):
            return image

        f(np.zeros((4, 6)))
        f(np.zeros((4, 6, 3)))
        with pytest.raises(ContractError):
            f(np.zeros((4, 6, 4)))

    def test_label_tokens_are_ignored(self):
        @shaped(h="(3,3) float64 homography")
        def f(h):
            return h

        f(np.eye(3))


class TestDeclaration:
    def test_unknown_parameter_raises_at_decoration_time(self):
        with pytest.raises(TypeError, match="unknown parameter"):

            @shaped(typo="(N,2)")
            def f(points):
                return points

    def test_malformed_spec_raises_at_decoration_time(self):
        with pytest.raises(ValueError, match="contract spec"):

            @shaped(x="N,2")  # missing parentheses
            def f(x):
                return x

    def test_contracts_metadata_exposed(self):
        assert weighted_mean.__crowdmap_contracts__ == {
            "points": "(N,2)",
            "weights": "(N,)",
            "return": "(2,)",
        }


class TestModes:
    def test_off_mode_skips_checks(self):
        contracts.set_mode("off")
        # Violating call passes through untouched.
        assert weighted_mean(np.zeros((4, 3))).shape == (3,)

    def test_warn_mode_warns_and_continues(self):
        contracts.set_mode("warn")
        with pytest.warns(ContractWarning, match="violates contract"):
            result = weighted_mean(np.zeros((4, 3)))
        assert result.shape == (3,)

    def test_set_mode_rejects_unknown(self):
        with pytest.raises(ValueError, match="mode"):
            contracts.set_mode("loud")

    def test_get_mode_reflects_set_mode(self):
        contracts.set_mode("warn")
        assert contracts.get_mode() == "warn"


class TestErrorHierarchy:
    def test_contract_error_catchable_as_legacy_types(self):
        # Kernels raised ValueError for shape mismatches before contracts
        # existed; ContractError must stay catchable by those callers.
        assert issubclass(ContractError, ValueError)
        assert issubclass(ContractError, TypeError)


class TestRealKernels:
    def test_homography_contract_enforced(self):
        with pytest.raises(ContractError, match="src"):
            estimate_homography(np.zeros((4, 3)), np.zeros((4, 2)))

    def test_homography_point_count_must_agree(self):
        with pytest.raises((ContractError, ValueError)):
            estimate_homography(np.zeros((5, 2)), np.zeros((4, 2)))
