"""Tests for occupancy-grid floor path skeleton reconstruction."""

import numpy as np
import pytest

from repro.core.config import CrowdMapConfig
from repro.core.skeleton import (
    OccupancyGrid,
    _binary_closing,
    reconstruct_skeleton,
)
from repro.geometry.primitives import BoundingBox
from repro.sensors.trajectory import Trajectory

BOUNDS = BoundingBox(0.0, 0.0, 20.0, 10.0)


def walk(points) -> Trajectory:
    return Trajectory.from_arrays(np.asarray(points, dtype=float))


class TestOccupancyGrid:
    def test_dimensions(self):
        grid = OccupancyGrid(BOUNDS, 0.5)
        assert grid.rows == 20 and grid.cols == 40

    def test_invalid_cell_size(self):
        with pytest.raises(ValueError):
            OccupancyGrid(BOUNDS, 0.0)

    def test_cell_roundtrip(self):
        grid = OccupancyGrid(BOUNDS, 0.5)
        row, col = grid.cell_of(3.3, 7.7)
        center = grid.center_of(row, col)
        assert abs(center.x - 3.3) <= 0.5
        assert abs(center.y - 7.7) <= 0.5

    def test_trajectory_marks_path(self):
        grid = OccupancyGrid(BOUNDS, 0.5)
        grid.add_trajectory(walk([[1, 5], [10, 5]]))
        row, col = grid.cell_of(5.0, 5.0)
        assert grid.counts[row, col] == 1

    def test_each_trajectory_counts_once(self):
        grid = OccupancyGrid(BOUNDS, 0.5)
        # A trajectory crossing the same cell twice marks it once.
        grid.add_trajectory(walk([[1, 5], [10, 5], [1, 5]]))
        row, col = grid.cell_of(5.0, 5.0)
        assert grid.counts[row, col] == 1

    def test_multiple_trajectories_accumulate(self):
        grid = OccupancyGrid(BOUNDS, 0.5)
        for _ in range(3):
            grid.add_trajectory(walk([[1, 5], [10, 5]]))
        row, col = grid.cell_of(5.0, 5.0)
        assert grid.counts[row, col] == 3

    def test_splat_radius_widens(self):
        narrow = OccupancyGrid(BOUNDS, 0.5)
        narrow.add_trajectory(walk([[1, 5], [10, 5]]), splat_radius=0.0)
        wide = OccupancyGrid(BOUNDS, 0.5)
        wide.add_trajectory(walk([[1, 5], [10, 5]]), splat_radius=1.0)
        assert wide.counts.sum() > narrow.counts.sum() * 2

    def test_probabilities_normalized(self):
        grid = OccupancyGrid(BOUNDS, 0.5)
        grid.add_trajectory(walk([[1, 5], [10, 5]]))
        grid.add_trajectory(walk([[1, 5], [5, 5]]))
        probs = grid.probabilities()
        assert probs.max() == 1.0
        assert probs.min() == 0.0

    def test_empty_probabilities(self):
        grid = OccupancyGrid(BOUNDS, 0.5)
        assert grid.probabilities().max() == 0.0

    def test_out_of_bounds_samples_ignored(self):
        grid = OccupancyGrid(BOUNDS, 0.5)
        grid.add_trajectory(walk([[-5, -5], [30, 30]]))
        assert np.isfinite(grid.counts).all()


class TestBinaryClosing:
    def test_bridges_small_gap(self):
        mask = np.zeros((10, 20), dtype=bool)
        mask[5, 2:9] = True
        mask[5, 10:18] = True  # 1-cell gap at column 9
        closed = _binary_closing(mask, radius=1)
        assert closed[5, 9]

    def test_zero_radius_identity(self):
        mask = np.random.default_rng(0).random((8, 8)) > 0.5
        assert np.array_equal(_binary_closing(mask, 0), mask)

    def test_preserves_solid_regions(self):
        mask = np.zeros((12, 12), dtype=bool)
        mask[3:9, 3:9] = True
        closed = _binary_closing(mask, radius=1)
        assert closed[3:9, 3:9].all()


class TestReconstructSkeleton:
    def make_corridor_crowd(self, n=8, seed=0):
        """Trajectories along an L-shaped corridor with noise + outliers."""
        rng = np.random.default_rng(seed)
        trajectories = []
        for _ in range(n):
            jitter = rng.normal(0, 0.2)
            leg1 = [[x, 2.0 + jitter] for x in np.linspace(1, 15, 15)]
            leg2 = [[15.0 + jitter, y] for y in np.linspace(2, 8, 7)]
            trajectories.append(walk(leg1 + leg2))
        # One bogus outlier trajectory far away.
        trajectories.append(walk([[1, 9.5], [2, 9.5]]))
        return trajectories

    def test_reconstruction_covers_corridor(self):
        config = CrowdMapConfig()
        result = reconstruct_skeleton(self.make_corridor_crowd(), BOUNDS, config)
        grid = result.grid
        for x, y in [(5, 2), (10, 2), (15, 5)]:
            row, col = grid.cell_of(x, y)
            assert result.skeleton[row, col], f"corridor point ({x},{y}) missing"

    def test_outlier_removed(self):
        config = CrowdMapConfig()
        result = reconstruct_skeleton(self.make_corridor_crowd(), BOUNDS, config)
        row, col = result.grid.cell_of(1.5, 9.5)
        assert not result.skeleton[row, col]

    def test_intermediates_exposed(self):
        result = reconstruct_skeleton(self.make_corridor_crowd(), BOUNDS)
        assert result.probability.max() == 1.0
        assert result.binarized.any()
        assert result.alpha_mask.any()
        assert result.skeleton.any()

    def test_empty_input(self):
        result = reconstruct_skeleton([], BOUNDS)
        assert not result.skeleton.any()

    def test_area_method(self):
        result = reconstruct_skeleton(self.make_corridor_crowd(), BOUNDS)
        assert result.area() == pytest.approx(
            result.skeleton.sum() * result.cell_size**2
        )

    def test_single_short_trajectory(self):
        result = reconstruct_skeleton([walk([[5, 5], [6, 5]])], BOUNDS)
        assert result.skeleton.sum() >= 0  # must not crash
