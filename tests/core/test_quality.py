"""Tests for the ground-truth-free quality diagnostics."""

import pytest

from repro.core.config import CrowdMapConfig
from repro.core.pipeline import CrowdMapPipeline
from repro.core.quality import QualityReport, RoomDiagnostic, assess


@pytest.fixture(scope="module")
def assessed(small_dataset):
    config = CrowdMapConfig().with_overrides(layout_samples=300)
    result = CrowdMapPipeline(config).run(small_dataset)
    return assess(result), result


class TestQualityReport:
    def test_counts_consistent(self, assessed, small_dataset):
        report, result = assessed
        assert report.n_trajectories == len(small_dataset.sws_sessions())
        assert report.n_components >= 1
        assert 0.0 < report.largest_component_fraction <= 1.0
        assert report.skeleton_area_m2 == pytest.approx(result.skeleton.area())

    def test_rooms_reported(self, assessed):
        report, result = assessed
        assert len(report.rooms) == len(result.layouts)
        for room in report.rooms:
            assert 0.0 <= room.panorama_gap <= 1.0

    def test_weakest_rooms_ordering(self, assessed):
        report, _ = assessed
        weakest = report.weakest_rooms(k=2)
        assert len(weakest) <= 2
        if len(weakest) == 2:
            assert weakest[0].consistency <= weakest[1].consistency

    def test_summary_lines(self, assessed):
        report, _ = assessed
        lines = report.summary_lines()
        assert any("trajectories" in line for line in lines)
        assert any("skeleton" in line for line in lines)

    def test_fragmentation_flag(self):
        report = QualityReport(
            n_trajectories=10, n_components=6,
            largest_component_fraction=0.3, merged_pairs=2,
            mean_anchors_per_merge=2.0, skeleton_components=3,
            skeleton_area_m2=50.0,
        )
        assert report.is_fragmented
        assert any("WARNING" in line for line in report.summary_lines())

    def test_healthy_map_not_flagged(self):
        report = QualityReport(
            n_trajectories=10, n_components=2,
            largest_component_fraction=0.9, merged_pairs=12,
            mean_anchors_per_merge=4.0, skeleton_components=1,
            skeleton_area_m2=200.0,
            rooms=[RoomDiagnostic("a", 0.1, 0.0, 1)],
        )
        assert not report.is_fragmented
