"""Extended key-frame selection tests: SRS coverage preservation."""

import math

import numpy as np

from repro.core.keyframes import select_keyframes
from repro.vision.stitching import covers_full_circle
from repro.world.renderer import DEFAULT_FOV


class TestSrsSelection:
    def test_selection_preserves_panorama_coverage(self, srs_session, config):
        """Thinning a spin must never break the 360-degree Cover criterion."""
        keyframes = select_keyframes(srs_session.frames, config,
                                     session_id="s")
        frames = [kf.frame for kf in keyframes]
        assert covers_full_circle(frames, DEFAULT_FOV)

    def test_spin_keeps_most_frames(self, srs_session, config):
        """A spin's frames all differ (camera rotates): little thinning."""
        keyframes = select_keyframes(srs_session.frames, config,
                                     session_id="s")
        assert len(keyframes) > 0.5 * srs_session.n_frames

    def test_heading_spread_survives(self, srs_session, config):
        keyframes = select_keyframes(srs_session.frames, config,
                                     session_id="s")
        headings = sorted(kf.heading % (2 * math.pi) for kf in keyframes)
        gaps = np.diff(headings + [headings[0] + 2 * math.pi])
        assert gaps.max() < DEFAULT_FOV


class TestSwsSelection:
    def test_anchor_spacing_reasonable(self, sws_session, config):
        """Consecutive SWS key-frames should be metres apart, not cm."""
        keyframes = select_keyframes(sws_session.frames, config,
                                     session_id="w")
        truth = sws_session.ground_truth
        positions = [truth.position_at(kf.timestamp) for kf in keyframes]
        spacings = [
            positions[i].distance_to(positions[i + 1])
            for i in range(len(positions) - 1)
        ]
        mid = [s for s in spacings if s > 1e-6]  # skip the stay phases
        assert np.median(mid) > 0.4

    def test_selection_deterministic(self, sws_session, config):
        a = select_keyframes(sws_session.frames, config, session_id="x")
        b = select_keyframes(sws_session.frames, config, session_id="x")
        assert [kf.keyframe_id for kf in a] == [kf.keyframe_id for kf in b]
