"""Tests for the pipeline configuration object."""

import dataclasses

import pytest

from repro.core.config import CrowdMapConfig


class TestConfig:
    def test_frozen(self):
        config = CrowdMapConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.s2_threshold = 0.5

    def test_with_overrides(self):
        config = CrowdMapConfig()
        modified = config.with_overrides(s2_threshold=0.5, lcss_delta=3)
        assert modified.s2_threshold == 0.5
        assert modified.lcss_delta == 3
        # Original untouched; other fields preserved.
        assert config.s2_threshold != 0.5
        assert modified.grid_cell_size == config.grid_cell_size

    def test_unknown_override_rejected(self):
        with pytest.raises(TypeError):
            CrowdMapConfig().with_overrides(not_a_field=1)

    def test_paper_thresholds_present(self):
        """Every named threshold from the paper has a config knob."""
        config = CrowdMapConfig()
        assert config.keyframe_ncc_threshold > 0  # h_g
        assert config.s1_threshold > 0  # h_s
        assert config.surf_distance_threshold > 0  # h_d
        assert config.s2_threshold > 0  # h_f
        assert config.s3_threshold > 0  # h_l
        assert config.lcss_epsilon > 0  # epsilon
        assert config.lcss_delta > 0  # delta
        assert config.alpha > 0  # h_alpha
