"""End-to-end pipeline tests (smoke-level: the benchmarks do the heavy
quantitative validation)."""

import pytest

from repro.core.config import CrowdMapConfig
from repro.core.pipeline import CrowdMapPipeline, _trajectory_bounds


@pytest.fixture(scope="module")
def pipeline_result(small_dataset):
    config = CrowdMapConfig().with_overrides(layout_samples=600)
    return CrowdMapPipeline(config).run(small_dataset)


class TestPipeline:
    def test_produces_all_artifacts(self, pipeline_result):
        assert pipeline_result.skeleton.skeleton.any()
        assert pipeline_result.panoramas
        assert len(pipeline_result.layouts) == len(pipeline_result.panoramas)
        assert pipeline_result.floorplan.rooms

    def test_timings_recorded(self, pipeline_result):
        assert set(pipeline_result.timings) == {"pathway", "rooms", "floorplan"}
        assert all(v >= 0 for v in pipeline_result.timings.values())

    def test_aggregation_covers_all_sws(self, pipeline_result, small_dataset):
        n_sws = len(small_dataset.sws_sessions())
        assert len(pipeline_result.aggregation.trajectories) == n_sws

    def test_layout_for_room(self, pipeline_result):
        hint = pipeline_result.panoramas[0].room_hint
        assert pipeline_result.layout_for_room(hint) is not None
        assert pipeline_result.layout_for_room("not-a-room") is None

    def test_room_layout_plausible(self, pipeline_result, lab1_plan):
        for pano, layout in zip(pipeline_result.panoramas,
                                pipeline_result.layouts):
            if pano.room_hint is None:
                continue
            room = lab1_plan.room_by_name(pano.room_hint)
            assert 0.2 * room.area() < layout.area() < 5.0 * room.area()

    def test_anchored_sessions_returned(self, pipeline_result, small_dataset):
        assert len(pipeline_result.anchored) == len(small_dataset.sws_sessions())
        for anchored in pipeline_result.anchored:
            assert anchored.keyframes

    def test_srs_grouping(self, small_dataset):
        pipe = CrowdMapPipeline(CrowdMapConfig())
        groups = pipe.group_srs_sessions(small_dataset.srs_sessions())
        total = sum(len(g) for g in groups)
        assert total == len(small_dataset.srs_sessions())
        # Sessions in the same cell share a group.
        for group in groups:
            assert len(group) >= 1

    def test_empty_trajectory_bounds(self):
        from repro.core.aggregation import AggregationResult

        empty = AggregationResult(
            trajectories=[], transforms=[], candidates=[], components=[]
        )
        bounds = _trajectory_bounds(empty, margin=1.0)
        assert bounds.width > 0
