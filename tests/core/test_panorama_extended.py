"""Extended panorama tests: seam quality and heading-noise tolerance."""

import math

import numpy as np

from repro.core.config import CrowdMapConfig
from repro.core.keyframes import select_keyframes
from repro.core.panorama import PanoramaBuilder
from repro.geometry.primitives import Point
from repro.vision.image import Frame
from repro.vision.stitching import stitch_cylindrical
from repro.world.renderer import DEFAULT_FOV


def spin_frames(renderer, position, n=24, heading_noise=0.0, seed=0):
    """A synthetic SRS ring with controllable heading annotation error."""
    rng = np.random.default_rng(seed)
    frames = []
    for k in range(n):
        true_heading = k * 2 * math.pi / n
        pixels = renderer.render(position, true_heading,
                                 rng=np.random.default_rng(seed * 100 + k))
        annotated = true_heading + rng.normal(0.0, heading_noise)
        frames.append(
            Frame(pixels=pixels, timestamp=float(k), heading=annotated,
                  frame_index=k)
        )
    return frames


class TestPanoramaSeams:
    def test_clean_headings_give_smooth_panorama(self, lab1_renderer, lab1_plan):
        room = lab1_plan.room_by_name("s3")
        frames = spin_frames(lab1_renderer, room.center)
        pano = stitch_cylindrical(frames, DEFAULT_FOV, panorama_width=720)
        assert pano.gap_fraction() == 0.0
        # Adjacent-column differences should stay modest away from noise.
        gray = pano.grayscale()
        col_diff = np.abs(np.diff(gray, axis=1)).mean()
        assert col_diff < 0.08

    def test_refinement_absorbs_heading_noise(self, lab1_renderer, lab1_plan):
        room = lab1_plan.room_by_name("s3")
        noisy = spin_frames(lab1_renderer, room.center,
                            heading_noise=math.radians(2.0), seed=3)
        refined = stitch_cylindrical(noisy, DEFAULT_FOV, panorama_width=720,
                                     refine=True)
        unrefined = stitch_cylindrical(noisy, DEFAULT_FOV, panorama_width=720,
                                       refine=False)

        def seam_energy(pano):
            gray = pano.grayscale()
            return float(np.abs(np.diff(gray, axis=1)).mean())

        assert seam_energy(refined) <= seam_energy(unrefined) + 0.005

    def test_full_pipeline_panorama_gap_free(self, srs_session, config):
        keyframes = select_keyframes(srs_session.frames, config,
                                     session_id="x")
        pano = PanoramaBuilder(config).build(
            keyframes, capture_position=Point(5.5, 5.75)
        )
        assert pano.panorama.gap_fraction() <= config.panorama_max_gap

    def test_panorama_width_configurable(self, srs_session):
        config = CrowdMapConfig().with_overrides(panorama_width=360)
        keyframes = select_keyframes(srs_session.frames, config,
                                     session_id="x")
        pano = PanoramaBuilder(config).build(
            keyframes, capture_position=Point(5.5, 5.75)
        )
        assert pano.width == 360
