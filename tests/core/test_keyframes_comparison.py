"""Tests for key-frame selection and hierarchical comparison."""

import math

import numpy as np
import pytest

from repro.core.comparison import KeyframeComparator
from repro.core.config import CrowdMapConfig
from repro.core.keyframes import (
    KeyFrame,
    keyframe_reduction_ratio,
    select_keyframes,
)
from repro.geometry.primitives import Point


@pytest.fixture(scope="module")
def sws_keyframes(sws_session):
    return select_keyframes(sws_session.frames, session_id="t")


class TestSelection:
    def test_selection_thins_sequence(self, sws_session, sws_keyframes):
        assert 2 <= len(sws_keyframes) < sws_session.n_frames

    def test_first_frame_kept(self, sws_session, sws_keyframes):
        assert sws_keyframes[0].frame.frame_index == 0

    def test_keyframes_time_ordered(self, sws_keyframes):
        times = [kf.timestamp for kf in sws_keyframes]
        assert times == sorted(times)

    def test_ids_unique(self, sws_keyframes):
        ids = [kf.keyframe_id for kf in sws_keyframes]
        assert len(set(ids)) == len(ids)

    def test_empty_input(self):
        assert select_keyframes([]) == []

    def test_stationary_frames_collapse(self, lab1_plan, lab1_renderer):
        """Near-duplicate frames (standing still) collapse to few key-frames."""
        from repro.vision.image import Frame

        rng = np.random.default_rng(0)
        pos, heading = Point(10.0, 1.25), 0.0
        frames = [
            Frame(
                pixels=lab1_renderer.render(pos, heading, rng=rng),
                timestamp=float(i),
                heading=heading,
                frame_index=i,
            )
            for i in range(10)
        ]
        kfs = select_keyframes(frames)
        assert len(kfs) <= 3

    def test_threshold_monotonicity(self, sws_session):
        strict = select_keyframes(
            sws_session.frames, CrowdMapConfig().with_overrides(
                keyframe_ncc_threshold=0.3
            )
        )
        loose = select_keyframes(
            sws_session.frames, CrowdMapConfig().with_overrides(
                keyframe_ncc_threshold=0.9
            )
        )
        assert len(strict) <= len(loose)

    def test_reduction_ratio(self):
        assert keyframe_reduction_ratio(100, 25) == 0.75
        assert keyframe_reduction_ratio(0, 0) == 0.0

    def test_signature_caching(self, sws_keyframes):
        kf = sws_keyframes[0]
        kf.ensure_signatures()
        color_first = kf.color
        kf.ensure_signatures()
        assert kf.color is color_first
        surf_first = kf.ensure_surf()
        assert kf.ensure_surf() is surf_first


class TestComparator:
    def test_heading_gate(self, sws_keyframes, config):
        comparator = KeyframeComparator(config)
        a = sws_keyframes[0]
        flipped = KeyFrame(
            frame=type(a.frame)(
                pixels=a.frame.pixels,
                timestamp=a.frame.timestamp,
                heading=a.frame.heading + math.pi,
            ),
            keyframe_id="flipped",
            hog=a.hog,
        )
        result = comparator.compare(a, flipped)
        assert not result.matched
        assert result.stage == "heading"
        assert comparator.n_heading_rejects == 1

    def test_self_comparison_matches(self, sws_keyframes, config):
        comparator = KeyframeComparator(config)
        a = sws_keyframes[0]
        result = comparator.compare(a, a)
        assert result.matched
        assert result.s2 == pytest.approx(1.0)
        assert result.stage == "s2"

    def test_s1_scores_bounded(self, sws_keyframes, config):
        comparator = KeyframeComparator(config)
        for other in sws_keyframes[1:4]:
            s1 = comparator.s1_score(sws_keyframes[0], other)
            assert 0.0 <= s1 <= 1.0

    def test_distant_frames_do_not_match(self, sws_keyframes, config):
        comparator = KeyframeComparator(config)
        # First and last key-frames of a 35 m walk view different places.
        result = comparator.compare(sws_keyframes[0], sws_keyframes[-1])
        assert not result.matched

    def test_comparator_counts_surf_work(self, sws_keyframes, config):
        comparator = KeyframeComparator(config)
        comparator.compare(sws_keyframes[0], sws_keyframes[0])
        assert comparator.n_surf_comparisons == 1

    def test_bool_protocol(self, sws_keyframes, config):
        comparator = KeyframeComparator(config)
        assert bool(comparator.compare(sws_keyframes[0], sws_keyframes[0]))
