"""Tests for visual localization on the reconstructed floor plan."""

import math

import numpy as np
import pytest

from repro.core.config import CrowdMapConfig
from repro.core.localization import VisualLocalizer
from repro.core.pipeline import CrowdMapPipeline
from repro.geometry.primitives import Point
from repro.vision.image import Frame


@pytest.fixture(scope="module")
def localizer(small_dataset):
    config = CrowdMapConfig().with_overrides(layout_samples=200)
    result = CrowdMapPipeline(config).run(small_dataset)
    return VisualLocalizer(result, config), result


class TestLocalizer:
    def test_database_indexed(self, localizer):
        loc, result = localizer
        assert len(loc) == sum(len(a.keyframes) for a in result.anchored)

    def test_corpus_frame_localizes_to_itself(self, localizer, small_dataset):
        """Re-querying a corpus frame must land near its capture point."""
        loc, _ = localizer
        session = small_dataset.sws_sessions()[0]
        frame = session.frames[len(session.frames) // 2]
        estimate = loc.localize(frame)
        assert estimate.matched
        truth = session.ground_truth.position_at(frame.timestamp)
        error = math.hypot(
            estimate.position.x - truth.x, estimate.position.y - truth.y
        )
        assert error < 5.0

    def test_fresh_view_localizes(self, localizer, lab1_plan, lab1_renderer):
        """A new capture at a visited spot localizes within a few metres."""
        loc, _ = localizer
        spot = Point(10.0, 1.25)
        pixels = lab1_renderer.render(spot, 0.0, rng=np.random.default_rng(77))
        query = Frame(pixels=pixels, timestamp=0.0, heading=0.0)
        estimate = loc.localize(query)
        if estimate.matched:  # coverage-dependent, but must be sane if found
            error = math.hypot(
                estimate.position.x - spot.x, estimate.position.y - spot.y
            )
            assert error < 8.0

    def test_unmatched_query(self, localizer, lab1_renderer):
        """A query showing nothing the corpus saw returns no estimate."""
        loc, _ = localizer
        pixels = np.zeros((lab1_renderer.camera.height,
                           lab1_renderer.camera.width, 3))
        query = Frame(pixels=pixels, timestamp=0.0, heading=0.0)
        estimate = loc.localize(query)
        assert not estimate.matched
        assert estimate.confidence == 0.0

    def test_sequence_smoothing(self, localizer, small_dataset):
        loc, _ = localizer
        session = small_dataset.sws_sessions()[0]
        frames = session.frames[3:9]
        estimates = loc.localize_sequence(frames)
        assert len(estimates) == len(frames)
        positions = [e.position for e in estimates if e.matched]
        if len(positions) >= 3:
            jumps = [
                positions[i].distance_to(positions[i + 1])
                for i in range(len(positions) - 1)
            ]
            assert max(jumps) < 15.0
