"""Tests for the incremental (streaming) reconstruction."""

import numpy as np
import pytest

from repro.core.config import CrowdMapConfig
from repro.core.incremental import IncrementalCrowdMap
from repro.core.pipeline import CrowdMapPipeline


@pytest.fixture(scope="module")
def incremental_config():
    return CrowdMapConfig().with_overrides(layout_samples=400)


class TestIncremental:
    def test_empty_snapshot_is_none(self, incremental_config):
        assert IncrementalCrowdMap(incremental_config).snapshot() is None

    def test_sessions_accumulate(self, small_dataset, incremental_config):
        inc = IncrementalCrowdMap(incremental_config)
        for session in small_dataset.sessions:
            inc.add_session(session)
        assert inc.n_sws == len(small_dataset.sws_sessions())
        assert inc.n_rooms >= 1

    def test_pairwise_work_is_incremental(self, small_dataset, incremental_config):
        inc = IncrementalCrowdMap(incremental_config)
        sws = small_dataset.sws_sessions()
        for session in sws:
            inc.add_session(session)
        n = len(sws)
        assert inc.n_pair_scores == n * (n - 1) // 2

    def test_snapshot_matches_batch_pipeline(self, small_dataset, incremental_config):
        """Streaming all sessions must reproduce the batch skeleton."""
        inc = IncrementalCrowdMap(incremental_config)
        for session in small_dataset.sessions:
            inc.add_session(session)
        streamed = inc.snapshot()

        batch = CrowdMapPipeline(incremental_config).run(small_dataset)
        # Same pairs scored with the same config: identical merge decisions
        # and, therefore, identical skeleton cells.
        assert sorted(streamed.aggregation.merged_pairs()) == sorted(
            batch.aggregation.merged_pairs()
        )
        assert np.array_equal(batch.skeleton.skeleton, streamed.skeleton.skeleton)

    def test_snapshot_matches_batch_full_floorplan(
        self, small_dataset, incremental_config
    ):
        """Equivalence beyond the skeleton: the full served artifacts.

        The serving layer (repro.serving) publishes incremental snapshots
        as the batch result's stand-in, so the rendered floor plan, room
        placements and localization answers must all agree — not just the
        hallway cells.
        """
        from repro.core.localization import VisualLocalizer

        inc = IncrementalCrowdMap(incremental_config)
        for session in small_dataset.sessions:
            inc.add_session(session)
        streamed = inc.snapshot()
        batch = CrowdMapPipeline(incremental_config).run(small_dataset)

        assert streamed.floorplan.render_ascii() == batch.floorplan.render_ascii()

        streamed_rooms = {
            r.name: r.bounding_box() for r in streamed.floorplan.rooms
        }
        batch_rooms = {
            r.name: r.bounding_box() for r in batch.floorplan.rooms
        }
        assert streamed_rooms == batch_rooms

        loc_streamed = VisualLocalizer(streamed, incremental_config)
        loc_batch = VisualLocalizer(batch, incremental_config)
        assert len(loc_streamed) == len(loc_batch)
        query = small_dataset.sws_sessions()[0].frames[3]
        a = loc_streamed.localize(query)
        b = loc_batch.localize(query)
        assert a.matched and b.matched
        assert a.position.x == pytest.approx(b.position.x)
        assert a.position.y == pytest.approx(b.position.y)
        assert a.confidence == pytest.approx(b.confidence)

    def test_snapshot_improves_with_more_data(self, small_dataset, incremental_config):
        inc = IncrementalCrowdMap(incremental_config)
        sws = small_dataset.sws_sessions()
        inc.add_session(sws[0])
        early = inc.snapshot()
        for session in sws[1:]:
            inc.add_session(session)
        late = inc.snapshot()
        assert late.skeleton.skeleton.sum() >= early.skeleton.skeleton.sum()

    def test_stairs_sessions_ignored(self, lab1_plan, incremental_config):
        from repro.world.walker import Walker, WalkerProfile

        walker = Walker(lab1_plan, WalkerProfile(user_id="s"),
                        rng=np.random.default_rng(5))
        inc = IncrementalCrowdMap(incremental_config)
        inc.add_session(walker.perform_stairs(lab1_plan.waypoints["sw"], 1))
        assert inc.n_sws == 0
        assert inc.snapshot() is None

    def test_srs_best_layout_kept_per_cell(self, lab1_plan, lab1_renderer,
                                            incremental_config):
        from repro.world.walker import Walker, WalkerProfile

        room = lab1_plan.room_by_name("s2")
        inc = IncrementalCrowdMap(incremental_config)
        for seed in (1, 2):
            walker = Walker(lab1_plan, WalkerProfile(user_id=f"u{seed}"),
                            rng=np.random.default_rng(seed),
                            renderer=lab1_renderer)
            inc.add_session(walker.perform_srs(room.center, room_name=room.name))
        assert inc.n_rooms == 1  # both spins share the cell
        cell = next(iter(inc._cells.values()))
        assert len(cell.sessions) == 2
        assert cell.layout is not None
