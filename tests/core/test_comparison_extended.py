"""Extended comparison-stage tests: lighting robustness and hierarchy order.

These pin down the properties the Fig. 7b benchmark depends on: the S1
signatures must tolerate the day/night photometric shift, and the
hierarchy must resolve obviously-wrong pairs before SURF runs.
"""

import math

import numpy as np
import pytest

from repro.core.comparison import KeyframeComparator
from repro.core.config import CrowdMapConfig
from repro.core.keyframes import select_keyframes
from repro.geometry.primitives import Point
from repro.vision.color_histogram import chromaticity_histogram, histogram_intersection
from repro.vision.image import Frame
from repro.world.lighting import DAYLIGHT, NIGHT


def keyframe_at(renderer, x, y, heading, lighting, seed, config):
    pixels = renderer.render(
        Point(x, y), heading, lighting=lighting,
        rng=np.random.default_rng(seed),
    )
    frame = Frame(pixels=pixels, timestamp=0.0, heading=heading)
    [kf] = select_keyframes([frame], config, session_id=f"t{seed}")
    return kf


class TestChromaticityRobustness:
    def test_day_night_same_scene_high_intersection(self, lab1_renderer):
        day = lab1_renderer.render(Point(8, 1.25), 0.0, lighting=DAYLIGHT,
                                   rng=np.random.default_rng(0))
        night = lab1_renderer.render(Point(8, 1.25), 0.0, lighting=NIGHT,
                                     rng=np.random.default_rng(1))
        sim = histogram_intersection(
            chromaticity_histogram(day), chromaticity_histogram(night)
        )
        # The raw RGB histogram would collapse here; chromaticity holds up.
        assert sim > 0.3

    def test_day_day_nearly_identical(self, lab1_renderer):
        a = lab1_renderer.render(Point(8, 1.25), 0.0,
                                 rng=np.random.default_rng(2))
        b = lab1_renderer.render(Point(8.2, 1.25), 0.0,
                                 rng=np.random.default_rng(3))
        sim = histogram_intersection(
            chromaticity_histogram(a), chromaticity_histogram(b)
        )
        assert sim > 0.9

    def test_invalid_bins(self):
        with pytest.raises(ValueError):
            chromaticity_histogram(np.zeros((4, 4, 3)), bins=1)

    def test_grayscale_accepted(self):
        hist = chromaticity_histogram(np.random.default_rng(4).random((8, 8)))
        assert hist.sum() == pytest.approx(1.0)


class TestLightingMatching:
    def test_night_night_same_place_matches(self, lab1_renderer, config):
        comparator = KeyframeComparator(config)
        a = keyframe_at(lab1_renderer, 8.0, 1.25, 0.0, NIGHT, 10, config)
        b = keyframe_at(lab1_renderer, 8.3, 1.3, 0.02, NIGHT, 11, config)
        result = comparator.compare(a, b)
        assert result.matched, f"night/night same place failed: S2={result.s2:.3f}"

    def test_night_features_not_starved(self, lab1_renderer, config):
        """Contrast standardization keeps SURF productive in the dark."""
        a = keyframe_at(lab1_renderer, 8.0, 1.25, 0.0, NIGHT, 12, config)
        b = keyframe_at(lab1_renderer, 8.0, 1.25, 0.0, DAYLIGHT, 13, config)
        n_night = len(a.ensure_surf())
        n_day = len(b.ensure_surf())
        assert n_night > 0.5 * n_day

    def test_day_night_cross_pairs_reach_surf(self, lab1_renderer, config):
        """The S1 rung must not reject same-place pairs for lighting alone."""
        comparator = KeyframeComparator(config)
        day = keyframe_at(lab1_renderer, 8.0, 1.25, 0.0, DAYLIGHT, 14, config)
        night = keyframe_at(lab1_renderer, 8.2, 1.25, 0.0, NIGHT, 15, config)
        result = comparator.compare(day, night)
        assert result.stage != "heading"
        # Either it survives to SURF, or S1 rejected it; the pipeline's
        # lighting tolerance (Fig. 7b) requires survival.
        assert result.stage == "s2", (
            f"cross-lighting pair killed at {result.stage}: s1={result.s1:.2f}"
        )


class TestHierarchyOrder:
    def test_heading_gate_runs_first(self, lab1_renderer, config):
        comparator = KeyframeComparator(config)
        a = keyframe_at(lab1_renderer, 8.0, 1.25, 0.0, DAYLIGHT, 16, config)
        b = keyframe_at(lab1_renderer, 8.0, 1.25, math.pi, DAYLIGHT, 17, config)
        before = comparator.n_surf_comparisons
        result = comparator.compare(a, b)
        assert result.stage == "heading"
        assert comparator.n_surf_comparisons == before  # SURF never ran

    def test_s1_disabled_passes_everything_to_surf(self, lab1_renderer):
        config = CrowdMapConfig().with_overrides(s1_threshold=0.0)
        comparator = KeyframeComparator(config)
        a = keyframe_at(lab1_renderer, 8.0, 1.25, 0.0, DAYLIGHT, 18, config)
        b = keyframe_at(lab1_renderer, 30.0, 1.25, 0.0, DAYLIGHT, 19, config)
        result = comparator.compare(a, b)
        assert result.stage == "s2"
