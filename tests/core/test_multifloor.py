"""Tests for multi-floor reconstruction (paper Section VI)."""

import numpy as np
import pytest

from repro.core.config import CrowdMapConfig
from repro.core.multifloor import MultiFloorPipeline
from repro.sensors.activity import FLOOR_HEIGHT
from repro.world.renderer import Camera, Renderer
from repro.world.walker import Walker, WalkerProfile


@pytest.fixture(scope="module")
def two_floor_sessions(lab1_plan):
    """Sessions on two floors of Lab1 plus one stair transition."""
    renderer = Renderer(lab1_plan, Camera(width=96, height=128))
    sessions = []
    for floor in (0, 1):
        for i in range(2):
            walker = Walker(
                lab1_plan,
                WalkerProfile(user_id=f"f{floor}u{i}"),
                rng=np.random.default_rng(floor * 10 + i),
                renderer=renderer,
                altitude=floor * FLOOR_HEIGHT,
            )
            sessions.append(walker.perform_sws(lab1_plan.route_between("sw", "se")))
            sessions.append(walker.perform_sws(lab1_plan.route_between("se", "ne")))
    stair_walker = Walker(
        lab1_plan, WalkerProfile(user_id="stairs"),
        rng=np.random.default_rng(99), renderer=renderer,
    )
    sessions.append(
        stair_walker.perform_stairs(lab1_plan.waypoints["ne"], delta_floors=1)
    )
    return sessions


@pytest.fixture(scope="module")
def multifloor_result(two_floor_sessions):
    return MultiFloorPipeline(CrowdMapConfig()).run(two_floor_sessions)


class TestClassification:
    def test_sessions_split_by_floor(self, two_floor_sessions):
        pipeline = MultiFloorPipeline(CrowdMapConfig())
        classified = pipeline.classify_sessions(two_floor_sessions)
        per_floor = classified["per_floor"]
        assert set(per_floor) == {0, 1}
        assert len(per_floor[0]) == 4
        assert len(per_floor[1]) == 4

    def test_transition_becomes_link(self, two_floor_sessions):
        pipeline = MultiFloorPipeline(CrowdMapConfig())
        classified = pipeline.classify_sessions(two_floor_sessions)
        links = classified["links"]
        assert len(links) == 1
        assert (links[0].floor_from, links[0].floor_to) == (0, 1)
        assert links[0].kind == "stairs"

    def test_link_position_near_stairwell(self, two_floor_sessions, lab1_plan):
        pipeline = MultiFloorPipeline(CrowdMapConfig())
        links = pipeline.classify_sessions(two_floor_sessions)["links"]
        stairwell = lab1_plan.waypoints["ne"]
        assert links[0].position.distance_to(stairwell) < 2.0


class TestMultiFloorRun:
    def test_reconstructs_both_floors(self, multifloor_result):
        assert multifloor_result.floor_indices() == [0, 1]
        for result in multifloor_result.floors.values():
            assert result.skeleton.skeleton.any()

    def test_session_counts(self, multifloor_result):
        assert multifloor_result.sessions_per_floor == {0: 4, 1: 4}

    def test_links_between(self, multifloor_result):
        assert len(multifloor_result.links_between(0, 1)) == 1
        assert multifloor_result.links_between(1, 2) == []

    def test_floors_reconstruct_same_corridors(self, multifloor_result):
        """Both floors walked the same routes: similar skeleton areas."""
        areas = [
            r.skeleton.area() for r in multifloor_result.floors.values()
        ]
        assert abs(areas[0] - areas[1]) < 0.6 * max(areas)


class TestRunSessions:
    def test_equivalent_to_run(self, small_dataset):
        from repro.core.pipeline import CrowdMapPipeline

        config = CrowdMapConfig().with_overrides(layout_samples=300)
        a = CrowdMapPipeline(config).run(small_dataset)
        b = CrowdMapPipeline(config).run_sessions(small_dataset.sessions)
        assert np.array_equal(a.skeleton.skeleton, b.skeleton.skeleton)
        assert len(a.layouts) == len(b.layouts)
