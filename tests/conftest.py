"""Shared fixtures.

Rendering sessions and crowd datasets are expensive, so everything derived
from the world simulator is session-scoped and cached: tests must not
mutate these fixtures (copy first if needed).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import contracts
from repro.core.config import CrowdMapConfig
from repro.world.buildings import build_gym, build_lab1, build_lab2
from repro.world.crowd import CrowdConfig, generate_crowd_dataset
from repro.world.renderer import Camera, Renderer
from repro.world.walker import Walker, WalkerProfile

# The whole suite runs with array contracts enforced: a @shaped violation
# anywhere in the stack is a test failure, not a warning. Tests that exercise
# the other modes save/restore via contracts.set_mode themselves.
contracts.set_mode("strict")


@pytest.fixture(scope="session")
def lab1_plan():
    return build_lab1()


@pytest.fixture(scope="session")
def lab2_plan():
    return build_lab2()


@pytest.fixture(scope="session")
def gym_plan():
    return build_gym()


@pytest.fixture(scope="session")
def lab1_renderer(lab1_plan):
    return Renderer(lab1_plan, Camera())


@pytest.fixture(scope="session")
def sws_session(lab1_plan, lab1_renderer):
    """One deterministic SWS capture along Lab1's south corridor."""
    walker = Walker(
        lab1_plan,
        WalkerProfile(user_id="fixture-sws"),
        rng=np.random.default_rng(42),
        renderer=lab1_renderer,
    )
    return walker.perform_sws(lab1_plan.route_between("sw", "se"))


@pytest.fixture(scope="session")
def srs_session(lab1_plan, lab1_renderer):
    """One deterministic SRS spin inside Lab1 room s1."""
    walker = Walker(
        lab1_plan,
        WalkerProfile(user_id="fixture-srs"),
        rng=np.random.default_rng(43),
        renderer=lab1_renderer,
    )
    room = lab1_plan.room_by_name("s1")
    return walker.perform_srs(room.center, room_name=room.name)


@pytest.fixture(scope="session")
def small_dataset(lab1_plan):
    """A small but complete Lab1 crowd dataset (SWS + SRS sessions)."""
    return generate_crowd_dataset(
        lab1_plan,
        CrowdConfig(n_users=3, sws_per_user=2, srs_rooms_per_user=1, seed=7),
    )


@pytest.fixture()
def config():
    return CrowdMapConfig()


@pytest.fixture()
def rng():
    return np.random.default_rng(0)
