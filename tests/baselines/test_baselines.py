"""Tests for the paper's comparators: single-image, inertial, Jigsaw, SfM."""

import math

import numpy as np
import pytest

from repro.baselines.inertial_only import (
    InertialRoomEstimator,
    generate_room_wander,
)
from repro.baselines.jigsaw import JigsawRoomEstimator
from repro.baselines.sfm import SfmSimulator
from repro.baselines.single_image import SingleImageAggregator
from repro.core.config import CrowdMapConfig
from repro.core.pipeline import CrowdMapPipeline
from repro.geometry.primitives import Point
from repro.sensors.trajectory import Trajectory
from repro.world.buildings import build_lab1
from repro.world.floorplan_model import Door, Room
from repro.world.renderer import Camera, Renderer
from repro.world.walker import Walker, WalkerProfile


ROOM = Room("r", Point(5.0, 5.0), 6.0, 4.5, door=Door("S", 3.0))


class TestRoomWander:
    def test_stays_inside_room(self):
        rng = np.random.default_rng(0)
        motion = generate_room_wander(ROOM, rng)
        bb = ROOM.bounding_box()
        assert (motion.positions[:, 0] >= bb.min_x - 1e-9).all()
        assert (motion.positions[:, 0] <= bb.max_x + 1e-9).all()
        assert (motion.positions[:, 1] >= bb.min_y - 1e-9).all()
        assert (motion.positions[:, 1] <= bb.max_y + 1e-9).all()

    def test_never_reaches_blocked_walls(self):
        rng = np.random.default_rng(1)
        motion = generate_room_wander(
            ROOM, rng, base_margin=0.4, furniture_margin=1.2, furniture_walls=4
        )
        span_x = motion.positions[:, 0].max() - motion.positions[:, 0].min()
        assert span_x < ROOM.width - 2 * 0.4

    def test_has_steps(self):
        motion = generate_room_wander(ROOM, np.random.default_rng(2))
        assert motion.step_times

    def test_degenerate_tiny_room(self):
        tiny = Room("t", Point(0, 0), 1.0, 1.0)
        motion = generate_room_wander(tiny, np.random.default_rng(3))
        assert len(motion.times) >= 1


class TestInertialEstimator:
    def test_underestimates_area_on_average(self):
        errors = []
        for seed in range(6):
            estimator = InertialRoomEstimator(rng=np.random.default_rng(seed))
            layout = estimator.estimate(ROOM)
            errors.append(layout.area() - ROOM.area())
        # Blocked edges mean the trace extent systematically undershoots.
        assert np.mean(errors) < 0.0

    def test_error_larger_than_room_noise_floor(self):
        rel_errors = []
        for seed in range(6):
            estimator = InertialRoomEstimator(rng=np.random.default_rng(seed))
            layout = estimator.estimate(ROOM)
            rel_errors.append(abs(layout.area() - ROOM.area()) / ROOM.area())
        assert np.mean(rel_errors) > 0.05  # clearly worse than CrowdMap's visual path

    def test_layout_from_trace_rectangle(self):
        pts = np.array([[x, y] for x in np.linspace(0, 4, 9)
                        for y in np.linspace(0, 2, 5)])
        trace = Trajectory.from_arrays(pts)
        layout = InertialRoomEstimator.layout_from_trace(trace)
        assert layout.width == pytest.approx(4.0, abs=0.3)
        assert layout.depth == pytest.approx(2.0, abs=0.3)

    def test_short_trace_rejected(self):
        with pytest.raises(ValueError):
            InertialRoomEstimator.layout_from_trace(
                Trajectory.from_arrays(np.array([[0.0, 0.0]]))
            )


class TestJigsaw:
    def test_door_wall_is_accurate(self):
        estimator = JigsawRoomEstimator(rng=np.random.default_rng(4))
        layout = estimator.estimate(ROOM)
        bb = ROOM.bounding_box()
        # Door is on the south wall: the layout's south extent should sit
        # near the true wall even though the wander never reached it.
        south = layout.center.y - layout.depth / 2.0
        assert south == pytest.approx(bb.min_y, abs=0.4)

    def test_better_than_pure_inertial_on_average(self):
        jig_err, inert_err = [], []
        for seed in range(5):
            jig = JigsawRoomEstimator(rng=np.random.default_rng(seed))
            inert = InertialRoomEstimator(rng=np.random.default_rng(seed))
            jig_err.append(abs(jig.estimate(ROOM).area() - ROOM.area()))
            inert_err.append(abs(inert.estimate(ROOM).area() - ROOM.area()))
        assert np.mean(jig_err) <= np.mean(inert_err) + 1e-9


class TestSingleImageAggregator:
    @pytest.fixture(scope="class")
    def anchored(self, small_dataset):
        pipe = CrowdMapPipeline(CrowdMapConfig())
        return [pipe.anchor_session(s) for s in small_dataset.sws_sessions()]

    def test_merges_more_eagerly_than_sequence(self, anchored, config):
        from repro.core.aggregation import SequenceAggregator

        single = SingleImageAggregator(config).aggregate(anchored)
        sequence = SequenceAggregator(config).aggregate(anchored)
        assert len(single.merged_pairs()) >= len(sequence.merged_pairs())

    def test_single_anchor_suffices(self, anchored, config):
        aggregator = SingleImageAggregator(config)
        cand = aggregator.score_pair(anchored[0], anchored[0])
        assert cand.mergeable
        assert cand.n_anchor_matches == 1

    def test_result_structure(self, anchored, config):
        result = SingleImageAggregator(config).aggregate(anchored)
        assert len(result.trajectories) == len(anchored)
        flat = sorted(i for comp in result.components for i in comp)
        assert flat == list(range(len(anchored)))


class TestSfm:
    def make_spin_frames(self, richness, n=20, seed=0):
        plan = build_lab1(wall_richness=richness)
        walker = Walker(
            plan, WalkerProfile(user_id="sfm"),
            rng=np.random.default_rng(seed),
            renderer=Renderer(plan, Camera()),
        )
        room = plan.rooms[0]
        session = walker.perform_srs(room.center, room_name=room.name)
        frames = session.frames[:n]
        truth = [session.ground_truth.heading_at(f.timestamp) for f in frames]
        return frames, truth

    def test_rich_scene_tracks_rotation(self):
        frames, truth = self.make_spin_frames(richness=1.0)
        result = SfmSimulator().track(frames, truth)
        assert result.registration_rate > 0.6
        assert result.heading_rmse() < math.radians(25.0)

    def test_featureless_scene_fails(self):
        frames, truth = self.make_spin_frames(richness=0.0)
        rich_frames, rich_truth = self.make_spin_frames(richness=1.0)
        poor = SfmSimulator().track(frames, truth)
        rich = SfmSimulator().track(rich_frames, rich_truth)
        # Featureless walls: fewer registered transitions, larger error.
        assert poor.registration_rate <= rich.registration_rate
        assert poor.heading_rmse() >= rich.heading_rmse()

    def test_empty_input(self):
        result = SfmSimulator().track([], [])
        assert result.registration_rate == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            SfmSimulator().track([], [0.0])
