"""Extended SfM tests: track quality metrics and edge cases."""

import math

import numpy as np
import pytest

from repro.baselines.sfm import SfmSimulator, SfmTrackResult
from repro.vision.image import Frame


class TestTrackResult:
    def test_metrics_on_known_track(self):
        truth = np.array([0.0, 0.1, 0.2, 0.3])
        est = np.array([0.0, 0.1, 0.25, 0.2])
        result = SfmTrackResult(
            estimated_headings=est,
            true_headings=truth,
            registered=np.array([True, True, False]),
        )
        assert result.registration_rate == pytest.approx(2 / 3)
        assert result.max_heading_error() == pytest.approx(0.1)
        expected_rmse = math.sqrt(np.mean((est - truth) ** 2))
        assert result.heading_rmse() == pytest.approx(expected_rmse)

    def test_empty_track(self):
        result = SfmTrackResult(
            estimated_headings=np.empty(0),
            true_headings=np.empty(0),
            registered=np.empty(0, dtype=bool),
        )
        assert result.registration_rate == 0.0


class TestSfmOnRenderedScenes:
    def test_relative_yaw_sign(self, lab1_renderer):
        """A small CCW camera rotation must yield a positive yaw increment."""
        from repro.geometry.primitives import Point

        sim = SfmSimulator(camera=lab1_renderer.camera)
        pos = Point(10.0, 1.25)
        a = Frame(
            pixels=lab1_renderer.render(pos, 0.0,
                                        rng=np.random.default_rng(0)),
            timestamp=0.0, heading=0.0,
        )
        b = Frame(
            pixels=lab1_renderer.render(pos, math.radians(6.0),
                                        rng=np.random.default_rng(1)),
            timestamp=1.0, heading=math.radians(6.0),
        )
        dyaw = sim._relative_yaw(a, b)
        assert dyaw is not None
        assert dyaw == pytest.approx(math.radians(6.0), abs=math.radians(2.5))

    def test_identical_frames_zero_yaw(self, lab1_renderer):
        from repro.geometry.primitives import Point

        sim = SfmSimulator(camera=lab1_renderer.camera)
        pixels = lab1_renderer.render(Point(10.0, 1.25), 0.0,
                                      rng=np.random.default_rng(2))
        frame = Frame(pixels=pixels, timestamp=0.0, heading=0.0)
        dyaw = sim._relative_yaw(frame, frame)
        assert dyaw == pytest.approx(0.0, abs=1e-6)

    def test_unrelated_frames_unregistered(self, lab1_renderer):
        from repro.geometry.primitives import Point

        sim = SfmSimulator(camera=lab1_renderer.camera,
                           min_inlier_matches=12)
        a = Frame(
            pixels=lab1_renderer.render(Point(10.0, 1.25), 0.0,
                                        rng=np.random.default_rng(3)),
            timestamp=0.0, heading=0.0,
        )
        blank = Frame(pixels=np.full_like(a.pixels, 0.5), timestamp=1.0,
                      heading=0.0)
        assert sim._relative_yaw(a, blank) is None
