"""Batched kernel entry points are bit-identical to their per-frame twins.

The frame-batch planner only buys performance if batching is invisible:
every batched kernel must produce, frame for frame, the exact bits the
single-frame call produces. These tests mix frame shapes and value
ranges (float [0,1] and integer [0,255]) so the shape-grouping, the
rescale decisions and the scatter back into input order are all on the
hook — and they pin the LSD component-pruning shortcut to the unpruned
growth it claims to be equivalent to.
"""

from __future__ import annotations

import numpy as np

from repro.vision.color_histogram import (
    chromaticity_histogram,
    chromaticity_histogram_batch,
)
from repro.vision.hog import hog_descriptor, hog_descriptors_batch
from repro.vision.lsd import detect_line_segments
from repro.vision.surf import detect_and_describe, surf_detect_batch


def _textured(seed: int, h: int, w: int, scale: float = 1.0) -> np.ndarray:
    """A seeded color frame with gradient + blob structure."""
    rng = np.random.default_rng(seed)
    yy, xx = np.mgrid[0:h, 0:w]
    base = 0.5 + 0.25 * np.sin(xx / 5.0) + 0.2 * np.cos(yy / 9.0)
    base = np.clip(base + 0.1 * rng.standard_normal((h, w)), 0.0, 1.0)
    frame = np.stack(
        [base, np.roll(base, 2, axis=0), np.roll(base, 2, axis=1)], axis=-1
    )
    return frame * scale


def _mixed_frames():
    """Frames of two shapes and two value ranges, interleaved."""
    return [
        _textured(0, 48, 64),
        _textured(1, 32, 32),
        _textured(2, 48, 64, scale=255.0),
        _textured(3, 48, 64),
        _textured(4, 32, 32, scale=255.0),
    ]


class TestHogBatchIdentity:
    def test_batch_matches_per_frame(self):
        frames = _mixed_frames()
        batched = hog_descriptors_batch(frames, batch_size=2)
        for frame, descriptor in zip(frames, batched):
            single = hog_descriptor(frame)
            assert descriptor.dtype == single.dtype
            assert np.array_equal(descriptor, single)


class TestChromaticityBatchIdentity:
    def test_batch_matches_per_frame(self):
        frames = _mixed_frames()
        batched = chromaticity_histogram_batch(frames, batch_size=2)
        for frame, histogram in zip(frames, batched):
            assert np.array_equal(histogram, chromaticity_histogram(frame))

    def test_batched_rows_are_independent(self):
        frames = [_textured(7, 24, 24), _textured(8, 24, 24)]
        first, second = chromaticity_histogram_batch(frames, batch_size=2)
        before = second.copy()
        first += 1.0  # must not alias the sibling row's storage
        assert np.array_equal(second, before)


class TestSurfBatchIdentity:
    def test_batch_matches_per_frame(self):
        frames = [
            _textured(10, 64, 64),
            _textured(11, 80, 64),
            _textured(12, 64, 64, scale=255.0),
        ]
        batched = surf_detect_batch(frames)
        for frame, features in zip(frames, batched):
            singles = detect_and_describe(frame)
            assert len(features) == len(singles)
            for fa, fb in zip(features, singles):
                assert (fa.x, fa.y, fa.scale, fa.response) == (
                    fb.x, fb.y, fb.scale, fb.response,
                )
                assert np.array_equal(fa.descriptor, fb.descriptor)


class TestLsdPruningIdentity:
    def test_component_pruning_is_invisible(self, monkeypatch):
        """Segments with pruning on == segments with pruning disabled.

        Forcing ``scipy.ndimage.label`` to report zero components skips
        the early-rejection path entirely, reproducing unpruned region
        growing; the detected segments must match bit for bit.
        """
        images = [_textured(20, 96, 96), _textured(21, 64, 128, scale=255.0)]
        pruned = [detect_line_segments(image) for image in images]

        import scipy.ndimage

        monkeypatch.setattr(
            scipy.ndimage,
            "label",
            lambda mask, structure=None: (np.zeros(mask.shape, int), 0),
        )
        unpruned = [detect_line_segments(image) for image in images]
        # LineSegment2D is a frozen dataclass of floats: == is bit-exact.
        assert pruned == unpruned
        assert any(segments for segments in pruned)
