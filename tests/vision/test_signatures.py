"""Tests for color, shape, wavelet signatures and NCC."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.vision.color_histogram import (
    color_histogram,
    color_similarity,
    histogram_intersection,
)
from repro.vision.ncc import normalized_cross_correlation
from repro.vision.shape_matching import shape_signature, shape_similarity
from repro.vision.wavelet import (
    haar_transform_2d,
    wavelet_signature,
    wavelet_similarity,
)


def rgb(seed: int, shape=(32, 48)) -> np.ndarray:
    return np.random.default_rng(seed).random(shape + (3,))


class TestColorHistogram:
    def test_sums_to_one(self):
        hist = color_histogram(rgb(0))
        assert hist.sum() == pytest.approx(1.0)
        assert hist.shape == (8 * 8 * 8,)

    def test_grayscale_input(self):
        hist = color_histogram(np.random.default_rng(1).random((16, 16)))
        assert hist.sum() == pytest.approx(1.0)

    def test_255_range_input(self):
        img = (rgb(2) * 255).astype(float)
        assert color_histogram(img).sum() == pytest.approx(1.0)

    def test_pure_color_single_bin(self):
        img = np.zeros((8, 8, 3))
        img[..., 0] = 0.99
        hist = color_histogram(img, bins_per_channel=4)
        assert np.count_nonzero(hist) == 1

    def test_self_intersection_is_one(self):
        h = color_histogram(rgb(3))
        assert histogram_intersection(h, h) == pytest.approx(1.0)

    def test_intersection_symmetric(self):
        a = color_histogram(rgb(4))
        b = color_histogram(rgb(5))
        assert histogram_intersection(a, b) == pytest.approx(
            histogram_intersection(b, a)
        )

    def test_disjoint_colors_zero(self):
        red = np.zeros((8, 8, 3))
        red[..., 0] = 0.9
        blue = np.zeros((8, 8, 3))
        blue[..., 2] = 0.9
        assert color_similarity(red, blue, bins_per_channel=4) == 0.0

    def test_invalid_bins(self):
        with pytest.raises(ValueError):
            color_histogram(rgb(6), bins_per_channel=1)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            histogram_intersection(np.ones(4), np.ones(8))


class TestShapeSignature:
    def test_self_similarity_one(self):
        sig = shape_signature(rgb(7))
        assert shape_similarity(sig, sig) == pytest.approx(1.0)

    def test_signature_shape(self):
        sig = shape_signature(rgb(8), grid=4, n_bins=8)
        assert sig.shape == (4 * 4 * 8,)

    def test_vertical_vs_horizontal_edges_differ(self):
        v = np.zeros((32, 32))
        v[:, ::4] = 1.0
        h = np.zeros((32, 32))
        h[::4, :] = 1.0
        sim = shape_similarity(shape_signature(v), shape_signature(h))
        assert sim < 0.3

    def test_color_invariance(self):
        base = rgb(9)
        tinted = np.clip(base * np.array([1.0, 0.7, 0.7]), 0, 1)
        sim = shape_similarity(shape_signature(base), shape_signature(tinted))
        assert sim > 0.9

    def test_too_small_image(self):
        with pytest.raises(ValueError):
            shape_signature(np.ones((2, 2)), grid=4)


class TestWavelet:
    def test_haar_requires_power_of_two_square(self):
        with pytest.raises(ValueError):
            haar_transform_2d(np.ones((8, 12)))
        with pytest.raises(ValueError):
            haar_transform_2d(np.ones((12, 12)))

    def test_haar_energy_preserved(self):
        img = np.random.default_rng(10).random((16, 16))
        coeffs = haar_transform_2d(img)
        assert np.sum(coeffs**2) == pytest.approx(np.sum(img**2))

    def test_haar_dc_is_scaled_mean(self):
        img = np.random.default_rng(11).random((8, 8))
        coeffs = haar_transform_2d(img)
        assert coeffs[0, 0] == pytest.approx(img.sum() / 8.0)

    def test_constant_image_only_dc(self):
        coeffs = haar_transform_2d(np.full((8, 8), 0.5))
        assert abs(coeffs[0, 0]) > 0
        coeffs[0, 0] = 0.0
        assert np.allclose(coeffs, 0.0, atol=1e-12)

    def test_self_similarity(self):
        sig = wavelet_signature(rgb(12))
        assert wavelet_similarity(sig, sig) == pytest.approx(1.0)

    def test_keep_limits_signature(self):
        sig = wavelet_signature(rgb(13), keep=20)
        assert len(sig.positions) <= 20

    def test_different_images_differ(self):
        a = wavelet_signature(rgb(14))
        b = wavelet_signature(rgb(15))
        assert wavelet_similarity(a, b) < 0.8

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            wavelet_signature(rgb(16), size=48)


class TestNcc:
    def test_identical(self):
        img = rgb(17)
        assert normalized_cross_correlation(img, img) == pytest.approx(1.0)

    def test_inverted(self):
        img = np.random.default_rng(18).random((16, 16))
        assert normalized_cross_correlation(img, 1.0 - img) == pytest.approx(-1.0)

    def test_constant_images(self):
        a = np.full((8, 8), 0.3)
        assert normalized_cross_correlation(a, a) == 1.0
        b = np.full((8, 8), 0.9)
        # Both zero-variance after mean removal and equal residuals.
        assert normalized_cross_correlation(a, b) == 1.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            normalized_cross_correlation(np.ones((4, 4)), np.ones((5, 5)))

    @given(arrays(np.float64, (12, 12), elements=st.floats(0, 1)))
    @settings(max_examples=30)
    def test_range(self, img):
        other = np.random.default_rng(0).random((12, 12))
        value = normalized_cross_correlation(img, other)
        assert -1.0 - 1e-9 <= value <= 1.0 + 1e-9
