"""Coarse-to-fine LSD oracle: the pre-screen must be output-invisible.

The coarse support screen (``_coarse_support_screen``) erases only
support provably unable to seed a surviving segment, so in default mode
``prescreen=True`` must reproduce the unscreened detector's segments
*bit for bit* — on structured scenes, noise speckle and rendered frames
alike. Aggressive mode tightens the bounds beyond what is provable; its
correctness contract is the accuracy gate, so here it only has to stay
well-formed and keep the strong structure.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.vision.lsd import detect_line_segments


def _structured_image(size: int = 96) -> np.ndarray:
    """Bars and a diagonal over mild noise: plenty of survivable lines."""
    rng = np.random.default_rng(3)
    yy, xx = np.mgrid[0:size, 0:size]
    image = 0.4 + 0.04 * rng.standard_normal((size, size))
    image[20:24, 8:88] = 0.95
    image[30:80, 50:53] = 0.05
    image[(yy + xx > 150) & (yy + xx < 154)] = 0.9
    return np.clip(image, 0.0, 1.0)


def _speckle_image(size: int = 96) -> np.ndarray:
    """Pure noise speckle: the screen's best case, many doomed islands."""
    rng = np.random.default_rng(11)
    return np.clip(0.5 + 0.3 * rng.standard_normal((size, size)), 0.0, 1.0)


def _assert_identical(a, b):
    assert len(a) == len(b)
    for sa, sb in zip(a, b):
        assert (sa.x1, sa.y1, sa.x2, sa.y2, sa.strength) == (
            sb.x1, sb.y1, sb.x2, sb.y2, sb.strength
        )


class TestCoarsePrescreenOracle:
    @pytest.mark.parametrize(
        "image_fn", [_structured_image, _speckle_image],
        ids=["structured", "speckle"],
    )
    def test_default_mode_bit_identical(self, image_fn):
        image = image_fn()
        screened = detect_line_segments(image, prescreen=True)
        oracle = detect_line_segments(image, prescreen=False)
        _assert_identical(screened, oracle)

    def test_rendered_frame_bit_identical(self, sws_session):
        """The real pipeline input, not just synthetic rasters."""
        image = sws_session.frames[0].pixels
        _assert_identical(
            detect_line_segments(image, prescreen=True),
            detect_line_segments(image, prescreen=False),
        )

    def test_blank_image_yields_nothing(self):
        assert detect_line_segments(np.full((64, 64), 0.5)) == []

    def test_aggressive_screen_keeps_strong_lines(self):
        """Tightened (unprovable) bounds may drop marginal regions but
        must keep the unambiguous bars the layout estimator relies on."""
        image = _structured_image()
        segments = detect_line_segments(
            image, prescreen=True, aggressive=True
        )
        assert len(segments) >= 2
        assert max(s.length() for s in segments) > 30.0
