"""Tests for filtering primitives and integral images."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.vision.filters import (
    convolve2d,
    gaussian_blur,
    gaussian_kernel_1d,
    gradient_magnitude_orientation,
    sobel_gradients,
)
from repro.vision.integral import box_sum, box_sum_grid, integral_image


class TestConvolve:
    def test_identity_kernel(self):
        img = np.random.default_rng(0).random((8, 9))
        kernel = np.zeros((3, 3))
        kernel[1, 1] = 1.0
        assert np.allclose(convolve2d(img, kernel), img)

    def test_box_kernel_averages(self):
        img = np.ones((6, 6))
        kernel = np.full((3, 3), 1.0 / 9.0)
        out = convolve2d(img, kernel)
        assert np.allclose(out, 1.0)

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            convolve2d(np.ones((3, 3, 3)), np.ones((3, 3)))

    def test_shift_kernel(self):
        img = np.zeros((5, 5))
        img[2, 2] = 1.0
        kernel = np.zeros((3, 3))
        # True convolution: out(y, x) = sum k(i, j) img(y - (i - c), ...),
        # so a kernel tap above centre moves the impulse up.
        kernel[0, 1] = 1.0
        out = convolve2d(img, kernel)
        assert out[1, 2] == pytest.approx(1.0)


class TestGaussian:
    def test_kernel_normalized(self):
        k = gaussian_kernel_1d(1.5)
        assert k.sum() == pytest.approx(1.0)
        assert k[len(k) // 2] == k.max()

    def test_kernel_symmetric(self):
        k = gaussian_kernel_1d(2.0)
        assert np.allclose(k, k[::-1])

    def test_invalid_sigma(self):
        with pytest.raises(ValueError):
            gaussian_kernel_1d(0.0)

    def test_blur_preserves_mean(self):
        img = np.random.default_rng(1).random((20, 30))
        out = gaussian_blur(img, 2.0)
        assert out.mean() == pytest.approx(img.mean(), abs=0.01)

    def test_blur_reduces_variance(self):
        img = np.random.default_rng(2).random((30, 30))
        out = gaussian_blur(img, 2.0)
        assert out.std() < img.std()

    def test_blur_constant_is_constant(self):
        out = gaussian_blur(np.full((10, 10), 0.7), 1.0)
        assert np.allclose(out, 0.7)


class TestSobel:
    def test_vertical_edge_responds_in_gx(self):
        img = np.zeros((10, 10))
        img[:, 5:] = 1.0
        gx, gy = sobel_gradients(img)
        assert np.abs(gx[:, 4:6]).max() > 0
        assert np.abs(gy).max() == pytest.approx(0.0, abs=1e-12)

    def test_horizontal_edge_responds_in_gy(self):
        img = np.zeros((10, 10))
        img[5:, :] = 1.0
        gx, gy = sobel_gradients(img)
        assert np.abs(gy[4:6, :]).max() > 0
        assert np.abs(gx).max() == pytest.approx(0.0, abs=1e-12)

    def test_ramp_gradient_constant(self):
        img = np.tile(np.arange(10, dtype=float), (10, 1))
        gx, _ = sobel_gradients(img)
        # Sobel scales the unit ramp by 8 in the interior.
        assert np.allclose(gx[2:-2, 2:-2], 8.0)

    def test_orientation_range(self):
        img = np.random.default_rng(3).random((16, 16))
        _, orientation = gradient_magnitude_orientation(img)
        assert (orientation >= 0).all() and (orientation < np.pi).all()


class TestIntegral:
    def test_simple_sums(self):
        img = np.arange(12, dtype=float).reshape(3, 4)
        table = integral_image(img)
        assert box_sum(table, 0, 0, 3, 4) == img.sum()
        assert box_sum(table, 1, 1, 3, 3) == img[1:3, 1:3].sum()

    def test_clamping(self):
        img = np.ones((4, 4))
        table = integral_image(img)
        assert box_sum(table, -5, -5, 10, 10) == 16.0
        assert box_sum(table, 3, 3, 2, 2) == 0.0  # inverted window

    def test_rejects_rgb(self):
        with pytest.raises(ValueError):
            integral_image(np.ones((3, 3, 3)))

    @given(
        arrays(np.float64, (7, 9), elements=st.floats(0, 1)),
        st.integers(-2, 8),
        st.integers(-2, 10),
        st.integers(-2, 8),
        st.integers(-2, 10),
    )
    @settings(max_examples=60)
    def test_box_sum_matches_direct(self, img, y1, x1, y2, x2):
        table = integral_image(img)
        yy1, yy2 = np.clip(y1, 0, 7), np.clip(y2, 0, 7)
        xx1, xx2 = np.clip(x1, 0, 9), np.clip(x2, 0, 9)
        expected = img[yy1:yy2, xx1:xx2].sum() if (yy2 > yy1 and xx2 > xx1) else 0.0
        assert box_sum(table, y1, x1, y2, x2) == pytest.approx(expected)

    def test_box_sum_grid_matches_scalar(self):
        img = np.random.default_rng(4).random((12, 15))
        table = integral_image(img)
        ys = np.array([[2, 5], [7, 9]])
        xs = np.array([[3, 3], [10, 1]])
        grid = box_sum_grid(table, ys, xs, -1, -2, 2, 3)
        for i in range(2):
            for j in range(2):
                expected = box_sum(
                    table, ys[i, j] - 1, xs[i, j] - 2, ys[i, j] + 2, xs[i, j] + 3
                )
                assert grid[i, j] == pytest.approx(expected)
