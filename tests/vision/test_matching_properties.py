"""Property tests for descriptor matching and homography algebra."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.vision.homography import apply_homography, estimate_homography
from repro.vision.matching import match_descriptors
from repro.vision.surf import SurfFeature


def features_from(matrix):
    return [
        SurfFeature(x=float(i), y=0.0, scale=1.2, response=1.0,
                    descriptor=np.asarray(row, dtype=float))
        for i, row in enumerate(matrix)
    ]


descriptor_sets = st.lists(
    st.lists(st.floats(-1, 1), min_size=4, max_size=4),
    min_size=1,
    max_size=10,
)


class TestMatchingProperties:
    @given(descriptor_sets, descriptor_sets)
    @settings(max_examples=40, deadline=None)
    def test_similarity_symmetric(self, a, b):
        fa, fb = features_from(a), features_from(b)
        ab = match_descriptors(fa, fb, distance_threshold=0.5).similarity
        ba = match_descriptors(fb, fa, distance_threshold=0.5).similarity
        assert ab == pytest.approx(ba)

    @given(descriptor_sets)
    @settings(max_examples=30, deadline=None)
    def test_similarity_bounded(self, a):
        fa = features_from(a)
        rng = np.random.default_rng(0)
        fb = features_from(rng.uniform(-1, 1, (5, 4)))
        s = match_descriptors(fa, fb, distance_threshold=0.5).similarity
        assert 0.0 <= s <= 1.0

    @given(descriptor_sets)
    @settings(max_examples=30, deadline=None)
    def test_distinct_self_match_is_perfect(self, a):
        # Mutual-NN between (near-)duplicate descriptors is ambiguous by
        # construction, so quantize and deduplicate to enforce separation.
        unique = [
            list(row)
            for row in {tuple(round(v, 2) for v in r) for r in a}
        ]
        fa = features_from(unique)
        result = match_descriptors(fa, fa, distance_threshold=1e-6)
        assert result.n_matches == len(fa)
        assert result.similarity == pytest.approx(1.0)

    def test_threshold_monotone_in_matches(self):
        rng = np.random.default_rng(1)
        fa = features_from(rng.uniform(-1, 1, (20, 4)))
        fb = features_from(rng.uniform(-1, 1, (20, 4)))
        loose = match_descriptors(fa, fb, distance_threshold=2.0).n_matches
        tight = match_descriptors(fa, fb, distance_threshold=0.2).n_matches
        assert loose >= tight


def _reference_match_pairs(fa, fb, threshold):
    """The pre-vectorization mutual-NN loop, kept as the oracle.

    Walks every f1, finds its nearest f2 by explicit distance scan, then
    verifies the reverse nearest neighbour — exactly the definition in
    paper Algorithm 1, with ties broken by lowest index (argmin order).
    """
    pairs = []
    for i, f1 in enumerate(fa):
        best_j, best_d = -1, np.inf
        for j, f2 in enumerate(fb):
            d = float(np.linalg.norm(f1.descriptor - f2.descriptor))
            if d < best_d:
                best_j, best_d = j, d
        back_i, back_d = -1, np.inf
        for k, f1b in enumerate(fa):
            d = float(np.linalg.norm(fb[best_j].descriptor - f1b.descriptor))
            if d < back_d:
                back_i, back_d = k, d
        if back_i == i and best_d < threshold:
            pairs.append((i, best_j))
    return pairs


# Components on a dyadic grid (k/32): squares, dot products and their
# sums are all exact in float64, so the matcher's (x²+y²-2xy) expansion
# and the oracle's norm(a-b) agree bit for bit and ties are true ties —
# the test then checks tie-breaking logic, not summation-order rounding.
dyadic_sets = st.lists(
    st.lists(
        st.integers(-32, 32).map(lambda k: k / 32.0), min_size=4, max_size=4
    ),
    min_size=1,
    max_size=10,
)


class TestVectorizedAgainstReferenceLoop:
    """The vectorized matcher must reproduce the reference loop's pairs
    exactly — same indices, same order — not just the same similarity."""

    @given(dyadic_sets, dyadic_sets, st.floats(0.05, 1.5))
    @settings(max_examples=50, deadline=None)
    def test_pairs_identical_on_random_sets(self, a, b, threshold):
        fa, fb = features_from(a), features_from(b)
        result = match_descriptors(fa, fb, distance_threshold=threshold)
        assert list(result.pairs) == _reference_match_pairs(fa, fb, threshold)

    def test_pairs_identical_with_duplicate_descriptors(self):
        # Duplicates force argmin tie-breaks; both paths must break ties
        # the same way (lowest index wins).
        rows = [[0.1, 0.2, 0.3, 0.4]] * 3 + [[0.9, 0.1, 0.0, 0.2]]
        fa = features_from(rows)
        fb = features_from(rows[::-1])
        result = match_descriptors(fa, fb, distance_threshold=0.5)
        assert list(result.pairs) == _reference_match_pairs(fa, fb, 0.5)

    def test_pairs_identical_on_larger_seeded_sets(self):
        rng = np.random.default_rng(3)
        fa = features_from(rng.uniform(-1, 1, (40, 8)))
        fb = features_from(rng.uniform(-1, 1, (35, 8)))
        for threshold in (0.3, 0.8, 2.0):
            result = match_descriptors(fa, fb, distance_threshold=threshold)
            expected = _reference_match_pairs(fa, fb, threshold)
            assert list(result.pairs) == expected
            union = len(fa) + len(fb) - len(expected)
            assert result.similarity == pytest.approx(
                len(expected) / union if union else 0.0
            )


class TestHomographyProperties:
    @given(
        st.lists(
            st.tuples(st.floats(0, 100), st.floats(0, 100)),
            min_size=6, max_size=12, unique=True,
        ),
        st.floats(-0.5, 0.5),
        st.floats(-20, 20),
        st.floats(-20, 20),
    )
    @settings(max_examples=30, deadline=None)
    def test_similarity_transform_recovered(self, pts, theta, tx, ty):
        src = np.array(pts, dtype=float)
        # Skip near-degenerate (collinear) draws.
        if np.linalg.matrix_rank(src - src.mean(axis=0)) < 2:
            return
        c, s = np.cos(theta), np.sin(theta)
        dst = src @ np.array([[c, s], [-s, c]]) + np.array([tx, ty])
        h = estimate_homography(src, dst)
        back = apply_homography(h, src)
        assert np.allclose(back, dst, atol=1e-4)

    def test_identity_homography(self):
        src = np.array([[0, 0], [1, 0], [1, 1], [0, 1], [0.3, 0.7]], float)
        h = estimate_homography(src, src)
        assert np.allclose(h, np.eye(3), atol=1e-8)
