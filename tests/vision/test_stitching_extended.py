"""Extended stitching tests: content correctness of the composited canvas."""

import math

import numpy as np
import pytest

from repro.vision.image import Frame
from repro.vision.stitching import Panorama, stitch_cylindrical


FOV = math.radians(60.0)


def colour_frame(heading, colour, t):
    pixels = np.zeros((16, 24, 3))
    pixels[:, :] = colour
    return Frame(pixels=pixels, timestamp=t, heading=heading)


class TestStitchContent:
    def test_columns_carry_the_right_frame(self):
        """Each azimuth's canvas content must come from the frame facing it."""
        frames = [
            colour_frame(0.0, (1.0, 0.0, 0.0), 0.0),
            colour_frame(math.pi / 2.0, (0.0, 1.0, 0.0), 1.0),
            colour_frame(math.pi, (0.0, 0.0, 1.0), 2.0),
            colour_frame(3 * math.pi / 2.0, (1.0, 1.0, 0.0), 3.0),
        ]
        pano = stitch_cylindrical(frames, math.radians(100.0),
                                  panorama_width=360, refine=False)
        # The column looking along azimuth 0 must be dominated by red.
        col = pano.column_of_azimuth(0.0)
        pixel = pano.pixels[8, col]
        assert pixel[0] > pixel[2]
        # Azimuth pi -> blue dominates.
        col = pano.column_of_azimuth(math.pi)
        pixel = pano.pixels[8, col]
        assert pixel[2] > pixel[0]

    def test_feathering_blends_overlaps(self):
        frames = [
            colour_frame(0.0, (1.0, 0.0, 0.0), 0.0),
            colour_frame(math.radians(40.0), (0.0, 0.0, 1.0), 1.0),
        ]
        pano = stitch_cylindrical(frames, FOV, panorama_width=360,
                                  refine=False)
        # Mid-overlap column is a mixture, not either pure colour.
        col = pano.column_of_azimuth(math.radians(20.0))
        pixel = pano.pixels[8, col]
        assert 0.1 < pixel[0] < 0.95
        assert 0.1 < pixel[2] < 0.95

    def test_coverage_tracks_contributions(self):
        frames = [colour_frame(0.0, (0.5, 0.5, 0.5), 0.0)]
        pano = stitch_cylindrical(frames, FOV, panorama_width=360,
                                  refine=False)
        covered_cols = (pano.coverage.max(axis=0) > 0).sum()
        expected = int(round(FOV / (2 * math.pi) * 360))
        assert covered_cols == pytest.approx(expected, abs=3)

    def test_invalid_fov_rejected(self):
        with pytest.raises(ValueError):
            stitch_cylindrical([colour_frame(0, (1, 0, 0), 0)], 0.0)

    def test_mixed_frame_heights_resampled(self):
        small = Frame(pixels=np.ones((8, 12, 3)) * 0.3, timestamp=0.0,
                      heading=0.0)
        tall = Frame(pixels=np.ones((16, 24, 3)) * 0.7, timestamp=1.0,
                     heading=math.pi)
        pano = stitch_cylindrical([small, tall], FOV, panorama_width=180,
                                  panorama_height=16, refine=False)
        assert pano.pixels.shape == (16, 180, 3)


class TestPanoramaType:
    def test_gap_fraction_empty(self):
        pano = Panorama(
            pixels=np.zeros((4, 10, 3)), coverage=np.zeros((4, 10))
        )
        assert pano.gap_fraction() == 1.0

    def test_azimuth_wraps(self):
        pano = Panorama(
            pixels=np.zeros((4, 360, 3)), coverage=np.zeros((4, 360))
        )
        assert pano.column_of_azimuth(2 * math.pi + 0.1) == \
            pano.column_of_azimuth(0.1)
