"""Tests for rotation-invariant SURF."""

import math

import numpy as np
import pytest

from repro.vision.filters import gaussian_blur
from repro.vision.integral import integral_image
from repro.vision.matching import match_descriptors
from repro.vision.orientation import (
    assign_orientation,
    detect_and_describe_rotation_invariant,
)


def rotate_image_90(image: np.ndarray) -> np.ndarray:
    return np.rot90(image).copy()


@pytest.fixture(scope="module")
def textured():
    rng = np.random.default_rng(5)
    return np.clip(gaussian_blur(rng.random((120, 120)), 1.5), 0, 1)


class TestOrientationAssignment:
    def test_gradient_direction_recovered(self):
        # A strong horizontal ramp: gradient points along +x.
        img = np.tile(np.linspace(0, 1, 64), (64, 1))
        table = integral_image(img)
        angle = assign_orientation(table, 32.0, 32.0, 1.2)
        assert abs(math.degrees(angle)) < 25.0

    def test_vertical_ramp(self):
        img = np.tile(np.linspace(0, 1, 64)[:, None], (1, 64))
        table = integral_image(img)
        angle = assign_orientation(table, 32.0, 32.0, 1.2)
        assert abs(math.degrees(angle) - 90.0) < 25.0


class TestRotationInvariantMatching:
    def test_self_match(self, textured):
        feats = detect_and_describe_rotation_invariant(textured)
        assert feats
        result = match_descriptors(feats, feats, distance_threshold=0.3)
        assert result.similarity == pytest.approx(1.0)

    def test_90_degree_rotation_matches_better_than_upright(self, textured):
        from repro.vision.surf import detect_and_describe

        rotated = rotate_image_90(textured)

        upright_a = detect_and_describe(textured)
        upright_b = detect_and_describe(rotated)
        upright_score = match_descriptors(
            upright_a, upright_b, distance_threshold=0.3
        ).similarity

        rot_a = detect_and_describe_rotation_invariant(textured)
        rot_b = detect_and_describe_rotation_invariant(rotated)
        rot_score = match_descriptors(
            rot_a, rot_b, distance_threshold=0.3
        ).similarity
        assert rot_score > upright_score

    def test_empty_image(self):
        feats = detect_and_describe_rotation_invariant(np.full((60, 60), 0.5))
        assert feats == []

    def test_descriptors_unit_norm(self, textured):
        feats = detect_and_describe_rotation_invariant(textured,
                                                       max_features=20)
        for f in feats:
            assert np.linalg.norm(f.descriptor) == pytest.approx(1.0, abs=1e-9)
