"""Cross-cutting invariance tests for the vision substrate.

These pin the photometric properties the pipeline depends on: SURF's
contrast standardization, HOG's brightness invariance and the shape
signature's color independence, each checked against explicit image
transformations rather than rendered scenes.
"""

import numpy as np
import pytest

from repro.vision.filters import gaussian_blur
from repro.vision.hog import hog_descriptor, hog_similarity
from repro.vision.matching import match_descriptors
from repro.vision.shape_matching import shape_signature, shape_similarity
from repro.vision.surf import detect_and_describe
from repro.vision.wavelet import wavelet_signature, wavelet_similarity


@pytest.fixture(scope="module")
def scene():
    rng = np.random.default_rng(42)
    base = gaussian_blur(rng.random((90, 140)), 1.5)
    return np.clip(base, 0, 1)


class TestSurfPhotometricInvariance:
    def test_feature_count_stable_under_darkening(self, scene):
        bright = detect_and_describe(scene)
        dark = detect_and_describe(scene * 0.4)
        assert len(dark) >= 0.8 * len(bright)

    def test_descriptors_match_across_exposure(self, scene):
        bright = detect_and_describe(scene)
        dark = detect_and_describe(np.clip(scene * 0.5 + 0.05, 0, 1))
        result = match_descriptors(bright, dark, distance_threshold=0.25)
        assert result.similarity > 0.5

    def test_gamma_shift_tolerated(self, scene):
        a = detect_and_describe(scene)
        b = detect_and_describe(scene**1.4)
        result = match_descriptors(a, b, distance_threshold=0.25)
        assert result.similarity > 0.3


class TestHogInvariance:
    def test_scale_invariant(self, scene):
        a = hog_descriptor(scene)
        b = hog_descriptor(np.clip(scene * 0.6, 0, 1))
        assert hog_similarity(a, b) > 0.95

    def test_offset_invariant(self, scene):
        a = hog_descriptor(scene)
        b = hog_descriptor(np.clip(scene + 0.2, 0, 1))
        assert hog_similarity(a, b) > 0.8


class TestSignatureInvariance:
    def test_shape_signature_exposure_invariant(self, scene):
        rgb = np.stack([scene] * 3, axis=-1)
        a = shape_signature(rgb)
        b = shape_signature(np.clip(rgb * 0.5, 0, 1))
        assert shape_similarity(a, b) > 0.9

    def test_wavelet_signs_survive_scaling(self, scene):
        a = wavelet_signature(scene)
        b = wavelet_signature(np.clip(scene * 0.7, 0, 1))
        # Coefficient *positions and signs* are scale-invariant; only the
        # brightness penalty reduces the score.
        assert wavelet_similarity(a, b) > 0.5

    def test_wavelet_detects_content_change(self, scene):
        rng = np.random.default_rng(7)
        other = gaussian_blur(rng.random(scene.shape), 1.5)
        a = wavelet_signature(scene)
        b = wavelet_signature(other)
        assert wavelet_similarity(a, b) < 0.5
