"""Tests for homography, stitching, LSD, Hough and Otsu."""

import math

import numpy as np
import pytest

from repro.vision.homography import (
    apply_homography,
    estimate_homography,
    ransac_homography,
)
from repro.vision.hough import dominant_vertical_columns, hough_from_segments, hough_lines
from repro.vision.image import Frame
from repro.vision.lsd import LineSegment2D, detect_line_segments
from repro.vision.otsu import binarize, otsu_threshold
from repro.vision.stitching import (
    covers_full_circle,
    select_panorama_frames,
    stitch_cylindrical,
    wrap_to_2pi,
)


class TestHomography:
    def synthetic_pairs(self, h, n=20, seed=0):
        rng = np.random.default_rng(seed)
        src = rng.uniform(0, 100, (n, 2))
        dst = apply_homography(h, src)
        return src, dst

    def test_exact_recovery(self):
        h_true = np.array([[1.1, 0.05, 3.0], [-0.02, 0.95, -2.0], [1e-4, -5e-5, 1.0]])
        src, dst = self.synthetic_pairs(h_true)
        h_est = estimate_homography(src, dst)
        assert np.allclose(h_est, h_true, atol=1e-6)

    def test_translation_homography(self):
        src = np.array([[0, 0], [10, 0], [10, 10], [0, 10]], float)
        dst = src + np.array([5.0, -3.0])
        h = estimate_homography(src, dst)
        moved = apply_homography(h, src)
        assert np.allclose(moved, dst, atol=1e-9)

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            estimate_homography(np.zeros((3, 2)), np.zeros((3, 2)))

    def test_ransac_with_outliers(self):
        h_true = np.array([[1.0, 0.0, 10.0], [0.0, 1.0, -4.0], [0.0, 0.0, 1.0]])
        src, dst = self.synthetic_pairs(h_true, n=40, seed=1)
        rng = np.random.default_rng(2)
        dst_noisy = dst.copy()
        outliers = rng.choice(40, size=12, replace=False)
        dst_noisy[outliers] += rng.uniform(30, 80, (12, 2))
        result = ransac_homography(src, dst_noisy, rng=rng)
        assert result is not None
        assert result.n_inliers >= 25
        assert np.allclose(result.homography, h_true, atol=1e-3)

    def test_ransac_insufficient_data(self):
        assert ransac_homography(np.zeros((3, 2)), np.zeros((3, 2))) is None

    def test_ransac_pure_noise_returns_none(self):
        rng = np.random.default_rng(3)
        src = rng.uniform(0, 100, (12, 2))
        dst = rng.uniform(0, 100, (12, 2))
        result = ransac_homography(src, dst, rng=rng, min_inliers=8)
        assert result is None or result.n_inliers < 12


def make_frame(pixels, heading, t=0.0):
    return Frame(pixels=pixels, timestamp=t, heading=heading)


class TestStitching:
    FOV = math.radians(60.0)

    def ring_frames(self, n=8, noise=0):
        rng = np.random.default_rng(4)
        frames = []
        for k in range(n):
            heading = k * 2 * math.pi / n
            pixels = np.full((24, 32, 3), 0.2 + 0.6 * k / n)
            pixels += rng.normal(0, 0.01, pixels.shape) * noise
            frames.append(make_frame(np.clip(pixels, 0, 1), heading, t=float(k)))
        return frames

    def test_wrap_to_2pi(self):
        assert wrap_to_2pi(-0.1) == pytest.approx(2 * math.pi - 0.1)
        assert wrap_to_2pi(2 * math.pi + 0.3) == pytest.approx(0.3)

    def test_full_circle_coverage_check(self):
        assert covers_full_circle(self.ring_frames(8), self.FOV)
        assert not covers_full_circle(self.ring_frames(8)[:3], self.FOV)

    def test_coverage_requires_overlap(self):
        # 6 frames x 60 degrees exactly tile the circle with zero overlap:
        # fine at min_overlap=0, insufficient at min_overlap=0.2.
        frames = [
            make_frame(np.zeros((8, 8, 3)), k * math.pi / 3) for k in range(6)
        ]
        assert covers_full_circle(frames, self.FOV, min_overlap=0.0)
        assert not covers_full_circle(frames, self.FOV, min_overlap=0.2)

    def test_stitch_full_ring_has_no_gap(self):
        pano = stitch_cylindrical(
            self.ring_frames(10), self.FOV, panorama_width=360, refine=False
        )
        assert pano.gap_fraction() == 0.0
        assert pano.pixels.shape == (24, 360, 3)

    def test_stitch_partial_ring_leaves_gap(self):
        pano = stitch_cylindrical(
            self.ring_frames(10)[:4], self.FOV, panorama_width=360, refine=False
        )
        assert pano.gap_fraction() > 0.2

    def test_stitch_empty_raises(self):
        with pytest.raises(ValueError):
            stitch_cylindrical([], self.FOV)

    def test_azimuth_column_roundtrip(self):
        pano = stitch_cylindrical(
            self.ring_frames(8), self.FOV, panorama_width=360, refine=False
        )
        for az in (0.3, 2.0, 5.1):
            col = pano.column_of_azimuth(az)
            assert pano.azimuth_of_column(col) == pytest.approx(az, abs=0.05)

    def test_select_panorama_frames_thins_dense_ring(self):
        frames = self.ring_frames(36)
        selected = select_panorama_frames(frames, self.FOV, min_overlap=0.15)
        assert 5 <= len(selected) < 36
        assert covers_full_circle(selected, self.FOV)


class TestLsd:
    def test_detects_vertical_line(self):
        img = np.full((60, 80), 0.8)
        img[:, 40] = 0.1
        segments = detect_line_segments(img)
        assert any(s.is_vertical() and abs(s.midpoint()[0] - 40) < 2 for s in segments)

    def test_detects_horizontal_line(self):
        img = np.full((60, 80), 0.8)
        img[30, :] = 0.1
        segments = detect_line_segments(img)
        horizontals = [s for s in segments if abs(s.angle()) < 0.2 or abs(s.angle() - math.pi) < 0.2]
        assert horizontals

    def test_blank_image_no_segments(self):
        assert detect_line_segments(np.full((40, 40), 0.5)) == []

    def test_min_length_respected(self):
        img = np.full((60, 80), 0.8)
        img[10:14, 20] = 0.1  # 4-pixel stub
        segments = detect_line_segments(img, min_length=10.0)
        assert all(s.length() >= 10.0 for s in segments)

    def test_segment_properties(self):
        seg = LineSegment2D(0, 0, 3, 4, strength=1.0)
        assert seg.length() == 5.0
        assert seg.midpoint() == (1.5, 2.0)
        assert not seg.is_vertical()
        assert LineSegment2D(0, 0, 0, 5, 1.0).is_vertical()


class TestHough:
    def test_single_vertical_line(self):
        img = np.full((50, 50), 0.9)
        img[:, 25] = 0.0
        lines = hough_lines(img, max_lines=3)
        assert lines
        best = lines[0]
        # A vertical image line has normal theta ~ 0 and rho ~ x.
        assert min(best.theta, math.pi - best.theta) < 0.1
        assert abs(abs(best.rho) - 25) < 3

    def test_blank_image(self):
        assert hough_lines(np.full((30, 30), 0.5)) == []

    def test_from_segments_votes(self):
        segments = [
            LineSegment2D(10, 0, 10, 40, strength=5.0),
            LineSegment2D(10.5, 5, 10.5, 35, strength=4.0),
            LineSegment2D(0, 20, 40, 20, strength=1.0),
        ]
        lines = hough_from_segments(segments, (50, 50), max_lines=2)
        assert lines
        assert lines[0].votes >= lines[-1].votes

    def test_dominant_vertical_columns(self):
        segments = [
            LineSegment2D(100, 0, 100, 50, strength=3.0),
            LineSegment2D(101, 0, 101, 45, strength=2.0),
            LineSegment2D(300, 10, 300, 30, strength=1.0),
            LineSegment2D(0, 10, 50, 12, strength=9.0),  # horizontal: ignored
        ]
        ranked = dominant_vertical_columns(segments, image_width=400)
        assert ranked
        assert abs(ranked[0][0] - 100) <= 4


class TestOtsu:
    def test_bimodal_split(self):
        values = np.concatenate([np.full(50, 0.1), np.full(50, 0.9)])
        t = otsu_threshold(values)
        assert 0.1 < t < 0.9

    def test_constant_input(self):
        t = otsu_threshold(np.full(20, 0.4))
        assert t == pytest.approx(0.4)
        assert not binarize(np.full(20, 0.4)).any()

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            otsu_threshold(np.array([]))

    def test_binarize_selects_upper_mode(self):
        values = np.concatenate([np.full(80, 0.1), np.full(20, 0.95)])
        mask = binarize(values)
        assert mask.sum() == 20
