"""Tests for the HOG descriptor and the SURF-style feature pipeline."""

import numpy as np
import pytest

from repro.vision.filters import gaussian_blur
from repro.vision.hog import hog_descriptor, hog_similarity
from repro.vision.matching import match_descriptors, matched_point_pairs
from repro.vision.surf import (
    DEFAULT_FILTER_SIZES,
    SurfFeature,
    descriptor_matrix,
    detect_and_describe,
)


def textured(seed: int, shape=(80, 120)) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return gaussian_blur(rng.random(shape), 2.0)


class TestHog:
    def test_descriptor_shape(self):
        img = np.random.default_rng(0).random((64, 64))
        desc = hog_descriptor(img, cell_size=8, n_bins=9, block_size=2)
        cells = 64 // 8
        blocks = cells - 1
        assert desc.shape == (blocks * blocks * 4 * 9,)

    def test_identical_images_similarity_one(self):
        img = np.random.default_rng(1).random((48, 48))
        d = hog_descriptor(img)
        assert hog_similarity(d, d) == pytest.approx(1.0)

    def test_different_images_lower_similarity(self):
        a = hog_descriptor(textured(0))
        b = hog_descriptor(textured(9))
        assert hog_similarity(a, b) < 0.95

    def test_blocks_are_normalized(self):
        img = np.random.default_rng(2).random((64, 64))
        desc = hog_descriptor(img, cell_size=8, block_size=2, clip=0.2)
        assert desc.max() <= 0.2 / 0.19  # clip then renorm can exceed clip slightly
        assert desc.min() >= 0.0

    def test_brightness_invariance(self):
        img = textured(3)
        a = hog_descriptor(img)
        b = hog_descriptor(np.clip(img * 0.5, 0, 1))
        assert hog_similarity(a, b) > 0.98

    def test_too_small_image_raises(self):
        with pytest.raises(ValueError):
            hog_descriptor(np.ones((4, 4)), cell_size=8)

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            hog_similarity(np.ones(8), np.ones(9))


class TestSurfDetector:
    def test_detects_blob(self):
        img = np.full((60, 60), 0.5)
        yy, xx = np.mgrid[0:60, 0:60]
        img += 0.5 * np.exp(-((yy - 30) ** 2 + (xx - 30) ** 2) / (2 * 4.0**2))
        feats = detect_and_describe(img, threshold=1e-4)
        assert feats, "no features on a strong blob"
        best = max(feats, key=lambda f: f.response)
        assert abs(best.x - 30) <= 3 and abs(best.y - 30) <= 3

    def test_flat_image_has_no_features(self):
        assert detect_and_describe(np.full((60, 60), 0.7)) == []

    def test_max_features_cap(self):
        feats = detect_and_describe(textured(5), max_features=10)
        assert len(feats) <= 10

    def test_descriptors_unit_norm(self):
        feats = detect_and_describe(textured(6))
        assert feats
        for f in feats[:20]:
            assert np.linalg.norm(f.descriptor) == pytest.approx(1.0, abs=1e-9)

    def test_features_sorted_by_response(self):
        feats = detect_and_describe(textured(7))
        responses = [f.response for f in feats]
        assert responses == sorted(responses, reverse=True)

    def test_scales_follow_filter_sizes(self):
        feats = detect_and_describe(textured(8))
        valid_scales = {1.2 * s / 9.0 for s in DEFAULT_FILTER_SIZES}
        assert {f.scale for f in feats} <= valid_scales

    def test_accepts_rgb_and_255_range(self):
        rgb255 = (np.stack([textured(9)] * 3, axis=-1) * 255).astype(float)
        feats = detect_and_describe(rgb255)
        assert feats


class TestMatching:
    def test_shifted_scene_matches_with_correct_offset(self):
        base = textured(10, shape=(90, 200))
        a = base[:, :150]
        b = base[:, 25:175]
        fa = detect_and_describe(a)
        fb = detect_and_describe(b)
        result = match_descriptors(fa, fb, distance_threshold=0.3)
        assert result.n_matches >= 10
        pa, pb = matched_point_pairs(fa, fb, result)
        dx = np.median(pa[:, 0] - pb[:, 0])
        assert dx == pytest.approx(25.0, abs=2.0)

    def test_s2_formula(self):
        base = textured(11, shape=(90, 200))
        fa = detect_and_describe(base)
        result = match_descriptors(fa, fa, distance_threshold=0.3)
        # Self-match: every feature matches itself.
        assert result.n_matches == len(fa)
        assert result.similarity == pytest.approx(1.0)

    def test_empty_feature_sets(self):
        result = match_descriptors([], [])
        assert result.n_matches == 0 and result.similarity == 0.0

    def test_mutual_requirement(self):
        # Features with asymmetric nearest neighbours must not pair twice.
        def mk(d):
            return SurfFeature(0, 0, 1.2, 1.0, np.asarray(d, float))

        fa = [mk([1, 0, 0]), mk([0.9, 0.1, 0])]
        fb = [mk([1, 0, 0])]
        result = match_descriptors(fa, fb, distance_threshold=0.5)
        assert result.n_matches == 1

    def test_distance_threshold_enforced(self):
        def mk(d):
            return SurfFeature(0, 0, 1.2, 1.0, np.asarray(d, float))

        fa = [mk([1.0, 0.0])]
        fb = [mk([0.0, 1.0])]
        result = match_descriptors(fa, fb, distance_threshold=0.5)
        assert result.n_matches == 0

    def test_descriptor_matrix_empty(self):
        assert descriptor_matrix([]).shape == (0, 64)

    def test_unrelated_scenes_score_below_same_scene(self):
        a = textured(12, shape=(90, 150))
        b = textured(99, shape=(90, 150))
        fa = detect_and_describe(a)
        fb = detect_and_describe(b)
        unrelated = match_descriptors(fa, fb, distance_threshold=0.2).similarity
        same = match_descriptors(fa, fa, distance_threshold=0.2).similarity
        assert unrelated < same
