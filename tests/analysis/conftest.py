"""Shared fixtures for the crowdlint suite."""

from __future__ import annotations

import pytest


@pytest.fixture(autouse=True)
def _isolated_default_cache(tmp_path, monkeypatch):
    """Keep ``main()`` calls from writing ``.crowdlint_cache.json`` in cwd.

    The CLI's incremental cache defaults to a path relative to the
    invocation directory; under pytest that is the repo root, and tests
    that drive ``main()`` without an explicit ``--cache`` would litter
    (and worse, share) a cache file there. ``_build_parser`` reads the
    module attribute at call time, so patching it redirects the default.
    """
    monkeypatch.setattr(
        "repro.analysis.__main__.DEFAULT_CACHE_PATH",
        str(tmp_path / "default_cache.json"),
    )
