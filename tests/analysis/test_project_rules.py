"""Whole-program rule tests: CM010 layering, CM011 parallel safety,
CM012 shm lifecycle, plus the project graph they share.

Standalone fixtures (``cm011_*``, ``cm012_*``) lint as single-module
projects; the ``cmproj`` package lints as a real multi-module project via
``lint_paths`` — its *relative* imports only resolve because the engine
rewrites them against each file's package, so these tests also lock in
that satellite fix.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.analysis.engine import (
    ModuleContext,
    check_module,
    format_findings,
    lint_paths,
    lint_source,
)
from repro.analysis.graph import (
    LAYER_INDEX,
    LAYERS,
    build_import_graph,
    layer_index_of,
    layer_of,
)
from repro.analysis.project import ProjectContext
from repro.analysis.rules import ALL_RULES

FIXTURES = Path(__file__).parent / "fixtures"
CMPROJ = FIXTURES / "cmproj"

_MARKER_RE = re.compile(r"#\s*\[expect (CM\d{3})\]")


def expected_markers(path: Path):
    pairs = []
    for lineno, text in enumerate(path.read_text().splitlines(), start=1):
        for match in _MARKER_RE.finditer(text):
            pairs.append((match.group(1), lineno))
    return sorted(pairs)


def lint_fixture(path: Path):
    return lint_source(path.read_text(), path=str(path))


def make_project(modules):
    """Contexts + ProjectContext from ``{dotted_name: source}``."""
    contexts = [
        ModuleContext(f"{name.replace('.', '/')}.py", source, module_name=name)
        for name, source in modules.items()
    ]
    return contexts, ProjectContext.from_contexts(contexts)


def lint_project(modules):
    contexts, project = make_project(modules)
    findings = []
    for ctx in contexts:
        findings.extend(check_module(ctx, ALL_RULES, project=project))
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule))


class TestLayerResolution:
    def test_every_layer_name_is_unique(self):
        names = [name for group in LAYERS for name in group]
        assert len(names) == len(set(names)) == len(LAYER_INDEX)

    def test_last_matching_segment_wins(self):
        assert layer_of("repro.vision.hog") == "vision"
        assert layer_of("tests.analysis.fixtures.cmproj.vision.features") == "vision"
        assert layer_of("tests.analysis.fixtures.cmproj.serving.store") == "serving"
        assert layer_of("repro.cli") is None
        assert layer_index_of("repro.core.pipeline") == 0
        assert layer_index_of("repro.serving.frontend") == 6

    def test_declared_order_matches_issue_contract(self):
        assert LAYER_INDEX["core"] < LAYER_INDEX["vision"]
        assert LAYER_INDEX["vision"] < LAYER_INDEX["world"]
        assert LAYER_INDEX["world"] < LAYER_INDEX["eval"]
        assert LAYER_INDEX["eval"] < LAYER_INDEX["backend"]
        assert LAYER_INDEX["backend"] < LAYER_INDEX["serving"]


class TestStandaloneFixtures:
    @pytest.mark.parametrize("name", ["cm011", "cm012"])
    def test_violating_fixture_matches_markers(self, name):
        path = FIXTURES / f"{name}_violating.py"
        expected = expected_markers(path)
        assert expected, f"{path} has no [expect ...] markers"
        found = sorted((f.rule, f.line) for f in lint_fixture(path))
        assert found == expected

    @pytest.mark.parametrize("name", ["cm011", "cm012"])
    def test_clean_fixture_has_no_findings(self, name):
        path = FIXTURES / f"{name}_clean.py"
        findings = lint_fixture(path)
        assert findings == [], format_findings(findings)

    def test_cm011_findings_name_worker_and_entry(self):
        findings = lint_fixture(FIXTURES / "cm011_violating.py")
        messages = [f.message for f in findings]
        assert any("'accumulate'" in m for m in messages)
        assert any("map_parallel()" in m for m in messages)
        assert any("map_with_failures()" in m for m in messages)
        assert any("captures mutable module-level 'RESULTS'" in m
                   for m in messages)

    def test_cm012_findings_explain_the_hazard(self):
        findings = lint_fixture(FIXTURES / "cm012_violating.py")
        messages = [f.message for f in findings]
        assert any("used after close()/unlink()" in m for m in messages)
        assert any("escapes its arena's with scope" in m for m in messages)
        assert any("outlives its arena's with block" in m for m in messages)


class TestCmprojPackage:
    """The on-disk mini-project: relative imports, cross-module reach."""

    def test_all_findings_match_markers_exactly(self):
        expected = sorted(
            (str(path), rule, line)
            for path in CMPROJ.rglob("*.py")
            for rule, line in expected_markers(path)
        )
        assert expected, "cmproj has no [expect ...] markers"
        found = sorted(
            (f.path, f.rule, f.line) for f in lint_paths([str(CMPROJ)])
        )
        assert found == expected

    def test_cm010_message_names_layers_and_chain(self):
        findings = [
            f for f in lint_paths([str(CMPROJ)]) if f.rule == "CM010"
        ]
        assert findings
        for finding in findings:
            assert "layer 'vision' must not import layer 'serving'" \
                in finding.message
            assert "import chain: " in finding.message
            assert "cmproj.vision.features -> " in finding.message
            assert finding.message.rstrip(")").endswith("cmproj.serving.store")

    def test_cm011_lands_in_the_worker_file(self):
        findings = [
            f for f in lint_paths([str(CMPROJ)]) if f.rule == "CM011"
        ]
        assert len(findings) == 1
        assert findings[0].path.endswith("serving/store.py")
        assert "CACHE" in findings[0].message
        assert "jobs.py" in findings[0].message  # the submission site


class TestLayeringRule:
    def test_downward_and_same_layer_imports_are_clean(self):
        findings = lint_project({
            "proj.serving.api": "import proj.vision.kernel\n"
                                "import proj.serving.store\n",
            "proj.serving.store": "X = 1\n",
            "proj.vision.kernel": "Y = 2\n",
        })
        assert findings == [], format_findings(findings)

    def test_upward_import_is_flagged_with_edge(self):
        findings = lint_project({
            "proj.vision.kernel": "import proj.serving.api\n",
            "proj.serving.api": "X = 1\n",
        })
        assert [(f.rule, f.line) for f in findings] == [("CM010", 1)]
        assert "proj.vision.kernel -> proj.serving.api" in findings[0].message

    def test_type_checking_import_is_exempt(self):
        findings = lint_project({
            "proj.vision.kernel": (
                "from typing import TYPE_CHECKING\n"
                "if TYPE_CHECKING:\n"
                "    import proj.serving.api\n"
            ),
            "proj.serving.api": "X = 1\n",
        })
        assert findings == [], format_findings(findings)

    def test_lazy_function_body_import_still_counts(self):
        findings = lint_project({
            "proj.vision.kernel": (
                "def render():\n"
                "    import proj.serving.api\n"
                "    return proj.serving.api\n"
            ),
            "proj.serving.api": "X = 1\n",
        })
        assert [(f.rule, f.line) for f in findings] == [("CM010", 2)]

    def test_chain_through_unlayered_module_reports_full_path(self):
        """An upward edge cannot hide behind an unlayered glue module."""
        findings = lint_project({
            "proj.vision.kernel": "import proj.cli\n",
            "proj.cli": "import proj.serving.api\n",
            "proj.serving.api": "X = 1\n",
        })
        cm010 = [f for f in findings if f.rule == "CM010"]
        assert len(cm010) == 1
        assert cm010[0].path == "proj/vision/kernel.py"
        assert (
            "import chain: proj.vision.kernel -> proj.cli -> proj.serving.api"
            in cm010[0].message
        )

    def test_unlayered_module_itself_is_unrestricted(self):
        findings = lint_project({
            "proj.cli": "import proj.serving.api\n",
            "proj.serving.api": "X = 1\n",
        })
        assert findings == [], format_findings(findings)


class TestParallelSafetyRule:
    def test_executor_submit_is_an_entry_point(self):
        findings = lint_project({
            "proj.core.runner": (
                "from concurrent.futures import ProcessPoolExecutor\n"
                "SEEN = []\n"
                "def work(x):\n"
                "    SEEN.append(x)\n"
                "    return x\n"
                "def run(items):\n"
                "    with ProcessPoolExecutor() as pool:\n"
                "        return list(pool.map(work, items))\n"
            ),
        })
        assert [(f.rule, f.line) for f in findings] == [("CM011", 4)]
        assert "pool.map()" in findings[0].message

    def test_reachability_follows_local_helpers(self):
        findings = lint_project({
            "proj.core.runner": (
                "from repro.backend.workers import map_parallel\n"
                "STATS = {}\n"
                "def helper(x):\n"
                "    STATS[x] = x\n"
                "    return x\n"
                "def work(x):\n"
                "    return helper(x)\n"
                "def run(items):\n"
                "    return map_parallel(work, items)\n"
            ),
        })
        assert [(f.rule, f.line) for f in findings] == [("CM011", 4)]

    def test_parent_side_mutation_is_clean(self):
        findings = lint_project({
            "proj.core.runner": (
                "from repro.backend.workers import map_parallel\n"
                "RESULTS = {}\n"
                "def work(x):\n"
                "    return (x, x * 2)\n"
                "def run(items):\n"
                "    for key, value in map_parallel(work, items):\n"
                "        RESULTS[key] = value\n"
                "    return RESULTS\n"
            ),
        })
        assert findings == [], format_findings(findings)

    def test_reading_immutable_module_constant_is_clean(self):
        findings = lint_project({
            "proj.core.runner": (
                "from repro.backend.workers import map_parallel\n"
                "SCALE = 3\n"
                "def work(x):\n"
                "    return x * SCALE\n"
                "def run(items):\n"
                "    return map_parallel(work, items)\n"
            ),
        })
        assert findings == [], format_findings(findings)


class TestImportGraph:
    def test_relative_imports_resolve_against_package(self):
        source = "from .sibling import helper\nfrom ..other import thing\n"
        ctx = ModuleContext(
            "proj/pkg/mod.py", source, module_name="proj.pkg.mod"
        )
        targets = sorted(
            (s.module, s.name) for s in ctx.imports
        )
        assert targets == [
            ("proj.other", "thing"), ("proj.pkg.sibling", "helper"),
        ]
        assert ctx.from_imports["helper"] == "proj.pkg.sibling.helper"

    def test_relative_import_beyond_package_top_is_dropped(self):
        ctx = ModuleContext(
            "proj/mod.py", "from ....nowhere import x\n",
            module_name="proj.mod",
        )
        assert ctx.imports == []

    def test_graph_prefers_deepest_module_for_from_imports(self):
        contexts, project = make_project({
            "proj.pkg.sub": "X = 1\n",
            "proj.pkg": "Y = 2\n",
            "proj.user": "from proj.pkg import sub\n",
        })
        edges = project.graph.edges_from("proj.user")
        assert [dst for dst, _ in edges] == ["proj.pkg.sub"]

    def test_type_checking_imports_never_become_edges(self):
        contexts, _ = make_project({
            "proj.a": (
                "from typing import TYPE_CHECKING\n"
                "if TYPE_CHECKING:\n"
                "    import proj.b\n"
            ),
            "proj.b": "X = 1\n",
        })
        graph = build_import_graph(contexts)
        assert graph.edges_from("proj.a") == []
