"""Incremental-driver and baseline tests.

The acceptance contract: a warm ``python -m repro.analysis`` run must be
**byte-identical** on stdout to the cold run that populated the cache,
while stderr proves the cache actually did the work (hit counts, project
graph reused). These tests drive the real CLI (``main(argv)``) against a
tmp tree so they exercise the same path CI does.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.__main__ import main
from repro.analysis.baseline import (
    BaselineError,
    apply_baseline,
    find_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.cache import CacheStats, cached_lint, load_cache
from repro.analysis.engine import Finding, lint_paths
from repro.analysis.rules import ALL_RULES

DIRTY = "def check(x):\n    return x == 1.0\n"
CLEAN = "def double(x):\n    return x * 2\n"


@pytest.fixture
def tree(tmp_path):
    """Two-file lint target: one CM004 violation, one clean module."""
    src = tmp_path / "proj"
    src.mkdir()
    (src / "dirty.py").write_text(DIRTY)
    (src / "clean.py").write_text(CLEAN)
    return src


def run_cli(tree, cache, capsys, *extra):
    code = main(
        [str(tree), "--cache", str(cache), "--no-baseline", *extra]
    )
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestColdWarmIdentity:
    @pytest.mark.parametrize("fmt", ["text", "json", "sarif"])
    def test_warm_stdout_is_byte_identical(self, tree, tmp_path, capsys, fmt):
        cache = tmp_path / "cache.json"
        cold_code, cold_out, cold_err = run_cli(
            tree, cache, capsys, "--format", fmt
        )
        warm_code, warm_out, warm_err = run_cli(
            tree, cache, capsys, "--format", fmt
        )
        assert cold_code == warm_code == 1  # the CM004 finding gates
        assert warm_out == cold_out
        assert "0/2 file(s) hit, 2 miss(es)" in cold_err
        assert "project graph recomputed" in cold_err
        assert "2/2 file(s) hit, 0 miss(es)" in warm_err
        assert "project graph reused" in warm_err

    def test_stats_stay_on_stderr(self, tree, tmp_path, capsys):
        cache = tmp_path / "cache.json"
        _, out, err = run_cli(tree, cache, capsys, "--format", "json")
        json.loads(out)  # stdout must remain machine-parseable
        assert "crowdlint cache:" in err
        assert "crowdlint cache:" not in out


class TestInvalidation:
    def test_source_edit_misses_only_that_file(self, tree, tmp_path):
        cache = str(tmp_path / "cache.json")
        cached_lint([str(tree)], cache_path=cache)
        (tree / "clean.py").write_text(CLEAN + "EXTRA = 1\n")
        findings, stats = cached_lint([str(tree)], cache_path=cache)
        assert (stats.hits, stats.misses) == (1, 1)
        assert stats.project_reused is False
        # Results still equal a from-scratch lint of the edited tree.
        assert findings == lint_paths([str(tree)])

    def test_new_file_recomputes_project_pass(self, tree, tmp_path):
        cache = str(tmp_path / "cache.json")
        cached_lint([str(tree)], cache_path=cache)
        (tree / "third.py").write_text("Z = 3\n")
        _, stats = cached_lint([str(tree)], cache_path=cache)
        assert (stats.hits, stats.misses) == (2, 1)
        assert stats.project_reused is False

    def test_rules_version_bump_invalidates_everything(
        self, tree, tmp_path, monkeypatch
    ):
        cache = str(tmp_path / "cache.json")
        cached_lint([str(tree)], cache_path=cache)
        monkeypatch.setattr(
            "repro.analysis.cache.RULES_VERSION", "cm999.test"
        )
        _, stats = cached_lint([str(tree)], cache_path=cache)
        assert (stats.hits, stats.misses) == (0, 2)

    def test_select_does_not_reuse_full_rule_set_cache(self, tree, tmp_path):
        cache = str(tmp_path / "cache.json")
        cached_lint([str(tree)], cache_path=cache)
        subset = [r for r in ALL_RULES if r.rule_id == "CM004"]
        _, stats = cached_lint([str(tree)], rules=subset, cache_path=cache)
        assert stats.hits == 0

    def test_corrupted_cache_is_treated_as_empty(self, tree, tmp_path):
        cache = tmp_path / "cache.json"
        cache.write_text("{not json")
        findings, stats = cached_lint([str(tree)], cache_path=str(cache))
        assert stats.hits == 0
        assert findings == lint_paths([str(tree)])
        # And the run healed the file: the next one is fully warm.
        _, stats = cached_lint([str(tree)], cache_path=str(cache))
        assert stats.project_reused is True

    def test_load_cache_rejects_wrong_schema(self, tmp_path):
        cache = tmp_path / "cache.json"
        cache.write_text(json.dumps({"schema": "other/9", "files": {}}))
        assert load_cache(str(cache), "whatever") is None


class TestCachedLintApi:
    def test_cold_and_warm_findings_are_equal(self, tree, tmp_path):
        cache = str(tmp_path / "cache.json")
        cold, cold_stats = cached_lint([str(tree)], cache_path=cache)
        warm, warm_stats = cached_lint([str(tree)], cache_path=cache)
        assert warm == cold
        assert cold_stats.project_reused is False
        assert warm_stats.project_reused is True
        assert warm_stats.describe() == (
            "crowdlint cache: 2/2 file(s) hit, 0 miss(es), "
            "project graph reused"
        )

    def test_use_cache_false_never_writes(self, tree, tmp_path):
        cache = tmp_path / "cache.json"
        findings, stats = cached_lint(
            [str(tree)], cache_path=str(cache), use_cache=False
        )
        assert not cache.exists()
        assert findings == lint_paths([str(tree)])

    def test_syntax_error_is_cached_like_any_finding(self, tree, tmp_path):
        cache = str(tmp_path / "cache.json")
        (tree / "broken.py").write_text("def oops(:\n")
        cold, _ = cached_lint([str(tree)], cache_path=cache)
        warm, stats = cached_lint([str(tree)], cache_path=cache)
        assert stats.project_reused is True
        assert warm == cold
        assert any(f.rule == "CM000" for f in warm)

    def test_stats_default_shape(self):
        stats = CacheStats()
        assert "0/0 file(s) hit" in stats.describe()
        assert "recomputed" in stats.describe()


class TestBaselineFile:
    def make_baseline(self, tmp_path, entries):
        path = tmp_path / ".crowdlint-baseline.json"
        path.write_text(
            json.dumps({"schema": "crowdlint-baseline/1", "entries": entries})
        )
        return str(path)

    def test_reasonless_entry_is_rejected(self, tmp_path):
        path = self.make_baseline(
            tmp_path, [{"rule": "CM004", "path": "proj/dirty.py"}]
        )
        with pytest.raises(BaselineError, match="has no reason"):
            load_baseline(path)

    def test_cli_exits_2_on_reasonless_baseline(self, tree, tmp_path, capsys):
        path = self.make_baseline(
            tmp_path, [{"rule": "CM004", "path": "proj/dirty.py"}]
        )
        code = main(
            [
                str(tree),
                "--cache", str(tmp_path / "cache.json"),
                "--baseline", path,
            ]
        )
        assert code == 2
        assert "has no reason" in capsys.readouterr().err

    def test_baseline_suppresses_matching_findings(self, tree, tmp_path, capsys):
        path = self.make_baseline(
            tmp_path,
            [
                {
                    "rule": "CM004",
                    "path": "proj/dirty.py",
                    "reason": "fixture: accepted float compare",
                }
            ],
        )
        code = main(
            [
                str(tree),
                "--cache", str(tmp_path / "cache.json"),
                "--baseline", path,
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "no findings" in captured.out
        assert "1 finding(s) suppressed" in captured.err

    def test_stale_entries_are_reported(self, tree, tmp_path, capsys):
        path = self.make_baseline(
            tmp_path,
            [
                {
                    "rule": "CM001",
                    "path": "proj/nonexistent.py",
                    "reason": "left behind after the module was deleted",
                }
            ],
        )
        code = main(
            [
                str(tree),
                "--cache", str(tmp_path / "cache.json"),
                "--baseline", path,
            ]
        )
        err = capsys.readouterr().err
        assert code == 1  # CM004 still gates; stale entry suppressed nothing
        assert "matched nothing" in err
        assert "CM001 proj/nonexistent.py" in err

    def test_apply_baseline_boundary_suffix_match(self):
        finding = Finding(
            rule="CM004", path="/abs/proj/dirty.py", line=2, col=11,
            message="float equality", severity="error",
        )
        from repro.analysis.baseline import BaselineEntry

        hit = BaselineEntry(rule="CM004", path="proj/dirty.py", reason="r")
        near_miss = BaselineEntry(
            rule="CM004", path="irty.py", reason="r"
        )
        kept, suppressed, unused = apply_baseline(
            [finding], [hit, near_miss]
        )
        assert kept == [] and suppressed == 1
        assert unused == [near_miss]  # substring != path-boundary suffix

    def test_write_baseline_demands_reasons(self, tree, tmp_path):
        out_path = str(tmp_path / "generated.json")
        findings = lint_paths([str(tree)])
        count = write_baseline(out_path, findings)
        assert count == 1
        with pytest.raises(BaselineError, match="has no reason"):
            load_baseline(out_path)
        data = json.loads(Path(out_path).read_text())
        assert data["entries"][0]["reason"].startswith("TODO")

    def test_write_baseline_cli(self, tree, tmp_path, capsys):
        out_path = str(tmp_path / "generated.json")
        code = main(
            [
                str(tree),
                "--cache", str(tmp_path / "cache.json"),
                "--no-baseline",
                "--write-baseline", out_path,
            ]
        )
        assert code == 0
        assert "fill in every TODO reason" in capsys.readouterr().err
        assert Path(out_path).is_file()

    def test_find_baseline_walks_upward(self, tmp_path):
        nested = tmp_path / "a" / "b" / "c"
        nested.mkdir(parents=True)
        marker = tmp_path / "a" / ".crowdlint-baseline.json"
        marker.write_text("{}")
        assert find_baseline(str(nested)) == str(marker)
        assert find_baseline(str(tmp_path / "a")) == str(marker)

    def test_find_baseline_returns_none_without_file(self, tmp_path):
        nested = tmp_path / "x" / "y"
        nested.mkdir(parents=True)
        found = find_baseline(str(nested))
        assert found is None or not found.startswith(str(tmp_path))
