"""Rule-catalogue generation and the README drift gate."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.catalog import (
    RULE_TABLE_BEGIN,
    RULE_TABLE_END,
    extract_rule_table,
    render_rule_table,
    rule_table_markdown,
    update_readme,
)
from repro.analysis.rules import ALL_RULES

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestTableRendering:
    def test_every_rule_has_a_row(self):
        table = rule_table_markdown()
        for rule in ALL_RULES:
            assert f"| {rule.rule_id} |" in table
            assert rule.title in table

    def test_rows_are_sorted_by_rule_id(self):
        rows = [
            line.split("|")[1].strip()
            for line in rule_table_markdown().splitlines()[2:]
        ]
        assert rows == sorted(rows)

    def test_rendered_block_is_marker_delimited(self):
        block = render_rule_table()
        assert block.startswith(RULE_TABLE_BEGIN)
        assert block.endswith(RULE_TABLE_END)


class TestReadmeDrift:
    """The committed README table must equal the generated one."""

    def test_readme_table_matches_rule_metadata(self):
        readme = (REPO_ROOT / "README.md").read_text()
        current = extract_rule_table(readme)
        assert current is not None, (
            "README.md lost its crowdlint rule-table markers"
        )
        assert current == render_rule_table(), (
            "README rule table drifted from ALL_RULES — run "
            "`python -m repro.analysis --update-rule-docs`"
        )


class TestUpdateReadme:
    def test_rewrites_stale_table_in_place(self, tmp_path):
        readme = tmp_path / "README.md"
        readme.write_text(
            "# Title\n\n"
            f"{RULE_TABLE_BEGIN}\nstale rows\n{RULE_TABLE_END}\n\n"
            "trailing prose\n"
        )
        assert update_readme(str(readme)) is True
        text = readme.read_text()
        assert "stale rows" not in text
        assert extract_rule_table(text) == render_rule_table()
        assert text.startswith("# Title\n")
        assert text.endswith("trailing prose\n")

    def test_noop_when_already_current(self, tmp_path):
        readme = tmp_path / "README.md"
        readme.write_text(f"intro\n\n{render_rule_table()}\n")
        assert update_readme(str(readme)) is False

    def test_missing_markers_raise(self, tmp_path):
        readme = tmp_path / "README.md"
        readme.write_text("no markers here\n")
        with pytest.raises(ValueError, match="rule-table markers"):
            update_readme(str(readme))
