"""Crowdlint (repro.analysis) behaviour tests.

The fixture modules under ``fixtures/`` are linted as text; every
violating line carries a trailing ``# [expect CMxxx]`` marker and the
tests assert the findings match those markers *exactly* — same rule id,
same line — so a rule that drifts (over- or under-reporting) fails here
before it ever gates CI.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

import pytest

from repro.analysis import lint_paths, lint_source
from repro.analysis.__main__ import main
from repro.analysis.baseline import apply_baseline, load_baseline
from repro.analysis.engine import ModuleContext, check_module, format_findings
from repro.analysis.project import ProjectContext
from repro.analysis.rules import ALL_RULES

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]

_MARKER_RE = re.compile(r"#\s*\[expect (CM\d{3})\]")


def expected_markers(path: Path):
    """(rule, line) pairs from the fixture's ``# [expect CMxxx]`` comments."""
    pairs = []
    for lineno, text in enumerate(path.read_text().splitlines(), start=1):
        for match in _MARKER_RE.finditer(text):
            pairs.append((match.group(1), lineno))
    return sorted(pairs)


def lint_fixture(path: Path):
    return lint_source(path.read_text(), path=str(path))


class TestFixtures:
    @pytest.mark.parametrize(
        "name", ["cm001", "cm002", "cm003", "cm004", "cm005"]
    )
    def test_violating_fixture_matches_markers(self, name):
        path = FIXTURES / f"{name}_violating.py"
        expected = expected_markers(path)
        assert expected, f"{path} has no [expect ...] markers"
        found = sorted((f.rule, f.line) for f in lint_fixture(path))
        assert found == expected

    @pytest.mark.parametrize(
        "name", ["cm001", "cm002", "cm003", "cm004", "cm005"]
    )
    def test_clean_fixture_has_no_findings(self, name):
        path = FIXTURES / f"{name}_clean.py"
        findings = lint_fixture(path)
        assert findings == [], format_findings(findings)

    def test_findings_carry_path_and_location(self):
        path = FIXTURES / "cm001_violating.py"
        finding = lint_fixture(path)[0]
        assert finding.path == str(path)
        assert finding.location == f"{path}:{finding.line}"
        assert str(finding).startswith(f"{path}:{finding.line}:")
        assert " CM001 " in str(finding)


class TestPragmas:
    def test_pragma_for_other_rule_does_not_suppress(self):
        source = (
            "import numpy as np\n"
            "rng = np.random.default_rng()  "
            "# crowdlint: allow[CM004] wrong rule id\n"
        )
        assert [f.rule for f in lint_source(source)] == ["CM001"]

    def test_pragma_without_reason_reports_cm000_and_keeps_finding(self):
        source = (
            "import numpy as np\n"
            "rng = np.random.default_rng()  # crowdlint: allow[CM001]\n"
        )
        rules = sorted(f.rule for f in lint_source(source))
        assert rules == ["CM000", "CM001"]

    def test_pragma_with_reason_suppresses(self):
        source = (
            "import numpy as np\n"
            "rng = np.random.default_rng()  "
            "# crowdlint: allow[CM001] entropy source for a one-off demo\n"
        )
        assert lint_source(source) == []

    def test_pragma_covers_multiple_rules(self):
        source = (
            "import time\n"
            "def f(x):\n"
            "    return x == 1.0 and time.time()  "
            "# crowdlint: allow[CM002, CM004] fixture exercising both rules\n"
        )
        assert lint_source(source) == []

    def test_syntax_error_reports_cm000(self):
        findings = lint_source("def broken(:\n    pass\n")
        assert [f.rule for f in findings] == ["CM000"]
        assert "syntax error" in findings[0].message

    def test_pragma_on_line_above_suppresses(self):
        source = (
            "import numpy as np\n"
            "# crowdlint: allow[CM001] entropy source for a one-off demo\n"
            "rng = np.random.default_rng()\n"
        )
        assert lint_source(source) == []

    def test_pragma_anywhere_on_multiline_statement_suppresses(self):
        """A statement spanning lines is covered by a pragma on any of them."""
        first = (
            "import numpy as np\n"
            "rng = np.random.default_rng(  "
            "# crowdlint: allow[CM001] seeded by caller in production\n"
            ")\n"
        )
        last = (
            "import numpy as np\n"
            "rng = np.random.default_rng(\n"
            ")  # crowdlint: allow[CM001] seeded by caller in production\n"
        )
        assert lint_source(first) == []
        assert lint_source(last) == []

    def test_multiline_finding_without_pragma_still_fires(self):
        source = "import numpy as np\nrng = np.random.default_rng(\n)\n"
        assert [f.rule for f in lint_source(source)] == ["CM001"]


class TestImportResolution:
    def test_aliased_numpy_random_module_is_resolved(self):
        source = "import numpy.random as npr\nx = npr.normal(0.0, 1.0)\n"
        assert [f.rule for f in lint_source(source)] == ["CM001"]

    def test_local_generator_calls_are_not_flagged(self):
        source = (
            "import numpy as np\n"
            "def f(rng):\n"
            "    return rng.normal(0.0, 1.0) + np.mean([1, 2])\n"
        )
        assert lint_source(source) == []

    def test_datetime_alias_is_resolved(self):
        source = "from datetime import datetime as dt\nx = dt.now()\n"
        assert [f.rule for f in lint_source(source)] == ["CM002"]


class TestRepoIsClean:
    def test_src_tree_is_clean_after_baseline(self):
        """The gate CI enforces: src lints clean modulo the committed baseline.

        Crowdlint runs on its own source here too — the analyzer must
        satisfy every rule it enforces, including the new project rules.
        """
        findings = lint_paths([str(REPO_ROOT / "src")])
        entries = load_baseline(str(REPO_ROOT / ".crowdlint-baseline.json"))
        kept, suppressed, unused = apply_baseline(findings, entries)
        assert kept == [], format_findings(kept)
        # Every committed baseline entry must still be earning its keep.
        assert unused == [], [(e.rule, e.path) for e in unused]
        assert suppressed == len(findings)

    def test_cli_self_lint_exits_zero(self, capsys, tmp_path):
        code = main(
            ["--cache", str(tmp_path / "cache.json"), str(REPO_ROOT / "src")]
        )
        captured = capsys.readouterr()
        assert code == 0, captured.out
        assert "no findings" in captured.out
        assert "matched nothing" not in captured.err


class TestCli:
    def test_exit_1_on_violating_fixture(self, capsys):
        assert main([str(FIXTURES / "cm001_violating.py")]) == 1
        out = capsys.readouterr().out
        assert "CM001" in out and "finding(s)" in out

    def test_exit_0_on_clean_fixture(self, capsys):
        assert main([str(FIXTURES / "cm001_clean.py")]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_exit_1_on_fixture_directory(self):
        assert main([str(FIXTURES)]) == 1

    def test_select_limits_rules(self, capsys):
        assert main(["--select", "CM004", str(FIXTURES / "cm001_violating.py")]) == 0
        assert main(["--select", "CM004", str(FIXTURES / "cm004_violating.py")]) == 1

    def test_select_unknown_rule_is_usage_error(self, capsys):
        assert main(["--select", "CM999", str(FIXTURES)]) == 2
        assert "CM999" in capsys.readouterr().err

    def test_missing_path_is_usage_error(self, capsys):
        assert main([str(FIXTURES / "no_such_file.py")]) == 2

    def test_json_output_is_parseable(self, capsys):
        assert main(["--json", str(FIXTURES / "cm004_violating.py")]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert {entry["rule"] for entry in payload} == {"CM004"}
        assert all(
            set(entry)
            == {"rule", "path", "line", "col", "message", "severity", "end_line"}
            for entry in payload
        )
        assert {entry["severity"] for entry in payload} == {"error"}
        assert all(entry["end_line"] >= entry["line"] for entry in payload)

    def test_list_rules_prints_table(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ALL_RULES:
            assert rule.rule_id in out


class TestCm008:
    """CM008 is path-scoped to eval modules and error-severity."""

    EVAL = FIXTURES / "eval"

    def test_violating_fixture_matches_markers(self):
        path = self.EVAL / "cm008_violating.py"
        expected = expected_markers(path)
        assert expected, f"{path} has no [expect ...] markers"
        found = sorted((f.rule, f.line) for f in lint_fixture(path))
        assert found == expected

    def test_clean_fixture_has_no_findings(self):
        path = self.EVAL / "cm008_clean.py"
        findings = lint_fixture(path)
        assert findings == [], format_findings(findings)

    def test_findings_are_errors(self):
        findings = lint_fixture(self.EVAL / "cm008_violating.py")
        assert findings and {f.severity for f in findings} == {"error"}

    def test_rule_only_applies_under_an_eval_directory(self):
        source = (self.EVAL / "cm008_violating.py").read_text()
        assert lint_source(source, path="somewhere/else/harness.py") == []

    def test_monotonic_clock_allowed_outside_eval_but_not_inside(self):
        source = "import time\nstart = time.perf_counter()\n"
        # CM002 permits monotonic reads in general library code ...
        assert lint_source(source, path="src/repro/bench/timers.py") == []
        # ... but scorecard artifacts must not observe any clock.
        assert [f.rule for f in lint_source(source, path="src/repro/eval/x.py")] == [
            "CM008"
        ]


class TestCm006:
    """CM006 is path-scoped to vision modules and advisory-severity."""

    VISION = FIXTURES / "vision"

    def test_violating_fixture_matches_markers(self):
        path = self.VISION / "cm006_violating.py"
        expected = expected_markers(path)
        assert expected, f"{path} has no [expect ...] markers"
        found = sorted((f.rule, f.line) for f in lint_fixture(path))
        assert found == expected

    def test_clean_fixture_has_no_findings(self):
        path = self.VISION / "cm006_clean.py"
        findings = lint_fixture(path)
        assert findings == [], format_findings(findings)

    def test_findings_are_advisory(self):
        findings = lint_fixture(self.VISION / "cm006_violating.py")
        assert findings and {f.severity for f in findings} == {"advisory"}
        assert "[advisory]" in str(findings[0])

    def test_rule_only_applies_under_a_vision_directory(self):
        source = (self.VISION / "cm006_violating.py").read_text()
        assert lint_source(source, path="somewhere/else/kernels.py") == []
        # "vision" must be a full directory component, not a substring.
        assert lint_source(source, path="src/revisions/kernels.py") == []

    def test_cli_exits_zero_on_advisory_only_findings(self, capsys):
        assert main([str(self.VISION / "cm006_violating.py")]) == 0
        out = capsys.readouterr().out
        assert "CM006" in out and "advisory" in out

    def test_format_findings_counts_severities(self):
        findings = lint_fixture(self.VISION / "cm006_violating.py")
        report = format_findings(findings)
        assert f"{len(findings)} finding(s) (0 error" in report


class TestCm007:
    """CM007 is path-scoped to serving modules and advisory-severity."""

    SERVING = FIXTURES / "serving"

    def test_violating_fixture_matches_markers(self):
        path = self.SERVING / "cm007_violating.py"
        expected = expected_markers(path)
        assert expected, f"{path} has no [expect ...] markers"
        found = sorted((f.rule, f.line) for f in lint_fixture(path))
        assert found == expected

    def test_clean_fixture_has_no_findings(self):
        path = self.SERVING / "cm007_clean.py"
        findings = lint_fixture(path)
        assert findings == [], format_findings(findings)

    def test_findings_are_advisory(self):
        findings = lint_fixture(self.SERVING / "cm007_violating.py")
        assert findings and {f.severity for f in findings} == {"advisory"}
        assert "[advisory]" in str(findings[0])

    def test_rule_only_applies_under_a_serving_directory(self):
        source = (self.SERVING / "cm007_violating.py").read_text()
        assert lint_source(source, path="somewhere/else/router.py") == []
        # "serving" must be a full directory component, not a substring.
        assert lint_source(source, path="src/observing/router.py") == []

    def test_aliased_sleep_is_resolved(self):
        source = "from time import sleep\nsleep(0.1)\n"
        findings = lint_source(source, path="src/repro/serving/x.py")
        assert [f.rule for f in findings] == ["CM007"]

    def test_cli_exits_zero_on_advisory_only_findings(self, capsys):
        assert main([str(self.SERVING / "cm007_violating.py")]) == 0
        out = capsys.readouterr().out
        assert "CM007" in out and "advisory" in out


class TestCm013:
    """CM013 is scoped to core/pipeline.py and advisory-severity.

    The fixtures live under the flat fixtures directory, so they are
    linted with an overridden path — the rule keys on the module path,
    not the file's real location.
    """

    PIPELINE_PATH = "src/repro/core/pipeline.py"

    def _lint(self, fixture_name):
        source = (FIXTURES / fixture_name).read_text()
        return lint_source(source, path=self.PIPELINE_PATH)

    def test_violating_fixture_matches_markers(self):
        path = FIXTURES / "cm013_violating.py"
        expected = expected_markers(path)
        assert expected, f"{path} has no [expect ...] markers"
        found = sorted((f.rule, f.line) for f in self._lint(path.name))
        assert found == expected

    def test_clean_fixture_has_no_findings(self):
        findings = self._lint("cm013_clean.py")
        assert findings == [], format_findings(findings)

    def test_findings_are_advisory(self):
        findings = self._lint("cm013_violating.py")
        assert findings and {f.severity for f in findings} == {"advisory"}
        assert "[advisory]" in str(findings[0])

    def test_rule_only_applies_to_core_pipeline(self):
        source = (FIXTURES / "cm013_violating.py").read_text()
        # The planner module executes stages legitimately...
        assert lint_source(source, path="src/repro/dataflow/planner.py") == []
        # ...and a sibling module under core/ is out of scope too.
        assert lint_source(source, path="src/repro/core/other.py") == []
        # "core" must be the immediate parent directory.
        assert lint_source(source, path="src/core2/pipeline.py") == []
        assert lint_source(source, path="core/pipeline.py") != []

    def test_pragma_allowlists_a_deliberate_bypass(self):
        source = (
            "def probe(frames, config):\n"
            "    return select_keyframes(frames, config)"
            "  # crowdlint: allow[CM013] debugging harness stays off-graph\n"
        )
        assert lint_source(source, path=self.PIPELINE_PATH) == []

    def test_repo_pipeline_module_is_clean(self):
        """The refactored pipeline routes every stage through the graph."""
        path = REPO_ROOT / "src" / "repro" / "core" / "pipeline.py"
        findings = [f for f in lint_fixture(path) if f.rule == "CM013"]
        assert findings == [], format_findings(findings)


def _lint_project(modules):
    """Lint a synthetic multi-module project given ``{name: source}``."""
    contexts = [
        ModuleContext(
            f"{name.replace('.', '/')}.py", source, module_name=name
        )
        for name, source in modules.items()
    ]
    project = ProjectContext.from_contexts(contexts)
    findings = []
    for ctx in contexts:
        findings.extend(check_module(ctx, ALL_RULES, project=project))
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule))


#: One minimal trigger per rule: (source, path, module_name, companions).
#: ``companions`` are extra project modules (needed only by CM010, whose
#: violations require the import target to exist in the project).
_RULE_TRIGGERS = {
    "CM001": ("import numpy as np\nrng = np.random.default_rng()\n",
              "src/repro/core/x.py", None, None),
    "CM002": ("import time\nstamp = time.time()\n",
              "src/repro/core/x.py", None, None),
    "CM003": ("try:\n    x = int('3')\nexcept Exception:\n    pass\n",
              "src/repro/core/x.py", None, None),
    "CM004": ("def f(x):\n    return x == 1.0\n",
              "src/repro/core/x.py", None, None),
    "CM005": ("from repro.core.config import CrowdMapConfig\n"
              "cfg = CrowdMapConfig(bogus_field=3)\n",
              "src/repro/core/x.py", None, None),
    "CM006": ("import numpy as np\n"
              "def f(a):\n"
              "    out = np.zeros(3)\n"
              "    for i in range(3):\n"
              "        out[i] = a[i] * 2\n"
              "    return out\n",
              "src/repro/vision/x.py", None, None),
    "CM007": ("import time\ntime.sleep(1.0)\n",
              "src/repro/serving/x.py", None, None),
    "CM008": ("import time\nstamp = time.perf_counter()\n",
              "src/repro/eval/x.py", None, None),
    "CM010": ("import proj.serving.api\n",
              None, "proj.vision.kernel", {"proj.serving.api": "X = 1\n"}),
    "CM011": ("from repro.backend.workers import map_parallel\n"
              "STATE = {}\n"
              "def w(x):\n"
              "    STATE[x] = x\n"
              "    return x\n"
              "def run(items):\n"
              "    return map_parallel(w, items)\n",
              "src/repro/core/x.py", None, None),
    "CM012": ("from repro.backend.shm import ShmArena\n"
              "def f(p):\n"
              "    a = ShmArena()\n"
              "    a.close()\n"
              "    return a.put(p)\n",
              "src/repro/core/x.py", None, None),
    "CM013": ("def probe(frames, config):\n"
              "    return select_keyframes(frames, config)\n",
              "src/repro/core/pipeline.py", None, None),
}


class TestEveryRuleSuppressible:
    """Every rule in ALL_RULES yields to a well-formed pragma on its anchor."""

    def _lint(self, source, path, module_name, companions, rule_id):
        if companions:
            modules = dict(companions)
            modules[module_name] = source
            findings = _lint_project(modules)
        else:
            findings = lint_source(source, path=path, module_name=module_name)
        return [f for f in findings if f.rule == rule_id]

    @pytest.mark.parametrize("rule_id", [r.rule_id for r in ALL_RULES])
    def test_rule_fires_then_pragma_suppresses(self, rule_id):
        assert rule_id in _RULE_TRIGGERS, f"no trigger snippet for {rule_id}"
        source, path, module_name, companions = _RULE_TRIGGERS[rule_id]
        found = self._lint(source, path, module_name, companions, rule_id)
        assert found, f"{rule_id} trigger snippet produced no finding"

        lines = source.splitlines()
        anchor = found[0].line
        lines[anchor - 1] += (
            f"  # crowdlint: allow[{rule_id}] reviewed: fixture-sanctioned"
        )
        patched = "\n".join(lines) + "\n"
        remaining = self._lint(patched, path, module_name, companions, rule_id)
        assert remaining == [], (
            f"{rule_id} finding survived its pragma: {remaining[0]}"
        )
