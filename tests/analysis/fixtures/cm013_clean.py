"""CM013 clean fixture: stage calls only inside the sanctioned cascade.

Linted with an overridden path of ``src/repro/core/pipeline.py``; every
stage entry point is called from a sanctioned method, and ``run_sessions``
only dispatches to the planner.
"""


class CrowdMapPipeline:
    def anchor_session(self, session):
        frames = select_keyframes(session.frames, self.config)
        return prefetch_surf(frames)

    def run_sessions_legacy(self, sessions):
        anchors = [self.anchor_session(s) for s in sessions]
        skeleton = reconstruct_skeleton(calibrate_drift(anchors))
        return self.aggregator.aggregate(skeleton)

    def build_pathway(self, anchors):
        return register_candidates(anchors, self.config)

    def build_room(self, group):
        pano = self.panorama_builder.build(group)
        return self.layout_estimator.estimate(pano)

    def build_rooms(self, groups):
        return self.assembler.arrange([self.build_room(g) for g in groups])

    def run_sessions(self, sessions):
        # Planner dispatch only: stage execution happens inside graph
        # nodes, not here.
        return _planner_factory(self, planner_mode()).run_sessions(sessions)
