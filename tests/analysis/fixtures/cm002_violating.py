"""Crowdlint fixture: CM002 violations (wall-clock reads)."""

import time
from datetime import date, datetime


def stamp_result(result: dict) -> dict:
    result["created_at"] = time.time()  # [expect CM002]
    result["day"] = datetime.now().isoformat()  # [expect CM002]
    result["date"] = date.today().isoformat()  # [expect CM002]
    return result
