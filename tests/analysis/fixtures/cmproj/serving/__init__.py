"""Layer-5 (serving) fixture subpackage."""
