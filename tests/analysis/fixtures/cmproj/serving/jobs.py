"""Serving-layer job runner: submits a cross-module worker.

The ``..vision.edges`` import is *downward* (serving -> vision) and must
stay finding-free; the hazard this module contributes is handing
``store.record`` to ``map_parallel`` — the CM011 finding lands in
``store.py`` where the mutation lives.
"""

from repro.backend.workers import map_parallel

from .store import record
from ..vision.edges import gradient


class BatchHandle:
    def __init__(self, items):
        self.items = items


def ingest(items):
    vectors = [gradient(item) for item in items]
    return map_parallel(record, vectors)
