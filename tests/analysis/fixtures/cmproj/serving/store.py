"""Serving-layer store whose ``record`` runs as a parallel worker.

``jobs.ingest`` submits :func:`record` to ``map_parallel``, so the
cross-module reachability walk must land here and flag the shared-cache
mutation — in *this* file, at the mutating line, not at the submission.
"""

CACHE = {}


def record(item):
    CACHE[item] = True  # [expect CM011]
    return item


def lookup(key):
    return CACHE.get(key)
