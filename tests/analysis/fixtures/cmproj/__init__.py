"""A miniature layered project for the CM010/CM011 project-rule tests.

The package is linted via ``lint_paths`` (never imported); its
subpackage names (``vision``, ``serving``) are what the layer resolver
keys on — the *last* matching dotted segment wins, which is exactly why
these fixtures can live under ``tests/analysis`` without inheriting the
``analysis`` layer.
"""
