"""Clean vision-layer helper; target of legal same-layer relative imports."""


def gradient(frame):
    return sum(frame) / max(len(frame), 1)
