"""Layer-1 (vision) fixture subpackage."""
