"""Vision-layer module that illegally reaches up into serving.

Both offending imports are *relative* — they only resolve because the
engine rewrites ``..serving`` against this file's package, which is the
satellite fix this fixture locks in. The ``TYPE_CHECKING`` import is the
sanctioned annotation-only idiom and must stay finding-free.
"""

from typing import TYPE_CHECKING

from .edges import gradient
from ..serving import store  # [expect CM010]

if TYPE_CHECKING:
    from ..serving import jobs  # annotation-only: never a runtime edge


def feature_vector(frame):
    return [gradient(frame), 0.0]


def persist(frame):
    return store.record(tuple(feature_vector(frame)))


def render_preview(frame):
    from ..serving import store as live_store  # [expect CM010]

    return live_store.lookup(tuple(feature_vector(frame)))


def schedule(batch: "jobs.BatchHandle"):
    return batch
