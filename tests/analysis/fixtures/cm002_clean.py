"""Crowdlint fixture: CM002-clean timing (monotonic, or allowlisted)."""

import time
from typing import Callable, Tuple


def timed(fn: Callable[[], object]) -> Tuple[object, float]:
    # Monotonic clocks measure durations, not calendar time: allowed.
    start = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - start


def telemetry_stamp() -> float:
    # Operator-facing log timestamp; never feeds a pipeline artifact.
    return time.time()  # crowdlint: allow[CM002] telemetry timestamp for operator logs only
