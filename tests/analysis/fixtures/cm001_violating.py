"""Crowdlint fixture: CM001 violations (unseeded / global numpy RNG)."""

import numpy as np
from numpy.random import default_rng

rng_a = np.random.default_rng()  # [expect CM001]
rng_b = default_rng()  # [expect CM001]
legacy = np.random.RandomState()  # [expect CM001]
noise = np.random.normal(0.0, 1.0, size=8)  # [expect CM001]
np.random.seed(1234)  # [expect CM001]
