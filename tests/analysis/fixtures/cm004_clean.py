"""Crowdlint fixture: CM004-clean comparisons."""

import math


def classify(x: float, n: int) -> str:
    if x <= 0.0:  # inequality on a non-negative quantity: allowed
        return "non-positive"
    if math.isclose(x, 1.5):
        return "near-grid"
    if n == 0:  # integer equality is exact and deliberately not flagged
        return "empty"
    if x == 2.0:  # crowdlint: allow[CM004] exact sentinel written by our own encoder
        return "sentinel"
    return "other"
