"""Crowdlint fixture: CM003 violations (swallowed broad exceptions)."""

from typing import Callable, Optional


def swallow(fn: Callable[[], float]) -> Optional[float]:
    try:
        return fn()
    except Exception:  # [expect CM003]
        return None


def swallow_bound_but_unused(fn: Callable[[], float]) -> Optional[float]:
    try:
        return fn()
    except Exception as exc:  # [expect CM003]
        return None


def swallow_bare(fn: Callable[[], float]) -> Optional[float]:
    try:
        return fn()
    except:  # [expect CM003]
        return None
