"""Fixture: element-wise loops CM006 flags in vision-path modules."""

import numpy as np


def per_pixel_sum(image):
    total = 0.0
    h, w = image.shape
    for i in range(h):  # [expect CM006]
        for j in range(w):  # [expect CM006]
            total += image[i, j]
    return total


def per_element_scale(values, factors):
    out = np.empty_like(values)
    for k, factor in enumerate(values):  # [expect CM006]
        out[k] = factor * factors[k]
    return out
