"""Fixture: loops CM006 must not flag, plus a pragma'd sequential loop."""

import numpy as np


def chunked_means(chunks):
    # Iterates chunks without indexing by the loop variable: clean.
    out = []
    for chunk in chunks:
        out.append(float(np.mean(chunk)))
    return out


def retries(attempts):
    # range() loop with no subscripts at all: clean.
    for attempt in range(attempts):
        if attempt > 2:
            return attempt
    return 0


def region_grow(seeds, used):
    region = []
    for seed in seeds:  # crowdlint: allow[CM006] region growing is sequential: each acceptance changes the next test
        if not used[seed]:
            region.append(seed)
    return region
