"""Crowdlint fixture: CM001-clean RNG handling (seeded, threaded)."""

from typing import Optional, Sequence

import numpy as np


def make_rng(seed: int = 0) -> np.random.Generator:
    return np.random.default_rng(seed)


def jitter(
    values: Sequence[float], rng: Optional[np.random.Generator] = None
) -> np.ndarray:
    # The repo-wide convention: a seeded fallback, never an unseeded one.
    rng = rng if rng is not None else np.random.default_rng(0)
    return np.asarray(values, dtype=np.float64) + rng.normal(0.0, 1e-3, len(values))
