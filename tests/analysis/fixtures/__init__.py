"""Crowdlint test fixtures.

One module per rule, in violating and clean variants. Violating lines
carry a trailing ``# [expect CMxxx]`` marker comment; the tests lint each
file and assert the findings match the markers exactly (rule id and line
number). These modules are linted as *text* — never imported by tests —
so the violating variants are safe to keep around.
"""
