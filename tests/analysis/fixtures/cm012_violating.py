"""CM012 violating fixture: shared-memory lifecycle misuse."""

from repro.backend.shm import ShmArena


def use_after_close(payload):
    arena = ShmArena()
    arena.put(payload)
    arena.close()
    return arena.put(payload)  # [expect CM012]


def escape_with_scope(payload):
    with ShmArena() as arena:
        handle = arena.put(payload)
        return handle  # [expect CM012]


def leak_after_with(payload):
    with ShmArena() as arena:
        handle = arena.put(payload)
    return handle  # [expect CM012]


def close_on_one_branch(payload, flag):
    arena = ShmArena()
    if flag:
        arena.close()
    return arena.put(payload)  # [expect CM012]
