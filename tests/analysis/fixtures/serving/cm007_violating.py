"""Fixture: real-time waits CM007 flags in serving-path modules."""

import asyncio
import time


def wait_for_replica(delay):
    time.sleep(delay)  # [expect CM007]
    return True


async def backoff(delay):
    await asyncio.sleep(delay)  # [expect CM007]
    return delay * 2
