"""Fixture: code CM007 must not flag inside serving-path modules."""

import time


def virtual_delay(loop, delay, callback):
    # Delays modeled as scheduled events on the virtual clock: clean.
    return loop.schedule(delay, callback)


def timed(fn):
    # Monotonic duration measurement is not a wait: clean.
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def pragma_escape(delay):
    time.sleep(delay)  # crowdlint: allow[CM007] harness-only helper exercising real-time backpressure
    return delay
