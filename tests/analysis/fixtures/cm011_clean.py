"""CM011 clean twin: workers thread state through arguments and returns."""

from functools import partial

from repro.backend.workers import map_parallel, map_with_failures

LIMIT = 64  # immutable module-level constant: reading it is fine


def double(item):
    return item * 2


def clip(bound, item):
    scratch = [item]  # locals may mutate freely
    scratch.append(bound)
    return min(scratch)


def run(items):
    doubled = map_parallel(double, items)
    clipped = map_parallel(partial(clip, LIMIT), items)
    successes, _errors = map_with_failures(lambda x: (x, x * x), items)
    merged = {}
    for _idx, pair in successes:
        merged[pair[0]] = pair[1]  # parent-side aggregation, not a worker
    return doubled, clipped, merged
