"""Crowdlint fixture: CM004 violations (float-literal equality)."""


def classify(x: float, y: float) -> str:
    if x == 0.0:  # [expect CM004]
        return "zero"
    if y != 1.5:  # [expect CM004]
        return "off-grid"
    if x == -2.0:  # [expect CM004]
        return "negative sentinel"
    if 0.0 == y:  # [expect CM004]
        return "literal on the left"
    return "other"
