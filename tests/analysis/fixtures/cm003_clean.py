"""Crowdlint fixture: CM003-clean broad handlers (record / re-raise / allow)."""

from typing import Callable, List, Optional

failures: List[str] = []


def record(fn: Callable[[], float]) -> Optional[float]:
    try:
        return fn()
    except Exception as exc:
        failures.append(repr(exc))  # the evidence is kept
        return None


def reraise(fn: Callable[[], float]) -> float:
    try:
        return fn()
    except Exception:
        raise


def narrow(fn: Callable[[], float]) -> Optional[float]:
    try:
        return fn()
    except ZeroDivisionError:  # narrow handlers are always fine
        return None


def quarantine(fn: Callable[[], float]) -> Optional[float]:
    try:
        return fn()
    except Exception:  # crowdlint: allow[CM003] quarantine handler; the caller counts sheds
        return None
