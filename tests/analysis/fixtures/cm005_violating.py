"""Crowdlint fixture: CM005 violations (unknown CrowdMapConfig fields)."""

from typing import List

from repro.core.config import CrowdMapConfig


def sweep(config: CrowdMapConfig) -> List[CrowdMapConfig]:
    variants = [
        config.with_overrides(lcss_epsilonn=0.5),  # [expect CM005]
        CrowdMapConfig(keyfram_interval=3),  # [expect CM005]
    ]
    if hasattr(config, "otsu_binz"):  # [expect CM005]
        variants.append(config)
    return variants
