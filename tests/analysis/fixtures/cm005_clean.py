"""Crowdlint fixture: CM005-clean CrowdMapConfig field references."""

from typing import List

from repro.core.config import CrowdMapConfig


def sweep(config: CrowdMapConfig) -> List[CrowdMapConfig]:
    variants = [
        config.with_overrides(lcss_epsilon=0.5),
        CrowdMapConfig(grid_cell_size=0.25, n_workers=1),
    ]
    if hasattr(config, "alpha"):
        variants.append(config)
    # getattr on a non-config name is out of the rule's scope by design.
    if getattr(sweep, "not_a_config_field", None):
        variants.append(config)
    return variants
