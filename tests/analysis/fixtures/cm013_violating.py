"""CM013 fixture: stage calls sprouting outside the sanctioned cascade.

This file is linted with an overridden path of
``src/repro/core/pipeline.py`` — the rule is path-scoped and ignores the
fixture's real location. Names are intentionally undefined; crowdlint is
purely static.
"""


class CrowdMapPipeline:
    def anchor_session(self, session):
        # Sanctioned: the legacy cascade's per-session producer.
        frames = select_keyframes(session.frames, self.config)
        return prefetch_surf(frames)

    def run_sessions(self, sessions):
        # The planner owns this method now; direct stage calls here are
        # the fixed cascade regrowing.
        anchors = [self.anchor_session(s) for s in sessions]
        skeleton = reconstruct_skeleton(anchors)  # [expect CM013]
        return self.aggregator.aggregate(skeleton)  # [expect CM013]

    def debug_room(self, group):
        pano = self.panorama_builder.build(group)  # [expect CM013]
        layout = self.layout_estimator.estimate(pano)  # [expect CM013]
        return self.assembler.arrange([layout])  # [expect CM013]


def _module_level_probe(frames, config):
    candidates = register_candidates(frames, config)  # [expect CM013]
    return calibrate_drift(candidates)  # [expect CM013]
