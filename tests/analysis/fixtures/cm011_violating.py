"""CM011 violating fixture: parallel workers touching shared state.

Linted as text, never imported — ``repro.backend.workers`` resolves
through the import table, so the entries are recognised without running
anything.
"""

from functools import partial

from repro.backend.workers import map_parallel, map_with_failures

RESULTS = []
TOTALS = {}
COUNTER = 0


def accumulate(item):
    RESULTS.append(item)  # [expect CM011]
    return item


def bump(item):
    global COUNTER
    COUNTER += 1  # [expect CM011]
    return COUNTER


def tally(key, item):
    TOTALS[key] = item  # [expect CM011]
    return item


def run(items):
    map_parallel(accumulate, items)
    map_with_failures(bump, items)
    map_parallel(partial(tally, "sum"), items)
    return map_parallel(lambda x: x + len(RESULTS), items)  # [expect CM011]
