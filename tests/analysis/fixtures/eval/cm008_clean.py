"""Fixture: code CM008 must not flag inside eval-path modules."""


def score_cells(specs, pipeline):
    # Pure data flow: worlds in, metrics out — nothing observes time.
    return {spec.key: pipeline(spec) for spec in specs}


def round_for_baseline(value, digits=4):
    return round(float(value), digits)


def timestamp_free_report(cells):
    # Provenance lives in git history, not in the artifact.
    return {"schema": 1, "cells": cells}
