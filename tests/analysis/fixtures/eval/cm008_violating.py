"""Fixture: clock observations CM008 flags in eval-path modules."""

import time
from time import monotonic as mono


def timed_scorecard(run):
    start = time.perf_counter()  # [expect CM008]
    cells = run()
    elapsed = time.perf_counter() - start  # [expect CM008]
    return cells, elapsed


def cpu_budget():
    return time.process_time()  # [expect CM008]


def throttle(run):
    time.sleep(0.1)  # [expect CM008]
    return run()


def aliased_clock():
    return mono()  # [expect CM008]
