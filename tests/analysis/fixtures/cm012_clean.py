"""CM012 clean twin: disciplined arena lifecycles."""

from repro.backend.shm import ShmArena


def put_then_close(payload):
    arena = ShmArena()
    try:
        handle = arena.put(payload)
        size = handle.nbytes
    finally:
        arena.close()
    return size


def with_scope(payload):
    with ShmArena() as arena:
        handle = arena.put(payload)
        total = handle.nbytes
    return total


def idempotent_close():
    arena = ShmArena()
    arena.close()
    arena.close()  # double close is documented as idempotent


def rebind_resets(payload):
    arena = ShmArena()
    arena.close()
    arena = ShmArena()
    handle = arena.put(payload)
    arena.close()
    return handle.nbytes
