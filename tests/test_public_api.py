"""Public API surface checks: everything __all__ promises exists and docs."""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.vision",
    "repro.sensors",
    "repro.world",
    "repro.backend",
    "repro.baselines",
    "repro.eval",
    "repro.geometry",
    "repro.fleet",
]


@pytest.mark.parametrize("package_name", PACKAGES)
class TestPublicApi:
    def test_all_exports_resolve(self, package_name):
        package = importlib.import_module(package_name)
        assert hasattr(package, "__all__"), f"{package_name} lacks __all__"
        for name in package.__all__:
            assert hasattr(package, name), (
                f"{package_name}.__all__ promises {name!r} but it is missing"
            )

    def test_package_docstring(self, package_name):
        package = importlib.import_module(package_name)
        assert package.__doc__ and len(package.__doc__.strip()) > 40

    def test_public_classes_documented(self, package_name):
        package = importlib.import_module(package_name)
        for name in getattr(package, "__all__", []):
            obj = getattr(package, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                assert obj.__doc__, f"{package_name}.{name} is undocumented"


def test_version_string():
    import repro

    parts = repro.__version__.split(".")
    assert len(parts) == 3
    assert all(p.isdigit() for p in parts)


def test_quickstart_snippet_imports():
    """The README quickstart's imports must work verbatim."""
    from repro import CrowdMapConfig, CrowdMapPipeline  # noqa: F401
    from repro.world import (  # noqa: F401
        CrowdConfig,
        build_lab1,
        generate_crowd_dataset,
    )
