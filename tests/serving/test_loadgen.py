"""Tests for the open-loop load generator and the SLO tracker."""

import numpy as np
import pytest

from repro.backend.scheduler import SimulatedScheduler
from repro.serving.loadgen import (
    LoadProfile,
    generate_arrivals,
    render_report,
    run_serving_simulation,
)
from repro.serving.router import ServingConfig
from repro.serving.shards import ShardKey, ShardManager

KEYS = [ShardKey("Lab1", 1), ShardKey("Lab2", 1)]


def stub_manager(keys=KEYS, n_replicas=2):
    manager = ShardManager(n_replicas=n_replicas)
    for key in keys:
        manager.shard_for(*key).publish_stub(0.0)
    return manager


class TestArrivals:
    def test_deterministic_per_seed(self):
        profile = LoadProfile(duration=10.0, qps=30.0, seed=3)
        a = generate_arrivals(profile, KEYS)
        b = generate_arrivals(profile, KEYS)
        assert [(r.arrival, r.kind, r.shard_key) for r in a] == [
            (r.arrival, r.kind, r.shard_key) for r in b
        ]

    def test_different_seeds_differ(self):
        base = LoadProfile(duration=10.0, qps=30.0, seed=0)
        other = LoadProfile(duration=10.0, qps=30.0, seed=1)
        assert [r.arrival for r in generate_arrivals(base, KEYS)] != [
            r.arrival for r in generate_arrivals(other, KEYS)
        ]

    def test_open_loop_rate_is_approximately_qps(self):
        profile = LoadProfile(duration=100.0, qps=40.0, seed=0)
        requests = generate_arrivals(profile, KEYS)
        assert len(requests) == pytest.approx(4000, rel=0.1)
        arrivals = [r.arrival for r in requests]
        assert arrivals == sorted(arrivals)
        assert arrivals[-1] < 100.0

    def test_mix_weights_respected(self):
        profile = LoadProfile(
            duration=200.0, qps=40.0, seed=0,
            mix={"get_floorplan": 1.0, "locate": 0.0, "route": 0.0},
        )
        requests = generate_arrivals(profile, KEYS)
        assert {r.kind for r in requests} == {"get_floorplan"}

    def test_request_ids_are_sequential(self):
        requests = generate_arrivals(LoadProfile(duration=5.0, seed=0), KEYS)
        assert [r.request_id for r in requests] == list(range(len(requests)))

    def test_requires_shards_and_positive_qps(self):
        with pytest.raises(ValueError):
            generate_arrivals(LoadProfile(), [])
        with pytest.raises(ValueError):
            generate_arrivals(LoadProfile(qps=0.0), KEYS)

    def test_payload_factory_fills_payloads_deterministically(self):
        profile = LoadProfile(duration=10.0, qps=20.0, seed=4)

        def payload_for(kind, key, rng):
            return (kind, key.building, int(rng.integers(1000)))

        a = generate_arrivals(profile, KEYS, payload_for)
        b = generate_arrivals(profile, KEYS, payload_for)
        assert all(r.payload[0] == r.kind for r in a)
        assert [r.payload for r in a] == [r.payload for r in b]


class TestSimulationReport:
    def test_bit_identical_reports_across_runs(self):
        """The acceptance criterion, at unit scale: same seed, same bytes."""
        config = ServingConfig(seed=0)
        profile = LoadProfile(duration=15.0, qps=60.0, seed=0)
        first = render_report(
            run_serving_simulation(stub_manager(), config, profile)
        )
        second = render_report(
            run_serving_simulation(stub_manager(), config, profile)
        )
        assert first == second

    def test_report_accounts_for_every_request(self):
        config = ServingConfig(seed=0)
        profile = LoadProfile(duration=10.0, qps=50.0, seed=2)
        report = run_serving_simulation(stub_manager(), config, profile)
        requests = report["requests"]
        assert requests["offered"] == requests["admitted"] + requests["shed"]
        assert requests["completed"] == requests["admitted"]
        assert report["latency"]["overall"]["count"] == requests["completed"]
        offered_per_shard = sum(
            entry["offered"] for entry in report["per_shard"].values()
        )
        assert offered_per_shard == requests["offered"]

    def test_percentiles_match_numpy_on_outcome_latencies(self):
        config = ServingConfig(seed=0)
        profile = LoadProfile(duration=10.0, qps=50.0, seed=2)
        manager = stub_manager()
        telemetry_report = run_serving_simulation(manager, config, profile)
        # Re-run identically and recompute percentiles from raw outcomes.
        manager2 = stub_manager()
        from repro.backend.telemetry import TelemetryRegistry
        from repro.serving.loadgen import generate_arrivals as gen
        from repro.serving.router import EventLoop, RequestRouter

        loop = EventLoop()
        telemetry = TelemetryRegistry()
        router = RequestRouter(
            manager2, config=config, loop=loop, telemetry=telemetry
        )
        for request in gen(profile, manager2.keys()):
            loop.schedule(request.arrival, lambda r=request: router.submit(r))
        loop.run()
        latencies = [o.latency for o in router.outcomes if o.latency is not None]
        overall = telemetry_report["latency"]["overall"]
        # The report rounds to 6 decimals; compare at that precision.
        assert overall["p99"] == pytest.approx(
            float(np.percentile(latencies, 99)), abs=1e-6
        )
        assert overall["p50"] == pytest.approx(
            float(np.percentile(latencies, 50)), abs=1e-6
        )

    def test_overload_sheds_but_keeps_admitted_p99_under_slo(self):
        """Bounded queues turn overload into shed rate, not latency."""
        config = ServingConfig(seed=0, queue_capacity=12, slo_p99=1.5)
        profile = LoadProfile(duration=30.0, qps=200.0, seed=1)
        manager = stub_manager(keys=[KEYS[0]])
        report = run_serving_simulation(manager, config, profile)
        assert report["requests"]["shed"] > 0
        assert report["requests"]["shed_rate"] > 0.3
        assert report["latency"]["overall"]["p99"] <= config.slo_p99
        assert report["slo"]["met"] is True

    def test_unpublished_shard_traffic_sheds_as_no_snapshot(self):
        manager = ShardManager()
        manager.shard_for("Cold", 1)  # never published
        config = ServingConfig(seed=0)
        profile = LoadProfile(duration=5.0, qps=20.0, seed=0)
        report = run_serving_simulation(manager, config, profile)
        assert report["requests"]["admitted"] == 0
        assert set(report["requests"]["shed_by_reason"]) == {"no_snapshot"}

    def test_scheduler_pumped_in_lockstep(self):
        manager = stub_manager()
        scheduler = SimulatedScheduler()
        ran_at = []
        scheduler.add_job("probe", 2.0, lambda: ran_at.append(scheduler.now))
        config = ServingConfig(seed=0)
        profile = LoadProfile(duration=10.0, qps=10.0, seed=0)
        run_serving_simulation(
            manager, config, profile, scheduler=scheduler, scheduler_tick=1.0
        )
        assert ran_at == [2.0, 4.0, 6.0, 8.0, 10.0]

    def test_real_execution_requires_payload_factory_for_queries(self):
        """Fail before traffic starts, not on the first locate request."""
        manager = stub_manager()
        with pytest.raises(ValueError, match="payload_for"):
            run_serving_simulation(
                manager, ServingConfig(seed=0),
                LoadProfile(duration=5.0, qps=10.0, seed=0),
                execute="real",
            )
        # A floorplan-only mix carries no payloads, so it is fine as-is.
        report = run_serving_simulation(
            manager, ServingConfig(seed=0),
            LoadProfile(
                duration=5.0, qps=10.0, seed=0,
                mix={"get_floorplan": 1.0, "locate": 0.0, "route": 0.0},
            ),
            execute="real",
        )
        assert report["requests"]["admitted"] > 0

    def test_extra_events_fire_on_the_virtual_clock(self):
        manager = stub_manager()
        seen = []
        config = ServingConfig(seed=0)
        profile = LoadProfile(duration=5.0, qps=10.0, seed=0)
        run_serving_simulation(
            manager, config, profile,
            extra_events=[(2.5, lambda: seen.append("mid"))],
        )
        assert seen == ["mid"]
