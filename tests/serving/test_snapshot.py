"""Tests for versioned copy-on-publish snapshots."""

import pytest

from repro.serving.shards import ShardKey
from repro.serving.snapshot import MapSnapshot, VersionedSnapshotStore

KEY = ShardKey("Lab1", 1)


def stub(version, published_at=0.0):
    return MapSnapshot(
        version=version, shard_key=KEY, result=None, published_at=published_at
    )


class TestVersionedSnapshotStore:
    def test_empty_store_has_no_current(self):
        assert VersionedSnapshotStore(KEY).current() is None

    def test_publish_assigns_sequential_versions(self):
        store = VersionedSnapshotStore(KEY)
        first = store.publish(None, now=1.0)
        second = store.publish(None, now=2.0)
        assert (first.version, second.version) == (1, 2)
        assert store.current() is second

    def test_reader_pinned_to_old_version_is_untouched(self):
        """The no-torn-reads contract: publish swaps, never mutates."""
        store = VersionedSnapshotStore(KEY)
        v1 = store.publish(None, now=1.0)
        reader_view = store.current()
        v2 = store.publish(None, now=2.0)
        assert reader_view is v1
        assert reader_view.version == 1
        assert store.current() is v2

    def test_retention_evicts_oldest(self):
        store = VersionedSnapshotStore(KEY, retain=2)
        store.publish(None, now=1.0)
        store.publish(None, now=2.0)
        store.publish(None, now=3.0)
        assert store.get(1) is None
        assert store.get(2) is not None
        assert store.get(3) is store.current()
        assert store.history() == [(2, 2.0), (3, 3.0)]

    def test_install_shares_externally_built_snapshot(self):
        store_a = VersionedSnapshotStore(KEY)
        store_b = VersionedSnapshotStore(KEY)
        snapshot = stub(1, published_at=5.0)
        store_a.install(snapshot)
        store_b.install(snapshot)
        assert store_a.current() is snapshot
        assert store_b.current() is snapshot

    def test_install_rejects_non_monotonic_version(self):
        store = VersionedSnapshotStore(KEY)
        store.install(stub(3))
        with pytest.raises(ValueError):
            store.install(stub(3))
        with pytest.raises(ValueError):
            store.install(stub(2))

    def test_publish_continues_after_install(self):
        store = VersionedSnapshotStore(KEY)
        store.install(stub(7))
        assert store.publish(None, now=1.0).version == 8

    def test_retain_must_be_positive(self):
        with pytest.raises(ValueError):
            VersionedSnapshotStore(KEY, retain=0)


class TestMapSnapshotStub:
    def test_stub_flags_and_summary(self):
        snapshot = stub(2, published_at=4.5)
        assert snapshot.is_stub
        summary = snapshot.summary()
        assert summary["version"] == 2
        assert summary["building"] == "Lab1"
        assert summary["floor"] == 1
        assert summary["stub"] is True
        assert "rooms" not in summary

    def test_stub_refuses_query_indexes(self):
        snapshot = stub(1)
        with pytest.raises(ValueError):
            snapshot.localizer()
        with pytest.raises(ValueError):
            snapshot.navigator()
