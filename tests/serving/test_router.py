"""Tests for the virtual-clock event loop and the request router."""

import pytest

from repro.backend.telemetry import TelemetryRegistry
from repro.serving.router import (
    EventLoop,
    Request,
    RequestRouter,
    ServingConfig,
)
from repro.serving.shards import ShardKey, ShardManager

KEY = ShardKey("Lab1", 1)


class TestEventLoop:
    def test_events_fire_in_time_order(self):
        loop = EventLoop()
        fired = []
        loop.schedule(2.0, lambda: fired.append("late"))
        loop.schedule(1.0, lambda: fired.append("early"))
        loop.run()
        assert fired == ["early", "late"]
        assert loop.now == 2.0

    def test_ties_fire_in_schedule_order(self):
        loop = EventLoop()
        fired = []
        for tag in ("a", "b", "c"):
            loop.schedule(1.0, lambda t=tag: fired.append(t))
        loop.run()
        assert fired == ["a", "b", "c"]

    def test_cancel_suppresses_event(self):
        loop = EventLoop()
        fired = []
        handle = loop.schedule(1.0, lambda: fired.append("no"))
        loop.schedule(2.0, lambda: fired.append("yes"))
        loop.cancel(handle)
        loop.run()
        assert fired == ["yes"]

    def test_run_until_stops_at_deadline(self):
        loop = EventLoop()
        fired = []
        loop.schedule(1.0, lambda: fired.append(1))
        loop.schedule(5.0, lambda: fired.append(5))
        assert loop.run_until(2.0) == 1
        assert fired == [1]
        assert loop.now == 2.0
        loop.run()
        assert fired == [1, 5]

    def test_events_can_schedule_events(self):
        loop = EventLoop()
        fired = []

        def chain():
            fired.append(loop.now)
            if len(fired) < 3:
                loop.schedule(1.0, chain)

        loop.schedule(1.0, chain)
        loop.run()
        assert fired == [1.0, 2.0, 3.0]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            EventLoop().schedule(-0.1, lambda: None)


def make_router(n_replicas=2, telemetry=None, **overrides):
    """A router over one stub shard (no reconstruction needed)."""
    manager = ShardManager(n_replicas=n_replicas)
    manager.shard_for(*KEY).publish_stub(0.0)
    defaults = dict(jitter_sigma=0.0, slow_prob=0.0, replica_speed_spread=0.0)
    defaults.update(overrides)
    config = ServingConfig(**defaults)
    router = RequestRouter(
        manager, config=config, telemetry=telemetry or TelemetryRegistry()
    )
    return router


def req(request_id, kind="get_floorplan", key=KEY, arrival=0.0):
    return Request(request_id=request_id, kind=kind, shard_key=key, arrival=arrival)


class TestAdmission:
    def test_unknown_shard_sheds_no_snapshot(self):
        router = make_router()
        outcome = router.submit(req(0, key=ShardKey("Nowhere", 9)))
        assert not outcome.admitted
        assert outcome.shed_reason == "no_snapshot"

    def test_unpublished_shard_sheds_no_snapshot(self):
        router = make_router()
        router.manager.shard_for("Lab2", 1)  # exists but never published
        outcome = router.submit(req(0, key=ShardKey("Lab2", 1)))
        assert outcome.shed_reason == "no_snapshot"

    def test_full_queue_sheds_overload(self):
        router = make_router(n_replicas=1, queue_capacity=3)
        outcomes = [router.submit(req(i)) for i in range(10)]
        admitted = [o for o in outcomes if o.admitted]
        shed = [o for o in outcomes if not o.admitted]
        # 1 dispatched immediately + 3 queued; the rest shed.
        assert len(admitted) == 4
        assert len(shed) == 6
        assert {o.shed_reason for o in shed} == {"overload"}

    def test_shed_telemetry_counts_reasons(self):
        telemetry = TelemetryRegistry()
        router = make_router(n_replicas=1, queue_capacity=1, telemetry=telemetry)
        for i in range(5):
            router.submit(req(i))
        assert telemetry.value("serving_requests_total") == 5
        assert telemetry.value("serving_requests_shed_overload") == 3
        assert telemetry.value("serving_requests_admitted") == 2


class TestDispatch:
    def test_fifo_latencies_on_single_replica(self):
        router = make_router(
            n_replicas=1,
            queue_capacity=8,
            service_time_base={"get_floorplan": 0.1, "locate": 1.0, "route": 1.0},
            hedge_delay=100.0,
        )
        outcomes = [router.submit(req(i)) for i in range(4)]
        router.loop.run()
        latencies = [round(o.latency, 6) for o in outcomes]
        assert latencies == [0.1, 0.2, 0.3, 0.4]

    def test_two_replicas_halve_the_backlog(self):
        router = make_router(
            n_replicas=2,
            queue_capacity=8,
            service_time_base={"get_floorplan": 0.1, "locate": 1.0, "route": 1.0},
            hedge_delay=100.0,
        )
        outcomes = [router.submit(req(i)) for i in range(4)]
        router.loop.run()
        latencies = sorted(round(o.latency, 6) for o in outcomes)
        assert latencies == [0.1, 0.1, 0.2, 0.2]

    def test_completion_frees_capacity_for_queued_work(self):
        router = make_router(n_replicas=1, queue_capacity=2)
        outcomes = [router.submit(req(i)) for i in range(3)]
        router.loop.run()
        assert all(o.latency is not None for o in outcomes)

    def test_requests_record_served_version(self):
        router = make_router()
        outcome = router.submit(req(0))
        router.loop.run()
        assert outcome.version == 1

    def test_version_pinned_at_dispatch_not_completion(self):
        router = make_router(
            n_replicas=1,
            service_time_base={"get_floorplan": 1.0, "locate": 1.0, "route": 1.0},
            hedge_delay=100.0,
        )
        outcome = router.submit(req(0))
        shard = router.manager.get(KEY)
        # Publish v2 while the request is still being served from v1.
        router.loop.schedule(0.5, lambda: shard.publish_stub(router.loop.now))
        router.loop.run()
        assert outcome.version == 1
        assert shard.current().version == 2


class _ScriptedRouter(RequestRouter):
    """Service times come from a script: one value per attempt started."""

    def __init__(self, *args, script=(), **kwargs):
        super().__init__(*args, **kwargs)
        self._script = list(script)

    def _service_time(self, kind, replica):
        return self._script.pop(0)


def make_scripted(script, n_replicas=2, hedge_delay=0.2):
    manager = ShardManager(n_replicas=n_replicas)
    manager.shard_for(*KEY).publish_stub(0.0)
    config = ServingConfig(
        jitter_sigma=0.0, slow_prob=0.0, replica_speed_spread=0.0,
        hedge_delay=hedge_delay,
    )
    return _ScriptedRouter(
        manager, config=config, telemetry=TelemetryRegistry(), script=script
    )


class TestHedging:
    def test_hedge_beats_straggling_primary(self):
        # Primary would take 2.0s; the hedge (launched at 0.2) takes 0.1s.
        router = make_scripted([2.0, 0.1])
        outcome = router.submit(req(0))
        router.loop.run()
        assert outcome.hedged and outcome.hedge_won
        assert outcome.latency == pytest.approx(0.3)
        assert outcome.replica == 1
        assert router.telemetry.value("serving_hedges") == 1
        # The abandoned primary still burned its replica until t=2.0.
        assert router.telemetry.value("serving_hedges_wasted") == 1

    def test_fast_primary_cancels_hedge_timer(self):
        router = make_scripted([0.05])
        outcome = router.submit(req(0))
        router.loop.run()
        assert not outcome.hedged
        assert outcome.latency == pytest.approx(0.05)
        assert router.telemetry.value("serving_hedges") == 0

    def test_slow_hedge_loses_to_primary(self):
        # Hedge fires at 0.2 but takes 1.0s; primary finishes first at 0.5.
        router = make_scripted([0.5, 1.0])
        outcome = router.submit(req(0))
        router.loop.run()
        assert outcome.hedged and not outcome.hedge_won
        assert outcome.replica == 0
        assert outcome.latency == pytest.approx(0.5)

    def test_no_idle_replica_skips_hedge(self):
        router = make_scripted([2.0, 2.0], n_replicas=2)
        a = router.submit(req(0))
        b = router.submit(req(1))
        router.loop.run()
        assert not a.hedged and not b.hedged
        assert router.telemetry.value("serving_hedges_skipped") == 2


class TestDeterminism:
    def test_same_seed_same_outcomes(self):
        def run():
            router = make_router(
                jitter_sigma=0.3, slow_prob=0.1, replica_speed_spread=0.1, seed=5
            )
            outcomes = [
                router.submit(req(i, kind=("locate" if i % 3 else "route")))
                for i in range(40)
            ]
            router.loop.run()
            return [
                (o.request.request_id, o.admitted, o.shed_reason,
                 o.latency, o.replica, o.hedged)
                for o in outcomes
            ]

        assert run() == run()

    def test_execute_mode_validated(self):
        manager = ShardManager()
        with pytest.raises(ValueError):
            RequestRouter(manager, execute="live")
