"""End-to-end serving tests: real snapshots, real query handlers.

These build one real reconstruction (from the shared ``small_dataset``
fixture) and serve it, so they cover the full stack the unit tests stub
out: shard ingest -> incremental snapshot -> publish -> query handlers ->
router execution, plus a scheduler-driven refresh landing mid-traffic.
"""

import numpy as np
import pytest

from repro.backend.scheduler import SimulatedScheduler
from repro.core.config import CrowdMapConfig
from repro.core.localization import VisualLocalizer
from repro.geometry.primitives import Point
from repro.serving import (
    LoadProfile,
    LocateQuery,
    QueryHandlers,
    Request,
    RouteQuery,
    ServingConfig,
    ShardManager,
    run_serving_simulation,
)


@pytest.fixture(scope="module")
def serving_config():
    return CrowdMapConfig().with_overrides(layout_samples=400)


@pytest.fixture(scope="module")
def manager(small_dataset, serving_config):
    """A shard manager serving the small Lab1 dataset (published once)."""
    manager = ShardManager(config=serving_config, n_replicas=2)
    for session in small_dataset.sessions:
        if session.task in ("SWS", "SRS"):
            manager.ingest_session(session)
    published = manager.refresh_all(now=0.0)
    assert len(published) == 1
    return manager


@pytest.fixture(scope="module")
def snapshot(manager):
    return manager.shards()[0].current()


@pytest.fixture(scope="module")
def handlers(serving_config):
    return QueryHandlers(serving_config)


class TestQueryHandlers:
    def test_get_floorplan_view(self, handlers, snapshot):
        view = handlers.get_floorplan(snapshot)
        assert view["version"] == 1
        assert view["building"] == "Lab1"
        assert view["stub"] is False
        assert view["rooms"]  # the dataset includes SRS room spins
        assert "#" in view["ascii"]  # rendered hallway cells

    def test_locate_matches_direct_localizer(
        self, handlers, snapshot, small_dataset, serving_config
    ):
        query = small_dataset.sws_sessions()[0].frames[3]
        served = handlers.locate(snapshot, LocateQuery(frame=query))
        direct = VisualLocalizer(snapshot.result, serving_config).localize(query)
        assert served.matched and direct.matched
        assert served.position.x == pytest.approx(direct.position.x)
        assert served.position.y == pytest.approx(direct.position.y)
        assert served.confidence == pytest.approx(direct.confidence)

    def test_localizer_index_is_built_once_and_shared(self, snapshot):
        assert snapshot.localizer() is snapshot.localizer()
        assert snapshot.navigator() is snapshot.navigator()

    def test_route_to_reconstructed_room(self, handlers, snapshot):
        room_name = snapshot.summary()["rooms"][0]
        path = handlers.route(
            snapshot,
            RouteQuery(start=_skeleton_start(snapshot), room_name=room_name),
        )
        assert path.found
        assert path.length > 0

    def test_handle_dispatch_and_payload_validation(self, handlers, snapshot):
        assert handlers.handle("get_floorplan", snapshot, None)["version"] == 1
        with pytest.raises(TypeError):
            handlers.handle("locate", snapshot, "not a query")
        with pytest.raises(TypeError):
            handlers.handle("route", snapshot, None)
        with pytest.raises(ValueError):
            handlers.handle("teleport", snapshot, None)


class TestServedSimulation:
    def test_execute_real_returns_handler_answers(self, manager):
        config = ServingConfig(seed=0)
        profile = LoadProfile(
            duration=2.0, qps=10.0, seed=0,
            mix={"get_floorplan": 1.0, "locate": 0.0, "route": 0.0},
        )
        from repro.backend.telemetry import TelemetryRegistry
        from repro.serving.router import EventLoop, RequestRouter

        loop = EventLoop()
        router = RequestRouter(
            manager, config=config, loop=loop,
            telemetry=TelemetryRegistry(), execute="real",
        )
        outcome = router.submit(
            Request(
                request_id=0, kind="get_floorplan",
                shard_key=manager.keys()[0], arrival=0.0,
            )
        )
        loop.run()
        assert outcome.result is not None
        assert outcome.result["version"] == snapshot_version(outcome)
        assert outcome.result["building"] == "Lab1"

    def test_execute_real_full_mix_with_payload_factory(
        self, manager, small_dataset
    ):
        """Every admitted locate/route runs its real handler end to end."""
        frames = [
            f for s in small_dataset.sws_sessions() for f in s.frames[::5]
        ]
        key = manager.keys()[0]
        rooms = manager.get(key).current().summary()["rooms"]

        def payload_for(kind, shard_key, rng):
            if kind == "locate":
                return LocateQuery(frame=frames[int(rng.integers(len(frames)))])
            if kind == "route":
                return RouteQuery(
                    start=_skeleton_start(manager.get(shard_key).current()),
                    room_name=rooms[int(rng.integers(len(rooms)))],
                )
            return None

        report = run_serving_simulation(
            manager, ServingConfig(seed=0),
            LoadProfile(duration=3.0, qps=8.0, seed=0),
            execute="real", payload_for=payload_for,
        )
        assert report["requests"]["admitted"] > 0
        assert report["requests"]["completed"] == report["requests"]["admitted"]

    def test_refresh_mid_traffic_serves_two_versions(
        self, small_dataset, serving_config
    ):
        """The versioned-serving story end to end: v2 publishes live."""
        sessions = [
            s for s in small_dataset.sessions if s.task in ("SWS", "SRS")
        ]
        manager = ShardManager(config=serving_config, n_replicas=2)
        for session in sessions[:-1]:
            manager.ingest_session(session)
        manager.refresh_all(now=0.0)
        scheduler = SimulatedScheduler()
        manager.attach_refresh_job(scheduler, interval=2.0)
        config = ServingConfig(seed=0)
        profile = LoadProfile(duration=20.0, qps=40.0, seed=0)
        report = run_serving_simulation(
            manager, config, profile,
            scheduler=scheduler, scheduler_tick=1.0,
            extra_events=[
                (10.0, lambda: manager.ingest_session(sessions[-1]))
            ],
        )
        assert set(report["versions_served"]) == {"1", "2"}
        assert report["versions_served"]["1"] > 0
        assert report["versions_served"]["2"] > 0
        shard = manager.shards()[0]
        assert shard.current().version == 2
        # Both replicas converged to the same published snapshot object.
        assert shard.replicas[0].current() is shard.replicas[1].current()


def snapshot_version(outcome):
    return outcome.version


def _skeleton_start(snapshot):
    sk = snapshot.result.skeleton
    rows, cols = np.nonzero(sk.skeleton)
    return Point(
        sk.bounds.min_x + (cols[0] + 0.5) * sk.cell_size,
        sk.bounds.min_y + (rows[0] + 0.5) * sk.cell_size,
    )
