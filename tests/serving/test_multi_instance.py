"""Multi-instance regression: N serving stacks must coexist in one process.

The fleet layer runs one ShardManager (and hence one set of
VersionedSnapshotStores) per simulated node, all in a single process.
These tests pin the audit result: no module-level state or shared cache
namespace collides across instances, provided each instance is given its
own TelemetryRegistry — the process-wide ``default_registry`` is the one
intentionally shared namespace, and injecting a registry opts out of it.
"""

from repro.backend.telemetry import TelemetryRegistry
from repro.serving.shards import MapShard, ShardKey, ShardManager
from repro.serving.snapshot import MapSnapshot, VersionedSnapshotStore

KEY = ShardKey("Lab1", 1)


def stub(version, published_at=0.0):
    return MapSnapshot(
        version=version, shard_key=KEY, result=None, published_at=published_at
    )


class TestShardManagerIsolation:
    def test_injected_registries_never_cross_count(self, small_dataset):
        registries = [TelemetryRegistry() for _ in range(3)]
        managers = [ShardManager(telemetry=r) for r in registries]
        counts = [3, 2, 1]
        sessions = [
            s for s in small_dataset.sessions if s.task in ("SWS", "SRS")
        ]
        for manager, count in zip(managers, counts):
            for session in sessions[:count]:
                manager.ingest_session(session)
        for registry, count in zip(registries, counts):
            assert registry.value("serving_sessions_ingested") == count

    def test_ingest_state_is_per_instance(self, small_dataset):
        a = ShardManager(telemetry=TelemetryRegistry())
        b = ShardManager(telemetry=TelemetryRegistry())
        sessions = [
            s for s in small_dataset.sessions if s.task in ("SWS", "SRS")
        ]
        for session in sessions:
            a.ingest_session(session)
        assert len(a.shards()) == 1
        assert b.shards() == []
        shard = a.shards()[0]
        assert shard.sessions_ingested == len(sessions)

    def test_manager_registry_propagates_to_its_shards(self):
        registry = TelemetryRegistry()
        manager = ShardManager(telemetry=registry)
        shard = manager.shard_for("Lab1", 1)
        assert shard.telemetry is registry

    def test_refresh_counters_stay_per_instance(self, small_dataset):
        registries = [TelemetryRegistry(), TelemetryRegistry()]
        managers = [ShardManager(telemetry=r) for r in registries]
        sessions = [
            s for s in small_dataset.sessions if s.task in ("SWS", "SRS")
        ]
        for session in sessions:
            managers[0].ingest_session(session)
        managers[0].refresh_all(now=1.0)
        managers[1].refresh_all(now=1.0)
        assert registries[0].value("serving_snapshots_published") == 1
        assert registries[1].value("serving_snapshots_published") == 0.0


class TestSnapshotStoreIsolation:
    def test_version_sequences_are_independent(self):
        a = VersionedSnapshotStore(KEY)
        b = VersionedSnapshotStore(KEY)
        a.publish(None, now=1.0)
        a.publish(None, now=2.0)
        first_b = b.publish(None, now=3.0)
        assert a.current().version == 2
        assert first_b.version == 1

    def test_shared_snapshot_install_does_not_entangle_stores(self):
        a = VersionedSnapshotStore(KEY)
        b = VersionedSnapshotStore(KEY)
        shared = stub(5)
        a.install(shared)
        b.install(shared)
        a.publish(None, now=9.0)
        assert a.current().version == 6
        assert b.current() is shared

    def test_same_key_shards_do_not_share_incremental_state(
        self, small_dataset
    ):
        a = MapShard(KEY, telemetry=TelemetryRegistry())
        b = MapShard(KEY, telemetry=TelemetryRegistry())
        sessions = [
            s for s in small_dataset.sessions if s.task in ("SWS", "SRS")
        ]
        for session in sessions:
            a.ingest(session)
        assert a.dirty and not b.dirty
        assert a.sessions_ingested == len(sessions)
        assert b.sessions_ingested == 0
        assert b.refresh(now=1.0) is None
