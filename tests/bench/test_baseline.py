"""Shared baseline-file plumbing (repro.bench.baseline).

Both committed gates — ``BENCH_baseline.json`` (perf) and
``ACCURACY_baseline.json`` (quality) — go through these helpers; this
file pins the contract they share: schema validation, stable
serialization, and preservation of frozen ``pre_pr*`` records across
``--update-baseline`` rewrites.
"""

import json

import pytest

from repro.bench import (
    NOISE_FLOOR_NORMALIZED,
    SCHEMA_VERSION,
    compare_to_baseline,
    load_report,
    update_baseline,
    write_report,
)
from repro.bench.baseline import (
    PRESERVED_PREFIX,
    load_json_report,
    update_baseline_file,
    write_json_report,
)


class TestLoad:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "b.json"
        write_json_report({"schema": 7, "cells": {"a": 1}}, str(path))
        assert load_json_report(str(path), 7) == {"schema": 7, "cells": {"a": 1}}

    def test_schema_mismatch_raises(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text('{"schema": 1}')
        with pytest.raises(ValueError, match="schema"):
            load_json_report(str(path), 2)

    def test_missing_schema_key_raises(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text("{}")
        with pytest.raises(ValueError, match="schema"):
            load_json_report(str(path), 1)

    def test_no_validation_without_version(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text('{"anything": true}')
        assert load_json_report(str(path)) == {"anything": True}


class TestWrite:
    def test_stable_diff_friendly_layout(self, tmp_path):
        path = tmp_path / "b.json"
        write_json_report({"z": 1, "a": {"y": 2, "b": 3}}, str(path))
        text = path.read_text()
        assert text.endswith("\n")
        # Keys sorted at every level, 2-space indent.
        assert text.index('"a"') < text.index('"z"')
        assert text.index('"b"') < text.index('"y"')
        assert '  "a"' in text

    def test_byte_identical_across_writes(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        report = {"schema": 1, "cells": {"x": 0.5}}
        write_json_report(report, str(a))
        write_json_report(json.loads(a.read_text()), str(b))
        assert a.read_bytes() == b.read_bytes()


class TestUpdate:
    def test_first_generation_with_no_previous_file(self, tmp_path):
        path = tmp_path / "b.json"
        merged = update_baseline_file(str(path), {"schema": 1, "cells": {}}, 1)
        assert merged == {"schema": 1, "cells": {}}
        assert json.loads(path.read_text()) == merged

    def test_preserves_every_pre_pr_record(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text(
            json.dumps(
                {
                    "schema": 1,
                    "cells": {"old": 1},
                    "pre_pr": {"f": 0.1},
                    "pre_pr_shm": {"f": 0.2},
                }
            )
        )
        merged = update_baseline_file(str(path), {"schema": 1, "cells": {"new": 2}}, 1)
        assert merged["cells"] == {"new": 2}
        assert merged["pre_pr"] == {"f": 0.1}
        assert merged["pre_pr_shm"] == {"f": 0.2}

    def test_corrupt_previous_file_is_treated_as_empty(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text("{not json")
        merged = update_baseline_file(str(path), {"schema": 1}, 1)
        assert merged == {"schema": 1}

    def test_wrong_schema_previous_file_is_an_error(self, tmp_path):
        # Silently dropping preserved records would lose history.
        path = tmp_path / "b.json"
        path.write_text('{"schema": 99, "pre_pr": {}}')
        with pytest.raises(ValueError, match="schema"):
            update_baseline_file(str(path), {"schema": 1}, 1)

    def test_custom_preserve_prefix(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text('{"schema": 1, "frozen_x": 1, "pre_pr": 2}')
        merged = update_baseline_file(
            str(path), {"schema": 1}, 1, preserve_prefix="frozen_"
        )
        assert merged == {"schema": 1, "frozen_x": 1}

    def test_report_keys_win_over_non_preserved_previous(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text('{"schema": 1, "cells": {"a": 1}, "note": "old"}')
        merged = update_baseline_file(str(path), {"schema": 1, "cells": {"b": 2}}, 1)
        assert merged == {"schema": 1, "cells": {"b": 2}}


class TestCompare:
    @staticmethod
    def _reports(current, base):
        return (
            {"benchmarks": {"x": {"normalized": current}}},
            {"benchmarks": {"x": {"normalized": base}}},
        )

    def test_within_tolerance_passes(self):
        report, base = self._reports(110.0, 100.0)
        assert compare_to_baseline(report, base, tolerance=0.25) == []

    def test_regression_beyond_budget_fails(self):
        report, base = self._reports(140.0, 100.0)
        problems = compare_to_baseline(report, base, tolerance=0.25)
        assert len(problems) == 1 and "x" in problems[0]

    def test_noise_floor_shields_near_zero_baselines(self):
        # A graph-cached warm rerun baselines at well under a millisecond;
        # 5x that is still timer jitter, not a regression.
        report, base = self._reports(1.5, 0.3)
        assert compare_to_baseline(report, base, tolerance=0.25) == []
        # But the floor is absolute: past it, tiny baselines still gate.
        report, base = self._reports(0.3 * 1.25 + NOISE_FLOOR_NORMALIZED + 0.1, 0.3)
        assert compare_to_baseline(report, base, tolerance=0.25) != []

    def test_unknown_benchmarks_are_ignored(self):
        report = {"benchmarks": {"new_scenario": {"normalized": 1e9}}}
        assert compare_to_baseline(report, {"benchmarks": {}}) == []


class TestBenchFacade:
    """repro.bench re-exports the helpers bound to its own schema."""

    def test_load_and_write_report_use_bench_schema(self, tmp_path):
        path = tmp_path / "b.json"
        write_report({"schema": SCHEMA_VERSION, "results": {}}, str(path))
        assert load_report(str(path))["schema"] == SCHEMA_VERSION
        path.write_text('{"schema": -1}')
        with pytest.raises(ValueError, match="schema"):
            load_report(str(path))

    def test_update_baseline_preserves_prefix(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text(
            json.dumps({"schema": SCHEMA_VERSION, "pre_pr": {"kept": True}})
        )
        merged = update_baseline(str(path), {"schema": SCHEMA_VERSION, "results": {}})
        assert merged["pre_pr"] == {"kept": True}
        assert PRESERVED_PREFIX == "pre_pr"
