"""Tests for barometric altitude, floor detection and transitions."""

import numpy as np
import pytest

from repro.sensors.activity import (
    FLOOR_HEIGHT,
    TransitionKind,
    detect_floor_transitions,
    estimate_altitude,
    floor_of_session,
)
from repro.sensors.imu import ImuSimulator, ImuTrace


def level_trace(altitude: float, duration=8.0, seed=0):
    sim = ImuSimulator(rng=np.random.default_rng(seed))
    times = np.linspace(0, duration, int(duration * 20) + 1)
    positions = np.zeros((len(times), 2))
    headings = np.zeros(len(times))
    return sim.record(times, positions, headings,
                      altitudes=np.full(len(times), altitude))


def climb_trace(delta_m: float, duration=14.0, seed=1, with_steps=True):
    sim = ImuSimulator(rng=np.random.default_rng(seed))
    times = np.linspace(0, duration, int(duration * 20) + 1)
    positions = np.zeros((len(times), 2))
    headings = np.zeros(len(times))
    altitudes = np.interp(times, [0, 2, duration - 2, duration],
                          [0, 0, delta_m, delta_m])
    step_times = list(np.arange(2.3, duration - 2, 0.5)) if with_steps else []
    return sim.record(times, positions, headings, step_times,
                      altitudes=altitudes)


class TestAltitude:
    def test_level_altitude(self):
        alt = estimate_altitude(level_trace(6.0))
        assert np.median(alt) == pytest.approx(6.0, abs=0.6)

    def test_empty_trace(self):
        assert estimate_altitude(ImuTrace(samples=[])).size == 0

    def test_smoothing_reduces_noise(self):
        trace = level_trace(0.0)
        raw_std = trace.pressure().std()
        alt_std = estimate_altitude(trace).std() * 12.0  # back to Pa
        assert alt_std < raw_std


class TestFloorOfSession:
    def test_ground_floor(self):
        assert floor_of_session(level_trace(0.0)) == 0

    def test_upper_floors(self):
        assert floor_of_session(level_trace(FLOOR_HEIGHT)) == 1
        assert floor_of_session(level_trace(2 * FLOOR_HEIGHT, seed=3)) == 2

    def test_basement(self):
        assert floor_of_session(level_trace(-FLOOR_HEIGHT, seed=4)) == -1

    def test_reference_altitude(self):
        trace = level_trace(FLOOR_HEIGHT + 5.0, seed=5)
        assert floor_of_session(trace, ground_floor_altitude=5.0) == 1


class TestTransitions:
    def test_single_flight_up(self):
        trace = climb_trace(FLOOR_HEIGHT)
        transitions = detect_floor_transitions(trace)
        assert len(transitions) == 1
        assert transitions[0].delta_floors == 1
        assert transitions[0].kind is TransitionKind.STAIRS

    def test_down_two_floors(self):
        trace = climb_trace(-2 * FLOOR_HEIGHT, duration=20.0, seed=6)
        transitions = detect_floor_transitions(trace)
        assert len(transitions) == 1
        assert transitions[0].delta_floors == -2

    def test_elevator_has_no_steps(self):
        trace = climb_trace(FLOOR_HEIGHT, with_steps=False, seed=7)
        transitions = detect_floor_transitions(trace)
        assert len(transitions) == 1
        assert transitions[0].kind is TransitionKind.ELEVATOR

    def test_level_walk_no_transitions(self):
        assert detect_floor_transitions(level_trace(0.0, seed=8)) == []

    def test_small_bump_ignored(self):
        trace = climb_trace(1.0, duration=8.0, seed=9)  # a ramp, not a floor
        assert detect_floor_transitions(trace, min_delta_m=2.0) == []

    def test_short_trace(self):
        assert detect_floor_transitions(ImuTrace(samples=[])) == []


class TestWalkerIntegration:
    def test_perform_stairs_session(self, lab1_plan):
        from repro.world.walker import Walker, WalkerProfile

        walker = Walker(lab1_plan, WalkerProfile(user_id="s"),
                        rng=np.random.default_rng(10))
        session = walker.perform_stairs(lab1_plan.waypoints["sw"],
                                        delta_floors=1)
        assert session.task == "STAIRS"
        assert session.frames == []
        transitions = detect_floor_transitions(session.imu)
        assert len(transitions) == 1
        assert transitions[0].delta_floors == 1

    def test_stairs_requires_nonzero_delta(self, lab1_plan):
        from repro.world.walker import Walker, WalkerProfile

        walker = Walker(lab1_plan, WalkerProfile(user_id="s"),
                        rng=np.random.default_rng(11))
        with pytest.raises(ValueError):
            walker.perform_stairs(lab1_plan.waypoints["sw"], delta_floors=0)

    def test_walker_altitude_sets_floor(self, lab1_plan, lab1_renderer):
        from repro.world.walker import Walker, WalkerProfile

        walker = Walker(lab1_plan, WalkerProfile(user_id="u"),
                        rng=np.random.default_rng(12),
                        renderer=lab1_renderer, altitude=FLOOR_HEIGHT)
        session = walker.perform_srs(lab1_plan.rooms[0].center)
        assert floor_of_session(session.imu) == 1
