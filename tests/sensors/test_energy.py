"""Direct unit tests for the energy model (complements the core tests)."""

import pytest

from repro.sensors.energy import (
    BATTERY_WH,
    IMU_POWER_W,
    VIDEO_POWER_W,
    EnergyReport,
    campaign_energy,
)


class TestEnergyReport:
    def test_totals(self):
        report = EnergyReport(duration_s=60.0, imu_joules=1.8,
                              video_joules=21.0)
        assert report.total_joules == pytest.approx(22.8)
        assert report.total_wh == pytest.approx(22.8 / 3600.0)
        assert report.battery_fraction == pytest.approx(
            22.8 / 3600.0 / BATTERY_WH
        )

    def test_addition(self):
        a = EnergyReport(10.0, 1.0, 2.0)
        b = EnergyReport(5.0, 0.5, 1.0)
        c = a + b
        assert c.duration_s == 15.0
        assert c.total_joules == pytest.approx(4.5)

    def test_paper_power_figures(self):
        assert IMU_POWER_W == pytest.approx(0.030)
        assert VIDEO_POWER_W == pytest.approx(0.350)

    def test_empty_campaign(self):
        total = campaign_energy([])
        assert total.total_joules == 0.0
        assert total.battery_fraction == 0.0
