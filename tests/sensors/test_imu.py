"""Tests for the IMU simulator."""


import numpy as np
import pytest

from repro.sensors.imu import GRAVITY, ImuConfig, ImuSimulator, ImuTrace


def straight_walk(duration=10.0, speed=1.0):
    times = np.linspace(0.0, duration, int(duration * 20) + 1)
    positions = np.stack([times * speed, np.zeros_like(times)], axis=1)
    headings = np.zeros_like(times)
    return times, positions, headings


class TestImuSimulator:
    def test_sample_rate(self):
        sim = ImuSimulator(rng=np.random.default_rng(0))
        times, pos, head = straight_walk(5.0)
        trace = sim.record(times, pos, head)
        assert len(trace) == pytest.approx(5.0 * trace.config.sample_rate_hz, abs=2)
        dt = np.diff(trace.times())
        assert np.allclose(dt, 1.0 / trace.config.sample_rate_hz)

    def test_accel_centered_on_gravity(self):
        sim = ImuSimulator(rng=np.random.default_rng(1))
        times, pos, head = straight_walk()
        trace = sim.record(times, pos, head)
        assert trace.accel().mean() == pytest.approx(GRAVITY, abs=0.1)

    def test_step_impacts_visible(self):
        sim = ImuSimulator(rng=np.random.default_rng(2))
        times, pos, head = straight_walk()
        quiet = sim.record(times, pos, head, step_times=[])
        sim2 = ImuSimulator(rng=np.random.default_rng(2))
        stepping = sim2.record(times, pos, head, step_times=list(np.arange(0.5, 9.5, 0.6)))
        assert stepping.accel().max() > quiet.accel().max() + 1.0

    def test_gyro_tracks_rotation(self):
        sim = ImuSimulator(
            ImuConfig(gyro_noise_std=0.0, gyro_bias_std=0.0, gyro_bias_walk_std=0.0),
            rng=np.random.default_rng(3),
        )
        times = np.linspace(0, 10, 201)
        headings = times * 0.2  # constant 0.2 rad/s
        positions = np.zeros((len(times), 2))
        trace = sim.record(times, positions, headings)
        assert trace.gyro().mean() == pytest.approx(0.2, abs=0.01)

    def test_bias_makes_gyro_systematically_wrong(self):
        config = ImuConfig(gyro_noise_std=0.0, gyro_bias_std=0.05,
                           gyro_bias_walk_std=0.0)
        sim = ImuSimulator(config, rng=np.random.default_rng(4))
        times, pos, head = straight_walk()
        trace = sim.record(times, pos, head)
        assert abs(trace.gyro().mean()) > 0.005

    def test_compass_noisy_but_unbiased_on_average(self):
        sim = ImuSimulator(rng=np.random.default_rng(5))
        times, pos, head = straight_walk(20.0)
        trace = sim.record(times, pos, head)
        # Disturbance field averages near zero along a long straight walk.
        assert abs(trace.compass().mean()) < 0.2

    def test_input_validation(self):
        sim = ImuSimulator(rng=np.random.default_rng(6))
        with pytest.raises(ValueError):
            sim.record([0.0], np.zeros((1, 2)), [0.0])
        with pytest.raises(ValueError):
            sim.record([0.0, 1.0], np.zeros((3, 2)), [0.0, 0.0])

    def test_trace_duration(self):
        sim = ImuSimulator(rng=np.random.default_rng(7))
        times, pos, head = straight_walk(8.0)
        trace = sim.record(times, pos, head)
        assert trace.duration() == pytest.approx(8.0, abs=0.05)

    def test_empty_trace_duration(self):
        assert ImuTrace(samples=[]).duration() == 0.0

    def test_same_device_shares_bias_across_recordings(self):
        config = ImuConfig(gyro_noise_std=0.0, gyro_bias_walk_std=0.0,
                           gyro_bias_std=0.05)
        sim = ImuSimulator(config, rng=np.random.default_rng(8))
        times, pos, head = straight_walk()
        t1 = sim.record(times, pos, head)
        t2 = sim.record(times, pos, head)
        assert t1.gyro().mean() == pytest.approx(t2.gyro().mean(), abs=1e-6)

    def test_magnetic_disturbance_is_location_dependent(self):
        sim = ImuSimulator(
            ImuConfig(compass_noise_std=0.0, magnetic_disturbance_std=0.3),
            rng=np.random.default_rng(9),
        )
        a = sim._magnetic_disturbance(0.0, 0.0)
        b = sim._magnetic_disturbance(3.0, 3.0)
        assert a != b
        # Deterministic per device and location.
        assert sim._magnetic_disturbance(0.0, 0.0) == a
