"""Tests for the Trajectory type."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sensors.trajectory import Trajectory, TrajectoryPoint


def line_trajectory(n=5, dx=1.0):
    return Trajectory.from_arrays(
        np.array([[i * dx, 0.0] for i in range(n)]), trajectory_id="t"
    )


class TestTrajectoryBasics:
    def test_from_arrays_headings(self):
        traj = line_trajectory()
        assert traj[0].heading == pytest.approx(0.0)
        up = Trajectory.from_arrays(np.array([[0, 0], [0, 1], [0, 2]]))
        assert up[0].heading == pytest.approx(math.pi / 2)

    def test_from_arrays_validates_times(self):
        with pytest.raises(ValueError):
            Trajectory.from_arrays(np.zeros((3, 2)), times=[0.0, 1.0])

    def test_length_and_duration(self):
        traj = line_trajectory(5)
        assert traj.length() == pytest.approx(4.0)
        assert traj.duration() == pytest.approx(4.0)

    def test_as_array_roundtrip(self):
        traj = line_trajectory(4)
        arr = traj.as_array()
        assert arr.shape == (4, 2)
        assert arr[2, 0] == 2.0

    def test_empty_duration(self):
        assert Trajectory(points=[]).duration() == 0.0


class TestTransforms:
    def test_translation(self):
        moved = line_trajectory().translated(3.0, -1.0)
        assert moved[0].x == 3.0 and moved[0].y == -1.0
        assert moved.length() == pytest.approx(4.0)

    def test_rotation_about_origin(self):
        rotated = line_trajectory().rotated(math.pi / 2.0)
        assert rotated[1].x == pytest.approx(0.0, abs=1e-12)
        assert rotated[1].y == pytest.approx(1.0)

    def test_transformed_combines(self):
        traj = line_trajectory()
        combined = traj.transformed(math.pi / 2.0, 1.0, 1.0)
        manual = traj.rotated(math.pi / 2.0).translated(1.0, 1.0)
        for a, b in zip(combined.points, manual.points):
            assert a.x == pytest.approx(b.x)
            assert a.y == pytest.approx(b.y)

    @given(
        st.floats(-math.pi, math.pi),
        st.floats(-100, 100),
        st.floats(-100, 100),
    )
    @settings(max_examples=40)
    def test_rigid_transform_preserves_length(self, theta, dx, dy):
        traj = line_trajectory(6, dx=0.7)
        moved = traj.transformed(theta, dx, dy)
        assert moved.length() == pytest.approx(traj.length(), abs=1e-9)


class TestResample:
    def test_resample_interval(self):
        traj = line_trajectory(11)  # times 0..10
        res = traj.resampled(0.5)
        times = res.times()
        assert np.allclose(np.diff(times), 0.5)
        assert len(res) == 21

    def test_resample_preserves_endpoints(self):
        traj = line_trajectory(6)
        res = traj.resampled(1.0)
        assert res[0].x == traj[0].x
        assert res[-1].x == pytest.approx(traj[-1].x)

    def test_resample_reattaches_keyframes(self):
        traj = line_trajectory(11)
        traj.attach_keyframe("kf1", t=3.2)
        res = traj.resampled(0.5)
        idx = res.keyframe_indices["kf1"]
        assert res[idx].t == pytest.approx(3.0, abs=0.3)

    def test_resample_invalid_interval(self):
        with pytest.raises(ValueError):
            line_trajectory().resampled(0.0)

    def test_resample_single_point(self):
        traj = Trajectory(points=[TrajectoryPoint(1, 2, 0.0)])
        assert len(traj.resampled(0.5)) == 1


class TestAnchors:
    def test_nearest_index(self):
        traj = line_trajectory(5)
        assert traj.nearest_index(2.3) == 2
        assert traj.nearest_index(100.0) == 4

    def test_nearest_index_empty(self):
        with pytest.raises(ValueError):
            Trajectory(points=[]).nearest_index(0.0)

    def test_attach_keyframe(self):
        traj = line_trajectory(5)
        traj.attach_keyframe("a", 1.4)
        assert traj.keyframe_indices["a"] == 1

    def test_transform_preserves_anchors(self):
        traj = line_trajectory(5)
        traj.attach_keyframe("a", 2.0)
        moved = traj.translated(1.0, 1.0)
        assert moved.keyframe_indices == {"a": 2}
