"""Tests for step counting, heading fusion and dead reckoning."""

import math

import numpy as np
import pytest

from repro.sensors.dead_reckoning import DeadReckoningConfig, dead_reckon
from repro.sensors.heading import HeadingEstimator, integrate_gyro
from repro.sensors.imu import ImuConfig, ImuSimulator
from repro.sensors.step_counter import (
    count_steps,
    detect_step_times,
    estimate_walking_distance,
)


def recorded_walk(n_steps=14, duration=10.0, seed=0, heading_rate=0.0,
                  config=None):
    rng = np.random.default_rng(seed)
    sim = ImuSimulator(config=config, rng=rng)
    times = np.linspace(0.0, duration, int(duration * 20) + 1)
    headings = times * heading_rate
    xs = np.cumsum(np.cos(headings)) * (duration / len(times))
    ys = np.cumsum(np.sin(headings)) * (duration / len(times))
    positions = np.stack([xs, ys], axis=1)
    step_times = list(np.linspace(0.4, duration - 0.4, n_steps))
    return sim.record(times, positions, headings, step_times), step_times


class TestStepCounter:
    def test_counts_exact_steps(self):
        trace, steps = recorded_walk(n_steps=14)
        assert count_steps(trace) == 14

    def test_no_steps_when_stationary(self):
        sim = ImuSimulator(rng=np.random.default_rng(1))
        times = np.linspace(0, 5, 101)
        trace = sim.record(times, np.zeros((101, 2)), np.zeros(101))
        assert count_steps(trace) <= 1  # noise may fake at most a blip

    def test_detected_times_near_truth(self):
        trace, truth = recorded_walk(n_steps=10, seed=2)
        detected = detect_step_times(trace)
        assert len(detected) == 10
        for est, true in zip(detected, truth):
            assert est == pytest.approx(true, abs=0.15)

    def test_refractory_period(self):
        trace, _ = recorded_walk(n_steps=12, seed=3)
        detected = detect_step_times(trace, min_step_interval=0.3)
        assert all(b - a >= 0.3 for a, b in zip(detected, detected[1:]))

    def test_walking_distance(self):
        trace, _ = recorded_walk(n_steps=10, seed=4)
        assert estimate_walking_distance(trace, step_length=0.7) == pytest.approx(7.0)

    def test_short_trace(self):
        from repro.sensors.imu import ImuTrace

        assert detect_step_times(ImuTrace(samples=[])) == []


class TestHeading:
    def test_integrate_gyro_clean(self):
        config = ImuConfig(gyro_noise_std=0.0, gyro_bias_std=0.0,
                           gyro_bias_walk_std=0.0)
        trace, _ = recorded_walk(heading_rate=0.1, config=config, seed=5)
        headings = integrate_gyro(trace, initial_heading=0.0)
        true_final = 0.1 * trace.duration()
        assert headings[-1] == pytest.approx(true_final, abs=0.05)

    def test_gyro_only_drifts_with_bias(self):
        config = ImuConfig(gyro_noise_std=0.0, gyro_bias_std=0.08,
                           gyro_bias_walk_std=0.0)
        trace, _ = recorded_walk(duration=30.0, config=config, seed=6)
        gyro_only = integrate_gyro(trace, initial_heading=0.0)
        fused = HeadingEstimator(compass_gain=0.05).estimate(
            trace, initial_heading=0.0
        )
        # Fusion must bound the drift that pure integration accumulates.
        assert abs(gyro_only[-1]) > abs(fused[-1])
        assert abs(fused[-1]) < 0.35

    def test_fused_tracks_rotation(self):
        trace, _ = recorded_walk(heading_rate=0.15, seed=7)
        fused = HeadingEstimator().estimate(trace, initial_heading=0.0)
        assert fused[-1] == pytest.approx(0.15 * trace.duration(), abs=0.3)

    def test_gain_validation(self):
        with pytest.raises(ValueError):
            HeadingEstimator(compass_gain=1.5)

    def test_heading_at_interpolates(self):
        trace, _ = recorded_walk(seed=8)
        estimator = HeadingEstimator()
        mid = estimator.heading_at(trace, trace.duration() / 2.0)
        assert np.isfinite(mid)

    def test_empty_trace(self):
        from repro.sensors.imu import ImuTrace

        assert HeadingEstimator().estimate(ImuTrace(samples=[])).size == 0


class TestDeadReckoning:
    def test_straight_walk_endpoint(self):
        trace, _ = recorded_walk(n_steps=14, seed=9)
        traj = dead_reckon(trace, DeadReckoningConfig(step_length=0.7))
        end = traj.points[-1]
        # 14 steps x 0.7 m along +x with modest drift.
        assert end.x == pytest.approx(9.8, abs=1.0)
        assert abs(end.y) < 1.5

    def test_origin_offset_respected(self):
        trace, _ = recorded_walk(seed=10)
        traj = dead_reckon(trace, origin=(5.0, -2.0))
        assert traj.points[0].x == 5.0
        assert traj.points[0].y == -2.0

    def test_point_count_matches_steps_plus_endpoints(self):
        trace, _ = recorded_walk(n_steps=10, seed=11)
        traj = dead_reckon(trace)
        # Start point + one per detected step (+ trailing stay point).
        assert len(traj) >= 11

    def test_stationary_trace_single_position(self):
        sim = ImuSimulator(rng=np.random.default_rng(12))
        times = np.linspace(0, 4, 81)
        trace = sim.record(times, np.zeros((81, 2)), np.zeros(81))
        traj = dead_reckon(trace)
        assert traj.length() < 1.0

    def test_empty_trace(self):
        from repro.sensors.imu import ImuTrace

        traj = dead_reckon(ImuTrace(samples=[]))
        assert len(traj) == 0

    def test_turning_walk_curves(self):
        config = ImuConfig(gyro_noise_std=0.001, gyro_bias_std=0.0,
                           gyro_bias_walk_std=0.0, compass_noise_std=0.01,
                           magnetic_disturbance_std=0.0)
        trace, _ = recorded_walk(heading_rate=math.pi / 20.0, config=config,
                                 duration=10.0, seed=13)
        traj = dead_reckon(trace)
        end_heading = traj.points[-1].heading
        assert end_heading == pytest.approx(math.pi / 2.0, abs=0.4)
