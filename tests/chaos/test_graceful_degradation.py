"""Chaos suite: the pipeline must degrade gracefully, never die.

CrowdMap's premise (paper Fig. 7a) is that reconstruction quality grows
with trajectory quantity — which only holds if a corrupt minority of
uploads cannot abort the majority. These tests fault-inject 20% of a
crowd dataset's sessions with the seeded
:class:`~repro.backend.faults.FaultInjector` and assert that:

- the pipeline still returns a :class:`ReconstructionResult` with a
  non-empty floor plan built from the healthy sessions;
- the ``failures`` report names exactly the faulted items;
- telemetry counters (``sessions_quarantined``,
  ``panorama_groups_quarantined``, ``tasks_retried``,
  ``tasks_dead_lettered``) match the injected fault counts.
"""

import pytest

from repro.backend.faults import FaultInjector, FlakyHandler
from repro.backend.queue import RetryPolicy, TaskQueue, TaskState
from repro.backend.telemetry import TelemetryRegistry
from repro.backend.workers import WorkerPool
from repro.core.config import CrowdMapConfig
from repro.core.keyframes import KeyframeSelectionError
from repro.core.pipeline import CrowdMapPipeline

FAULT_RATE = 0.2

#: Chosen so both planned faults land on SWS sessions of the
#: ``small_dataset`` fixture (probed; the plan is seed-deterministic).
SEED_SWS_ONLY = 3
#: Chosen so the plan hits one SWS and one SRS session, exercising both
#: the per-session and the per-panorama-group quarantine paths.
SEED_MIXED = 0


def _chaos_config():
    return CrowdMapConfig().with_overrides(layout_samples=600)


def _inject(dataset, seed):
    """Corrupt ``FAULT_RATE`` of the dataset's sessions, deterministically."""
    injector = FaultInjector(seed=seed, fault_rate=FAULT_RATE,
                             kinds=("corrupt_frames",))
    decisions = injector.plan([s.session_id for s in dataset.sessions])
    faulted_ids = {d.item_id for d in decisions}
    sessions = [
        injector.corrupt_session_frames(s) if s.session_id in faulted_ids
        else s
        for s in dataset.sessions
    ]
    return sessions, faulted_ids


class TestGracefulDegradation:
    @pytest.fixture(scope="class")
    def chaos_run(self, small_dataset):
        sessions, faulted_ids = _inject(small_dataset, SEED_SWS_ONLY)
        telemetry = TelemetryRegistry()
        pipeline = CrowdMapPipeline(_chaos_config(), telemetry=telemetry)
        result = pipeline.run_sessions(sessions)
        return result, faulted_ids, telemetry, small_dataset

    def test_twenty_percent_of_sessions_faulted(self, chaos_run):
        _, faulted_ids, _, dataset = chaos_run
        assert len(faulted_ids) == round(FAULT_RATE * len(dataset.sessions))
        tasks = {s.session_id: s.task for s in dataset.sessions}
        assert all(tasks[sid] == "SWS" for sid in faulted_ids)

    def test_floorplan_still_produced(self, chaos_run):
        result, _, _, _ = chaos_run
        assert result.floorplan.rooms
        assert result.skeleton.skeleton.any()
        assert result.panoramas

    def test_failures_report_is_accurate(self, chaos_run):
        result, faulted_ids, _, _ = chaos_run
        assert {f.item_id for f in result.failures} == faulted_ids
        for failure in result.failures:
            assert failure.stage == "keyframes"
            assert failure.error_type == "KeyframeSelectionError"
            assert "non-finite" in failure.message
        assert result.n_quarantined == len(faulted_ids)
        assert result.failures_for_stage("keyframes") == result.failures

    def test_quarantine_telemetry_matches_fault_count(self, chaos_run):
        _, faulted_ids, telemetry, _ = chaos_run
        assert telemetry.value("sessions_quarantined") == len(faulted_ids)
        assert telemetry.value("panorama_groups_quarantined") == 0

    def test_healthy_sessions_fully_processed(self, chaos_run):
        result, faulted_ids, _, dataset = chaos_run
        n_sws = len(dataset.sws_sessions())
        assert len(result.anchored) == n_sws - len(faulted_ids)
        assert len(result.aggregation.trajectories) == n_sws - len(faulted_ids)
        anchored_ids = {a.session_id for a in result.anchored}
        assert anchored_ids.isdisjoint(faulted_ids)

    def test_mixed_faults_quarantine_panorama_groups(self, small_dataset):
        sessions, faulted_ids = _inject(small_dataset, SEED_MIXED)
        tasks = {s.session_id: s.task for s in small_dataset.sessions}
        faulted_sws = {i for i in faulted_ids if tasks[i] == "SWS"}
        faulted_srs = {i for i in faulted_ids if tasks[i] == "SRS"}
        assert faulted_sws and faulted_srs  # the seed guarantees both kinds

        telemetry = TelemetryRegistry()
        pipeline = CrowdMapPipeline(_chaos_config(), telemetry=telemetry)
        result = pipeline.run_sessions(sessions)

        assert result.floorplan.rooms
        assert {f.item_id for f in result.failures_for_stage("keyframes")} \
            == faulted_sws
        # Every faulted SRS session surfaces as a quarantined group (each
        # spin in this dataset occupies its own skeleton cell).
        pano_failures = result.failures_for_stage("panorama")
        assert {f.item_id for f in pano_failures} == faulted_srs
        assert all(f.error_type == "PanoramaCoverageError"
                   for f in pano_failures)
        assert telemetry.value("sessions_quarantined") == len(faulted_sws)
        assert telemetry.value("panorama_groups_quarantined") \
            == len(faulted_srs)
        assert result.n_quarantined == len(faulted_ids)

    def test_raise_mode_stays_fail_fast(self, small_dataset):
        sessions, _ = _inject(small_dataset, SEED_SWS_ONLY)
        config = _chaos_config().with_overrides(pipeline_on_error="raise")
        with pytest.raises(KeyframeSelectionError):
            CrowdMapPipeline(config).run_sessions(sessions)

    def test_invalid_policy_rejected(self):
        config = CrowdMapConfig().with_overrides(pipeline_on_error="explode")
        with pytest.raises(ValueError):
            CrowdMapPipeline(config)


class TestIngestChaosTelemetry:
    """Flaky uploads through the queue: retries and dead letters add up."""

    def test_retry_and_dead_letter_counts_match_injection(self):
        n_uploads = 10
        flaky_failures = 2        # transient: recovers within the budget
        max_attempts = 3

        telemetry = TelemetryRegistry()
        queue = TaskQueue(
            retry_policy=RetryPolicy(max_attempts=max_attempts),
            telemetry=telemetry,
        )
        pool = WorkerPool(queue, n_workers=2, telemetry=telemetry)

        pool.register("healthy", lambda payload: payload["n"])
        pool.register(
            "flaky", FlakyHandler(lambda payload: payload["n"],
                                  fail_times=flaky_failures)
        )

        def doomed(payload):
            raise RuntimeError("permanently corrupt upload")

        pool.register("doomed", doomed)

        # 10 uploads, 20% faulted: one transient, one permanent.
        kinds = ["healthy"] * (n_uploads - 2) + ["flaky", "doomed"]
        tasks = [queue.submit(kind, {"n": i}) for i, kind in enumerate(kinds)]
        with pool:
            pool.drain(timeout=30.0)

        states = [queue.task(t.task_id).state for t in tasks]
        assert states.count(TaskState.DONE) == n_uploads - 1
        assert states.count(TaskState.DEAD) == 1
        # Retries: the flaky upload's transient failures plus the doomed
        # upload's attempts before dead-lettering.
        assert telemetry.value("tasks_retried") \
            == flaky_failures + (max_attempts - 1)
        assert telemetry.value("tasks_dead_lettered") == 1
        assert len(queue.dead_letters()) == 1
        assert telemetry.value("worker_tasks_done") == n_uploads - 1

    def test_dead_letter_replay_after_fix(self):
        telemetry = TelemetryRegistry()
        queue = TaskQueue(retry_policy=RetryPolicy(max_attempts=1),
                          telemetry=telemetry)
        pool = WorkerPool(queue, n_workers=1, telemetry=telemetry)
        handler = FlakyHandler(lambda n: n * 2, fail_times=1)
        pool.register("work", handler)
        t = queue.submit("work", 21)
        with pool:
            pool.drain(timeout=10.0)
            assert queue.task(t.task_id).state is TaskState.DEAD
            # Operator replays the dead letter once the handler recovered.
            queue.retry_dead(t.task_id)
            pool.drain(timeout=10.0)
        assert queue.task(t.task_id).state is TaskState.DONE
        assert queue.task(t.task_id).result == 42
