"""Chaos suite: crashed workers must not leak shared-memory segments.

The arena's crash-safety story has two layers — the creating process's
``resource_tracker`` registration and the prefix-scoped orphan sweep at
arena close. These tests SIGKILL a worker that is actively mapped into
an arena segment (no atexit, no finalizers, no tracker on the worker
side runs) and assert that ``/dev/shm`` is clean once the arena closes,
and that the pool-draining path (:class:`WorkerPool` handlers reading
arena-backed frames) leaves nothing behind after ``stop``.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import signal

import numpy as np
import pytest

from repro.backend.queue import TaskQueue
from repro.backend.shm import ShmArena, audit_dev_shm, shm_available
from repro.backend.workers import WorkerPool

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="platform has no POSIX shared memory"
)


def _attach_and_spin(payload: bytes, attached, release) -> None:
    """Worker body: attach to the shared array, signal, then hang."""
    view = pickle.loads(payload)
    assert float(view[0, 0]) == 1.0
    attached.set()
    release.wait(timeout=30.0)


class TestKilledWorkerLeaksNothing:
    def test_sigkilled_attacher_leaks_no_segments(self):
        arena = ShmArena()
        view = arena.share_array(np.ones((256, 256)))
        payload = pickle.dumps(view)
        # spawn: the child holds a genuine attach-side mapping with its
        # own (suppressed) tracker state — the worst case for cleanup.
        ctx = multiprocessing.get_context("spawn")
        attached = ctx.Event()
        release = ctx.Event()
        child = ctx.Process(
            target=_attach_and_spin, args=(payload, attached, release)
        )
        child.start()
        try:
            assert attached.wait(timeout=30.0)
            os.kill(child.pid, signal.SIGKILL)  # no cleanup runs child-side
            child.join(timeout=10.0)
            assert child.exitcode == -signal.SIGKILL
        finally:
            # Never Event.set() here: if the SIGKILLed child died while
            # registered as a sleeper on the event's condition, set()
            # blocks forever in notify_all waiting for the dead process
            # to acknowledge its wakeup. Terminate instead — nothing
            # else ever waits on `release`.
            if child.is_alive():
                child.terminate()
                child.join(timeout=10.0)
        del view  # drop the last parent-side lease
        arena.close()
        assert audit_dev_shm(arena.prefix) == []

    def test_worker_pool_stop_leaves_dev_shm_clean(self):
        arena = ShmArena()
        frames = [
            arena.share_array(np.full((128, 128), i, dtype=np.float64))
            for i in range(4)
        ]
        queue = TaskQueue()
        pool = WorkerPool(queue, n_workers=2)
        pool.register("checksum", lambda frame: float(frame.sum()))
        task_ids = [
            queue.submit("checksum", frame).task_id for frame in frames
        ]
        with pool:
            pool.drain()
        results = [queue.task(task_id).result for task_id in task_ids]
        assert results == [float(np.full((128, 128), i).sum()) for i in range(4)]
        del frames
        arena.close()
        assert audit_dev_shm(arena.prefix) == []
