"""Tests for the crowd coverage analysis."""

import pytest

from repro.eval.coverage import coverage_report, hallway_coverage, room_coverage


class TestCoverage:
    def test_report_structure(self, small_dataset):
        report = coverage_report(small_dataset)
        assert 0.0 < report.hallway_covered_fraction <= 1.0
        assert report.walks == len(small_dataset.sws_sessions())
        assert report.spins == len(small_dataset.srs_sessions())
        assert report.total_walk_length_m > 10.0

    def test_rooms_visited_matches_srs(self, small_dataset):
        report = coverage_report(small_dataset)
        spun = {s.room_name for s in small_dataset.srs_sessions()}
        for name, visited in report.rooms_visited.items():
            assert visited == (name in spun)

    def test_rooms_fraction(self, small_dataset, lab1_plan):
        report = coverage_report(small_dataset)
        expected = len(
            {s.room_name for s in small_dataset.srs_sessions()}
        ) / len(lab1_plan.rooms)
        assert report.rooms_visited_fraction == pytest.approx(expected)

    def test_empty_sessions(self, lab1_plan):
        assert hallway_coverage([], lab1_plan) == 0.0
        assert not any(room_coverage([], lab1_plan).values())

    def test_reach_monotonicity(self, small_dataset, lab1_plan):
        tight = hallway_coverage(small_dataset.sessions, lab1_plan, reach_m=0.3)
        loose = hallway_coverage(small_dataset.sessions, lab1_plan, reach_m=2.0)
        assert loose >= tight

    def test_coverage_bounds_recall(self, small_dataset, lab1_plan):
        """Reconstruction recall cannot exceed the physical coverage much.

        (The splat radius plus alpha fill can slightly exceed the walked
        band, hence the tolerance.)
        """
        from repro.core import CrowdMapConfig, CrowdMapPipeline
        from repro.eval import evaluate_hallway_shape

        coverage = hallway_coverage(small_dataset.sessions, lab1_plan,
                                    reach_m=1.5)
        pipe = CrowdMapPipeline(CrowdMapConfig())
        _, _, skeleton, _ = pipe.build_pathway(small_dataset.sws_sessions())
        score = evaluate_hallway_shape(skeleton, lab1_plan)
        assert score.recall <= coverage + 0.15
