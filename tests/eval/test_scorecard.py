"""Scorecard unit behaviour: edge cases, comparison bands, rendering.

The expensive end-to-end paths (real pipeline runs, the CLI gate, the
two-run bit-identity acceptance criterion) live in
``tests/eval/test_accuracy_gate.py``; everything here is fast and
synthetic.
"""

import json
import math
from types import SimpleNamespace

import numpy as np
import pytest

from repro.core.aggregation import AggregationResult
from repro.core.floorplan import FloorPlanResult, PlacedRoom
from repro.core.pipeline import ReconstructionResult
from repro.core.room_layout import RoomLayout
from repro.core.skeleton import OccupancyGrid, SkeletonResult
from repro.eval.scorecard import (
    ERROR_TOLERANCES,
    SCORE_TOLERANCES,
    _fold_rotation,
    collect_samples,
    compare_to_accuracy_baseline,
    render_crowd_sweep,
    render_scorecard_table,
    score_reconstruction,
)
from repro.geometry.polygon_ops import bounding_box_iou
from repro.geometry.primitives import BoundingBox, Point
from repro.world.buildings import build_lab1


def empty_skeleton(plan, cell_size=0.5):
    grid = OccupancyGrid(plan.bounds, cell_size)
    zeros = np.zeros_like(grid.counts, dtype=bool)
    return SkeletonResult(
        grid=grid,
        probability=grid.counts.copy(),
        binarized=zeros.copy(),
        alpha_mask=zeros.copy(),
        skeleton=zeros.copy(),
    )


def empty_result(plan):
    skeleton = empty_skeleton(plan)
    return ReconstructionResult(
        aggregation=AggregationResult(
            trajectories=[], transforms=[], candidates=[], components=[]
        ),
        skeleton=skeleton,
        panoramas=[],
        layouts=[],
        floorplan=FloorPlanResult(skeleton=skeleton, rooms=[]),
        anchored=[],
    )


class TestEdgeCases:
    def test_empty_skeleton_scores_zero_without_crashing(self):
        plan = build_lab1()
        report = score_reconstruction(empty_result(plan), plan)
        assert report.hallway_precision == 0.0
        assert report.hallway_recall == 0.0
        assert report.hallway_f == 0.0
        assert report.rooms_scored == 0
        assert report.room_iou_mean == 0.0
        assert report.rooms_total == len(plan.rooms)

    def test_zero_keyframes_localized_fraction_is_zero(self):
        plan = build_lab1()
        report = score_reconstruction(empty_result(plan), plan)
        assert report.n_keyframes == 0
        assert report.keyframes_localized_fraction == 0.0

    def test_partial_registration_counts_largest_component(self):
        plan = build_lab1()
        result = empty_result(plan)
        # Three anchored sessions: two registered together, one orphan.
        result.anchored = [
            SimpleNamespace(keyframes=[0] * 6),
            SimpleNamespace(keyframes=[0] * 4),
            SimpleNamespace(keyframes=[0] * 10),
        ]
        result.aggregation.components = [[0, 1], [2]]
        report = score_reconstruction(result, plan)
        assert report.n_keyframes == 20
        assert report.keyframes_localized_fraction == pytest.approx(0.5)

    def test_unnamed_and_unknown_rooms_are_skipped(self):
        plan = build_lab1()
        result = empty_result(plan)
        layout = RoomLayout(
            width=3.0, depth=3.0, orientation=0.0, center=Point(0.0, 0.0),
            consistency=1.0,
        )
        result.floorplan.rooms = [
            PlacedRoom(layout=layout, center=Point(0, 0), name=None),
            PlacedRoom(layout=layout, center=Point(0, 0), name="no_such_room"),
        ]
        report = score_reconstruction(result, plan)
        assert report.room_ious == {}

    def test_json_round_trips_and_is_rounded(self):
        plan = build_lab1()
        cell = score_reconstruction(empty_result(plan), plan).to_json()
        # Serializable, and every float fits the 4-decimal contract.
        payload = json.loads(json.dumps(cell))
        for key, value in payload.items():
            if isinstance(value, float):
                assert value == round(value, 4), key


class TestFoldRotation:
    @pytest.mark.parametrize(
        "angle,expected",
        [(0.0, 0.0), (90.0, 90.0), (180.0, 180.0), (270.0, 90.0),
         (360.0, 0.0), (-90.0, 90.0), (350.0, 10.0)],
    )
    def test_folds_into_smallest_equivalent(self, angle, expected):
        assert _fold_rotation(angle) == pytest.approx(expected)


class TestBoundingBoxIou:
    def test_identical_boxes(self):
        box = BoundingBox(0, 0, 4, 2)
        assert bounding_box_iou(box, box) == pytest.approx(1.0)

    def test_disjoint_boxes(self):
        assert bounding_box_iou(
            BoundingBox(0, 0, 1, 1), BoundingBox(5, 5, 6, 6)
        ) == 0.0

    def test_half_overlap(self):
        a = BoundingBox(0, 0, 2, 1)
        b = BoundingBox(1, 0, 3, 1)
        # intersection 1, union 3.
        assert bounding_box_iou(a, b) == pytest.approx(1.0 / 3.0)

    def test_degenerate_box_is_zero(self):
        a = BoundingBox(1, 1, 1, 1)
        assert bounding_box_iou(a, a) == 0.0


def make_report(**metrics):
    cell = {
        "building": "Lab1",
        "lighting": "day",
        "crowd_size": 3,
        "hallway_precision": 0.8,
        "hallway_recall": 0.7,
        "hallway_f": 0.75,
        "room_iou_mean": 0.6,
        "rooms_scored_fraction": 0.5,
        "keyframes_localized_fraction": 0.9,
        "room_area_error_mean": 0.1,
        "room_aspect_error_mean": 0.05,
        "room_location_error_mean": 0.5,
        "room_location_error_max": 1.0,
        "alignment_rotation_error_deg": 0.0,
        "alignment_translation_error_m": 0.5,
    }
    cell.update(metrics)
    return {"schema": 1, "cells": {"Lab1/day/u03": cell}}


class TestCompare:
    def test_identical_reports_pass(self):
        base = make_report()
        assert compare_to_accuracy_baseline(base, base) == []

    def test_improvements_never_fail(self):
        improved = make_report(
            hallway_f=0.95, room_location_error_mean=0.1, room_iou_mean=0.9
        )
        assert compare_to_accuracy_baseline(improved, make_report()) == []

    def test_score_drop_beyond_band_fails(self):
        band = SCORE_TOLERANCES["hallway_f"]
        degraded = make_report(hallway_f=0.75 - band - 0.01)
        problems = compare_to_accuracy_baseline(degraded, make_report())
        assert len(problems) == 1
        assert "hallway_f" in problems[0]

    def test_score_drop_within_band_passes(self):
        band = SCORE_TOLERANCES["hallway_f"]
        wobble = make_report(hallway_f=0.75 - band + 0.01)
        assert compare_to_accuracy_baseline(wobble, make_report()) == []

    def test_error_rise_beyond_band_fails(self):
        band = ERROR_TOLERANCES["room_location_error_mean"]
        degraded = make_report(room_location_error_mean=0.5 + band + 0.01)
        problems = compare_to_accuracy_baseline(degraded, make_report())
        assert len(problems) == 1
        assert "room_location_error_mean" in problems[0]

    def test_tolerance_scale_widens_bands(self):
        band = SCORE_TOLERANCES["hallway_f"]
        degraded = make_report(hallway_f=0.75 - 1.5 * band)
        assert compare_to_accuracy_baseline(degraded, make_report())
        assert (
            compare_to_accuracy_baseline(
                degraded, make_report(), tolerance_scale=2.0
            )
            == []
        )
        with pytest.raises(ValueError, match="tolerance_scale"):
            compare_to_accuracy_baseline(
                make_report(), make_report(), tolerance_scale=-1.0
            )

    def test_missing_cell_fails_unless_subset(self):
        base = make_report()
        empty = {"schema": 1, "cells": {}}
        problems = compare_to_accuracy_baseline(empty, base)
        assert problems and "not scored" in problems[0]
        assert (
            compare_to_accuracy_baseline(empty, base, require_all_cells=False)
            == []
        )

    def test_new_cells_in_report_are_ignored(self):
        report = make_report()
        report["cells"]["Gym/day/u06"] = dict(
            report["cells"]["Lab1/day/u03"], building="Gym"
        )
        assert compare_to_accuracy_baseline(report, make_report()) == []

    def test_losing_a_room_always_fails(self):
        degraded = make_report(rooms_scored_fraction=0.4999)
        problems = compare_to_accuracy_baseline(degraded, make_report())
        assert len(problems) == 1
        assert "rooms_scored_fraction" in problems[0]


class TestRendering:
    def cell(self, building="Lab1", n_users=3, f=0.8):
        return {
            "building": building,
            "lighting": "day",
            "crowd_size": n_users,
            "hallway_precision": 0.9,
            "hallway_recall": 0.8,
            "hallway_f": f,
            "room_iou_mean": 0.7,
            "room_location_error_mean": 0.4,
            "keyframes_localized_fraction": 0.85,
            "rooms_scored": 3,
            "rooms_total": 12,
            "samples": {
                "room_iou": {"s1": 0.7},
                "room_location_error": {"s1": 0.4},
            },
        }

    def test_table_lists_every_cell(self):
        report = {
            "schema": 1,
            "cells": {
                "Lab1/day/u03": self.cell(),
                "Gym/day/u06": self.cell(building="Gym", n_users=6),
            },
        }
        table = render_scorecard_table(report)
        assert "Lab1/day/u03" in table and "Gym/day/u06" in table

    def test_sweep_orders_by_crowd_size(self):
        report = {
            "schema": 1,
            "cells": {
                "Lab1/day/u05": self.cell(n_users=5, f=0.9),
                "Lab1/day/u01": self.cell(n_users=1, f=0.4),
                "Lab1/day/u03": self.cell(n_users=3, f=0.8),
            },
        }
        sweep = render_crowd_sweep(report)
        lines = [line for line in sweep.splitlines() if line.startswith("Lab1")]
        users = [int(line.split("|")[2]) for line in lines]
        assert users == [1, 3, 5]

    def test_collect_samples_pools_across_cells(self):
        report = {
            "schema": 1,
            "cells": {
                "Lab1/day/u03": self.cell(),
                "Gym/day/u06": self.cell(building="Gym"),
            },
        }
        pooled = collect_samples(report)
        assert pooled["room_iou"] == [0.7, 0.7]
        assert pooled["room_location_error"] == [0.4, 0.4]


class TestDeterminismContract:
    def test_scorecard_module_reads_no_clocks(self):
        """CM008 in miniature: the module tree must not observe time."""
        import repro.eval.scorecard as module

        source = open(module.__file__).read()
        for banned in ("perf_counter", "monotonic", "time.time", "sleep("):
            assert banned not in source

    def test_translation_error_uses_cell_size(self):
        plan = build_lab1()
        result = empty_result(plan)
        report = score_reconstruction(result, plan)
        # Empty masks align at zero shift: no translation residual.
        assert report.alignment_translation_error_m == 0.0
        assert not math.isnan(report.alignment_rotation_error_deg)
