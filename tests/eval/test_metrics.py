"""Tests for the evaluation metrics, CDF helpers and report rendering."""


import numpy as np
import pytest

from repro.core.config import CrowdMapConfig
from repro.core.room_layout import RoomLayout
from repro.core.skeleton import reconstruct_skeleton
from repro.eval.cdf import cdf_at, empirical_cdf, mean_of, percentile_of
from repro.eval.hallway_metrics import evaluate_hallway_shape
from repro.eval.report import render_cdf_series, render_comparison, render_table
from repro.eval.room_metrics import (
    evaluate_rooms,
    room_area_error,
    room_aspect_ratio_error,
    room_location_error,
)
from repro.geometry.primitives import Point
from repro.sensors.trajectory import Trajectory


class TestCdf:
    def test_empirical_cdf(self):
        xs, ps = empirical_cdf([3.0, 1.0, 2.0])
        assert list(xs) == [1.0, 2.0, 3.0]
        assert list(ps) == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_empty(self):
        xs, ps = empirical_cdf([])
        assert xs.size == 0 and ps.size == 0
        assert cdf_at([], 1.0) == 0.0
        assert mean_of([]) == 0.0

    def test_cdf_at(self):
        values = [1, 2, 3, 4]
        assert cdf_at(values, 2.5) == 0.5
        assert cdf_at(values, 4.0) == 1.0
        assert cdf_at(values, 0.0) == 0.0

    def test_percentile(self):
        assert percentile_of(range(101), 90) == pytest.approx(90.0)
        assert percentile_of([], 50) == 0.0


class TestRoomMetrics:
    def room(self, width=6.0, depth=4.0):
        from repro.world.floorplan_model import Room

        return Room("r", Point(10.0, 10.0), width, depth)

    def layout(self, width, depth, cx=10.0, cy=10.0):
        return RoomLayout(center=Point(cx, cy), width=width, depth=depth,
                          orientation=0.0, consistency=0.0)

    def test_area_error(self):
        assert room_area_error(self.layout(6.0, 4.0), self.room()) == 0.0
        assert room_area_error(self.layout(6.0, 2.0), self.room()) == pytest.approx(0.5)

    def test_aspect_ratio_error(self):
        assert room_aspect_ratio_error(self.layout(6.0, 4.0), self.room()) == 0.0
        # Swapping axes does not change the AR convention (long/short).
        assert room_aspect_ratio_error(self.layout(4.0, 6.0), self.room()) == 0.0

    def test_location_error(self):
        assert room_location_error(13.0, 14.0, self.room()) == 5.0

    def test_evaluate_rooms_report(self):
        layouts = [self.layout(6.3, 4.1, cx=11.0)]
        from repro.world.buildings import build_lab1

        plan = build_lab1()
        true_room = plan.rooms[0]
        layouts = [
            RoomLayout(center=true_room.center, width=true_room.width + 0.5,
                       depth=true_room.depth, orientation=0.0, consistency=0.0)
        ]
        report = evaluate_rooms(layouts, [true_room.name], plan)
        assert true_room.name in report.area_errors
        assert report.mean_area_error() > 0
        assert report.mean_location_error() == 0.0

    def test_evaluate_rooms_skips_unknown_hints(self):
        from repro.world.buildings import build_lab1

        plan = build_lab1()
        report = evaluate_rooms([self.layout(5, 5)], ["not-a-room"], plan)
        assert not report.area_errors

    def test_evaluate_rooms_none_hint(self):
        from repro.world.buildings import build_lab1

        plan = build_lab1()
        report = evaluate_rooms([self.layout(5, 5)], [None], plan)
        assert not report.area_errors


class TestHallwayMetrics:
    def test_perfect_reconstruction_scores_high(self, lab1_plan):
        """Feeding ground-truth corridor centerlines should score well."""
        config = CrowdMapConfig().with_overrides(trajectory_splat_radius=1.1)
        trajectories = []
        for start, end in [("sw", "se"), ("se", "ne"), ("ne", "nw"), ("nw", "sw")]:
            route = lab1_plan.route_between(start, end)
            pts = []
            for a, b in zip(route[:-1], route[1:]):
                n = max(2, int(a.distance_to(b)))
                pts.extend(
                    [
                        (a.x + t * (b.x - a.x), a.y + t * (b.y - a.y))
                        for t in np.linspace(0, 1, n)
                    ]
                )
            trajectories.append(Trajectory.from_arrays(np.array(pts)))
        skeleton = reconstruct_skeleton(
            trajectories * 3, lab1_plan.bounds, config
        )
        score = evaluate_hallway_shape(skeleton, lab1_plan)
        assert score.recall > 0.6
        assert score.precision > 0.6
        assert score.f_measure > 0.6

    def test_as_row_formatting(self, lab1_plan):
        config = CrowdMapConfig()
        skeleton = reconstruct_skeleton([], lab1_plan.bounds, config)
        score = evaluate_hallway_shape(skeleton, lab1_plan)
        row = score.as_row()
        assert row[0] == "Lab1"
        assert row[1].endswith("%")


class TestReports:
    def test_render_table(self):
        text = render_table("T", ["a", "bb"], [[1, 2], ["xxx", 4]])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[2] and "bb" in lines[2]
        assert len(lines) == 6

    def test_render_cdf_series(self):
        text = render_cdf_series(
            "errors", {"visual": [0.1, 0.2], "inertial": [0.3, 0.5]},
            thresholds=[0.25], unit="%",
        )
        assert "visual" in text and "inertial" in text
        assert "CDF @ 0.25%" in text

    def test_render_cdf_series_empty(self):
        assert "(no samples)" in render_cdf_series("t", {"a": []})

    def test_render_comparison(self):
        text = render_comparison("cmp", {"p": 0.9}, {"p": 0.88, "r": 0.93})
        assert "measured" in text and "paper" in text
        assert "0.9" in text and "0.88" in text
