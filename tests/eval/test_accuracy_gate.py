"""End-to-end accuracy-gate behaviour on a real (tiny) pipeline run.

The acceptance criteria this file enforces:

- the scorecard JSON regenerates **bit-identically** across two
  independent runs of the same seeded scenario;
- a pristine pipeline passes ``python -m repro.eval --check`` against a
  baseline generated from itself;
- a deliberately degraded pipeline (here: ``trajectory_splat_radius=6.0``
  smears every trajectory over a 6 m radius, bleeding hallway mass into
  the rooms) fails the same gate;
- the committed ``ACCURACY_baseline.json`` stays loadable, schema-valid
  and shaped like the quick scenario grid.

One scaled-down cell (Lab1, 2 users, 1 walk each) keeps every pipeline
run here in seconds; the CLI entry point is exercised for real, with its
scenario grid monkeypatched down to that cell.
"""

import json
from pathlib import Path

import pytest

import repro.eval.__main__ as eval_cli
from repro.bench.baseline import load_json_report
from repro.eval.scorecard import ACCURACY_SCHEMA_VERSION, run_scorecard
from repro.world.scenarios import ScenarioSpec, quick_scenarios

REPO_ROOT = Path(__file__).resolve().parents[2]

#: The miniature scenario every expensive test in this file shares.
TINY = ScenarioSpec(
    building="Lab1", n_users=2, sws_per_user=1, srs_rooms_per_user=1
)


@pytest.fixture(scope="module")
def baseline_path(tmp_path_factory, monkeypatch_module):
    """A baseline file generated through the real CLI from TINY."""
    path = tmp_path_factory.mktemp("accuracy") / "baseline.json"
    assert eval_cli.main(["--update-baseline", str(path)]) == 0
    return path


@pytest.fixture(scope="module")
def monkeypatch_module():
    with pytest.MonkeyPatch.context() as mp:
        mp.setattr(eval_cli, "scenarios_for_profile", lambda profile: [TINY])
        yield mp


class TestBitIdentity:
    def test_two_runs_regenerate_identical_bytes(self, baseline_path):
        """The CLI-written baseline equals a fresh in-process run, byte
        for byte — the determinism contract the CI gate stands on."""
        fresh = run_scorecard([TINY])
        on_disk = json.loads(baseline_path.read_text())
        assert json.dumps(fresh, sort_keys=True) == json.dumps(
            on_disk, sort_keys=True
        )

    def test_report_carries_real_metrics(self, baseline_path):
        cell = json.loads(baseline_path.read_text())["cells"][TINY.key]
        assert cell["n_keyframes"] > 0
        assert 0.0 < cell["hallway_f"] <= 1.0
        assert cell["rooms_scored"] >= 1


class TestGate:
    def test_pristine_pipeline_passes_check(
        self, baseline_path, monkeypatch_module, capsys
    ):
        assert eval_cli.main(["--check", str(baseline_path)]) == 0
        assert "OK: within tolerance" in capsys.readouterr().out

    def test_degraded_pipeline_fails_check(
        self, baseline_path, monkeypatch_module, capsys
    ):
        """Smearing trajectories over a 6 m radius floods rooms with
        hallway mass; the gate must notice the precision cliff."""
        code = eval_cli.main(
            [
                "--check", str(baseline_path),
                "--override", "trajectory_splat_radius=6.0",
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "quality drift" in out
        assert "hallway" in out

    def test_degraded_pipeline_passes_with_huge_tolerance(
        self, baseline_path, monkeypatch_module, capsys
    ):
        code = eval_cli.main(
            [
                "--check", str(baseline_path),
                "--override", "trajectory_splat_radius=6.0",
                "--tolerance-scale", "1000",
            ]
        )
        assert code == 0
        capsys.readouterr()


class TestAggressivePlannerBands:
    """The aggressive profile's correctness contract is these bands.

    ``CROWDMAP_PLANNER=aggressive`` trades bit-identity for speed
    (approximate LSD masking, the key-frame pre-screen, FFT dispatch
    under its own cache namespace); the gate that keeps it honest is the
    same scorecard tolerance check the default profile passes. Scoring
    the quick-grid cell against a default-mode baseline pins every
    approximation inside the committed bands.
    """

    def test_aggressive_mode_stays_inside_bands(
        self, baseline_path, monkeypatch_module, monkeypatch, capsys
    ):
        monkeypatch.setenv("CROWDMAP_PLANNER", "aggressive")
        assert eval_cli.main(["--check", str(baseline_path)]) == 0
        assert "OK: within tolerance" in capsys.readouterr().out


class TestCliPlumbing:
    def test_list_cells_runs_nothing(self, monkeypatch_module, capsys):
        assert eval_cli.main(["--list-cells"]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert out == [TINY.key]

    def test_unknown_cell_is_usage_error(self, capsys):
        assert eval_cli.main(["--cells", "Lab9/day/u99"]) == 2
        assert "unknown scenario cell" in capsys.readouterr().err

    def test_bad_override_is_usage_error(self, capsys):
        assert eval_cli.main(["--override", "not_a_field=1"]) == 2
        assert "bad --override" in capsys.readouterr().err

    def test_override_parsing(self):
        parsed = eval_cli.parse_overrides(
            ["min_visits=3", "surf_prefetch=False", "worker_backend=process"]
        )
        assert parsed == {
            "min_visits": 3,
            "surf_prefetch": False,
            "worker_backend": "process",
        }
        with pytest.raises(ValueError, match="field=value"):
            eval_cli.parse_overrides(["oops"])

    def test_report_dir_artifacts(
        self, baseline_path, monkeypatch_module, tmp_path
    ):
        out_dir = tmp_path / "report"
        # Re-uses the scored TINY cell; one more pipeline run.
        assert (
            eval_cli.main(
                ["--report-dir", str(out_dir), "--output", str(tmp_path / "r.json")]
            )
            == 0
        )
        names = {p.name for p in out_dir.iterdir()}
        assert "scorecard.txt" in names
        assert "crowd_sweep.txt" in names
        assert any(name.startswith("cdf_") for name in names)
        report = json.loads((tmp_path / "r.json").read_text())
        assert report["schema"] == ACCURACY_SCHEMA_VERSION


class TestCommittedBaseline:
    def test_schema_and_grid_shape(self):
        """The committed gate artifact matches the quick scenario grid."""
        path = REPO_ROOT / "ACCURACY_baseline.json"
        baseline = load_json_report(str(path), ACCURACY_SCHEMA_VERSION)
        assert set(baseline["cells"]) == {
            spec.key for spec in quick_scenarios()
        }
        for key, cell in baseline["cells"].items():
            assert cell["building"] == key.split("/")[0], key
            assert 0.0 <= cell["hallway_f"] <= 1.0, key

    def test_preserves_pre_pr_records_on_update(self, tmp_path):
        """The shared baseline helper keeps frozen pre_pr* records —
        the bench CLI convention, now common to both gates."""
        from repro.bench.baseline import update_baseline_file

        path = tmp_path / "baseline.json"
        path.write_text(
            json.dumps(
                {"schema": 1, "cells": {}, "pre_pr_frozen": {"hallway_f": 0.1}}
            )
        )
        merged = update_baseline_file(
            str(path), {"schema": 1, "cells": {"a": {}}}, 1
        )
        assert merged["pre_pr_frozen"] == {"hallway_f": 0.1}
        on_disk = json.loads(path.read_text())
        assert on_disk["cells"] == {"a": {}}
        assert on_disk["pre_pr_frozen"] == {"hallway_f": 0.1}
