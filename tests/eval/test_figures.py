"""Tests for ASCII figure rendering."""

import numpy as np

from repro.eval.figures import render_ascii_plot, render_cdf_plot, render_sparkline


class TestAsciiPlot:
    def test_plots_series_markers(self):
        text = render_ascii_plot(
            "demo",
            {"a": [(0, 0), (1, 1)], "b": [(0, 1), (1, 0)]},
            width=20, height=8,
        )
        assert "demo" in text
        assert "O=a" in text and "*=b" in text
        assert "O" in text and "*" in text

    def test_empty(self):
        assert "(no data)" in render_ascii_plot("t", {"a": []})

    def test_constant_series(self):
        text = render_ascii_plot("t", {"a": [(0, 5), (1, 5)]}, width=10, height=4)
        assert "O" in text

    def test_axis_labels(self):
        text = render_ascii_plot(
            "t", {"a": [(0, 0), (2, 4)]}, x_label="metres", y_label="CDF"
        )
        assert "x: metres" in text and "y: CDF" in text

    def test_extents_rendered(self):
        text = render_ascii_plot("t", {"a": [(0.0, 0.0), (10.0, 1.0)]})
        assert "10" in text


class TestCdfPlot:
    def test_renders_staircase(self):
        rng = np.random.default_rng(0)
        text = render_cdf_plot(
            "errors", {"visual": rng.random(40), "inertial": rng.random(40) * 2}
        )
        assert "errors" in text
        assert "O=visual" in text

    def test_empty_samples(self):
        assert "(no samples)" in render_cdf_plot("t", {"a": []})


class TestSparkline:
    def test_length_matches(self):
        assert len(render_sparkline([1, 2, 3, 4])) == 4

    def test_monotone_ramp(self):
        line = render_sparkline(range(8))
        assert line[0] == "▁" and line[-1] == "█"

    def test_constant(self):
        assert render_sparkline([2, 2, 2]) == "▄▄▄"

    def test_empty(self):
        assert render_sparkline([]) == ""

    def test_downsampling(self):
        line = render_sparkline(range(100), width=10)
        assert len(line) == 10
