"""Dataflow graph keying: content addresses compose and invalidate right.

Under-inclusive keys silently serve stale results, so these tests pin
the invalidation semantics: a key changes exactly when content or an
in-scope config field changes, and composes producers' *keys* (never
re-hashed values) into consumers.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.config import CrowdMapConfig
from repro.core.pipeline import CrowdMapPipeline
from repro.dataflow.graph import build_plan, seal_floorplan_key, seal_pathway_key
from repro.world.buildings import build_lab1
from repro.world.crowd import CrowdConfig, generate_crowd_dataset


def _sessions(seed: int = 11):
    dataset = generate_crowd_dataset(
        build_lab1(),
        CrowdConfig(n_users=2, sws_per_user=1, srs_rooms_per_user=1, seed=seed),
    )
    return dataset.sessions


class TestPlanKeys:
    def test_plan_is_stable_across_rebuilds(self):
        sessions = _sessions()
        pipeline = CrowdMapPipeline(CrowdMapConfig())
        plan_a = build_plan(pipeline, sessions)
        plan_b = build_plan(pipeline, sessions)
        assert [n.key for n in plan_a.kf_nodes] == [n.key for n in plan_b.kf_nodes]
        assert {ij: n.key for ij, n in plan_a.pair_nodes.items()} == {
            ij: n.key for ij, n in plan_b.pair_nodes.items()
        }
        assert [n.key for n in plan_a.room_nodes] == [
            n.key for n in plan_b.room_nodes
        ]

    def test_session_content_change_invalidates_dependents_only(self):
        sessions = _sessions()
        pipeline = CrowdMapPipeline(CrowdMapConfig())
        before = build_plan(pipeline, sessions)

        changed = list(sessions)
        target = next(i for i, s in enumerate(changed) if s.task == "SWS")
        victim = changed[target]
        changed[target] = dataclasses.replace(
            victim,
            frames=[
                dataclasses.replace(f, pixels=f.pixels + 0.01)
                for f in victim.frames
            ],
        )
        after = build_plan(pipeline, changed)

        sws_pos = [
            i for i, s in enumerate(before.sws_sessions)
            if s.session_id == victim.session_id
        ][0]
        for i, (a, b) in enumerate(zip(before.kf_nodes, after.kf_nodes)):
            if i == sws_pos:
                assert a.key != b.key
            else:
                assert a.key == b.key
        for ij in before.pair_nodes:
            same = before.pair_nodes[ij].key == after.pair_nodes[ij].key
            assert same == (sws_pos not in ij)
        assert [n.key for n in before.room_nodes] == [
            n.key for n in after.room_nodes
        ]

    def test_config_scope_limits_invalidation(self):
        sessions = _sessions()
        base = build_plan(CrowdMapPipeline(CrowdMapConfig()), sessions)
        # A floor-plan-only knob must not invalidate key-frame selection
        # or pair scoring...
        forces = build_plan(
            CrowdMapPipeline(CrowdMapConfig(force_iterations=99)), sessions
        )
        assert [n.key for n in base.kf_nodes] == [n.key for n in forces.kf_nodes]
        assert {ij: n.key for ij, n in base.pair_nodes.items()} == {
            ij: n.key for ij, n in forces.pair_nodes.items()
        }
        # ...while a HOG knob invalidates every key-frame node.
        hog = build_plan(
            CrowdMapPipeline(CrowdMapConfig(hog_cell_size=12)), sessions
        )
        assert all(
            a.key != b.key for a, b in zip(base.kf_nodes, hog.kf_nodes)
        )

    def test_late_keys_cover_quarantine_outcomes(self):
        sessions = _sessions()
        pipeline = CrowdMapPipeline(CrowdMapConfig())
        plan = build_plan(pipeline, sessions)
        config = pipeline.config
        pairs = list(plan.pair_nodes)
        clean = seal_pathway_key(plan, pairs, [], config)
        degraded = seal_pathway_key(plan, pairs[:-1], ["u0-s0"], config)
        assert clean != degraded

        rooms_ok = [n.key for n in plan.room_nodes]
        fp_clean = seal_floorplan_key(plan, clean, rooms_ok, config)
        rooms_failed = list(rooms_ok)
        if rooms_failed:
            rooms_failed[0] = "failed:some-group"
        fp_degraded = seal_floorplan_key(plan, clean, rooms_failed, config)
        if rooms_ok:
            assert fp_clean != fp_degraded
        assert fp_clean != seal_floorplan_key(plan, degraded, rooms_ok, config)

    def test_node_index_covers_every_node(self):
        sessions = _sessions()
        plan = build_plan(CrowdMapPipeline(CrowdMapConfig()), sessions)
        assert "pathway" in plan.nodes
        assert "floorplan" in plan.nodes
        for node in plan.kf_nodes:
            assert plan.nodes[node.node_id] is node
        n_nodes = (
            len(plan.fs_nodes) + len(plan.kf_nodes)
            + len(plan.pair_nodes) + len(plan.room_nodes) + 2
        )
        assert len(plan.nodes) == n_nodes

    def test_framestack_nodes_cover_sessions_and_feed_consumers(self):
        sessions = _sessions()
        plan = build_plan(CrowdMapPipeline(CrowdMapConfig()), sessions)
        assert set(plan.fs_nodes) == {s.session_id for s in sessions}
        for node in plan.kf_nodes:
            session_id = node.node_id.split(":", 1)[1]
            assert f"fs:{session_id}" in node.deps
        for node in plan.room_nodes:
            for session_id in node.node_id[len("room:"):].split("+"):
                assert f"fs:{session_id}" in node.deps

    def test_framestack_scope_is_blur_sigma_only(self):
        """The stack derives pure per-pixel planes; only the blur sigma
        is a config input. A selection-threshold change must leave every
        stack node warm while a sigma change invalidates them all."""
        sessions = _sessions()
        base = build_plan(CrowdMapPipeline(CrowdMapConfig()), sessions)
        ncc = build_plan(
            CrowdMapPipeline(CrowdMapConfig(keyframe_ncc_threshold=0.5)),
            sessions,
        )
        assert {sid: n.key for sid, n in base.fs_nodes.items()} == {
            sid: n.key for sid, n in ncc.fs_nodes.items()
        }
        sigma = build_plan(
            CrowdMapPipeline(CrowdMapConfig(hog_blur_sigma=3.0)), sessions
        )
        for sid, node in base.fs_nodes.items():
            assert node.key != sigma.fs_nodes[sid].key

    def test_framestack_invalidation_is_session_local(self):
        sessions = _sessions()
        pipeline = CrowdMapPipeline(CrowdMapConfig())
        before = build_plan(pipeline, sessions)
        changed = list(sessions)
        victim = changed[0]
        changed[0] = dataclasses.replace(
            victim,
            frames=[
                dataclasses.replace(f, pixels=f.pixels + 0.01)
                for f in victim.frames
            ],
        )
        after = build_plan(pipeline, changed)
        for sid, node in before.fs_nodes.items():
            same = node.key == after.fs_nodes[sid].key
            assert same == (sid != victim.session_id)

    def test_session_digest_memoized_on_object(self):
        from repro.dataflow.graph import session_digest

        sessions = _sessions()
        digest = session_digest(sessions[0])
        assert sessions[0]._crowdmap_session_digest == digest
        assert session_digest(sessions[0]) == digest
