"""Planner correctness: bit-identity vs the cascade, graph invalidation.

The planner's contract is scheduling-only change: in default mode every
artifact must agree with the legacy cascade bit for bit, under every
worker transport. And its value is *graph-level* skipping: changing one
session may re-execute only that session's dependent subgraph.
"""

from __future__ import annotations

import dataclasses
import os

import numpy as np
import pytest

from repro.backend.cache import ResultCache, set_cache
from repro.core.config import CrowdMapConfig, planner_mode
from repro.core.pipeline import CrowdMapPipeline
from repro.dataflow.planner import last_plan_report
from repro.world.buildings import build_lab1
from repro.world.crowd import CrowdConfig, generate_crowd_dataset


@pytest.fixture
def planner_env():
    """Restore CROWDMAP_PLANNER and the process cache after each test."""
    previous = os.environ.get("CROWDMAP_PLANNER")
    yield
    if previous is None:
        os.environ.pop("CROWDMAP_PLANNER", None)
    else:
        os.environ["CROWDMAP_PLANNER"] = previous
    set_cache(None)


def _quick_dataset(seed: int = 11):
    return generate_crowd_dataset(
        build_lab1(),
        CrowdConfig(n_users=2, sws_per_user=1, srs_rooms_per_user=1, seed=seed),
    )


def _run(dataset, mode: str, config: CrowdMapConfig = None):
    os.environ["CROWDMAP_PLANNER"] = mode
    set_cache(ResultCache(mode="memory"))
    return CrowdMapPipeline(config or CrowdMapConfig()).run(dataset)


def _assert_bit_identical(a, b):
    assert np.array_equal(a.skeleton.probability, b.skeleton.probability)
    assert np.array_equal(a.skeleton.binarized, b.skeleton.binarized)
    assert np.array_equal(a.skeleton.skeleton, b.skeleton.skeleton)
    assert len(a.aggregation.trajectories) == len(b.aggregation.trajectories)
    for ta, tb in zip(a.aggregation.trajectories, b.aggregation.trajectories):
        assert np.array_equal(ta.as_array(), tb.as_array())
        assert np.array_equal(ta.times(), tb.times())
    assert [p.room_hint for p in a.panoramas] == [p.room_hint for p in b.panoramas]
    for pa, pb in zip(a.panoramas, b.panoramas):
        assert np.array_equal(pa.panorama.pixels, pb.panorama.pixels)
    assert len(a.floorplan.rooms) == len(b.floorplan.rooms)
    for ra, rb in zip(a.floorplan.rooms, b.floorplan.rooms):
        assert ra.name == rb.name
        assert (ra.center.x, ra.center.y) == (rb.center.x, rb.center.y)
        assert (ra.layout.width, ra.layout.depth, ra.layout.orientation) == (
            rb.layout.width, rb.layout.depth, rb.layout.orientation,
        )
    assert a.floorplan.render_ascii() == b.floorplan.render_ascii()
    assert [(f.stage, f.item_id) for f in a.failures] == [
        (f.stage, f.item_id) for f in b.failures
    ]


class TestPlannerBitIdentity:
    """Legacy cascade vs planner-default, across worker transports."""

    @pytest.mark.parametrize(
        "backend,transport",
        [("serial", "auto"), ("process", "shm"), ("process", "pickle")],
    )
    def test_matrix(self, planner_env, backend, transport):
        dataset = _quick_dataset()
        reference = _run(dataset, "legacy")
        planned = _run(
            dataset, "default",
            CrowdMapConfig(worker_backend=backend, worker_transport=transport),
        )
        _assert_bit_identical(reference, planned)

    def test_mode_switch_reaches_planner(self, planner_env):
        dataset = _quick_dataset()
        _run(dataset, "legacy")
        report_after_legacy = last_plan_report()
        _run(dataset, "default")
        report = last_plan_report()
        assert report is not report_after_legacy
        assert report.mode == "default"
        assert report.n_executed() > 0

    def test_timings_keep_stage_names(self, planner_env):
        result = _run(_quick_dataset(), "default")
        assert set(result.timings) == {"pathway", "rooms", "floorplan"}

    def test_invalid_mode_rejected(self, planner_env):
        os.environ["CROWDMAP_PLANNER"] = "turbo"
        with pytest.raises(ValueError):
            planner_mode()


class TestPlannerInvalidation:
    """Replacing one session's frames re-executes only its subgraph."""

    def test_single_session_change_is_local(self, planner_env):
        dataset = generate_crowd_dataset(
            build_lab1(),
            CrowdConfig(n_users=3, sws_per_user=1, srs_rooms_per_user=1, seed=11),
        )
        os.environ["CROWDMAP_PLANNER"] = "default"
        set_cache(ResultCache(mode="memory"))
        pipeline = CrowdMapPipeline(CrowdMapConfig())
        pipeline.run(dataset)
        cold = last_plan_report()
        n_sws = cold.n_executed("keyframes")
        n_pairs = cold.n_executed("pair")
        n_rooms = cold.n_executed("room")
        assert n_sws == 3 and n_pairs == 3

        # Replace (never mutate: content addressing) one SWS session's
        # frames with brightened twins — new content, new digests.
        sessions = list(dataset.sessions)
        target = next(i for i, s in enumerate(sessions) if s.task == "SWS")
        victim = sessions[target]
        new_frames = [
            dataclasses.replace(f, pixels=f.pixels * 0.5 + 0.25)
            for f in victim.frames
        ]
        sessions[target] = dataclasses.replace(victim, frames=new_frames)

        pipeline.run_sessions(sessions)
        warm = last_plan_report()
        # Only the changed session's key-frame node re-runs; the other
        # sessions' nodes and every room node resolve from the graph.
        assert warm.n_executed("keyframes") == 1
        assert warm.n_skipped("keyframes") == n_sws - 1
        assert warm.executed_ids("keyframes") == [f"kf:{victim.session_id}"]
        # Exactly the two pairs touching the changed session re-score.
        assert warm.n_executed("pair") == 2
        assert warm.n_skipped("pair") == n_pairs - 2
        assert all(
            victim.session_id in node_id for node_id in warm.executed_ids("pair")
        )
        assert warm.n_executed("room") == 0
        assert warm.n_skipped("room") == n_rooms
        # The late-keyed consumers see changed producer keys and re-run.
        assert warm.n_executed("pathway") == 1
        assert warm.n_executed("floorplan") == 1

    def test_unchanged_rerun_skips_everything(self, planner_env):
        dataset = _quick_dataset()
        os.environ["CROWDMAP_PLANNER"] = "default"
        set_cache(ResultCache(mode="memory"))
        pipeline = CrowdMapPipeline(CrowdMapConfig())
        first = pipeline.run(dataset)
        rerun = pipeline.run(dataset)
        report = last_plan_report()
        assert report.n_executed() == 0
        assert report.n_skipped() > 0
        _assert_bit_identical(first, rerun)
