"""Size-dispatched convolution: FFT/direct equivalence and the cost model.

FFT convolution is numerically equal (to round-off) but not bit-equal to
the direct kernels, which is exactly why the dispatcher is fenced behind
``CROWDMAP_PLANNER=aggressive``. These tests pin both halves of that
contract: values agree to tight tolerance, and the default path never
routes through FFT.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.config import CrowdMapConfig
from repro.core.keyframes import _frame_hog
from repro.dataflow.dispatch import (
    choose_dense,
    choose_separable,
    convolve2d_fft,
    convolve2d_planned,
    gaussian_blur_stack_fft,
    gaussian_blur_stack_planned,
)
from repro.vision.filters import convolve2d, gaussian_blur_stack
from repro.vision.image import Frame


def _image(h=96, w=80, seed=0):
    return np.random.default_rng(seed).standard_normal((h, w))


class TestFFTEquivalence:
    @pytest.mark.parametrize("kh,kw", [(3, 3), (5, 7), (13, 13), (21, 21)])
    def test_dense_matches_direct(self, kh, kw):
        image = _image()
        kernel = np.random.default_rng(1).standard_normal((kh, kw))
        direct = convolve2d(image, kernel)
        fft = convolve2d_fft(image, kernel)
        assert fft.shape == direct.shape
        np.testing.assert_allclose(fft, direct, rtol=1e-10, atol=1e-10)

    @pytest.mark.parametrize("sigma", [1.0, 2.0, 4.0, 8.0])
    def test_separable_matches_direct(self, sigma):
        stack = np.random.default_rng(2).standard_normal((4, 64, 56))
        direct = gaussian_blur_stack(stack, sigma)
        fft = gaussian_blur_stack_fft(stack, sigma)
        assert fft.shape == direct.shape
        np.testing.assert_allclose(fft, direct, rtol=1e-10, atol=1e-12)

    def test_single_image_stack(self):
        from repro.vision.filters import gaussian_blur

        image = _image(48, 40, seed=3)
        np.testing.assert_allclose(
            gaussian_blur_stack_fft(image, 2.0),
            gaussian_blur(image, 2.0),
            rtol=1e-10, atol=1e-12,
        )


class TestCostModel:
    def test_small_kernels_stay_direct(self):
        assert choose_separable(2.0, (192, 160)) == "direct"
        assert choose_dense((3, 3), (192, 160)) == "direct"

    def test_large_kernels_cross_to_fft(self):
        assert choose_separable(16.0, (192, 160)) == "fft"
        assert choose_dense((21, 21), (192, 160)) == "fft"

    def test_crossover_is_monotonic_in_kernel_size(self):
        shape = (192, 160)
        crossed = False
        for sigma in (0.5, 1.0, 2.0, 4.0, 6.0, 8.0, 12.0, 16.0):
            choice = choose_separable(sigma, shape)
            if crossed:
                assert choice == "fft"
            elif choice == "fft":
                crossed = True
        assert crossed


class TestDispatchGating:
    def test_default_mode_never_picks_fft(self):
        stack = np.random.default_rng(4).standard_normal((2, 64, 56))
        # Even at a sigma where aggressive mode would go FFT.
        result, choice = gaussian_blur_stack_planned(stack, 16.0, aggressive=False)
        assert choice == "direct"
        assert np.array_equal(result, gaussian_blur_stack(stack, 16.0))

    def test_aggressive_mode_dispatches_by_size(self):
        stack = np.random.default_rng(5).standard_normal((2, 64, 56))
        _, small = gaussian_blur_stack_planned(stack, 1.0, aggressive=True)
        _, large = gaussian_blur_stack_planned(stack, 16.0, aggressive=True)
        assert small == "direct"
        assert large == "fft"

    def test_convolve2d_planned_routes_large_kernels(self):
        image = _image()
        kernel = np.random.default_rng(6).standard_normal((21, 21))
        planned = convolve2d_planned(image, kernel, aggressive=True)
        np.testing.assert_allclose(
            planned, convolve2d(image, kernel), rtol=1e-10, atol=1e-10
        )
        small = np.random.default_rng(7).standard_normal((3, 3))
        assert np.array_equal(
            convolve2d_planned(image, small, aggressive=True),
            convolve2d(image, small),
        )


class TestAggressiveHogKeying:
    """Aggressive-mode FFT blurs must not pollute default cache slots."""

    @pytest.fixture
    def aggressive_env(self):
        previous = os.environ.get("CROWDMAP_PLANNER")
        yield
        if previous is None:
            os.environ.pop("CROWDMAP_PLANNER", None)
        else:
            os.environ["CROWDMAP_PLANNER"] = previous

    def test_fft_variant_gets_its_own_cache_key(self, aggressive_env):
        from repro.backend.cache import ResultCache, set_cache

        pixels = np.clip(
            0.5 + 0.2 * np.random.default_rng(8).standard_normal((64, 56, 3)),
            0.0, 1.0,
        )
        frame = Frame(pixels=pixels, timestamp=0.0, heading=0.0, position=None)
        config = CrowdMapConfig(hog_blur_sigma=16.0)  # FFT territory

        set_cache(ResultCache(mode="memory"))
        os.environ["CROWDMAP_PLANNER"] = "default"
        direct_hog = _frame_hog(frame, config)

        os.environ["CROWDMAP_PLANNER"] = "aggressive"
        fft_hog = _frame_hog(frame, config)
        # Different cache slots: the aggressive call computed its own
        # value instead of inheriting the direct one...
        assert not np.array_equal(fft_hog, direct_hog)
        # ...yet the values agree to round-off, which is what the
        # accuracy tolerance bands rely on.
        np.testing.assert_allclose(fft_hog, direct_hog, rtol=1e-7, atol=1e-9)

        # Back in default mode the original direct value is still served.
        os.environ["CROWDMAP_PLANNER"] = "default"
        assert np.array_equal(_frame_hog(frame, config), direct_hog)
        set_cache(None)
