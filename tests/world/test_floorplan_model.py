"""Tests for the ground-truth floor plan model."""

import math

import networkx as nx
import numpy as np
import pytest

from repro.geometry.primitives import BoundingBox, Point
from repro.world.floorplan_model import Door, FloorPlan, Room


@pytest.fixture(scope="module")
def simple_plan():
    """One corridor with one room attached to its north wall."""
    hallway = [BoundingBox(0.0, 0.0, 12.0, 2.5)]
    room = Room(
        name="r1",
        center=Point(4.0, 5.75),
        width=5.0,
        depth=5.5,
        door=Door("S", 2.5),
    )
    waypoints = {
        "w": Point(1.0, 1.25),
        "e": Point(11.0, 1.25),
        "r1_door": Point(4.0, 1.25),
        "r1_center": room.center,
    }
    edges = [("w", "r1_door"), ("r1_door", "e"), ("r1_door", "r1_center")]
    return FloorPlan(
        name="simple",
        hallway_rects=hallway,
        rooms=[room],
        waypoints=waypoints,
        waypoint_edges=edges,
    )


class TestDoorRoom:
    def test_door_validation(self):
        with pytest.raises(ValueError):
            Door("X", 1.0)
        with pytest.raises(ValueError):
            Door("N", 1.0, width=0.0)

    def test_room_geometry(self):
        room = Room("r", Point(2, 3), 4.0, 2.0)
        assert room.area() == 8.0
        assert room.aspect_ratio() == 2.0
        bb = room.bounding_box()
        assert (bb.min_x, bb.max_y) == (0.0, 4.0)

    def test_door_center_per_wall(self):
        room = Room("r", Point(0, 0), 4.0, 2.0, door=Door("S", 2.0))
        assert tuple(room.door_center()) == (0.0, -1.0)
        room_n = Room("r", Point(0, 0), 4.0, 2.0, door=Door("N", 1.0))
        assert tuple(room_n.door_center()) == (-1.0, 1.0)
        room_e = Room("r", Point(0, 0), 4.0, 2.0, door=Door("E", 1.0))
        assert tuple(room_e.door_center()) == (2.0, 0.0)

    def test_door_normal(self):
        room = Room("r", Point(0, 0), 2, 2, door=Door("W", 1.0))
        n = room.door_outward_normal()
        assert (n.x, n.y) == (-1.0, 0.0)


class TestWalkability:
    def test_hallway_walkable(self, simple_plan):
        assert simple_plan.is_walkable(Point(6.0, 1.25))

    def test_room_walkable(self, simple_plan):
        assert simple_plan.is_walkable(Point(4.0, 5.75))

    def test_outside_solid(self, simple_plan):
        assert not simple_plan.is_walkable(Point(10.0, 5.0))
        assert not simple_plan.is_walkable(Point(-5.0, -5.0))

    def test_door_opening_connects(self, simple_plan):
        # Walking straight from the door waypoint into the room must stay
        # walkable the whole way (the carved opening bridges the wall).
        start = simple_plan.waypoints["r1_door"]
        end = simple_plan.waypoints["r1_center"]
        for t in np.linspace(0, 1, 50):
            p = Point(start.x + t * (end.x - start.x), start.y + t * (end.y - start.y))
            assert simple_plan.is_walkable(p), f"blocked at {p}"

    def test_space_ids(self, simple_plan):
        assert simple_plan.space_at(Point(6.0, 1.25)) == -1  # hallway
        assert simple_plan.space_at(Point(4.0, 5.75)) == 0  # room index
        assert simple_plan.space_at(Point(10.0, 6.0)) == -2  # solid


class TestWalls:
    def test_walls_exist(self, simple_plan):
        assert len(simple_plan.walls) >= 8

    def test_rays_always_hit_a_wall(self, simple_plan):
        """The wall set must close every walkable region."""
        from repro.world.renderer import Renderer

        renderer = Renderer(simple_plan)
        for origin in (Point(6.0, 1.25), Point(4.0, 5.75)):
            angles = np.linspace(0, 2 * math.pi, 73)
            distances, idx, _ = renderer.cast_rays(origin, angles)
            assert np.isfinite(distances).all(), "a ray escaped the model"
            assert (idx >= 0).all()

    def test_wall_textures_differ_between_spaces(self, simple_plan):
        hall_seeds = {w.texture.seed for w in simple_plan.walls if w.space_id == -1}
        room_seeds = {w.texture.seed for w in simple_plan.walls if w.space_id == 0}
        assert hall_seeds and room_seeds
        assert hall_seeds.isdisjoint(room_seeds)

    def test_walls_axis_aligned(self, simple_plan):
        for wall in simple_plan.walls:
            seg = wall.segment
            assert seg.a.x == seg.b.x or seg.a.y == seg.b.y


class TestMasksAndRoutes:
    def test_hallway_mask_area(self, simple_plan):
        mask = simple_plan.hallway_mask(0.25)
        area = mask.sum() * 0.25**2
        assert area == pytest.approx(12.0 * 2.5, rel=0.05)

    def test_route_between(self, simple_plan):
        route = simple_plan.route_between("w", "e")
        assert len(route) == 3
        assert route[0].distance_to(simple_plan.waypoints["w"]) == 0.0

    def test_route_graph_weights(self, simple_plan):
        g = simple_plan.route_graph
        assert nx.is_connected(g)
        assert g["w"]["r1_door"]["weight"] == pytest.approx(3.0)

    def test_unknown_waypoint_edge_rejected(self):
        with pytest.raises(ValueError):
            FloorPlan(
                name="bad",
                hallway_rects=[BoundingBox(0, 0, 5, 2)],
                rooms=[],
                waypoints={"a": Point(1, 1)},
                waypoint_edges=[("a", "missing")],
            )

    def test_room_by_name(self, simple_plan):
        assert simple_plan.room_by_name("r1").name == "r1"
        with pytest.raises(KeyError):
            simple_plan.room_by_name("nope")

    def test_requires_hallway(self):
        with pytest.raises(ValueError):
            FloorPlan(name="empty", hallway_rects=[], rooms=[])

    def test_total_area(self, simple_plan):
        assert simple_plan.total_area() == pytest.approx(12 * 2.5 + 5 * 5.5)
