"""Tests for textures, lighting and the raycasting renderer."""

import math

import numpy as np
import pytest

from repro.geometry.primitives import Point
from repro.world.lighting import DAYLIGHT, NIGHT, condition_for_lux
from repro.world.renderer import Camera, Renderer
from repro.world.textures import (
    WallTexture,
    ceiling_color,
    floor_color,
    value_noise,
)


class TestValueNoise:
    def test_deterministic(self):
        u = np.linspace(0, 10, 50)
        v = np.zeros(50)
        a = value_noise(u, v, 1.0, seed=3)
        b = value_noise(u, v, 1.0, seed=3)
        assert np.array_equal(a, b)

    def test_seed_changes_field(self):
        u = np.linspace(0, 10, 50)
        v = np.zeros(50)
        assert not np.allclose(value_noise(u, v, 1.0, 1), value_noise(u, v, 1.0, 2))

    def test_range(self):
        u, v = np.meshgrid(np.linspace(0, 5, 30), np.linspace(0, 5, 30))
        n = value_noise(u, v, 0.7, seed=5)
        assert n.min() >= 0.0 and n.max() <= 1.0

    def test_smoothness(self):
        u = np.linspace(0, 1, 200)
        n = value_noise(u, np.zeros_like(u), 5.0, seed=7)
        assert np.abs(np.diff(n)).max() < 0.05


class TestWallTexture:
    def test_sample_shape_and_range(self):
        tex = WallTexture(seed=1)
        u, v = np.meshgrid(np.linspace(0, 8, 40), np.linspace(0, 2.7, 30))
        rgb = tex.sample(u, v)
        assert rgb.shape == (30, 40, 3)
        assert rgb.min() >= 0.0 and rgb.max() <= 1.0

    def test_deterministic(self):
        tex = WallTexture(seed=2)
        u = np.linspace(0, 5, 100)
        v = np.full(100, 1.5)
        assert np.array_equal(tex.sample(u, v), tex.sample(u, v))

    def test_richness_zero_removes_detail(self):
        flat = WallTexture(seed=3, richness=0.0)
        rich = WallTexture(seed=3, richness=1.0)
        u, v = np.meshgrid(np.linspace(0, 12, 120), np.linspace(0.2, 2.5, 60))
        var_flat = flat.sample(u, v).std()
        var_rich = rich.sample(u, v).std()
        assert var_rich > var_flat

    def test_door_painted(self):
        tex = WallTexture(seed=4, doors=((2.0, 0.9),))
        u = np.array([2.0, 6.0])
        v = np.array([1.0, 1.0])
        rgb = tex.sample(u, v)
        # Door brown vs wall beige: red channel dominates green strongly.
        assert rgb[0, 0] - rgb[0, 2] > 0.15
        assert abs(rgb[1, 0] - rgb[1, 2]) < 0.2


class TestFloorCeiling:
    def test_floor_range_and_shape(self):
        x, y = np.meshgrid(np.linspace(0, 10, 30), np.linspace(0, 10, 30))
        rgb = floor_color(x, y)
        assert rgb.shape == (30, 30, 3)
        assert rgb.min() >= 0 and rgb.max() <= 1

    def test_ceiling_fixtures_bright(self):
        x, y = np.meshgrid(np.linspace(0, 30, 300), np.linspace(0, 30, 300))
        rgb = ceiling_color(x, y)
        assert rgb.max() > 0.95  # some fixture pixel


class TestLighting:
    def test_daylight_brighter_than_night(self):
        rng = np.random.default_rng(0)
        img = np.full((20, 20, 3), 0.5)
        day = DAYLIGHT.apply(img, rng)
        night = NIGHT.apply(img, np.random.default_rng(0))
        assert day.mean() > night.mean()

    def test_night_is_warm(self):
        img = np.full((20, 20, 3), 0.5)
        night = NIGHT.apply(img, np.random.default_rng(1))
        assert night[..., 0].mean() > night[..., 2].mean()

    def test_condition_for_lux_interpolates(self):
        mid = condition_for_lux(210.0)
        assert NIGHT.brightness < mid.brightness < DAYLIGHT.brightness

    def test_condition_for_lux_clamps(self):
        assert condition_for_lux(5000.0).brightness == pytest.approx(
            DAYLIGHT.brightness
        )

    def test_output_clipped(self):
        img = np.full((10, 10, 3), 0.99)
        out = DAYLIGHT.apply(img, np.random.default_rng(2))
        assert out.max() <= 1.0 and out.min() >= 0.0


class TestRenderer:
    def test_frame_shape(self, lab1_plan):
        cam = Camera(width=64, height=48)
        renderer = Renderer(lab1_plan, cam)
        frame = renderer.render(Point(5.0, 1.25), 0.0)
        assert frame.shape == (48, 64, 3)
        assert frame.min() >= 0.0 and frame.max() <= 1.0

    def test_nearer_wall_fills_more_of_the_frame(self, lab1_plan):
        renderer = Renderer(lab1_plan, Camera(width=64, height=64))
        # Look straight at the south wall from two distances. From 0.7 m
        # the wall band extends past the frame top (no ceiling visible);
        # from 2.2 m the bright ceiling band appears at the top.
        near = renderer.render(Point(10.0, 0.7), -math.pi / 2.0)
        far = renderer.render(Point(10.0, 2.2), -math.pi / 2.0)
        near_top = near[:4].mean()
        far_top = far[:4].mean()
        assert far_top > near_top + 0.1

    def test_day_night_rendering_differs(self, lab1_plan):
        renderer = Renderer(lab1_plan)
        p = Point(5.0, 1.25)
        day = renderer.render(p, 0.0, lighting=DAYLIGHT)
        night = renderer.render(p, 0.0, lighting=NIGHT)
        assert day.mean() > night.mean() + 0.1

    def test_deterministic_given_rng(self, lab1_plan):
        renderer = Renderer(lab1_plan)
        a = renderer.render(Point(5, 1.25), 0.2, rng=np.random.default_rng(5))
        b = renderer.render(Point(5, 1.25), 0.2, rng=np.random.default_rng(5))
        assert np.array_equal(a, b)

    def test_cast_rays_hits_expected_wall(self, lab1_plan):
        renderer = Renderer(lab1_plan)
        # From the south corridor looking south: wall at y=0.
        distances, idx, u = renderer.cast_rays(
            Point(10.0, 1.25), np.array([-math.pi / 2.0])
        )
        assert distances[0] == pytest.approx(1.25, abs=0.05)

    def test_view_rotation_changes_image(self, lab1_plan):
        renderer = Renderer(lab1_plan)
        a = renderer.render(Point(5, 1.25), 0.0)
        b = renderer.render(Point(5, 1.25), math.pi / 2.0)
        assert np.abs(a - b).mean() > 0.02
