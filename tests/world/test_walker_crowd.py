"""Tests for the walker (SRS/SWS micro-tasks) and the crowd generator."""

import math

import numpy as np
import pytest

from repro.geometry.primitives import Point
from repro.world.crowd import CrowdConfig, generate_crowd_dataset, make_profiles
from repro.world.renderer import Camera
from repro.world.walker import Walker, WalkerProfile


class TestSws:
    def test_session_fields(self, sws_session, lab1_plan):
        assert sws_session.task == "SWS"
        assert sws_session.building == "Lab1"
        assert sws_session.n_frames > 10
        assert sws_session.duration() > 5.0

    def test_frames_monotonic_time(self, sws_session):
        times = [f.timestamp for f in sws_session.frames]
        assert times == sorted(times)

    def test_device_trajectory_tracks_truth(self, sws_session):
        traj = sws_session.device_trajectory
        truth = sws_session.ground_truth
        end_err = math.hypot(
            traj.points[-1].x - truth.positions[-1][0],
            traj.points[-1].y - truth.positions[-1][1],
        )
        # Dead reckoning drifts, but stays within a few metres over ~35 m.
        assert end_err < 6.0

    def test_frames_have_device_pose(self, sws_session):
        for frame in sws_session.frames:
            assert frame.position is not None
            assert np.isfinite(frame.heading)

    def test_ground_truth_motion_stays_walkable(self, sws_session, lab1_plan):
        truth = sws_session.ground_truth
        for x, y in truth.positions[:: len(truth.positions) // 30]:
            assert lab1_plan.is_walkable(Point(float(x), float(y)))

    def test_route_too_short_raises(self, lab1_plan):
        walker = Walker(lab1_plan, WalkerProfile(user_id="u"),
                        rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            walker.perform_sws([Point(1, 1)])


class TestSrs:
    def test_headings_sweep_full_circle(self, srs_session):
        truth = srs_session.ground_truth
        swept = truth.headings.max() - truth.headings.min()
        assert swept >= 2 * math.pi

    def test_stationary(self, srs_session):
        truth = srs_session.ground_truth
        spread = truth.positions.std(axis=0)
        assert (spread < 0.1).all()

    def test_room_annotation(self, srs_session):
        assert srs_session.room_name == "s1"
        assert srs_session.task == "SRS"

    def test_frame_headings_cover_circle(self, srs_session):
        headings = sorted(
            (f.heading % (2 * math.pi)) for f in srs_session.frames
        )
        gaps = np.diff(headings + [headings[0] + 2 * math.pi])
        # Device-estimated headings still cover the circle densely.
        assert gaps.max() < math.radians(40.0)

    def test_session_ids_unique(self, lab1_plan, lab1_renderer):
        walker = Walker(lab1_plan, WalkerProfile(user_id="u"),
                        rng=np.random.default_rng(1), renderer=lab1_renderer)
        a = walker.perform_srs(lab1_plan.rooms[0].center)
        b = walker.perform_srs(lab1_plan.rooms[0].center)
        assert a.session_id != b.session_id


class TestCrowd:
    def test_dataset_composition(self, small_dataset):
        cfg = small_dataset.config
        assert len(small_dataset.sws_sessions()) == cfg.n_users * cfg.sws_per_user
        assert len(small_dataset.srs_sessions()) == cfg.n_users * cfg.srs_rooms_per_user
        assert small_dataset.total_frames() > 100

    def test_srs_rooms_round_robin(self, small_dataset, lab1_plan):
        covered = {s.room_name for s in small_dataset.srs_sessions()}
        assert len(covered) == len(small_dataset.srs_sessions())

    def test_profiles_vary(self):
        profiles = make_profiles(6, np.random.default_rng(0))
        lengths = {p.step_length for p in profiles}
        assert len(lengths) == 6

    def test_night_fraction(self, lab1_plan):
        ds = generate_crowd_dataset(
            lab1_plan,
            CrowdConfig(
                n_users=2, sws_per_user=1, srs_rooms_per_user=0,
                night_fraction=1.0, seed=3,
                camera=Camera(width=48, height=64),
            ),
        )
        assert all(s.lighting.name == "night" for s in ds.sessions)

    def test_deterministic_with_seed(self, lab1_plan):
        cfg = CrowdConfig(n_users=1, sws_per_user=1, srs_rooms_per_user=0,
                          seed=9, camera=Camera(width=32, height=32))
        a = generate_crowd_dataset(lab1_plan, cfg)
        b = generate_crowd_dataset(lab1_plan, cfg)
        assert np.array_equal(
            a.sessions[0].frames[0].pixels, b.sessions[0].frames[0].pixels
        )

    def test_by_lighting_filter(self, small_dataset):
        day = small_dataset.by_lighting("daylight")
        assert len(day) == len(small_dataset.sessions)
