"""Scenario-matrix behaviour: stable keys, derived seeds, lighting."""

import pytest

from repro.world.scenarios import (
    ScenarioSpec,
    find_scenarios,
    full_scenarios,
    quick_scenarios,
    scenario_matrix,
    scenarios_for_profile,
)


class TestSpec:
    def test_key_encodes_cell_coordinates(self):
        spec = ScenarioSpec(building="Lab2", lighting="night", n_users=4)
        assert spec.key == "Lab2/night/u04"

    def test_seed_is_stable_and_per_cell(self):
        a = ScenarioSpec(building="Lab1", n_users=3)
        b = ScenarioSpec(building="Lab1", n_users=3)
        c = ScenarioSpec(building="Lab2", n_users=3)
        d = ScenarioSpec(building="Lab1", lighting="night", n_users=3)
        assert a.seed == b.seed
        assert len({a.seed, c.seed, d.seed}) == 3

    def test_seed_does_not_depend_on_matrix_position(self):
        # Adding cells must never reshuffle existing cells' data.
        small = scenario_matrix(buildings=("Lab1",), crowd_sizes=(3,))
        large = scenario_matrix(
            buildings=("Lab2", "Lab1"), crowd_sizes=(1, 2, 3)
        )
        by_key = {spec.key: spec for spec in large}
        assert by_key[small[0].key].seed == small[0].seed

    def test_unknown_building_rejected(self):
        with pytest.raises(ValueError, match="unknown building"):
            ScenarioSpec(building="Atlantis")

    def test_bad_lighting_rejected(self):
        with pytest.raises(ValueError, match="lighting"):
            ScenarioSpec(building="Lab1", lighting="dusk")

    def test_night_cell_generates_night_sessions(self):
        spec = ScenarioSpec(
            building="Lab1", lighting="night", n_users=1,
            sws_per_user=1, srs_rooms_per_user=0,
        )
        dataset = spec.generate()
        assert dataset.sessions
        assert all(s.lighting.name == "night" for s in dataset.sessions)

    def test_crowd_config_carries_spec_fields(self):
        spec = ScenarioSpec(building="Gym", n_users=5, sws_per_user=3)
        config = spec.crowd_config()
        assert config.n_users == 5
        assert config.sws_per_user == 3
        assert config.night_fraction == 0.0
        assert config.seed == spec.seed


class TestMatrix:
    def test_matrix_is_the_ordered_cross_product(self):
        specs = scenario_matrix(
            buildings=("Lab1", "Lab2"), lightings=("day", "night"),
            crowd_sizes=(2, 3),
        )
        assert [s.key for s in specs] == [
            "Lab1/day/u02", "Lab1/day/u03",
            "Lab1/night/u02", "Lab1/night/u03",
            "Lab2/day/u02", "Lab2/day/u03",
            "Lab2/night/u02", "Lab2/night/u03",
        ]

    def test_quick_grid_covers_four_buildings_and_night(self):
        keys = [s.key for s in quick_scenarios()]
        assert len(keys) == len(set(keys))
        buildings = {key.split("/")[0] for key in keys}
        assert buildings == {"Lab1", "Lab2", "Gym", "Office"}
        assert any("/night/" in key for key in keys)

    def test_gym_cells_get_a_denser_crowd(self):
        by_building = {}
        for spec in quick_scenarios():
            by_building.setdefault(spec.building, spec)
        assert by_building["Gym"].n_users > by_building["Lab1"].n_users

    def test_full_grid_extends_quick_with_a_lab1_sweep(self):
        quick_keys = {s.key for s in quick_scenarios()}
        full_keys = {s.key for s in full_scenarios()}
        assert quick_keys < full_keys
        lab1_day = sorted(
            s.n_users for s in full_scenarios()
            if s.building == "Lab1" and s.lighting == "day"
        )
        assert len(lab1_day) >= 3  # the accuracy-vs-#users sweep

    def test_profiles(self):
        assert [s.key for s in scenarios_for_profile("quick")] == [
            s.key for s in quick_scenarios()
        ]
        with pytest.raises(ValueError, match="profile"):
            scenarios_for_profile("exhaustive")


class TestFind:
    def test_subsets_by_key_in_request_order(self):
        specs = quick_scenarios()
        keys = [specs[2].key, specs[0].key]
        assert [s.key for s in find_scenarios(specs, keys)] == keys

    def test_none_keeps_everything(self):
        specs = quick_scenarios()
        assert find_scenarios(specs, None) == specs

    def test_unknown_key_raises(self):
        with pytest.raises(KeyError, match="unknown scenario cell"):
            find_scenarios(quick_scenarios(), ["Lab1/day/u99"])
