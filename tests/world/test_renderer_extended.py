"""Extended renderer tests: geometry fidelity of the raycast projection."""

import math

import numpy as np
import pytest

from repro.geometry.primitives import Point
from repro.world.floorplan_model import WALL_HEIGHT
from repro.world.renderer import Camera, Renderer


class TestCameraModel:
    def test_focal_from_fov(self):
        cam = Camera(width=160, fov=math.radians(54.4))
        expected = 80.0 / math.tan(math.radians(27.2))
        assert cam.focal_px == pytest.approx(expected)

    def test_column_offsets_symmetric(self):
        cam = Camera(width=21)
        offsets = cam.column_offsets()
        assert offsets[10] == pytest.approx(0.0, abs=1e-9)
        assert offsets[0] == pytest.approx(-offsets[-1])

    def test_left_column_looks_left(self):
        offsets = Camera().column_offsets()
        # Azimuth grows CCW: column 0 (image left) has positive offset.
        assert offsets[0] > 0 > offsets[-1]

    def test_offsets_bounded_by_half_fov(self):
        cam = Camera()
        offsets = cam.column_offsets()
        assert np.abs(offsets).max() <= cam.fov / 2.0 + 1e-9


class TestProjectionGeometry:
    def test_ceiling_junction_row_matches_pinhole_model(self):
        """The ceiling-wall transition row must satisfy the projection."""
        from repro.world.buildings import build_lab1

        plan = build_lab1(wall_richness=0.0)  # plain walls: clean junction
        cam = Camera(width=120, height=192)
        renderer = Renderer(plan, cam)
        distance = 2.2
        frame = renderer.render(Point(10.0, distance), -math.pi / 2.0)
        horizon = (cam.height - 1) / 2.0
        expected_top = horizon - cam.focal_px * (
            WALL_HEIGHT - cam.eye_height
        ) / distance
        center_col = frame[:, cam.width // 2, :].mean(axis=1)
        # Strongest vertical transition in the upper half = the junction.
        upper = np.abs(np.diff(center_col[: int(horizon)]))
        junction_row = int(np.argmax(upper))
        assert abs(junction_row - expected_top) < 8

    def test_distance_attenuation_darkens_far_walls(self):
        """The same plain wall patch renders darker from farther away."""
        from repro.world.buildings import build_lab1

        plan = build_lab1(wall_richness=0.0)
        cam = Camera(width=120, height=192)
        renderer = Renderer(plan, cam)
        near = renderer.render(Point(10.0, 1.2), -math.pi / 2.0)
        far = renderer.render(Point(10.0, 2.4), -math.pi / 2.0)
        # Rows just above the horizon show upper wall paint in both views.
        band = slice(70, 90)
        assert near[band].mean() > far[band].mean() + 0.01

    def test_cast_rays_u_coordinate(self, lab1_plan):
        renderer = Renderer(lab1_plan)
        d1, idx1, u1 = renderer.cast_rays(
            Point(10.0, 1.25), np.array([-math.pi / 2.0])
        )
        d2, idx2, u2 = renderer.cast_rays(
            Point(11.0, 1.25), np.array([-math.pi / 2.0])
        )
        if idx1[0] == idx2[0]:  # same wall segment hit
            assert abs(abs(u2[0] - u1[0]) - 1.0) < 0.05

    def test_door_leaf_blocks_sightline(self, lab1_plan):
        """Rays aimed at a room door must stop at the leaf, not pass through."""
        renderer = Renderer(lab1_plan)
        room = lab1_plan.room_by_name("s1")
        door = room.door_center()
        # From inside the corridor, looking straight at the door.
        origin = Point(door.x, 1.25)
        angle = math.atan2(door.y - origin.y, door.x - origin.x)
        distances, idx, _ = renderer.cast_rays(origin, np.array([angle]))
        to_door = origin.distance_to(door)
        assert distances[0] <= to_door + 0.6

    def test_render_various_resolutions(self, lab1_plan):
        for w, h in ((32, 24), (64, 96), (160, 192)):
            renderer = Renderer(lab1_plan, Camera(width=w, height=h))
            frame = renderer.render(Point(5.0, 1.25), 0.0)
            assert frame.shape == (h, w, 3)
            assert np.isfinite(frame).all()
