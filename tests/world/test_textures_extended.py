"""Extended texture tests: the structures the CV pipeline keys on."""

import numpy as np

from repro.world.textures import (
    WallTexture,
    ceiling_color,
    floor_color,
    value_noise,
)


class TestPosterStructure:
    def sample_band(self, tex, u_lo, u_hi, v_lo=1.3, v_hi=1.9, n=400):
        u, v = np.meshgrid(np.linspace(u_lo, u_hi, n),
                           np.linspace(v_lo, v_hi, 60))
        return tex.sample(u, v)

    def test_poster_region_has_higher_variance_than_plain_wall(self):
        tex = WallTexture(seed=9, richness=1.0)
        rich = self.sample_band(tex, 0.0, 20.0)
        plain = self.sample_band(WallTexture(seed=9, richness=0.0), 0.0, 20.0)
        assert rich.std() > 2.0 * plain.std()

    def test_different_walls_show_different_content(self):
        a = self.sample_band(WallTexture(seed=1), 0.0, 10.0)
        b = self.sample_band(WallTexture(seed=2), 0.0, 10.0)
        assert np.abs(a - b).mean() > 0.02

    def test_same_wall_sections_differ(self):
        """Position along one wall must be distinguishable (anchor signal)."""
        tex = WallTexture(seed=3)
        a = self.sample_band(tex, 0.0, 8.0)
        b = self.sample_band(tex, 20.0, 28.0)
        assert np.abs(a - b).mean() > 0.02

    def test_vertical_accents_present_below_posters(self):
        """The accent elements live in the low band grazing rays see."""
        tex = WallTexture(seed=11, richness=1.0)
        u, v = np.meshgrid(np.linspace(0, 40, 1200), np.linspace(0.3, 0.9, 30))
        band = tex.sample(u, v)
        column_means = band.mean(axis=(0, 2))
        # Accents create abrupt horizontal color changes along u.
        assert np.abs(np.diff(column_means)).max() > 0.1

    def test_doors_override_posters(self):
        tex = WallTexture(seed=5, doors=((3.0, 0.95),))
        u = np.full(50, 3.0)
        v = np.linspace(0.3, 1.9, 50)
        rgb = tex.sample(u, v)
        # Door brown: red clearly above blue throughout the leaf.
        assert (rgb[:, 0] > rgb[:, 2] + 0.1).mean() > 0.8


class TestFloorCeilingStructure:
    def test_floor_drift_varies_with_position(self):
        x = np.linspace(0, 40, 400)
        y = np.full_like(x, 5.0)
        rgb = floor_color(x, y)
        assert rgb[:, 0].std() > 0.01  # red channel carries the drift

    def test_ceiling_fixture_layout_aperiodic(self):
        """Fixture occurrence must not repeat with a short period."""
        x = np.linspace(0.6, 48.0, 40)  # one sample per 1.2 m tile
        y = np.full_like(x, 0.6)
        rgb = ceiling_color(x, y)
        bright = rgb.mean(axis=1) > 0.95
        if bright.any():
            gaps = np.diff(np.nonzero(bright)[0])
            assert len(set(gaps.tolist())) != 1 or len(gaps) < 2

    def test_seed_changes_floor(self):
        x, y = np.meshgrid(np.linspace(0, 10, 50), np.linspace(0, 10, 50))
        a = floor_color(x, y, seed=1)
        b = floor_color(x, y, seed=2)
        assert not np.allclose(a, b)


class TestValueNoiseProperties:
    def test_interpolation_continuity(self):
        """No jumps at integer lattice boundaries."""
        u = np.array([0.999, 1.001]) * 2.0  # straddle a lattice line (scale 2)
        v = np.zeros(2)
        n = value_noise(u, v, 2.0, seed=3)
        assert abs(n[1] - n[0]) < 0.05

    def test_scale_controls_feature_size(self):
        u = np.linspace(0, 10, 500)
        v = np.zeros_like(u)
        fine = value_noise(u, v, 0.2, seed=4)
        coarse = value_noise(u, v, 5.0, seed=4)
        assert np.abs(np.diff(fine)).mean() > np.abs(np.diff(coarse)).mean()
