"""Tests for crowd-dataset persistence."""

import numpy as np
import pytest

from repro.world.dataset_io import load_dataset, save_dataset


def _drop_arrays(src_path, dst_path, *keys):
    """Rewrite a dataset bundle without ``keys`` (simulated bit-rot)."""
    bundle = np.load(src_path)
    kept = {k: bundle[k] for k in bundle.files if k not in keys}
    np.savez(dst_path, **kept)
    return dst_path


@pytest.fixture(scope="module")
def roundtripped(small_dataset, tmp_path_factory):
    path = tmp_path_factory.mktemp("ds") / "lab1.npz"
    save_dataset(small_dataset, str(path))
    return load_dataset(str(path)), path


class TestDatasetIo:
    def test_session_count_preserved(self, small_dataset, roundtripped):
        loaded, _ = roundtripped
        assert len(loaded.sessions) == len(small_dataset.sessions)
        assert loaded.building == small_dataset.building

    def test_frames_quantized_roundtrip(self, small_dataset, roundtripped):
        loaded, _ = roundtripped
        orig = small_dataset.sessions[0].frames[0]
        rest = loaded.sessions[0].frames[0]
        assert rest.pixels.shape == orig.pixels.shape
        assert np.abs(rest.pixels - orig.pixels).max() <= 1.0 / 255.0 + 1e-9
        assert rest.timestamp == orig.timestamp
        assert rest.heading == pytest.approx(orig.heading)

    def test_imu_roundtrip(self, small_dataset, roundtripped):
        loaded, _ = roundtripped
        orig = small_dataset.sessions[0].imu
        rest = loaded.sessions[0].imu
        assert len(rest) == len(orig)
        assert np.allclose(rest.gyro(), orig.gyro())
        assert np.allclose(rest.pressure(), orig.pressure())

    def test_trajectory_roundtrip(self, small_dataset, roundtripped):
        loaded, _ = roundtripped
        orig = small_dataset.sessions[0].device_trajectory
        rest = loaded.sessions[0].device_trajectory
        assert len(rest) == len(orig)
        assert rest.length() == pytest.approx(orig.length())

    def test_ground_truth_roundtrip(self, small_dataset, roundtripped):
        loaded, _ = roundtripped
        orig = small_dataset.sessions[0].ground_truth
        rest = loaded.sessions[0].ground_truth
        assert np.allclose(rest.positions, orig.positions)
        assert len(rest.step_times) == len(orig.step_times)

    def test_metadata_roundtrip(self, small_dataset, roundtripped):
        loaded, _ = roundtripped
        for orig, rest in zip(small_dataset.sessions, loaded.sessions):
            assert rest.session_id == orig.session_id
            assert rest.task == orig.task
            assert rest.room_name == orig.room_name
            assert rest.lighting.name == orig.lighting.name

    def test_plan_rebuilt(self, roundtripped):
        loaded, _ = roundtripped
        assert loaded.plan.name == "Lab1"
        assert len(loaded.plan.rooms) == 12

    def test_config_roundtrip(self, small_dataset, roundtripped):
        loaded, _ = roundtripped
        assert loaded.config.seed == small_dataset.config.seed
        assert loaded.config.n_users == small_dataset.config.n_users

    def test_pipeline_runs_on_loaded_dataset(self, roundtripped):
        from repro.core import CrowdMapConfig, CrowdMapPipeline

        loaded, _ = roundtripped
        config = CrowdMapConfig().with_overrides(layout_samples=200)
        pipe = CrowdMapPipeline(config)
        anchored, agg, skel, _ = pipe.build_pathway(loaded.sws_sessions()[:4])
        assert skel.skeleton.any()

    def test_damaged_bundle_raise_mode(self, roundtripped, tmp_path):
        _, path = roundtripped
        damaged = _drop_arrays(path, tmp_path / "damaged_raise.npz",
                               "s0001_imu")
        with pytest.raises(KeyError):
            load_dataset(str(damaged))

    def test_damaged_bundle_skip_mode(self, small_dataset, roundtripped,
                                      tmp_path):
        _, path = roundtripped
        damaged = _drop_arrays(path, tmp_path / "damaged_skip.npz",
                               "s0001_imu")
        failures = []
        loaded = load_dataset(str(damaged), on_error="skip",
                              failures_out=failures)
        assert len(loaded.sessions) == len(small_dataset.sessions) - 1
        (session_id, reason), = failures
        assert session_id == small_dataset.sessions[1].session_id
        assert "KeyError" in reason
        # The survivors are intact.
        assert all(s.n_frames for s in loaded.sessions)

    def test_invalid_on_error_rejected(self, roundtripped):
        _, path = roundtripped
        with pytest.raises(ValueError):
            load_dataset(str(path), on_error="ignore")

    def test_bad_version_rejected(self, tmp_path):
        import json

        import numpy as np

        path = tmp_path / "bad.npz"
        manifest = json.dumps({"version": 999}).encode()
        np.savez(path, manifest=np.frombuffer(manifest, dtype=np.uint8))
        with pytest.raises(ValueError, match="version"):
            load_dataset(str(path))
