"""Validation of the three procedural evaluation buildings."""

import math

import networkx as nx
import numpy as np
import pytest

from repro.geometry.primitives import Point
from repro.world.buildings import BUILDING_BUILDERS, build_gym, build_lab1, build_lab2
from repro.world.renderer import Renderer


@pytest.fixture(scope="module", params=["Lab1", "Lab2", "Gym"])
def plan(request):
    return BUILDING_BUILDERS[request.param]()


class TestAllBuildings:
    def test_route_graph_connected(self, plan):
        assert nx.is_connected(plan.route_graph)

    def test_all_waypoints_walkable(self, plan):
        for name, point in plan.waypoints.items():
            assert plan.is_walkable(point), f"{plan.name}:{name} not walkable"

    def test_room_centers_walkable(self, plan):
        for room in plan.rooms:
            assert plan.is_walkable(room.center), f"{plan.name}:{room.name}"

    def test_every_room_has_waypoints(self, plan):
        for room in plan.rooms:
            assert f"{room.name}_door" in plan.waypoints
            assert f"{room.name}_center" in plan.waypoints

    def test_door_to_center_path_walkable(self, plan):
        for room in plan.rooms:
            start = plan.waypoints[f"{room.name}_door"]
            end = room.center
            for t in np.linspace(0, 1, 60):
                p = Point(
                    start.x + t * (end.x - start.x),
                    start.y + t * (end.y - start.y),
                )
                assert plan.is_walkable(p), f"{plan.name}:{room.name} blocked at {p}"

    def test_rooms_do_not_overlap(self, plan):
        for i, a in enumerate(plan.rooms):
            for b in plan.rooms[i + 1 :]:
                bb_a, bb_b = a.bounding_box(), b.bounding_box()
                dx = min(bb_a.max_x, bb_b.max_x) - max(bb_a.min_x, bb_b.min_x)
                dy = min(bb_a.max_y, bb_b.max_y) - max(bb_a.min_y, bb_b.min_y)
                assert dx <= 0 or dy <= 0, f"{a.name} overlaps {b.name}"

    def test_world_is_closed_for_rays(self, plan):
        renderer = Renderer(plan)
        angles = np.linspace(0, 2 * math.pi, 37)
        probes = [plan.waypoints[n] for n in list(plan.waypoints)[:6]]
        for origin in probes:
            distances, idx, _ = renderer.cast_rays(origin, angles)
            assert np.isfinite(distances).all()

    def test_routes_exist_between_all_corridor_waypoints(self, plan):
        from repro.world.crowd import _corridor_waypoints

        names = _corridor_waypoints(plan)
        for target in names[1:4]:
            route = plan.route_between(names[0], target)
            assert len(route) >= 2


class TestSpecificBuildings:
    def test_lab1_dimensions(self):
        plan = build_lab1()
        assert len(plan.rooms) == 12
        assert plan.bounds.width == pytest.approx(41.0, abs=0.5)

    def test_lab2_room_count(self):
        plan = build_lab2()
        assert len(plan.rooms) == 9

    def test_gym_has_sporadic_rooms(self):
        plan = build_gym()
        assert len(plan.rooms) == 5
        # The gym hall dominates the hallway area.
        areas = [r.width * r.height for r in plan.hallway_rects]
        assert max(areas) > 0.8 * 30 * 20

    def test_builders_accept_richness(self):
        plan = build_lab1(wall_richness=0.1)
        assert all(
            w.texture.richness == 0.1
            for w in plan.walls
            if not w.is_door_leaf
        )

    def test_texture_seed_changes_walls(self):
        a = build_lab1(texture_seed=1)
        b = build_lab1(texture_seed=2)
        seeds_a = {w.texture.seed for w in a.walls}
        seeds_b = {w.texture.seed for w in b.walls}
        assert seeds_a != seeds_b


class TestOfficeBuilding:
    def test_office_valid(self):
        import networkx as nx

        from repro.world.buildings import build_office

        plan = build_office()
        assert len(plan.rooms) == 8
        assert nx.is_connected(plan.route_graph)
        for name, point in plan.waypoints.items():
            assert plan.is_walkable(point), name

    def test_office_crowd_generates(self):
        from repro.world.buildings import build_office
        from repro.world.crowd import CrowdConfig, generate_crowd_dataset
        from repro.world.renderer import Camera

        plan = build_office()
        dataset = generate_crowd_dataset(
            plan,
            CrowdConfig(n_users=1, sws_per_user=1, srs_rooms_per_user=1,
                        seed=3, camera=Camera(width=48, height=64)),
        )
        assert dataset.total_frames() > 0
