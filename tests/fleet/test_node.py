"""FleetNode behaviour: ingest idempotence, summaries, acks, isolation."""

from repro.backend.telemetry import TelemetryRegistry, default_registry
from repro.fleet.node import FleetNode, FleetSummary
from repro.fleet.versions import VersionVector


class TestIngest:
    def test_reingesting_a_session_changes_nothing(
        self, fleet_sessions, evidence_config
    ):
        node = FleetNode("n0", config=evidence_config)
        for session in fleet_sessions:
            node.ingest_session(session)
        records = node.store.n_records()
        digest = node.digest()
        node.ingest_session(fleet_sessions[0])
        assert node.store.n_records() == records
        assert node.digest() == digest

    def test_shard_ingest_is_gated_on_new_evidence(
        self, fleet_sessions, evidence_config
    ):
        node = FleetNode("n0", config=evidence_config, maintain_local_maps=True)
        session = next(s for s in fleet_sessions if s.task == "SWS")
        node.ingest_session(session)
        node.ingest_session(session)
        shard = node.shards.shards()[0]
        assert shard.sessions_ingested == 1


class TestTelemetryIsolation:
    def test_each_node_gets_a_private_registry(self, evidence_config):
        a = FleetNode("a", config=evidence_config)
        b = FleetNode("b", config=evidence_config)
        assert a.telemetry is not b.telemetry
        assert a.telemetry is not default_registry
        assert b.telemetry is not default_registry

    def test_counters_never_cross_nodes(self, fleet_sessions, evidence_config):
        a = FleetNode("a", config=evidence_config)
        b = FleetNode("b", config=evidence_config)
        for session in fleet_sessions:
            a.ingest_session(session)
        assert a.telemetry.value("fleet_sessions_ingested") == len(
            fleet_sessions
        )
        assert b.telemetry.value("fleet_sessions_ingested") == 0.0

    def test_injected_registry_is_used(self, evidence_config):
        registry = TelemetryRegistry()
        node = FleetNode("n", config=evidence_config, telemetry=registry)
        assert node.telemetry is registry


class TestSummaryExchange:
    def build(self, records, node_id, evidence_config):
        node = FleetNode(node_id, config=evidence_config)
        store = node.store
        for record in records:
            store.add(record, node_id)
        return node

    def test_summary_for_unknown_peer_covers_all_regions(
        self, evidence_records, evidence_config
    ):
        node = self.build(evidence_records, "a", evidence_config)
        summary = node.summary_for("b")
        assert summary is not None
        assert sorted(summary.regions) == node.store.regions()
        assert summary.kind == "push"

    def test_empty_node_owes_nothing(self, evidence_config):
        assert FleetNode("a", config=evidence_config).summary_for("b") is None

    def test_push_response_ack_quiesces_the_pair(
        self, evidence_records, evidence_config
    ):
        a = self.build(evidence_records, "a", evidence_config)
        b = FleetNode("b", config=evidence_config)
        push = a.summary_for("b")
        b.receive_summary(push)
        response = b.response_to(push)
        assert response is not None
        assert response.kind == "response"
        # b now holds exactly what a pushed, so every region is an ack.
        assert all(not records for _, records in response.regions.values())
        a.receive_summary(response)
        assert a.summary_for("b") is None
        assert b.summary_for("a") is None

    def test_response_carries_records_when_receiver_knows_more(
        self, evidence_records, evidence_config
    ):
        region = evidence_records[0].region(evidence_config)
        same_region = [
            r
            for r in evidence_records
            if r.region(evidence_config) == region
        ]
        rich = self.build(evidence_records, "rich", evidence_config)
        poor = self.build(same_region[:1], "poor", evidence_config)
        push = poor.summary_for("rich")
        rich.receive_summary(push)
        response = rich.response_to(push)
        assert response is not None
        version, records = response.regions[region]
        assert records == tuple(rich.store.records(region))
        assert version.dominates(poor.store.version(region))

    def test_responses_are_never_answered(
        self, evidence_records, evidence_config
    ):
        a = self.build(evidence_records, "a", evidence_config)
        b = FleetNode("b", config=evidence_config)
        push = a.summary_for("b")
        b.receive_summary(push)
        response = b.response_to(push)
        a.receive_summary(response)
        assert a.response_to(response) is None

    def test_ack_region_never_merges_into_the_store(self, evidence_config):
        node = FleetNode("n", config=evidence_config)
        phantom_region = ("Lab1", 1, 0, 0)
        ack = FleetSummary(
            sender="peer",
            regions={phantom_region: (VersionVector({"peer": 3}), ())},
        )
        outcome = node.receive_summary(ack)
        assert outcome == {"merged_records": 0, "stale_regions": 0}
        # The vector must not enter the store: claiming peer:3 without the
        # records would break the dominance-implies-superset invariant.
        assert node.store.regions() == []
        assert not node.store.version(phantom_region)
        # But peer knowledge was updated, so we would not push to them.
        assert node.summary_for("peer") is None
