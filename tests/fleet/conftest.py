"""Shared fleet fixtures: one small sensor-only crowd, reused everywhere.

Fleet tests never need rendered frames — evidence extraction reads only
the dead-reckoned trajectory — so the crowd is generated sensor-only
(``render_frames=False``), which keeps the whole suite cheap enough to
regenerate per test session.
"""

from __future__ import annotations

import pytest

from repro.fleet.evidence import EvidenceConfig, extract_evidence
from repro.fleet.sim import FleetSimConfig, build_fleet_crowd

SMALL_CONFIG = FleetSimConfig(
    buildings=("Lab1",),
    n_nodes=3,
    users_per_building=2,
    max_rounds=32,
)


@pytest.fixture(scope="session")
def fleet_crowd():
    """(sessions, plans) for the small single-building fleet campaign."""
    return build_fleet_crowd(SMALL_CONFIG)


@pytest.fixture(scope="session")
def fleet_sessions(fleet_crowd):
    return fleet_crowd[0]


@pytest.fixture(scope="session")
def fleet_plans(fleet_crowd):
    return fleet_crowd[1]


@pytest.fixture(scope="session")
def evidence_config():
    return EvidenceConfig()


@pytest.fixture(scope="session")
def evidence_records(fleet_sessions, evidence_config):
    """Every extractable evidence record of the small crowd, in order."""
    records = [
        extract_evidence(session, evidence_config)
        for session in fleet_sessions
    ]
    return [record for record in records if record is not None]
