"""Evidence extraction: determinism, wire roundtrip, absolute coordinates."""

from types import SimpleNamespace

from repro.fleet.evidence import (
    EvidenceConfig,
    SessionEvidence,
    canonical_json,
    extract_evidence,
)


class TestExtraction:
    def test_extraction_is_deterministic(self, fleet_sessions, evidence_config):
        for session in fleet_sessions:
            first = extract_evidence(session, evidence_config)
            second = extract_evidence(session, evidence_config)
            assert first == second

    def test_every_sws_and_srs_session_yields_evidence(
        self, fleet_sessions, evidence_records
    ):
        expected = [s for s in fleet_sessions if s.task in ("SWS", "SRS")]
        assert len(evidence_records) == len(expected)

    def test_non_evidence_task_returns_none(self, evidence_config):
        stub = SimpleNamespace(task="STAIRS")
        assert extract_evidence(stub, evidence_config) is None

    def test_cells_are_absolute_and_bbox_is_their_hull(self, evidence_records):
        for record in evidence_records:
            xs = [c[0] for c in record.cells]
            ys = [c[1] for c in record.cells]
            assert record.bbox == (min(xs), min(ys), max(xs), max(ys))
            assert record.cells == tuple(sorted(set(record.cells)))

    def test_srs_records_carry_room_center(self, evidence_records):
        for record in evidence_records:
            if record.task == "SRS":
                assert record.room_center is not None
            else:
                assert record.room_center is None
                assert record.room_name is None

    def test_region_is_stable_per_record(self, evidence_records, evidence_config):
        for record in evidence_records:
            region = record.region(evidence_config)
            assert region[0] == record.building
            assert region[1] == record.floor
            assert record.region(evidence_config) == region


class TestWireFormat:
    def test_payload_roundtrip(self, evidence_records):
        for record in evidence_records:
            assert SessionEvidence.from_payload(record.to_payload()) == record

    def test_payload_is_canonical_json_serializable(self, evidence_records):
        for record in evidence_records:
            encoded = canonical_json(record.to_payload())
            assert record.payload_bytes() == len(encoded.encode("utf-8"))

    def test_records_are_compact(self, evidence_records):
        """The point of evidence records: a session gossips in kilobytes."""
        for record in evidence_records:
            assert record.payload_bytes() < 64_000


def test_config_validation():
    import pytest

    with pytest.raises(ValueError):
        EvidenceConfig(cell_size=0.0)
    with pytest.raises(ValueError):
        EvidenceConfig(region_tile=0)
    with pytest.raises(ValueError):
        EvidenceConfig(occupancy_threshold=1.5)
    with pytest.raises(ValueError):
        EvidenceConfig(observer_margin=-1)
