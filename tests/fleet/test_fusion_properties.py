"""Property-style fusion tests: order, duplication and staleness immunity.

The satellite contract: late, out-of-order and duplicated gossip summary
delivery must not change the converged state — fusion is commutative,
associative and idempotent. Each property is exercised over seeded
permutations of real summaries built from the shared fleet crowd.
"""

import itertools

import numpy as np
import pytest

from repro.fleet.beliefs import EvidenceStore, divergence, project
from repro.fleet.node import FleetNode, FleetSummary


def summaries_from(records, config, origin="origin"):
    """One full-region summary per region of a store holding ``records``."""
    store = EvidenceStore(config)
    for record in records:
        store.add(record, origin)
    return [
        FleetSummary(
            sender=origin,
            regions={
                region: (
                    store.version(region),
                    tuple(store.records(region)),
                )
            },
        )
        for region in store.regions()
    ]


def fused_digest(node):
    return (node.digest(), node.fused_map().digest())


class TestIngestOrderIndependence:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_shuffled_ingest_orders_project_identically(
        self, fleet_sessions, evidence_config, seed
    ):
        rng = np.random.default_rng(seed)
        shuffled = list(fleet_sessions)
        rng.shuffle(shuffled)
        reference = FleetNode("n", config=evidence_config)
        permuted = FleetNode("n", config=evidence_config)
        for session in fleet_sessions:
            reference.ingest_session(session)
        for session in shuffled:
            permuted.ingest_session(session)
        assert fused_digest(reference) == fused_digest(permuted)

    def test_duplicate_ingest_is_idempotent(
        self, fleet_sessions, evidence_config
    ):
        once = FleetNode("n", config=evidence_config)
        twice = FleetNode("n", config=evidence_config)
        for session in fleet_sessions:
            once.ingest_session(session)
        for session in fleet_sessions:
            twice.ingest_session(session)
            twice.ingest_session(session)
        assert fused_digest(once) == fused_digest(twice)


class TestDeliveryOrderIndependence:
    def test_commutative_over_all_pair_orders(
        self, evidence_records, evidence_config
    ):
        half = len(evidence_records) // 2
        a = summaries_from(
            evidence_records[:half], evidence_config, origin="nodeA"
        )
        b = summaries_from(
            evidence_records[half:], evidence_config, origin="nodeB"
        )
        forward = FleetNode("sink", config=evidence_config)
        backward = FleetNode("sink", config=evidence_config)
        for summary in a + b:
            forward.receive_summary(summary)
        for summary in b + a:
            backward.receive_summary(summary)
        assert fused_digest(forward) == fused_digest(backward)

    @pytest.mark.parametrize("seed", [10, 11, 12, 13, 14, 15])
    def test_seeded_permutations_converge_identically(
        self, evidence_records, evidence_config, seed
    ):
        summaries = summaries_from(evidence_records, evidence_config)
        reference = FleetNode("sink", config=evidence_config)
        for summary in summaries:
            reference.receive_summary(summary)
        rng = np.random.default_rng(seed)
        order = rng.permutation(len(summaries))
        permuted = FleetNode("sink", config=evidence_config)
        for index in order:
            permuted.receive_summary(summaries[index])
        assert fused_digest(reference) == fused_digest(permuted)

    def test_exhaustive_small_permutations(
        self, evidence_records, evidence_config
    ):
        """Every ordering of three summaries lands on the same state."""
        summaries = summaries_from(evidence_records, evidence_config)[:3]
        digests = set()
        for order in itertools.permutations(summaries):
            node = FleetNode("sink", config=evidence_config)
            for summary in order:
                node.receive_summary(summary)
            digests.add(fused_digest(node))
        assert len(digests) == 1

    @pytest.mark.parametrize("seed", [20, 21, 22])
    def test_duplicates_and_redelivery_are_idempotent(
        self, evidence_records, evidence_config, seed
    ):
        summaries = summaries_from(evidence_records, evidence_config)
        clean = FleetNode("sink", config=evidence_config)
        for summary in summaries:
            clean.receive_summary(summary)
        rng = np.random.default_rng(seed)
        noisy = FleetNode("sink", config=evidence_config)
        replay = list(summaries) + [
            summaries[int(i)]
            for i in rng.integers(len(summaries), size=len(summaries))
        ]
        rng.shuffle(replay)
        for summary in replay:
            noisy.receive_summary(summary)
        assert fused_digest(clean) == fused_digest(noisy)

    def test_stale_summary_after_newer_state_is_a_noop(
        self, evidence_records, evidence_config
    ):
        """A late (out-of-date) summary is dropped by vector dominance."""
        store = EvidenceStore(evidence_config)
        store.add(evidence_records[0], "nodeA")
        region = evidence_records[0].region(evidence_config)
        stale = FleetSummary(
            sender="nodeA",
            regions={
                region: (store.version(region), tuple(store.records(region)))
            },
        )
        # The same origin then ingests more records into the same region.
        later = [
            r
            for r in evidence_records[1:]
            if r.region(evidence_config) == region
        ]
        for record in later:
            store.add(record, "nodeA")
        fresh = FleetSummary(
            sender="nodeA",
            regions={
                region: (store.version(region), tuple(store.records(region)))
            },
        )
        node = FleetNode("sink", config=evidence_config)
        node.receive_summary(fresh)
        before = fused_digest(node)
        outcome = node.receive_summary(stale)
        assert outcome["merged_records"] == 0
        assert outcome["stale_regions"] == 1
        assert fused_digest(node) == before


class TestAssociativity:
    def test_store_merge_is_associative(
        self, evidence_records, evidence_config
    ):
        third = max(1, len(evidence_records) // 3)
        parts = [
            evidence_records[:third],
            evidence_records[third : 2 * third],
            evidence_records[2 * third :],
        ]
        summaries = [
            summaries_from(part, evidence_config, origin=f"node{i}")
            for i, part in enumerate(parts)
        ]

        def fold(order):
            node = FleetNode("sink", config=evidence_config)
            for part_index in order:
                for summary in summaries[part_index]:
                    node.receive_summary(summary)
            return fused_digest(node)

        # ((A + B) + C) vs (A + (B + C)) vs every other grouping/order.
        digests = {fold(order) for order in itertools.permutations(range(3))}
        assert len(digests) == 1


class TestProjectionPurity:
    def test_projection_of_equal_stores_is_bit_identical(
        self, evidence_records, evidence_config
    ):
        a = EvidenceStore(evidence_config)
        b = EvidenceStore(evidence_config)
        for record in evidence_records:
            a.add(record, "x")
        for record in reversed(evidence_records):
            b.add(record, "y")
        # Vectors differ (different origins), but contents are equal — the
        # projected map must not depend on how the store got its records.
        assert project(a).digest() == project(b).digest()

    def test_divergence_is_zero_iff_maps_agree(
        self, evidence_records, evidence_config
    ):
        store = EvidenceStore(evidence_config)
        for record in evidence_records:
            store.add(record, "x")
        full = project(store)
        assert divergence(full, full) == {
            "occupied_jaccard_distance": 0.0,
            "confidence_mae": 0.0,
        }
        partial_store = EvidenceStore(evidence_config)
        partial_store.add(evidence_records[0], "x")
        partial = project(partial_store)
        apart = divergence(full, partial)
        assert apart["occupied_jaccard_distance"] > 0.0
