"""Version vector algebra: bump, merge, dominance, wire roundtrip."""

import pytest

from repro.fleet.versions import VersionVector


class TestBasics:
    def test_empty_vector_is_falsy_and_reads_zero(self):
        vv = VersionVector()
        assert not vv
        assert vv.get("node00") == 0

    def test_bump_returns_new_vector_and_leaves_original(self):
        a = VersionVector()
        b = a.bump("n0")
        assert a.get("n0") == 0
        assert b.get("n0") == 1
        assert b.bump("n0").get("n0") == 2

    def test_zero_components_are_dropped(self):
        vv = VersionVector({"n0": 2, "n1": 0})
        assert dict(vv.items()) == {"n0": 2}


class TestMergeAndDominance:
    def test_merge_is_pointwise_max(self):
        a = VersionVector({"n0": 3, "n1": 1})
        b = VersionVector({"n0": 1, "n2": 4})
        merged = a.merge(b)
        assert dict(merged.items()) == {"n0": 3, "n1": 1, "n2": 4}

    def test_merge_is_commutative_and_idempotent(self):
        a = VersionVector({"n0": 3, "n1": 1})
        b = VersionVector({"n0": 1, "n2": 4})
        assert a.merge(b) == b.merge(a)
        assert a.merge(a) == a

    def test_dominates_is_reflexive(self):
        a = VersionVector({"n0": 3})
        assert a.dominates(a)

    def test_dominates_requires_every_component(self):
        big = VersionVector({"n0": 3, "n1": 2})
        small = VersionVector({"n0": 3})
        sideways = VersionVector({"n2": 1})
        assert big.dominates(small)
        assert not small.dominates(big)
        assert not big.dominates(sideways)
        assert not sideways.dominates(big)

    def test_merge_dominates_both_inputs(self):
        a = VersionVector({"n0": 3, "n1": 1})
        b = VersionVector({"n0": 1, "n2": 4})
        merged = a.merge(b)
        assert merged.dominates(a)
        assert merged.dominates(b)


class TestWireFormat:
    def test_payload_roundtrip(self):
        vv = VersionVector({"n0": 3, "n1": 1})
        assert VersionVector.from_payload(vv.to_payload()) == vv

    def test_equality_and_hash(self):
        a = VersionVector({"n0": 1})
        b = VersionVector().bump("n0")
        assert a == b
        assert hash(a) == hash(b)
        assert a != VersionVector({"n0": 2})

    @pytest.mark.parametrize("payload", [{}, {"n0": 5}])
    def test_payload_is_plain_dict(self, payload):
        vv = VersionVector.from_payload(payload)
        assert vv.to_payload() == payload
