"""End-to-end fleet simulation: determinism, equivalence, report shape."""

import pytest

from repro.backend.faults import Partition
from repro.fleet.sim import (
    FleetSimConfig,
    render_fleet_report,
    report_json,
    run_fleet_simulation,
)

SMALL = FleetSimConfig(
    buildings=("Lab1",), n_nodes=3, users_per_building=2, max_rounds=32
)


@pytest.fixture(scope="module")
def small_report():
    return run_fleet_simulation(SMALL)


class TestDeterminism:
    def test_two_same_seed_runs_serialize_byte_equal(self, small_report):
        again = run_fleet_simulation(SMALL)
        assert report_json(small_report) == report_json(again)

    def test_rendered_report_is_reproducible(self, small_report):
        again = run_fleet_simulation(SMALL)
        assert render_fleet_report(small_report) == render_fleet_report(again)


class TestEquivalence:
    """The headline property: fleet fusion == single node on the union."""

    def test_partition_free_run_is_bit_identical_to_central(
        self, small_report
    ):
        assert small_report["converged"]
        for node_id, entry in small_report["equivalence"].items():
            assert entry["bit_identical_to_central"], node_id
            assert entry["problems"] == []
            assert entry["metrics"]["occupied_iou"] == 1.0
            assert entry["metrics"]["confidence_mae"] == 0.0

    def test_divergence_hits_zero_at_convergence(self, small_report):
        last = small_report["rounds"][-1]
        for node_id, metrics in last["divergence"].items():
            assert metrics["occupied_jaccard_distance"] == 0.0, node_id
            assert metrics["confidence_mae"] == 0.0, node_id

    def test_healed_partition_still_reaches_central(self):
        config = FleetSimConfig(
            buildings=("Lab1",),
            n_nodes=3,
            users_per_building=2,
            max_rounds=64,
            partitions=(
                Partition(
                    start=0.0,
                    end=6.0,
                    groups=(("node00",), ("node01", "node02")),
                ),
            ),
        )
        report = run_fleet_simulation(config)
        assert report["converged"]
        for entry in report["equivalence"].values():
            assert entry["bit_identical_to_central"]
            assert entry["problems"] == []

    def test_lossy_links_converge_within_bands(self):
        config = FleetSimConfig(
            buildings=("Lab1",),
            n_nodes=3,
            users_per_building=2,
            max_rounds=64,
            loss_rate=0.3,
        )
        report = run_fleet_simulation(config)
        assert report["converged"]
        assert report["totals"]["dropped"] > 0
        for entry in report["equivalence"].values():
            assert entry["problems"] == []


class TestReportShape:
    def test_report_carries_the_headline_numbers(self, small_report):
        assert small_report["rounds_to_converge"] is not None
        assert small_report["totals"]["bytes_gossiped"] > 0
        assert small_report["pending_messages"] == 0
        # Overlapping slices: every session has a primary node, some also
        # land on a second one.
        assert sum(small_report["crowd"]["sessions_per_node"]) >= (
            small_report["crowd"]["n_sessions"]
        )
        rounds = small_report["rounds"]
        assert [r["round"] for r in rounds] == list(range(1, len(rounds) + 1))

    def test_central_quality_scores_every_building(self, small_report):
        assert sorted(small_report["central_quality"]) == ["Lab1"]
        scores = small_report["central_quality"]["Lab1"]
        assert 0.0 < scores["hallway_precision"] <= 1.0
        assert 0.0 < scores["hallway_recall"] <= 1.0

    def test_rendered_report_mentions_convergence(self, small_report):
        text = render_fleet_report(small_report)
        assert "converged in" in text
        assert "Fused vs central (final)" in text

    def test_local_maps_mode_publishes_per_node_shards(self):
        config = FleetSimConfig(
            buildings=("Lab1",),
            n_nodes=2,
            users_per_building=2,
            max_rounds=16,
            maintain_local_maps=True,
        )
        report = run_fleet_simulation(config)
        assert "local_maps" in report
        for node_id, entry in report["local_maps"].items():
            assert entry["shards"] >= 1, node_id

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FleetSimConfig(n_nodes=0)
        with pytest.raises(ValueError):
            FleetSimConfig(buildings=())
        with pytest.raises(ValueError):
            FleetSimConfig(max_rounds=0)
