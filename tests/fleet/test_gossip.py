"""Gossip mesh: convergence, quiescence, determinism, faults, healing."""

import pytest

from repro.backend.faults import LinkFaultModel, Partition
from repro.fleet.evidence import EvidenceConfig
from repro.fleet.gossip import GossipConfig, GossipMesh
from repro.fleet.node import FleetNode
from repro.world.scenarios import slice_sessions


def build_fleet(sessions, n_nodes, evidence_config, overlap=0.25, seed=0):
    nodes = [
        FleetNode(f"node{i:02d}", config=evidence_config)
        for i in range(n_nodes)
    ]
    for node, node_sessions in zip(
        nodes, slice_sessions(sessions, n_nodes, overlap=overlap, seed=seed)
    ):
        for session in node_sessions:
            node.ingest_session(session)
    return nodes


def central_digest(sessions, evidence_config):
    central = FleetNode("central", config=evidence_config)
    for session in sessions:
        central.ingest_session(session)
    return central.fused_map().digest()


def run_until_converged(mesh, max_rounds=64, interval=1.0):
    history = []
    for round_number in range(1, max_rounds + 1):
        history.append(mesh.run_round(round_number * interval))
        if mesh.converged():
            return round_number, history
    return None, history


class TestConvergence:
    def test_fault_free_mesh_converges_bit_identically(
        self, fleet_sessions, evidence_config
    ):
        nodes = build_fleet(fleet_sessions, 3, evidence_config)
        mesh = GossipMesh(nodes)
        rounds, _ = run_until_converged(mesh)
        assert rounds is not None
        expected = central_digest(fleet_sessions, evidence_config)
        for node in nodes:
            assert node.fused_map().digest() == expected
        # Fusion-state digests (records + vectors) agree across the fleet.
        assert len(set(mesh.digests())) == 1

    def test_traffic_quiesces_after_convergence(
        self, fleet_sessions, evidence_config
    ):
        nodes = build_fleet(fleet_sessions, 3, evidence_config)
        mesh = GossipMesh(nodes)
        rounds, _ = run_until_converged(mesh)
        assert rounds is not None
        quiet = mesh.run_round((rounds + 1) * 1.0)
        assert quiet["messages_sent"] == 0
        assert mesh.pending_messages() == 0

    def test_single_node_mesh_is_trivially_converged(
        self, fleet_sessions, evidence_config
    ):
        (node,) = build_fleet(fleet_sessions, 1, evidence_config)
        mesh = GossipMesh([node])
        stats = mesh.run_round(1.0)
        assert stats["messages_sent"] == 0
        assert mesh.converged()
        expected = central_digest(fleet_sessions, evidence_config)
        assert node.fused_map().digest() == expected


class TestDeterminism:
    def test_two_identical_meshes_replay_identically(
        self, fleet_sessions, evidence_config
    ):
        def run():
            nodes = build_fleet(fleet_sessions, 3, evidence_config)
            mesh = GossipMesh(nodes, config=GossipConfig(seed=7))
            _, history = run_until_converged(mesh)
            return history, mesh.digests()

        assert run() == run()

    def test_different_seed_changes_the_schedule(
        self, fleet_sessions, evidence_config
    ):
        def run(seed):
            nodes = build_fleet(fleet_sessions, 3, evidence_config)
            mesh = GossipMesh(nodes, config=GossipConfig(seed=seed))
            rounds, history = run_until_converged(mesh)
            return rounds, history, mesh.digests()

        rounds_a, history_a, digests_a = run(0)
        rounds_b, history_b, digests_b = run(1)
        # Different gossip schedules, same converged fusion state.
        assert digests_a == digests_b
        assert rounds_a is not None and rounds_b is not None


class TestFaults:
    def test_converges_under_heavy_loss(
        self, fleet_sessions, evidence_config
    ):
        nodes = build_fleet(fleet_sessions, 3, evidence_config)
        mesh = GossipMesh(nodes, link_model=LinkFaultModel(loss_rate=0.4))
        rounds, history = run_until_converged(mesh, max_rounds=128)
        assert rounds is not None
        assert sum(h["dropped"] for h in history) > 0
        expected = central_digest(fleet_sessions, evidence_config)
        for node in nodes:
            assert node.fused_map().digest() == expected

    def test_partition_blocks_then_heals(
        self, fleet_sessions, evidence_config
    ):
        partition = Partition(
            start=0.0,
            end=8.0,
            groups=(("node00",), ("node01", "node02")),
        )
        nodes = build_fleet(fleet_sessions, 3, evidence_config)
        mesh = GossipMesh(
            nodes, link_model=LinkFaultModel(partitions=(partition,))
        )
        # While partitioned, node00 exchanges nothing with the other side.
        for round_number in range(1, 6):
            mesh.run_round(float(round_number))
        expected = central_digest(fleet_sessions, evidence_config)
        assert nodes[0].fused_map().digest() != expected
        rounds, _ = run_until_converged(mesh, max_rounds=64)
        assert rounds is not None
        for node in nodes:
            assert node.fused_map().digest() == expected


class TestValidation:
    def test_duplicate_node_ids_rejected(self, evidence_config):
        nodes = [
            FleetNode("same", config=evidence_config),
            FleetNode("same", config=evidence_config),
        ]
        with pytest.raises(ValueError):
            GossipMesh(nodes)

    def test_gossip_config_validation(self):
        with pytest.raises(ValueError):
            GossipConfig(round_interval=0.0)
        with pytest.raises(ValueError):
            GossipConfig(fanout=0)

    def test_evidence_config_must_match_across_the_fleet(self):
        # Not enforced by construction, but the configs are equal-by-value
        # dataclasses, so a simple guard in user code can compare them.
        assert EvidenceConfig() == EvidenceConfig()
