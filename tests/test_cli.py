"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.building == "Lab1"
        assert args.users == 5

    def test_generate_args(self):
        args = build_parser().parse_args(
            ["generate", "out.npz", "--building", "Gym", "--users", "2"]
        )
        assert args.output == "out.npz"
        assert args.building == "Gym"

    def test_unknown_building_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["demo", "--building", "Atlantis"])


class TestCommands:
    def test_buildings_lists_all(self, capsys):
        assert main(["buildings"]) == 0
        out = capsys.readouterr().out
        for name in ("Lab1", "Lab2", "Gym"):
            assert name in out

    def test_generate_and_reconstruct_roundtrip(self, tmp_path, capsys):
        path = tmp_path / "tiny.npz"
        code = main(
            [
                "generate", str(path), "--users", "2",
                "--sws-per-user", "2", "--srs-per-user", "1",
                "--seed", "5",
            ]
        )
        assert code == 0
        assert path.exists()
        code = main(["reconstruct", str(path), "--layout-samples", "200"])
        assert code == 0
        out = capsys.readouterr().out
        assert "hallway F-measure" in out


class TestFleetSim:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["fleet-sim"])
        assert args.building is None
        assert args.nodes == 4
        assert args.overlap == 0.25
        assert args.partition is None
        assert not args.local_maps

    def test_parser_repeatable_buildings_and_partitions(self):
        args = build_parser().parse_args(
            [
                "fleet-sim", "--building", "Lab1", "--building", "Office",
                "--partition", "2:6:0,1|2,3", "--partition", "8:9:0|1",
                "--nodes", "4",
            ]
        )
        assert args.building == ["Lab1", "Office"]
        assert args.partition == ["2:6:0,1|2,3", "8:9:0|1"]

    def test_partition_spec_parsing(self):
        from repro.cli import _parse_partition

        partition = _parse_partition("2:6:0,1|2,3", n_nodes=4)
        assert partition.start == 2.0 and partition.end == 6.0
        assert partition.groups == (
            ("node00", "node01"), ("node02", "node03")
        )

    def test_bad_partition_spec_exits_2(self, capsys):
        code = main(
            ["fleet-sim", "--nodes", "2", "--partition", "0:1:0|7"]
        )
        assert code == 2
        assert "fleet-sim" in capsys.readouterr().err

    def test_small_run_converges_and_writes_json(self, tmp_path, capsys):
        out = tmp_path / "fleet.json"
        code = main(
            [
                "fleet-sim", "--building", "Lab1", "--nodes", "2",
                "--users", "2", "--max-rounds", "32",
                "--json", str(out),
            ]
        )
        assert code == 0
        assert "converged in" in capsys.readouterr().out
        assert out.exists()
        import json

        report = json.loads(out.read_text())
        assert report["converged"] is True
