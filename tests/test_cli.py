"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.building == "Lab1"
        assert args.users == 5

    def test_generate_args(self):
        args = build_parser().parse_args(
            ["generate", "out.npz", "--building", "Gym", "--users", "2"]
        )
        assert args.output == "out.npz"
        assert args.building == "Gym"

    def test_unknown_building_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["demo", "--building", "Atlantis"])


class TestCommands:
    def test_buildings_lists_all(self, capsys):
        assert main(["buildings"]) == 0
        out = capsys.readouterr().out
        for name in ("Lab1", "Lab2", "Gym"):
            assert name in out

    def test_generate_and_reconstruct_roundtrip(self, tmp_path, capsys):
        path = tmp_path / "tiny.npz"
        code = main(
            [
                "generate", str(path), "--users", "2",
                "--sws-per-user", "2", "--srs-per-user", "1",
                "--seed", "5",
            ]
        )
        assert code == 0
        assert path.exists()
        code = main(["reconstruct", str(path), "--layout-samples", "200"])
        assert code == 0
        out = capsys.readouterr().out
        assert "hallway F-measure" in out
