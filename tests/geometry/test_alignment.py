"""Tests for the skeleton-to-ground-truth alignment search."""

import numpy as np
import pytest

from repro.geometry.alignment import _rotate_mask, _shift_mask, align_masks


def l_shape() -> np.ndarray:
    mask = np.zeros((40, 40), dtype=bool)
    mask[5:10, 5:30] = True  # horizontal bar
    mask[5:30, 5:10] = True  # vertical bar
    return mask


class TestShiftRotate:
    def test_shift_moves_content(self):
        m = np.zeros((10, 10), dtype=bool)
        m[2, 3] = True
        s = _shift_mask(m, 4, -1)
        assert s[6, 2]
        assert s.sum() == 1

    def test_shift_drops_out_of_frame(self):
        m = np.zeros((5, 5), dtype=bool)
        m[4, 4] = True
        s = _shift_mask(m, 3, 3)
        assert s.sum() == 0

    def test_rotate_identity(self):
        m = l_shape()
        assert np.array_equal(_rotate_mask(m, 0), m)
        assert np.array_equal(_rotate_mask(m, 360), m)

    def test_rotate_90_preserves_count_roughly(self):
        m = l_shape()
        r = _rotate_mask(m, 90)
        assert r.sum() == pytest.approx(m.sum(), rel=0.05)


class TestAlignMasks:
    def test_identical_masks_score_one(self):
        m = l_shape()
        result = align_masks(m, m)
        assert result.f_measure == pytest.approx(1.0)
        assert result.precision == pytest.approx(1.0)
        assert result.recall == pytest.approx(1.0)

    def test_translated_mask_recovered(self):
        truth = l_shape()
        moved = _shift_mask(truth, 3, -4)
        result = align_masks(moved, truth)
        assert result.f_measure > 0.95

    def test_rotated_mask_recovered(self):
        truth = l_shape()
        rotated = _rotate_mask(truth, 90)
        result = align_masks(rotated, truth)
        assert result.f_measure > 0.9
        assert result.rotation_deg in (90.0, 270.0)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            align_masks(np.zeros((4, 4), bool), np.zeros((5, 5), bool))

    def test_partial_overlap_scores_between(self):
        truth = l_shape()
        half = truth.copy()
        half[:, 20:] = False
        result = align_masks(half, truth)
        assert 0.2 < result.f_measure < 1.0
        assert result.precision > result.recall  # generated under-covers
