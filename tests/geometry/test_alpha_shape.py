"""Tests for alpha-shape boundary extraction."""

import numpy as np
import pytest

from repro.geometry.alpha_shape import alpha_shape_edges, alpha_shape_mask
from repro.geometry.primitives import BoundingBox


def dense_square(n: int = 12) -> np.ndarray:
    xs, ys = np.meshgrid(np.linspace(0, 4, n), np.linspace(0, 4, n))
    return np.stack([xs.ravel(), ys.ravel()], axis=1)


BOUNDS = BoundingBox(-0.5, -0.5, 4.5, 4.5)


class TestAlphaShapeMask:
    def test_square_recovered(self):
        mask = alpha_shape_mask(dense_square(), alpha=1.0, bounds=BOUNDS, cell_size=0.1)
        area = mask.sum() * 0.01
        assert area == pytest.approx(16.0, rel=0.08)

    def test_tiny_alpha_keeps_little(self):
        # 1/alpha smaller than the point spacing's circumradii kills all
        # triangles; the fallback marks just the input points.
        points = dense_square(6)
        mask = alpha_shape_mask(points, alpha=50.0, bounds=BOUNDS, cell_size=0.1)
        assert mask.sum() <= len(points)

    def test_two_clusters_stay_separate(self):
        a = dense_square(6)
        b = dense_square(6) + np.array([20.0, 0.0])
        points = np.vstack([a, b])
        bounds = BoundingBox(-1, -1, 25, 5)
        mask = alpha_shape_mask(points, alpha=0.8, bounds=bounds, cell_size=0.25)
        # The gap between clusters (x in [5, 19]) must stay empty.
        gap_cols = slice(int(6 / 0.25), int(18 / 0.25))
        assert mask[:, gap_cols].sum() == 0

    def test_degenerate_collinear_points(self):
        points = np.array([[0.0, 0.0], [1.0, 0.0], [2.0, 0.0], [3.0, 0.0]])
        mask = alpha_shape_mask(points, alpha=1.0, bounds=BOUNDS, cell_size=0.5)
        # Falls back to marking input points rather than crashing.
        assert mask.sum() >= 1

    def test_requires_positive_alpha(self):
        with pytest.raises(ValueError):
            alpha_shape_mask(dense_square(), alpha=0.0, bounds=BOUNDS, cell_size=0.1)


class TestAlphaShapeEdges:
    def test_boundary_edge_count_square(self):
        edges = alpha_shape_edges(dense_square(), alpha=1.0)
        assert len(edges) > 0
        # All boundary edges of a filled square lie on its perimeter.
        for seg in edges:
            for p in (seg.a, seg.b):
                on_perimeter = (
                    abs(p.x) < 1e-9
                    or abs(p.x - 4.0) < 1e-9
                    or abs(p.y) < 1e-9
                    or abs(p.y - 4.0) < 1e-9
                )
                assert on_perimeter

    def test_total_boundary_length(self):
        edges = alpha_shape_edges(dense_square(), alpha=1.0)
        total = sum(e.length() for e in edges)
        assert total == pytest.approx(16.0, rel=0.1)

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            alpha_shape_edges(np.array([[0.0, 0.0], [1.0, 1.0]]), alpha=1.0)
