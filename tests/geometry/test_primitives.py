"""Unit and property tests for the geometric primitives."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.primitives import (
    BoundingBox,
    Point,
    Polygon,
    Segment,
    Transform2D,
    angle_difference,
    wrap_angle,
)

finite = st.floats(-1e3, 1e3, allow_nan=False, allow_infinity=False)
angles = st.floats(-10.0, 10.0, allow_nan=False)


class TestAngles:
    def test_wrap_angle_identity_in_range(self):
        assert wrap_angle(1.0) == pytest.approx(1.0)
        assert wrap_angle(-3.0) == pytest.approx(-3.0)

    def test_wrap_angle_wraps_past_pi(self):
        assert wrap_angle(math.pi + 0.5) == pytest.approx(-math.pi + 0.5)

    def test_wrap_angle_pi_maps_to_pi(self):
        assert wrap_angle(math.pi) == pytest.approx(math.pi)
        assert wrap_angle(-math.pi) == pytest.approx(math.pi)

    @given(angles)
    def test_wrap_angle_range(self, theta):
        wrapped = wrap_angle(theta)
        assert -math.pi < wrapped <= math.pi + 1e-12

    @given(angles)
    def test_wrap_preserves_direction(self, theta):
        wrapped = wrap_angle(theta)
        assert math.cos(wrapped) == pytest.approx(math.cos(theta), abs=1e-9)
        assert math.sin(wrapped) == pytest.approx(math.sin(theta), abs=1e-9)

    def test_angle_difference_signed(self):
        assert angle_difference(0.2, 0.1) == pytest.approx(0.1)
        assert angle_difference(0.1, 0.2) == pytest.approx(-0.1)

    def test_angle_difference_across_wrap(self):
        assert angle_difference(math.pi - 0.05, -math.pi + 0.05) == pytest.approx(
            -0.1
        )


class TestPoint:
    def test_arithmetic(self):
        p = Point(1.0, 2.0) + Point(3.0, -1.0)
        assert (p.x, p.y) == (4.0, 1.0)
        q = Point(1.0, 2.0) - Point(3.0, -1.0)
        assert (q.x, q.y) == (-2.0, 3.0)
        r = 2.0 * Point(1.0, 2.0)
        assert (r.x, r.y) == (2.0, 4.0)

    def test_dot_and_cross(self):
        assert Point(1, 0).dot(Point(0, 1)) == 0.0
        assert Point(1, 0).cross(Point(0, 1)) == 1.0
        assert Point(0, 1).cross(Point(1, 0)) == -1.0

    def test_norm_distance(self):
        assert Point(3, 4).norm() == 5.0
        assert Point(0, 0).distance_to(Point(3, 4)) == 5.0

    def test_normalized_raises_on_zero(self):
        with pytest.raises(ValueError):
            Point(0.0, 0.0).normalized()

    def test_rotated_quarter_turn(self):
        p = Point(1.0, 0.0).rotated(math.pi / 2.0)
        assert p.x == pytest.approx(0.0, abs=1e-12)
        assert p.y == pytest.approx(1.0)

    def test_heading(self):
        assert Point(0.0, 1.0).heading() == pytest.approx(math.pi / 2.0)

    def test_from_polar_roundtrip(self):
        p = Point.from_polar(2.0, 0.7)
        assert p.norm() == pytest.approx(2.0)
        assert p.heading() == pytest.approx(0.7)

    @given(finite, finite, angles)
    def test_rotation_preserves_norm(self, x, y, theta):
        p = Point(x, y)
        assert p.rotated(theta).norm() == pytest.approx(p.norm(), abs=1e-6)


class TestSegment:
    def test_length_direction(self):
        s = Segment(Point(0, 0), Point(3, 4))
        assert s.length() == 5.0
        d = s.direction()
        assert (d.x, d.y) == pytest.approx((0.6, 0.8))

    def test_midpoint_and_point_at(self):
        s = Segment(Point(0, 0), Point(2, 2))
        assert tuple(s.midpoint()) == (1.0, 1.0)
        assert tuple(s.point_at(0.25)) == (0.5, 0.5)

    def test_distance_to_point(self):
        s = Segment(Point(0, 0), Point(10, 0))
        assert s.distance_to_point(Point(5, 3)) == 3.0
        # Beyond the endpoint the distance is to the endpoint.
        assert s.distance_to_point(Point(13, 4)) == 5.0

    def test_intersects_crossing(self):
        a = Segment(Point(0, 0), Point(2, 2))
        b = Segment(Point(0, 2), Point(2, 0))
        assert a.intersects(b)
        p = a.intersection(b)
        assert (p.x, p.y) == pytest.approx((1.0, 1.0))

    def test_disjoint_segments(self):
        a = Segment(Point(0, 0), Point(1, 0))
        b = Segment(Point(0, 1), Point(1, 1))
        assert not a.intersects(b)
        assert a.intersection(b) is None

    def test_parallel_touching_endpoint(self):
        a = Segment(Point(0, 0), Point(1, 0))
        b = Segment(Point(1, 0), Point(2, 0))
        assert a.intersects(b)

    def test_degenerate_distance(self):
        s = Segment(Point(1, 1), Point(1, 1))
        assert s.distance_to_point(Point(4, 5)) == 5.0


class TestBoundingBox:
    def test_validation(self):
        with pytest.raises(ValueError):
            BoundingBox(1, 0, 0, 1)

    def test_dimensions(self):
        bb = BoundingBox(0, 0, 4, 2)
        assert bb.width == 4 and bb.height == 2
        assert bb.area() == 8
        assert tuple(bb.center) == (2.0, 1.0)

    def test_contains(self):
        bb = BoundingBox(0, 0, 1, 1)
        assert bb.contains(Point(0.5, 0.5))
        assert bb.contains(Point(0, 0))  # boundary
        assert not bb.contains(Point(1.5, 0.5))

    def test_expand_union(self):
        bb = BoundingBox(0, 0, 1, 1).expanded(1)
        assert bb.min_x == -1 and bb.max_y == 2
        u = BoundingBox(0, 0, 1, 1).union(BoundingBox(2, -1, 3, 0.5))
        assert (u.min_x, u.min_y, u.max_x, u.max_y) == (0, -1, 3, 1)

    def test_of_points(self):
        bb = BoundingBox.of_points([Point(1, 5), Point(-2, 3)])
        assert (bb.min_x, bb.min_y, bb.max_x, bb.max_y) == (-2, 3, 1, 5)
        with pytest.raises(ValueError):
            BoundingBox.of_points([])


class TestPolygon:
    def test_requires_three_vertices(self):
        with pytest.raises(ValueError):
            Polygon([Point(0, 0), Point(1, 1)])

    def test_rectangle_area_perimeter(self):
        rect = Polygon.rectangle(Point(0, 0), 4, 2)
        assert rect.area() == pytest.approx(8.0)
        assert rect.perimeter() == pytest.approx(12.0)

    def test_signed_area_winding(self):
        ccw = Polygon([Point(0, 0), Point(1, 0), Point(1, 1)])
        cw = Polygon([Point(0, 0), Point(1, 1), Point(1, 0)])
        assert ccw.signed_area() > 0
        assert cw.signed_area() < 0
        assert ccw.area() == cw.area()

    def test_centroid_of_rectangle(self):
        rect = Polygon.rectangle(Point(3, -2), 2, 2)
        c = rect.centroid()
        assert (c.x, c.y) == pytest.approx((3.0, -2.0))

    def test_contains(self):
        rect = Polygon.rectangle(Point(0, 0), 2, 2)
        assert rect.contains(Point(0.5, 0.5))
        assert not rect.contains(Point(2, 2))

    def test_translate_rotate_scale_preserve_area(self):
        rect = Polygon.rectangle(Point(0, 0), 3, 2)
        assert rect.translated(Point(5, 5)).area() == pytest.approx(6.0)
        assert rect.rotated(0.7).area() == pytest.approx(6.0)
        assert rect.scaled(2.0).area() == pytest.approx(24.0)

    def test_rotated_rectangle_bounding_box_grows(self):
        rect = Polygon.rectangle(Point(0, 0), 2, 1, theta=math.pi / 4)
        bb = rect.bounding_box()
        assert bb.width > 2 * math.cos(math.pi / 4)

    @given(st.floats(0.5, 50), st.floats(0.5, 50), angles)
    @settings(max_examples=30)
    def test_rectangle_area_invariant_under_rotation(self, w, h, theta):
        rect = Polygon.rectangle(Point(0, 0), w, h, theta=theta)
        assert rect.area() == pytest.approx(w * h, rel=1e-9)


class TestTransform2D:
    def test_identity(self):
        t = Transform2D.identity()
        p = t.apply(Point(3, 4))
        assert (p.x, p.y) == (3, 4)

    def test_apply_rotation_translation(self):
        t = Transform2D(theta=math.pi / 2.0, tx=1.0, ty=0.0)
        p = t.apply(Point(1.0, 0.0))
        assert p.x == pytest.approx(1.0, abs=1e-12)
        assert p.y == pytest.approx(1.0)

    def test_apply_array_matches_apply(self):
        t = Transform2D(theta=0.3, tx=-2.0, ty=4.0)
        pts = np.array([[1.0, 2.0], [-3.0, 0.5]])
        moved = t.apply_array(pts)
        for row, src in zip(moved, pts):
            p = t.apply(Point(*src))
            assert row[0] == pytest.approx(p.x)
            assert row[1] == pytest.approx(p.y)

    @given(angles, finite, finite, finite, finite)
    @settings(max_examples=50)
    def test_inverse_roundtrip(self, theta, tx, ty, x, y):
        t = Transform2D(theta, tx, ty)
        p = Point(x, y)
        q = t.inverse().apply(t.apply(p))
        assert q.x == pytest.approx(x, abs=1e-6)
        assert q.y == pytest.approx(y, abs=1e-6)

    @given(angles, finite, finite, angles, finite, finite)
    @settings(max_examples=50)
    def test_compose_matches_sequential_application(
        self, t1, x1, y1, t2, x2, y2
    ):
        a = Transform2D(t1, x1, y1)
        b = Transform2D(t2, x2, y2)
        p = Point(0.5, -0.25)
        combined = a.compose(b).apply(p)
        sequential = a.apply(b.apply(p))
        assert combined.x == pytest.approx(sequential.x, abs=1e-6)
        assert combined.y == pytest.approx(sequential.y, abs=1e-6)
