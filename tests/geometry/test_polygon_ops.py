"""Tests for rasterization and mask-based polygon operations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.polygon_ops import (
    convex_hull,
    mask_centroid,
    mask_iou,
    mask_precision_recall,
    point_in_polygon,
    rasterize_polygon,
    rasterize_polygons,
)
from repro.geometry.primitives import BoundingBox, Point, Polygon


BOUNDS = BoundingBox(-1.0, -1.0, 6.0, 6.0)


class TestRasterize:
    def test_area_matches_polygon(self):
        rect = Polygon.rectangle(Point(2, 2), 3, 2)
        mask = rasterize_polygon(rect, BOUNDS, 0.05)
        assert mask.sum() * 0.05**2 == pytest.approx(6.0, rel=0.02)

    def test_row_zero_is_south(self):
        # A polygon hugging the southern edge must fill low row indices.
        rect = Polygon.rectangle(Point(2, -0.5), 2, 1)
        mask = rasterize_polygon(rect, BOUNDS, 0.1)
        rows = np.nonzero(mask)[0]
        assert rows.min() <= 2

    def test_invalid_cell_size(self):
        rect = Polygon.rectangle(Point(0, 0), 1, 1)
        with pytest.raises(ValueError):
            rasterize_polygon(rect, BOUNDS, 0.0)

    def test_triangle_half_area(self):
        tri = Polygon([Point(0, 0), Point(4, 0), Point(0, 4)])
        mask = rasterize_polygon(tri, BOUNDS, 0.05)
        assert mask.sum() * 0.05**2 == pytest.approx(8.0, rel=0.03)

    def test_union_rasterization(self):
        a = Polygon.rectangle(Point(1, 1), 2, 2)
        b = Polygon.rectangle(Point(4, 4), 2, 2)
        mask = rasterize_polygons([a, b], BOUNDS, 0.1)
        assert mask.sum() * 0.01 == pytest.approx(8.0, rel=0.05)

    def test_empty_polygon_list(self):
        mask = rasterize_polygons([], BOUNDS, 0.5)
        assert mask.sum() == 0

    def test_overlapping_union_not_double_counted(self):
        a = Polygon.rectangle(Point(2, 2), 2, 2)
        mask = rasterize_polygons([a, a], BOUNDS, 0.1)
        assert mask.sum() * 0.01 == pytest.approx(4.0, rel=0.05)


class TestMaskMetrics:
    def test_iou_identical(self):
        m = np.zeros((10, 10), dtype=bool)
        m[2:5, 3:7] = True
        assert mask_iou(m, m) == 1.0

    def test_iou_disjoint(self):
        a = np.zeros((10, 10), dtype=bool)
        b = np.zeros((10, 10), dtype=bool)
        a[0, 0] = True
        b[5, 5] = True
        assert mask_iou(a, b) == 0.0

    def test_iou_empty(self):
        a = np.zeros((4, 4), dtype=bool)
        assert mask_iou(a, a) == 0.0

    def test_iou_shape_mismatch(self):
        with pytest.raises(ValueError):
            mask_iou(np.zeros((2, 2), bool), np.zeros((3, 3), bool))

    def test_precision_recall_perfect(self):
        m = np.zeros((8, 8), dtype=bool)
        m[1:4, 1:4] = True
        p, r, f = mask_precision_recall(m, m)
        assert (p, r, f) == (1.0, 1.0, 1.0)

    def test_precision_recall_overgenerated(self):
        truth = np.zeros((10, 10), dtype=bool)
        truth[0:5, :] = True
        generated = np.ones((10, 10), dtype=bool)
        p, r, f = mask_precision_recall(generated, truth)
        assert p == pytest.approx(0.5)
        assert r == 1.0
        assert f == pytest.approx(2 * 0.5 / 1.5)

    def test_precision_recall_empty_generated(self):
        truth = np.ones((4, 4), dtype=bool)
        p, r, f = mask_precision_recall(np.zeros((4, 4), bool), truth)
        assert (p, r, f) == (0.0, 0.0, 0.0)

    def test_mask_centroid(self):
        m = np.zeros((10, 10), dtype=bool)
        m[4, 4] = True
        bounds = BoundingBox(0, 0, 10, 10)
        c = mask_centroid(m, bounds, 1.0)
        assert (c.x, c.y) == pytest.approx((4.5, 4.5))


class TestPointInPolygon:
    def test_inside_outside(self):
        rect = Polygon.rectangle(Point(0, 0), 2, 2)
        assert point_in_polygon(Point(0, 0), rect)
        assert not point_in_polygon(Point(3, 0), rect)

    def test_concave_polygon(self):
        # A "C" shape: the notch is outside.
        poly = Polygon(
            [
                Point(0, 0),
                Point(4, 0),
                Point(4, 1),
                Point(1, 1),
                Point(1, 3),
                Point(4, 3),
                Point(4, 4),
                Point(0, 4),
            ]
        )
        assert point_in_polygon(Point(0.5, 2.0), poly)
        assert not point_in_polygon(Point(2.5, 2.0), poly)


class TestConvexHull:
    def test_square_hull(self):
        pts = [Point(0, 0), Point(1, 0), Point(1, 1), Point(0, 1), Point(0.5, 0.5)]
        hull = convex_hull(pts)
        assert hull.area() == pytest.approx(1.0)
        assert len(hull) == 4

    def test_collinear_raises(self):
        with pytest.raises(ValueError):
            convex_hull([Point(0, 0), Point(1, 1), Point(2, 2)])

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            convex_hull([Point(0, 0), Point(1, 1)])

    @given(
        st.lists(
            st.tuples(st.floats(-10, 10), st.floats(-10, 10)),
            min_size=4,
            max_size=30,
            unique=True,
        )
    )
    @settings(max_examples=40)
    def test_hull_contains_all_points(self, coords):
        pts = [Point(x, y) for x, y in coords]
        try:
            hull = convex_hull(pts)
        except ValueError:
            return  # collinear draws are legitimately rejected
        for p in pts:
            inside = point_in_polygon(p, hull)
            near_boundary = min(
                e.distance_to_point(p) for e in hull.edges()
            ) < 1e-6
            assert inside or near_boundary
