"""Fig. 8a + 8b: room area error and aspect-ratio error CDFs.

Paper: visual method 9.8% mean area error vs 22.5% for inertial data;
6.5% vs 15.1% mean aspect-ratio error ("our method delivers doubled
performances"). The shape to hold: the visual CDF dominates the inertial
CDF, with roughly a 2x gap in the means.
"""

import numpy as np

from repro.baselines.inertial_only import InertialRoomEstimator
from repro.baselines.jigsaw import JigsawRoomEstimator
from repro.eval.cdf import mean_of
from repro.eval.report import render_cdf_series
from repro.eval.room_metrics import room_area_error, room_aspect_ratio_error

from benchmarks._shared import tee_print as print  # noqa: A004
from benchmarks._shared import (
    BUILDINGS,
    plan_for,
    print_banner,
    reconstruction_for,
)


def run_fig8ab():
    visual_area, visual_ar = [], []
    inertial_area, inertial_ar = [], []
    jigsaw_area, jigsaw_ar = [], []
    rng = np.random.default_rng(47)
    for building in BUILDINGS:
        plan = plan_for(building)
        result = reconstruction_for(building)
        inertial = InertialRoomEstimator(rng=rng)
        jigsaw = JigsawRoomEstimator(rng=rng)
        for pano, layout in zip(result.panoramas, result.layouts):
            if pano.room_hint is None:
                continue
            room = plan.room_by_name(pano.room_hint)
            visual_area.append(room_area_error(layout, room))
            visual_ar.append(room_aspect_ratio_error(layout, room))
            in_layout = inertial.estimate(room)
            inertial_area.append(room_area_error(in_layout, room))
            inertial_ar.append(room_aspect_ratio_error(in_layout, room))
            jig_layout = jigsaw.estimate(room)
            jigsaw_area.append(room_area_error(jig_layout, room))
            jigsaw_ar.append(room_aspect_ratio_error(jig_layout, room))
    return {
        "area": {"visual": visual_area, "inertial": inertial_area,
                 "jigsaw": jigsaw_area},
        "aspect_ratio": {"visual": visual_ar, "inertial": inertial_ar,
                         "jigsaw": jigsaw_ar},
    }


def test_fig8ab_room_area_and_aspect_ratio(benchmark):
    series = benchmark.pedantic(run_fig8ab, rounds=1, iterations=1)

    print_banner("Fig. 8a: room area error CDF (paper: 9.8% vs 22.5%)")
    print(
        render_cdf_series(
            "Room area error",
            series["area"],
            thresholds=[0.05, 0.1, 0.2, 0.3, 0.5],
        )
    )
    print_banner("Fig. 8b: room aspect ratio error CDF (paper: 6.5% vs 15.1%)")
    print(
        render_cdf_series(
            "Room aspect ratio error",
            series["aspect_ratio"],
            thresholds=[0.05, 0.1, 0.2, 0.3],
        )
    )

    mean_visual_area = mean_of(series["area"]["visual"])
    mean_inertial_area = mean_of(series["area"]["inertial"])
    mean_visual_ar = mean_of(series["aspect_ratio"]["visual"])
    mean_inertial_ar = mean_of(series["aspect_ratio"]["inertial"])
    print(
        f"\nmeans: area visual {mean_visual_area:.1%} vs inertial "
        f"{mean_inertial_area:.1%}; AR visual {mean_visual_ar:.1%} vs "
        f"inertial {mean_inertial_ar:.1%}"
    )

    assert len(series["area"]["visual"]) >= 8, "too few rooms reconstructed"
    # The paper's headline: visual roughly halves the inertial errors.
    assert mean_visual_area < mean_inertial_area
    assert mean_visual_ar < mean_inertial_ar
    assert mean_visual_area < 0.30
    assert mean_visual_ar < 0.25
