"""Fig. 6: the reconstructed floor plan next to the ground truth (Lab1).

The paper's figure is visual; we regenerate it as ASCII art plus the
summary statistics a reader would extract from it (corridor covered,
rooms placed, their mean placement error).
"""

import numpy as np

from repro.eval.hallway_metrics import evaluate_hallway_shape
from repro.eval.report import render_table
from repro.eval.room_metrics import evaluate_rooms
from repro.geometry.polygon_ops import rasterize_polygons

from benchmarks._shared import tee_print as print  # noqa: A004
from benchmarks._shared import plan_for, print_banner, reconstruction_for


def render_truth_ascii(plan, cell=1.0, max_width=90):
    mask = rasterize_polygons(plan.hallway_polygons(), plan.bounds, cell)
    canvas = np.full(mask.shape, " ", dtype="<U1")
    canvas[mask] = "#"
    for i, room in enumerate(plan.rooms):
        bb = room.bounding_box()
        letter = chr(ord("A") + i % 26)
        c0 = int((bb.min_x - plan.bounds.min_x) / cell)
        c1 = int((bb.max_x - plan.bounds.min_x) / cell)
        r0 = int((bb.min_y - plan.bounds.min_y) / cell)
        r1 = int((bb.max_y - plan.bounds.min_y) / cell)
        for r in range(max(0, r0), min(canvas.shape[0], r1 + 1)):
            for c in range(max(0, c0), min(canvas.shape[1], c1 + 1)):
                if r in (r0, r1) or c in (c0, c1):
                    canvas[r, c] = letter
    return "\n".join("".join(row) for row in canvas[::-1])


def run_fig6():
    return reconstruction_for("Lab1")


def test_fig6_reconstructed_floorplan(benchmark):
    result = benchmark.pedantic(run_fig6, rounds=1, iterations=1)
    plan = plan_for("Lab1")

    print_banner("Fig. 6: ground truth vs reconstructed floor plan (Lab1)")
    print("Ground truth ('#' hallway, letters rooms):\n")
    print(render_truth_ascii(plan))
    print("\nCrowdMap reconstruction:\n")
    print(result.floorplan.render_ascii(max_width=90))

    hallway = evaluate_hallway_shape(result.skeleton, plan)
    rooms = evaluate_rooms(
        result.layouts, [p.room_hint for p in result.panoramas], plan,
        result.floorplan,
    )
    print(
        render_table(
            "Fig. 6 summary",
            ["metric", "value"],
            [
                ["hallway F-measure", f"{hallway.f_measure:.1%}"],
                ["rooms reconstructed", len(result.layouts)],
                ["mean room location error", f"{rooms.mean_location_error():.2f} m"],
            ],
        )
    )
    assert hallway.f_measure > 0.5
    assert len(result.layouts) >= 3
