"""Ablations of CrowdMap's design choices (DESIGN.md's ablation index).

Not a paper table — these quantify the load-bearing design decisions:

1. HOG key-frame thinning: how much work selection saves vs keeping all
   frames, at equal downstream behaviour;
2. the hierarchical S1 pre-filter: how many SURF comparisons the cheap
   rung absorbs;
3. LCSS epsilon sensitivity: aggregation accuracy across the distance
   threshold;
4. occupancy-grid cell size: hallway F-measure across grid resolutions.
"""


from repro.core.aggregation import SequenceAggregator, calibrate_drift
from repro.core.comparison import KeyframeComparator
from repro.core.keyframes import select_keyframes
from repro.core.pipeline import CrowdMapPipeline, _trajectory_bounds
from repro.core.skeleton import reconstruct_skeleton
from repro.eval.hallway_metrics import evaluate_hallway_shape
from repro.eval.matching_accuracy import evaluate_matching_accuracy
from repro.eval.report import render_table

from benchmarks._shared import tee_print as print  # noqa: A004
from benchmarks._shared import (
    dataset_for,
    experiment_config,
    plan_for,
    print_banner,
)


def test_ablation_keyframe_selection(benchmark):
    """HOG thinning: frames kept and anchor-matching cost with/without."""

    def run():
        config = experiment_config()
        sessions = dataset_for("Lab1").sws_sessions()[:6]
        with_selection = [
            len(select_keyframes(s.frames, config)) for s in sessions
        ]
        all_frames = [s.n_frames for s in sessions]
        return with_selection, all_frames

    kept, total = benchmark.pedantic(run, rounds=1, iterations=1)
    print_banner("Ablation: HOG key-frame selection")
    reduction = 1.0 - sum(kept) / sum(total)
    print(
        render_table(
            "Frames kept per session",
            ["session", "all frames", "key-frames", "reduction"],
            [
                [i, t, k, f"{1 - k / t:.0%}"]
                for i, (k, t) in enumerate(zip(kept, total))
            ],
        )
    )
    print(f"\noverall reduction: {reduction:.0%} "
          f"(pairwise matching cost scales with its square: "
          f"{1 - (1 - reduction) ** 2:.0%} saved)")
    assert reduction > 0.3, "selection should remove a large frame share"


def test_ablation_s1_prefilter(benchmark):
    """The hierarchical S1 rung absorbs most comparisons before SURF."""

    def run():
        config = experiment_config()
        sessions = dataset_for("Lab1").sws_sessions()[:8]
        pipe = CrowdMapPipeline(config)
        anchored = [pipe.anchor_session(s) for s in sessions]

        gated = KeyframeComparator(config)
        SequenceAggregator(config, gated).aggregate(anchored)

        no_prefilter = KeyframeComparator(
            config.with_overrides(s1_threshold=0.0)
        )
        SequenceAggregator(
            config.with_overrides(s1_threshold=0.0), no_prefilter
        ).aggregate(anchored)
        return gated, no_prefilter

    gated, no_prefilter = benchmark.pedantic(run, rounds=1, iterations=1)
    print_banner("Ablation: hierarchical S1 pre-filter")
    print(
        render_table(
            "SURF comparisons run",
            ["configuration", "heading rejects", "S1 rejects", "SURF runs"],
            [
                ["full hierarchy", gated.n_heading_rejects,
                 gated.n_s1_rejects, gated.n_surf_comparisons],
                ["no S1 filter", no_prefilter.n_heading_rejects,
                 no_prefilter.n_s1_rejects, no_prefilter.n_surf_comparisons],
            ],
        )
    )
    assert gated.n_surf_comparisons < no_prefilter.n_surf_comparisons


def test_ablation_lcss_epsilon(benchmark):
    """Aggregation accuracy across the LCSS distance threshold epsilon."""

    def run():
        config = experiment_config()
        sessions = dataset_for("Lab1").sws_sessions()[:10]
        pipe = CrowdMapPipeline(config)
        anchored = [pipe.anchor_session(s) for s in sessions]
        rows = {}
        for epsilon in (0.5, 1.5, 3.0, 6.0):
            cfg = config.with_overrides(lcss_epsilon=epsilon)
            result = SequenceAggregator(cfg, pipe.comparator).aggregate(anchored)
            report = evaluate_matching_accuracy(sessions, result)
            rows[epsilon] = report
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_banner("Ablation: LCSS epsilon sensitivity")
    print(
        render_table(
            "Matching accuracy vs epsilon",
            ["epsilon (m)", "accuracy", "FPs", "FNs"],
            [
                [eps, f"{r.accuracy:.1%}", r.false_positives, r.false_negatives]
                for eps, r in sorted(rows.items())
            ],
        )
    )
    default_eps = experiment_config().lcss_epsilon
    assert rows[default_eps].accuracy >= max(
        r.accuracy for r in rows.values()
    ) - 0.15, "default epsilon should be near the accuracy plateau"


def test_ablation_grid_cell_size(benchmark):
    """Hallway F-measure across occupancy-grid resolutions."""

    def run():
        config = experiment_config()
        plan = plan_for("Lab1")
        sessions = dataset_for("Lab1").sws_sessions()
        pipe = CrowdMapPipeline(config)
        anchored = [pipe.anchor_session(s) for s in sessions]
        aggregation = pipe.aggregator.aggregate(anchored)
        trajectories = calibrate_drift(anchored, aggregation)
        bounds = _trajectory_bounds(aggregation, margin=2.0)
        scores = {}
        for cell in (0.25, 0.5, 1.0, 2.0):
            cfg = config.with_overrides(grid_cell_size=cell)
            skeleton = reconstruct_skeleton(trajectories, bounds, cfg)
            scores[cell] = evaluate_hallway_shape(skeleton, plan)
        return scores

    scores = benchmark.pedantic(run, rounds=1, iterations=1)
    print_banner("Ablation: occupancy grid cell size")
    print(
        render_table(
            "Hallway shape vs cell size",
            ["cell size (m)", "precision", "recall", "F-measure"],
            [
                [cell, f"{s.precision:.1%}", f"{s.recall:.1%}",
                 f"{s.f_measure:.1%}"]
                for cell, s in sorted(scores.items())
            ],
        )
    )
    default = scores[0.5]
    best_f = max(s.f_measure for s in scores.values())
    # Coarse grids buy recall by over-covering (precision collapses); the
    # default must stay near the best F *without* giving up precision.
    assert default.f_measure >= best_f - 0.12
    assert default.precision >= max(s.precision for s in scores.values()) - 0.1
