"""Table I: hallway shape precision / recall / F-measure per building.

Paper reports (Lab1 / Lab2 / Gym): P 87.5 / 92.2 / 84.3 %,
R 93.3 / 95.9 / 88.8 %, F 90.3 / 94.0 / 86.5 %. The shape to hold: all
three buildings score high (F well above 0.5), and recall tends to run at
or above precision because the occupancy grid over-covers the corridor.
"""

from repro.eval.hallway_metrics import evaluate_hallway_shape
from repro.eval.report import render_table

from benchmarks._shared import tee_print as print  # noqa: A004
from benchmarks._shared import (
    BUILDINGS,
    plan_for,
    print_banner,
    reconstruction_for,
)

PAPER_ROWS = {
    "Lab1": (0.875, 0.933, 0.903),
    "Lab2": (0.922, 0.959, 0.940),
    "Gym": (0.843, 0.888, 0.865),
}


def run_table1():
    from repro.eval.coverage import hallway_coverage

    from benchmarks._shared import dataset_for

    scores = {}
    coverage = {}
    for building in BUILDINGS:
        result = reconstruction_for(building)
        scores[building] = evaluate_hallway_shape(
            result.skeleton, plan_for(building)
        )
        coverage[building] = hallway_coverage(
            dataset_for(building).sessions, plan_for(building), reach_m=1.25
        )
    return scores, coverage


def test_table1_hallway_shape(benchmark):
    scores, coverage = benchmark.pedantic(run_table1, rounds=1, iterations=1)

    print_banner("Table I: hallway shape evaluation")
    rows = []
    for building in BUILDINGS:
        s = scores[building]
        paper = PAPER_ROWS[building]
        rows.append(
            [
                building,
                f"{s.precision:.1%}",
                f"{s.recall:.1%}",
                f"{s.f_measure:.1%}",
                f"{coverage[building]:.0%}",
                f"{paper[0]:.1%} / {paper[1]:.1%} / {paper[2]:.1%}",
            ]
        )
    print(
        render_table(
            "Hallway shape (measured vs paper P/R/F)",
            ["building", "precision", "recall", "F-measure",
             "crowd coverage", "paper P/R/F"],
            rows,
        )
    )
    print()
    print("(recall is bounded above by the crowd coverage column: the")
    print(" reconstruction cannot recall corridor the crowd never walked)")

    for building, s in scores.items():
        assert s.f_measure > 0.55, (
            f"{building} hallway F collapsed: {s.f_measure:.2f}"
        )
        assert s.precision > 0.5
        assert s.recall > 0.45
    # Shape check: where the crowd's coverage is near-complete (the lab
    # loop), the occupancy grid over-covers and recall leads precision —
    # the paper's stated property. Coverage-limited buildings (the gym
    # hall) are recall-bounded by what the crowd walked instead.
    lab1 = scores["Lab1"]
    assert lab1.recall > lab1.precision - 0.05
