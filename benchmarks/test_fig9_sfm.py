"""Fig. 9: Structure-from-Motion breaks down in featureless indoor scenes.

The paper shows SfM-inferred camera positions diverging from ground truth
inside a lab room, arguing SfM needs trained photographers. We run a
SURF-based visual-odometry SfM front end over rendered spin sequences at
decreasing wall texture richness: as walls go featureless, the fraction of
registrable frame pairs collapses and the recovered camera track's error
explodes — while CrowdMap's gyro-anchored track stays accurate (that is
the comparison the figure makes).
"""

import math

import numpy as np

from repro.baselines.sfm import SfmSimulator
from repro.eval.report import render_table
from repro.world.buildings import build_lab1
from repro.world.renderer import Camera, Renderer
from repro.world.walker import Walker, WalkerProfile

from benchmarks._shared import tee_print as print  # noqa: A004
from benchmarks._shared import print_banner

RICHNESS_LEVELS = (1.0, 0.5, 0.15, 0.0)


def run_fig9():
    results = {}
    for richness in RICHNESS_LEVELS:
        plan = build_lab1(wall_richness=richness)
        walker = Walker(
            plan,
            WalkerProfile(user_id="sfm"),
            rng=np.random.default_rng(5),
            renderer=Renderer(plan, Camera()),
        )
        room = plan.rooms[0]
        session = walker.perform_srs(room.center, room_name=room.name)
        frames = session.frames
        truth = [session.ground_truth.heading_at(f.timestamp) for f in frames]
        sfm_track = SfmSimulator().track(frames, truth)
        # CrowdMap's track: the device's fused inertial headings.
        device = np.unwrap([f.heading for f in frames])
        device_rmse = float(
            np.sqrt(np.mean((device - np.unwrap(truth)) ** 2))
        )
        results[richness] = (sfm_track, device_rmse)
    return results


def test_fig9_sfm_vs_featurelessness(benchmark):
    results = benchmark.pedantic(run_fig9, rounds=1, iterations=1)

    print_banner("Fig. 9: SfM camera tracking vs wall featurelessness")
    rows = []
    for richness in RICHNESS_LEVELS:
        track, device_rmse = results[richness]
        rows.append(
            [
                f"{richness:.2f}",
                f"{track.registration_rate:.0%}",
                f"{math.degrees(track.heading_rmse()):.1f} deg",
                f"{math.degrees(track.max_heading_error()):.1f} deg",
                f"{math.degrees(device_rmse):.1f} deg",
            ]
        )
    print(
        render_table(
            "SfM visual odometry vs CrowdMap's inertial track",
            ["wall richness", "SfM registered", "SfM RMSE",
             "SfM max err", "inertial RMSE"],
            rows,
        )
    )

    rich_track, rich_device = results[1.0]
    bare_track, _ = results[0.0]
    # Rich scenes track fine; featureless scenes lose registration and
    # accuracy — the paper's claim.
    assert rich_track.registration_rate > 0.6
    assert bare_track.registration_rate < rich_track.registration_rate
    assert bare_track.heading_rmse() > rich_track.heading_rmse()
    # CrowdMap's inertially anchored headings stay usable regardless.
    assert rich_device < math.radians(15.0)
