"""Ablations of the registration machinery added on top of the paper.

Quantifies the three additions DESIGN.md documents around trajectory
registration: anchor-based drift calibration, the geo-prior component
correction inside aggregation, and the inertial heading gate in the
hierarchical comparator.
"""

from repro.core.aggregation import SequenceAggregator, calibrate_drift
from repro.core.comparison import KeyframeComparator
from repro.core.pipeline import CrowdMapPipeline, _trajectory_bounds
from repro.core.skeleton import reconstruct_skeleton
from repro.eval.hallway_metrics import evaluate_hallway_shape
from repro.eval.report import render_table

from benchmarks._shared import tee_print as print  # noqa: A004
from benchmarks._shared import (
    dataset_for,
    experiment_config,
    plan_for,
    print_banner,
)


def test_ablation_drift_calibration(benchmark):
    """Hallway quality with drift calibration on vs off."""

    def run():
        config = experiment_config()
        plan = plan_for("Lab1")
        sessions = dataset_for("Lab1").sws_sessions()
        pipe = CrowdMapPipeline(config)
        anchored = [pipe.anchor_session(s) for s in sessions]
        aggregation = pipe.aggregator.aggregate(anchored)
        bounds = _trajectory_bounds(aggregation, margin=2.0)
        scores = {}
        for iterations in (0, 1, 2, 4):
            if iterations > 0:
                trajectories = calibrate_drift(
                    anchored, aggregation, iterations=iterations
                )
            else:
                trajectories = aggregation.trajectories
            skeleton = reconstruct_skeleton(trajectories, bounds, config)
            scores[iterations] = evaluate_hallway_shape(skeleton, plan)
        return scores

    scores = benchmark.pedantic(run, rounds=1, iterations=1)
    print_banner("Ablation: anchor-based drift calibration")
    print(
        render_table(
            "Hallway shape vs calibration iterations",
            ["iterations", "precision", "recall", "F-measure"],
            [
                [k, f"{s.precision:.1%}", f"{s.recall:.1%}",
                 f"{s.f_measure:.1%}"]
                for k, s in sorted(scores.items())
            ],
        )
    )
    best_f = max(s.f_measure for s in scores.values())
    assert scores[2].f_measure >= best_f - 0.06, (
        "the default iteration count should sit near the plateau"
    )


def test_ablation_heading_gate(benchmark):
    """Work saved and accuracy kept by the inertial heading gate."""

    def run():
        config = experiment_config()
        sessions = dataset_for("Lab1").sws_sessions()[:8]
        pipe = CrowdMapPipeline(config)
        anchored = [pipe.anchor_session(s) for s in sessions]

        gated = KeyframeComparator(config)
        gated_result = SequenceAggregator(config, gated).aggregate(anchored)

        import math

        ungated_config = config.with_overrides(
            max_heading_difference=math.pi
        )
        ungated = KeyframeComparator(ungated_config)
        ungated_result = SequenceAggregator(
            ungated_config, ungated
        ).aggregate(anchored)
        return gated, gated_result, ungated, ungated_result

    gated, gated_result, ungated, ungated_result = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print_banner("Ablation: inertial heading gate")
    gated_work = gated.n_s1_rejects + gated.n_surf_comparisons
    ungated_work = ungated.n_s1_rejects + ungated.n_surf_comparisons
    print(
        render_table(
            "Comparator work with and without the gate",
            ["configuration", "heading rejects", "S1+SURF evaluations",
             "pairs merged"],
            [
                ["with gate", gated.n_heading_rejects, gated_work,
                 len(gated_result.merged_pairs())],
                ["without gate", ungated.n_heading_rejects, ungated_work,
                 len(ungated_result.merged_pairs())],
            ],
        )
    )
    assert gated.n_heading_rejects > 0
    assert gated_work < ungated_work, "the gate must save signature work"
