"""Full-campaign accuracy scorecard over the benchmark reconstructions.

Where ``python -m repro.eval`` scores the small committed-baseline grid,
this benchmark scores the *benchmark-scale* campaign (7 users per
building, the same cached reconstructions Table I and Fig. 8 read) and
prints one FloorReconstructionReport row per building next to the
paper's Table I numbers. It is the bridge between the CI quality gate
and the EXPERIMENTS.md tables.
"""

from repro.eval.report import render_table
from repro.eval.scorecard import score_reconstruction

from benchmarks._shared import tee_print as print  # noqa: A004
from benchmarks._shared import (
    BUILDINGS,
    plan_for,
    print_banner,
    reconstruction_for,
)

PAPER_TABLE1 = {
    "Lab1": (0.875, 0.933, 0.903),
    "Lab2": (0.922, 0.959, 0.940),
    "Gym": (0.843, 0.888, 0.865),
}


def run_scorecards():
    reports = {}
    for building in BUILDINGS:
        reports[building] = score_reconstruction(
            reconstruction_for(building), plan_for(building)
        )
    return reports


def test_accuracy_scorecard(benchmark):
    reports = benchmark.pedantic(run_scorecards, rounds=1, iterations=1)

    print_banner("Accuracy scorecard (benchmark campaign)")
    rows = []
    for building in BUILDINGS:
        r = reports[building]
        paper = PAPER_TABLE1[building]
        rows.append(
            [
                building,
                f"{r.hallway_precision:.1%}",
                f"{r.hallway_recall:.1%}",
                f"{r.hallway_f:.1%}",
                f"{paper[0]:.1%} / {paper[1]:.1%} / {paper[2]:.1%}",
                f"{r.room_iou_mean:.2f}",
                f"{r.rooms_scored}/{r.rooms_total}",
                f"{r.keyframes_localized_fraction:.0%}",
                f"{r.room_location_error_mean:.2f} m",
            ]
        )
    print(
        render_table(
            "Reconstruction scorecard (measured vs paper Table I P/R/F)",
            ["building", "precision", "recall", "F", "paper P/R/F",
             "room IoU", "rooms", "kf localized", "room loc err"],
            rows,
        )
    )

    for building, report in reports.items():
        # The campaign must produce a usable map everywhere: a standing
        # skeleton, most key-frames registered, and scored rooms.
        assert report.hallway_f > 0.3, building
        assert report.keyframes_localized_fraction > 0.3, building
        assert report.rooms_scored >= 1, building
