"""Fig. 8c: CDF of room location error for the three buildings.

Paper: mean location error 1.2 m (Lab1), 1.5 m (Lab2), 1.2 m (Gym), with
the Gym's sporadic room distribution producing the worst single room
(max 5 m). The shape to hold: means around a metre-and-change, and the
Gym owning the heaviest tail.
"""

from repro.eval.cdf import mean_of
from repro.eval.report import render_cdf_series, render_table
from repro.eval.room_metrics import evaluate_rooms

from benchmarks._shared import tee_print as print  # noqa: A004
from benchmarks._shared import (
    BUILDINGS,
    plan_for,
    print_banner,
    reconstruction_for,
)

PAPER_MEANS = {"Lab1": 1.2, "Lab2": 1.5, "Gym": 1.2}


def run_fig8c():
    series = {}
    reports = {}
    for building in BUILDINGS:
        result = reconstruction_for(building)
        report = evaluate_rooms(
            result.layouts,
            [p.room_hint for p in result.panoramas],
            plan_for(building),
            result.floorplan,
        )
        series[building] = list(report.location_errors.values())
        reports[building] = report
    return series, reports


def test_fig8c_room_location_error(benchmark):
    series, reports = benchmark.pedantic(run_fig8c, rounds=1, iterations=1)

    print_banner("Fig. 8c: room location error CDF per building")
    print(
        render_cdf_series(
            "Room location error",
            series,
            thresholds=[0.5, 1.0, 2.0, 3.0, 5.0],
            unit="m",
        )
    )
    rows = [
        [
            b,
            f"{mean_of(series[b]):.2f} m",
            f"{PAPER_MEANS[b]:.1f} m",
            f"{reports[b].max_location_error():.2f} m",
        ]
        for b in BUILDINGS
    ]
    print(
        render_table(
            "Mean / max room location error",
            ["building", "measured mean", "paper mean", "measured max"],
            rows,
        )
    )

    for building in BUILDINGS:
        assert series[building], f"no rooms reconstructed in {building}"
        assert mean_of(series[building]) < 3.5, (
            f"{building} mean location error too large"
        )
    # Every room should land within the paper's 5 m worst case (+ slack).
    worst = max(max(v) for v in series.values() if v)
    assert worst < 8.0
