"""Fig. 7b: tolerance of changes in lighting and exposure.

The paper mixes night-group captures into a daylight dataset in steps and
reports the aggregation error rate staying bounded (< ~20%) all the way to
100% night data. We reproduce the sweep with the renderer's day/night
models (brightness, color temperature, sensor noise, vignette).
"""

from repro.core.aggregation import SequenceAggregator
from repro.core.pipeline import CrowdMapPipeline
from repro.eval.matching_accuracy import evaluate_matching_accuracy
from repro.eval.report import render_table
from repro.world.crowd import CrowdConfig, generate_crowd_dataset

from benchmarks._shared import tee_print as print  # noqa: A004
from benchmarks._shared import experiment_config, plan_for, print_banner

NIGHT_FRACTIONS = (0.0, 0.25, 0.5, 0.75, 1.0)


def run_fig7b():
    config = experiment_config()
    plan = plan_for("Lab1")
    pipe = CrowdMapPipeline(config)
    error_rates = {}
    for fraction in NIGHT_FRACTIONS:
        dataset = generate_crowd_dataset(
            plan,
            CrowdConfig(
                n_users=5, sws_per_user=2, srs_rooms_per_user=0,
                night_fraction=fraction, seed=31,
            ),
        )
        sessions = dataset.sws_sessions()
        anchored = [pipe.anchor_session(s) for s in sessions]
        result = SequenceAggregator(config).aggregate(anchored)
        report = evaluate_matching_accuracy(sessions, result)
        error_rates[fraction] = (1.0 - report.accuracy, report)
    return error_rates


def test_fig7b_lighting_tolerance(benchmark):
    error_rates = benchmark.pedantic(run_fig7b, rounds=1, iterations=1)

    print_banner("Fig. 7b: aggregation error vs portion of night trajectories")
    rows = [
        [
            f"{fraction:.0%}",
            f"{err:.1%}",
            report.false_positives,
            report.false_negatives,
        ]
        for fraction, (err, report) in sorted(error_rates.items())
    ]
    print(
        render_table(
            "Aggregation error rate by night fraction (paper: stays < ~20%)",
            ["night fraction", "error rate", "FPs", "FNs"],
            rows,
        )
    )

    for fraction, (err, _) in error_rates.items():
        assert err <= 0.35, (
            f"aggregation collapsed at {fraction:.0%} night data: {err:.1%}"
        )
