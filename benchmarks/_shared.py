"""Shared, cached experiment state for the benchmark suite.

Crowd datasets and full reconstructions are expensive, so each building's
dataset and pipeline run are computed once per pytest session and shared
by every table/figure benchmark that needs them (Table I, Fig. 6,
Fig. 8a-c all read the same three reconstructions).

Workload sizing: the paper's datasets (301 videos, 61k key-frames, 25
users) are scaled down ~10x so the whole suite regenerates every table
and figure in tens of minutes on one laptop core-set. DESIGN.md documents
the scaling; all comparisons are within-suite, so the *shapes* of the
results are preserved.
"""

from __future__ import annotations

import os
from functools import lru_cache

from repro.core.config import CrowdMapConfig
from repro.core.pipeline import CrowdMapPipeline, ReconstructionResult
from repro.world.buildings import BUILDING_BUILDERS
from repro.world.crowd import CrowdConfig, CrowdDataset, generate_crowd_dataset

BUILDINGS = ("Lab1", "Lab2", "Gym")

#: CI smoke mode: shrink the campaign to the minimum that still runs the
#: full pipeline end-to-end, and have benchmarks skip their timing
#: assertions (CI machines are noisy; the smoke job only guards against
#: pipeline exceptions and records the timings as an artifact).
SMOKE_MODE = bool(os.environ.get("CROWDMAP_BENCH_SMOKE"))

#: Scaled-down campaign per building (paper: 25 users, 301 videos).
N_USERS = 3 if SMOKE_MODE else 7
SWS_PER_USER = 2 if SMOKE_MODE else 3
SRS_PER_USER = 1 if SMOKE_MODE else 2


def experiment_config() -> CrowdMapConfig:
    """Pipeline configuration used by every benchmark."""
    config = CrowdMapConfig()
    if SMOKE_MODE:
        config = config.with_overrides(layout_samples=400)
    return config


@lru_cache(maxsize=None)
def plan_for(building: str):
    return BUILDING_BUILDERS[building]()


@lru_cache(maxsize=None)
def dataset_for(building: str, night_fraction: float = 0.0,
                seed: int = 11) -> CrowdDataset:
    # The Gym's 600 m^2 open hall needs a denser crowd to reach the same
    # areal coverage the lab corridors get (the paper's gym dataset was
    # its largest for the same reason).
    n_users = N_USERS + 3 if building == "Gym" else N_USERS
    sws = SWS_PER_USER + 1 if building == "Gym" else SWS_PER_USER
    return generate_crowd_dataset(
        plan_for(building),
        CrowdConfig(
            n_users=n_users,
            sws_per_user=sws,
            srs_rooms_per_user=SRS_PER_USER,
            night_fraction=night_fraction,
            seed=seed,
        ),
    )


@lru_cache(maxsize=None)
def reconstruction_for(building: str) -> ReconstructionResult:
    pipeline = CrowdMapPipeline(experiment_config())
    return pipeline.run(dataset_for(building))


_RESULTS_PATH = None


def tee_print(*args, **kwargs) -> None:
    """print() that also appends to benchmarks/results/benchmark_output.txt.

    pytest captures stdout of passing tests, so every benchmark's rendered
    tables are additionally teed into a results file that survives the run
    (EXPERIMENTS.md is written from it).
    """
    global _RESULTS_PATH
    import io
    import os

    print(*args, **kwargs)
    if _RESULTS_PATH is None:
        results_dir = os.path.join(os.path.dirname(__file__), "results")
        os.makedirs(results_dir, exist_ok=True)
        _RESULTS_PATH = os.path.join(results_dir, "benchmark_output.txt")
    buffer = io.StringIO()
    print(*args, **kwargs, file=buffer)
    with open(_RESULTS_PATH, "a") as fh:
        fh.write(buffer.getvalue())


def print_banner(title: str) -> None:
    tee_print()
    tee_print("#" * 72)
    tee_print(f"# {title}")
    tee_print("#" * 72)
