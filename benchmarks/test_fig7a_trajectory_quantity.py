"""Fig. 7a: matching accuracy vs number of user trajectories.

Paper's shape: sequence-based aggregation beats single-image aggregation
at every trajectory count, and single-image accuracy *decreases* once the
count grows ("indoor scenes in the same floor have a high similarity"),
while sequence-based stays high. Counts are scaled down ~3x from the
paper's 35..85 sweep; the crossover behaviour, not the x-axis, is the
reproduced result.
"""

from repro.baselines.single_image import SingleImageAggregator
from repro.core.aggregation import SequenceAggregator
from repro.core.pipeline import CrowdMapPipeline
from repro.eval.matching_accuracy import evaluate_matching_accuracy
from repro.eval.report import render_table
from repro.world.crowd import CrowdConfig, generate_crowd_dataset

from benchmarks._shared import tee_print as print  # noqa: A004
from benchmarks._shared import experiment_config, plan_for, print_banner

COUNTS = (8, 14, 20, 26)


def run_fig7a():
    config = experiment_config()
    plan = plan_for("Lab1")
    # One big pool of SWS sessions; sweeps take prefixes.
    max_count = max(COUNTS)
    dataset = generate_crowd_dataset(
        plan,
        CrowdConfig(
            n_users=(max_count + 1) // 2, sws_per_user=2,
            srs_rooms_per_user=0, seed=23,
        ),
    )
    sessions = dataset.sws_sessions()[:max_count]
    pipe = CrowdMapPipeline(config)
    anchored = [pipe.anchor_session(s) for s in sessions]

    results = {}
    for count in COUNTS:
        subset_sessions = sessions[:count]
        subset_anchored = anchored[:count]
        seq = SequenceAggregator(config).aggregate(subset_anchored)
        single = SingleImageAggregator(config).aggregate(subset_anchored)
        results[count] = (
            evaluate_matching_accuracy(subset_sessions, seq),
            evaluate_matching_accuracy(subset_sessions, single),
        )
    return results


def test_fig7a_matching_accuracy_vs_trajectories(benchmark):
    results = benchmark.pedantic(run_fig7a, rounds=1, iterations=1)

    print_banner("Fig. 7a: matching accuracy vs number of trajectories")
    rows = []
    for count, (seq, single) in sorted(results.items()):
        def mp(report):
            merged = report.true_positives + report.false_positives
            return report.true_positives / merged if merged else 1.0

        rows.append(
            [
                count,
                f"{seq.accuracy:.1%}",
                f"{single.accuracy:.1%}",
                f"{mp(seq):.1%} / {mp(single):.1%}",
                f"{seq.false_positives} / {single.false_positives}",
            ]
        )
    print(
        render_table(
            "Matching accuracy (sequence-based vs single-image)",
            ["#trajectories", "sequence", "single-image",
             "merge precision (seq/single)", "FPs (seq/single)"],
            rows,
        )
    )

    def merge_precision(report):
        merged = report.true_positives + report.false_positives
        return report.true_positives / merged if merged else 1.0

    # Shape checks mirroring the paper's findings. The mechanism behind
    # Fig. 7a's single-image decline is wrong merges ("prevent wrong
    # trajectories aggregation, which impairs the accuracy of the whole
    # system"), so the decisive metric is merge precision: a false merge
    # corrupts the map, a missed one only loses coverage.
    largest = max(COUNTS)
    seq_larg, single_larg = results[largest]
    assert seq_larg.accuracy > 0.7, (
        f"sequence aggregation collapsed: {seq_larg.accuracy:.2f}"
    )
    for count, (seq, single) in results.items():
        assert merge_precision(seq) >= merge_precision(single), (
            f"sequence merges dirtier than single-image at {count}"
        )
    assert merge_precision(seq_larg) > merge_precision(single_larg) + 0.1, (
        "sequence-based merges must be clearly cleaner at scale"
    )
    # Single-image degrades with scale: false positives grow markedly.
    assert (
        single_larg.false_positives
        > results[min(COUNTS)][1].false_positives
    )
