"""Fig. 7c: CDF of user-trajectory matching latency.

The paper reports ~0.8 s per key-frame pair (single-threaded, SURF
matching dominating) and 40-50 s for a complete pairwise aggregation.
Absolute numbers on this pure-numpy substrate differ; the reproduced
shape is the CDF itself plus the breakdown showing SURF dominating the
per-pair cost and the hierarchy (heading gate, S1) saving most of it.
"""

import time

from repro.core.comparison import KeyframeComparator
from repro.core.pipeline import CrowdMapPipeline
from repro.eval.cdf import empirical_cdf, mean_of, percentile_of
from repro.eval.report import render_table

from benchmarks._shared import tee_print as print  # noqa: A004
from benchmarks._shared import (
    SMOKE_MODE,
    dataset_for,
    experiment_config,
    print_banner,
)


def run_fig7c():
    config = experiment_config()
    pipe = CrowdMapPipeline(config)
    sessions = dataset_for("Lab1").sws_sessions()[:8]
    anchored = [pipe.anchor_session(s) for s in sessions]

    comparator = KeyframeComparator(config)
    pair_latencies = []
    for a in anchored[:4]:
        for b in anchored[4:]:
            for kf_a in a.keyframes[:6]:
                for kf_b in b.keyframes[:6]:
                    t0 = time.perf_counter()
                    comparator.compare(kf_a, kf_b)
                    pair_latencies.append(time.perf_counter() - t0)

    # Whole-trajectory matching latency (one pairwise score).
    from repro.core.aggregation import SequenceAggregator

    aggregator = SequenceAggregator(config, comparator)
    trajectory_latencies = []
    for a in anchored[:4]:
        for b in anchored[4:6]:
            t0 = time.perf_counter()
            aggregator.score_pair(a, b)
            trajectory_latencies.append(time.perf_counter() - t0)
    return pair_latencies, trajectory_latencies, comparator


def test_fig7c_matching_latency(benchmark):
    pair_latencies, trajectory_latencies, comparator = benchmark.pedantic(
        run_fig7c, rounds=1, iterations=1
    )

    print_banner("Fig. 7c: user trajectory matching latency CDF")
    xs, ps = empirical_cdf(pair_latencies)
    rows = []
    for q in (0.1, 0.5, 0.9, 0.99):
        idx = min(len(xs) - 1, int(q * len(xs)))
        rows.append([f"p{int(q * 100)}", f"{xs[idx] * 1000:.2f} ms"])
    rows.append(["mean", f"{mean_of(pair_latencies) * 1000:.2f} ms"])
    print(render_table("Key-frame pair comparison latency", ["quantile", "latency"], rows))
    print(
        render_table(
            "Whole trajectory-pair scoring latency",
            ["quantile", "latency"],
            [
                ["p50", f"{percentile_of(trajectory_latencies, 50):.3f} s"],
                ["p90", f"{percentile_of(trajectory_latencies, 90):.3f} s"],
                ["mean", f"{mean_of(trajectory_latencies):.3f} s"],
            ],
        )
    )
    total = (
        comparator.n_heading_rejects
        + comparator.n_s1_rejects
        + comparator.n_surf_comparisons
    )
    print(
        render_table(
            "Hierarchy effectiveness (comparisons resolved per stage)",
            ["stage", "count", "share"],
            [
                ["heading gate", comparator.n_heading_rejects,
                 f"{comparator.n_heading_rejects / total:.0%}"],
                ["S1 reject", comparator.n_s1_rejects,
                 f"{comparator.n_s1_rejects / total:.0%}"],
                ["SURF (S2) run", comparator.n_surf_comparisons,
                 f"{comparator.n_surf_comparisons / total:.0%}"],
            ],
        )
    )

    _dump_timing_json(pair_latencies, trajectory_latencies, comparator)

    if SMOKE_MODE:
        # The CI smoke job only guards against pipeline exceptions; the
        # timings above are uploaded as an artifact, not asserted on
        # (shared runners are far too noisy for latency bounds).
        return
    assert mean_of(pair_latencies) < 0.8, "per-pair latency must beat the paper's testbed"
    assert percentile_of(trajectory_latencies, 90) < 30.0
    # The cheap stages must be resolving a meaningful share of the work.
    assert comparator.n_surf_comparisons < total


def _dump_timing_json(pair_latencies, trajectory_latencies, comparator):
    """Persist the run's timings for the CI artifact upload."""
    import json
    import os

    results_dir = os.path.join(os.path.dirname(__file__), "results")
    os.makedirs(results_dir, exist_ok=True)
    payload = {
        "smoke_mode": SMOKE_MODE,
        "n_pair_comparisons": len(pair_latencies),
        "pair_latency_seconds": {
            "mean": mean_of(pair_latencies),
            "p50": percentile_of(pair_latencies, 50),
            "p90": percentile_of(pair_latencies, 90),
            "p99": percentile_of(pair_latencies, 99),
        },
        "trajectory_latency_seconds": {
            "mean": mean_of(trajectory_latencies),
            "p50": percentile_of(trajectory_latencies, 50),
            "p90": percentile_of(trajectory_latencies, 90),
        },
        "hierarchy": {
            "heading_rejects": comparator.n_heading_rejects,
            "s1_rejects": comparator.n_s1_rejects,
            "surf_comparisons": comparator.n_surf_comparisons,
        },
    }
    with open(os.path.join(results_dir, "fig7c_latency.json"), "w") as fh:
        json.dump(payload, fh, indent=2)
