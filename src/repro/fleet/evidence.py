"""Compact per-session evidence records — the unit of fleet gossip.

A fleet node cannot ship raw sensor-rich videos to its peers: the paper's
301-session campaign is ~60k frames, and a city-scale crowd is orders of
magnitude more. What a peer actually needs from a session is tiny: which
grid cells the walker's dead-reckoned trajectory touched, and (for SRS
spins) which room the user stood in. :func:`extract_evidence` distils a
:class:`~repro.world.walker.CaptureSession` into exactly that — a frozen
:class:`SessionEvidence` record of a few hundred bytes.

Two properties make these records fusable across nodes:

- **Absolute cells.** Cells are integer world coordinates
  ``(floor(x / cell_size), floor(y / cell_size))`` — no node-local grid
  bounds — so the same session produces the same record no matter which
  node (or which subset of the crowd) observed it.
- **Content determinism.** Extraction mirrors
  :meth:`repro.core.skeleton.OccupancyGrid.add_trajectory` (half-cell
  polyline sampling, disc splat) and rounds floats canonically, so the
  record is a pure function of the session.

Records are keyed by ``session_id``; the fusion layer
(:mod:`repro.fleet.beliefs`) treats them as elements of a grow-only set,
which is what buys commutative/associative/idempotent merges.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

#: Session task kinds that produce evidence worth gossiping.
EVIDENCE_TASKS = ("SWS", "SRS")


@dataclass(frozen=True)
class EvidenceConfig:
    """Geometry knobs shared by extraction, fusion and projection.

    Every node in a fleet must run the same config — the region keys and
    cell coordinates it derives are part of the wire format.
    """

    #: Occupancy cell edge, metres (matches ``CrowdMapConfig.grid_cell_size``).
    cell_size: float = 0.5
    #: Disc radius splatted around each trajectory sample, metres (matches
    #: ``CrowdMapConfig.trajectory_splat_radius``).
    splat_radius: float = 1.0
    #: Region tile edge in *cells*: version vectors are kept per
    #: ``region = (building, floor, cx >> shift, cy >> shift)`` so
    #: anti-entropy exchanges whole neighbourhoods, not single cells.
    region_tile: int = 16
    #: Cells whose fused confidence reaches this are projected as occupied.
    occupancy_threshold: float = 0.3
    #: Margin (cells) added around a session's bbox when counting it as an
    #: *observer* of a cell — disagreement only decays confidence where a
    #: session plausibly looked.
    observer_margin: int = 2

    def __post_init__(self) -> None:
        if self.cell_size <= 0:
            raise ValueError("cell_size must be positive")
        if self.region_tile < 1:
            raise ValueError("region_tile must be >= 1")
        if not 0.0 < self.occupancy_threshold < 1.0:
            raise ValueError("occupancy_threshold must be in (0, 1)")
        if self.observer_margin < 0:
            raise ValueError("observer_margin must be >= 0")


#: A region key: (building, floor, tile_x, tile_y).
RegionKey = Tuple[str, int, int, int]


@dataclass(frozen=True)
class SessionEvidence:
    """Everything the fleet keeps from one uploaded session.

    ``cells`` are absolute integer occupancy cells touched by the
    dead-reckoned trajectory; ``bbox`` is their hull
    ``(min_cx, min_cy, max_cx, max_cy)``. SRS sessions additionally carry
    the room hint (``room_name`` may be None when the device had no
    annotation) and the spin centre in world metres.
    """

    session_id: str
    user_id: str
    building: str
    floor: int
    task: str
    cells: Tuple[Tuple[int, int], ...]
    bbox: Tuple[int, int, int, int]
    room_name: Optional[str] = None
    room_center: Optional[Tuple[float, float]] = None

    def region(self, config: EvidenceConfig) -> RegionKey:
        """The single region this record files under (its bbox centre tile)."""
        cx = (self.bbox[0] + self.bbox[2]) // 2
        cy = (self.bbox[1] + self.bbox[3]) // 2
        return (
            self.building,
            self.floor,
            cx // config.region_tile,
            cy // config.region_tile,
        )

    def to_payload(self) -> Dict:
        """Wire form: a plain JSON-safe dict with canonical field order."""
        payload: Dict = {
            "sid": self.session_id,
            "uid": self.user_id,
            "b": self.building,
            "f": self.floor,
            "task": self.task,
            "cells": [list(c) for c in self.cells],
            "bbox": list(self.bbox),
        }
        if self.room_center is not None:
            payload["room"] = {
                "name": self.room_name,
                "x": self.room_center[0],
                "y": self.room_center[1],
            }
        return payload

    @staticmethod
    def from_payload(payload: Dict) -> "SessionEvidence":
        """Rebuild a record from its wire form (inverse of ``to_payload``)."""
        room = payload.get("room")
        return SessionEvidence(
            session_id=payload["sid"],
            user_id=payload["uid"],
            building=payload["b"],
            floor=int(payload["f"]),
            task=payload["task"],
            cells=tuple((int(c[0]), int(c[1])) for c in payload["cells"]),
            bbox=tuple(int(v) for v in payload["bbox"]),
            room_name=None if room is None else room["name"],
            room_center=(
                None if room is None else (float(room["x"]), float(room["y"]))
            ),
        )

    def payload_bytes(self) -> int:
        """Serialized size, the unit the gossip byte counters account in."""
        return len(canonical_json(self.to_payload()).encode("utf-8"))


def canonical_json(obj) -> str:
    """The one JSON encoding fleet components agree on (sorted, compact)."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def _trajectory_cells(
    points: np.ndarray, config: EvidenceConfig
) -> List[Tuple[int, int]]:
    """Absolute cells a trajectory polyline touches, splat disc included.

    Mirrors ``OccupancyGrid.add_trajectory`` — half-cell sampling along
    each leg, disc of ``splat_radius`` around each sample — but in
    unbounded integer world cells instead of a node-local array.
    """
    if len(points) == 0:
        return []
    step = config.cell_size / 2.0
    samples = [points[0]]
    for k in range(len(points) - 1):
        a, b = points[k], points[k + 1]
        dist = float(np.hypot(*(b - a)))
        n_steps = max(1, int(dist / step))
        for t in np.linspace(0.0, 1.0, n_steps + 1)[1:]:
            samples.append(a + t * (b - a))
    radius_cells = int(np.ceil(config.splat_radius / config.cell_size))
    cells = set()
    for x, y in samples:
        cx = int(math.floor(float(x) / config.cell_size))
        cy = int(math.floor(float(y) / config.cell_size))
        for dr in range(-radius_cells, radius_cells + 1):
            for dc in range(-radius_cells, radius_cells + 1):
                if dr * dr + dc * dc > radius_cells * radius_cells:
                    continue
                cells.add((cx + dc, cy + dr))
    return sorted(cells)


def extract_evidence(
    session, config: Optional[EvidenceConfig] = None
) -> Optional[SessionEvidence]:
    """Distil one capture session into its gossipable evidence record.

    Returns None for tasks the fusion layer has no use for (e.g. STAIRS)
    and for sessions with an empty trajectory. Pure: the same session and
    config always produce an identical record.
    """
    config = config or EvidenceConfig()
    if session.task not in EVIDENCE_TASKS:
        return None
    points = session.device_trajectory.as_array()
    cells = _trajectory_cells(points, config)
    if not cells:
        return None
    xs = [c[0] for c in cells]
    ys = [c[1] for c in cells]
    room_name = None
    room_center = None
    if session.task == "SRS":
        room_name = session.room_name
        center = points.mean(axis=0)
        room_center = (round(float(center[0]), 4), round(float(center[1]), 4))
    return SessionEvidence(
        session_id=session.session_id,
        user_id=session.user_id,
        building=session.building,
        floor=int(session.floor),
        task=session.task,
        cells=tuple(cells),
        bbox=(min(xs), min(ys), max(xs), max(ys)),
        room_name=room_name,
        room_center=room_center,
    )
