"""The fleet simulation: seeded crowds, gossip rounds, convergence report.

:func:`run_fleet_simulation` wires the whole subsystem together:

1. generate a sensor-only crowd per building
   (:func:`repro.world.scenarios.fleet_scenarios`), deal its sessions
   across N nodes in overlapping slices
   (:func:`repro.world.scenarios.slice_sessions`);
2. stand up one :class:`~repro.fleet.node.FleetNode` per slice — each
   with its own telemetry registry and (optionally) its own serving
   stack — plus a *central* reference node that ingests the union;
3. run anti-entropy rounds on a
   :class:`~repro.backend.scheduler.SimulatedScheduler` through a
   :class:`~repro.fleet.gossip.GossipMesh` over a fault-injected
   :class:`~repro.backend.faults.LinkFaultModel`;
4. after every round, project each node's fused map and measure its
   divergence from the central projection, stopping at convergence
   (all nodes bit-identical to central, nothing in flight).

The returned report is a pure function of the config: no wall-clock
reads, floats rounded at serialization, dict iteration everywhere in
sorted or construction order — two same-seed runs serialize byte-equal,
which the CI fleet job enforces with a literal ``diff``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.backend.faults import LinkFaultModel, Partition
from repro.backend.scheduler import SimulatedScheduler
from repro.fleet.beliefs import divergence
from repro.fleet.compare import (
    compare_fused_to_central,
    fused_vs_central_metrics,
    score_fleet_against_truth,
)
from repro.fleet.evidence import EvidenceConfig, canonical_json
from repro.fleet.gossip import GossipConfig, GossipMesh
from repro.fleet.node import FleetNode
from repro.world.floorplan_model import FloorPlan
from repro.world.scenarios import fleet_scenarios, slice_sessions


@dataclass(frozen=True)
class FleetSimConfig:
    """Everything that pins one fleet run (and hence its report bytes)."""

    buildings: Tuple[str, ...] = ("Lab1", "Lab2")
    n_nodes: int = 4
    users_per_building: int = 3
    sws_per_user: int = 1
    srs_rooms_per_user: int = 1
    #: Probability a session is observed by a second node too.
    overlap: float = 0.25
    seed: int = 0
    max_rounds: int = 64
    round_interval: float = 1.0
    fanout: int = 1
    base_latency: float = 0.05
    latency_jitter: float = 0.02
    loss_rate: float = 0.0
    partitions: Tuple[Partition, ...] = ()
    #: Run a private ShardManager serving stack on every node.
    maintain_local_maps: bool = False
    shard_refresh_interval: float = 5.0
    evidence: EvidenceConfig = field(default_factory=EvidenceConfig)

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        if self.max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")
        if not self.buildings:
            raise ValueError("need at least one building")

    def node_ids(self) -> List[str]:
        """The fleet's node names, in mesh order."""
        return [f"node{i:02d}" for i in range(self.n_nodes)]


def build_fleet_crowd(
    config: FleetSimConfig,
) -> Tuple[list, Dict[str, FloorPlan]]:
    """The union crowd (all buildings, campaign order) plus plans by name."""
    sessions = []
    plans: Dict[str, FloorPlan] = {}
    for spec in fleet_scenarios(
        buildings=config.buildings,
        n_users=config.users_per_building,
        sws_per_user=config.sws_per_user,
        srs_rooms_per_user=config.srs_rooms_per_user,
        base_seed=config.seed,
        render_frames=False,
    ):
        dataset = spec.generate()
        plans[spec.building] = dataset.plan
        sessions.extend(dataset.sessions)
    return sessions, plans


def run_fleet_simulation(
    config: Optional[FleetSimConfig] = None,
    log: Callable[[str], None] = lambda line: None,
) -> Dict:
    """Run one fleet simulation end to end; returns the report dict."""
    config = config or FleetSimConfig()
    sessions, plans = build_fleet_crowd(config)
    slices = slice_sessions(
        sessions, config.n_nodes, overlap=config.overlap, seed=config.seed
    )
    log(
        f"crowd: {len(sessions)} sessions across "
        f"{len(config.buildings)} buildings, {config.n_nodes} nodes"
    )

    central = FleetNode("central", config=config.evidence)
    for session in sessions:
        central.ingest_session(session)
    central_map = central.fused_map()
    central_digest = central_map.digest()

    nodes = [
        FleetNode(
            node_id,
            config=config.evidence,
            maintain_local_maps=config.maintain_local_maps,
        )
        for node_id in config.node_ids()
    ]
    for node, node_sessions in zip(nodes, slices):
        for session in node_sessions:
            node.ingest_session(session)

    scheduler = SimulatedScheduler()
    mesh = GossipMesh(
        nodes,
        link_model=LinkFaultModel(
            seed=config.seed,
            base_latency=config.base_latency,
            latency_jitter=config.latency_jitter,
            loss_rate=config.loss_rate,
            partitions=config.partitions,
        ),
        config=GossipConfig(
            seed=config.seed,
            round_interval=config.round_interval,
            fanout=config.fanout,
        ),
    )
    round_stats: List[Dict] = []
    scheduler.add_job(
        "gossip_round",
        config.round_interval,
        lambda: round_stats.append(mesh.run_round(scheduler.now)),
    )
    if config.maintain_local_maps:
        for node in nodes:
            node.shards.attach_refresh_job(
                scheduler, config.shard_refresh_interval
            )

    rounds: List[Dict] = []
    rounds_to_converge: Optional[int] = None
    for round_number in range(1, config.max_rounds + 1):
        scheduler.advance(config.round_interval)
        stats = round_stats[-1]
        maps = [node.fused_map() for node in nodes]
        per_node = {
            node.node_id: divergence(node_map, central_map)
            for node, node_map in zip(nodes, maps)
        }
        identical = [
            node_map.digest() == central_digest for node_map in maps
        ]
        rounds.append(
            {
                "round": round_number,
                "messages_sent": stats["messages_sent"],
                "bytes_sent": stats["bytes_sent"],
                "dropped": stats["dropped"],
                "delivered": stats["delivered"],
                "merged_records": stats["merged_records"],
                "stale_regions": stats["stale_regions"],
                "nodes_identical_to_central": sum(identical),
                "divergence": per_node,
            }
        )
        log(
            f"round {round_number:3d}: {stats['messages_sent']} msgs, "
            f"{stats['bytes_sent']} B, {stats['dropped']} dropped, "
            f"{sum(identical)}/{len(nodes)} nodes at central"
        )
        if (
            all(identical)
            and mesh.pending_messages() == 0
            and len(set(mesh.digests())) == 1
        ):
            rounds_to_converge = round_number
            break

    final_maps = {node.node_id: node.fused_map() for node in nodes}
    equivalence = {
        node_id: {
            "bit_identical_to_central": node_map.digest() == central_digest,
            "metrics": fused_vs_central_metrics(node_map, central_map),
            "problems": compare_fused_to_central(
                node_map, central_map, label=node_id
            ),
        }
        for node_id, node_map in sorted(final_maps.items())
    }

    report: Dict = {
        "config": _config_payload(config),
        "crowd": {
            "n_sessions": len(sessions),
            "sessions_per_node": [len(s) for s in slices],
            "buildings": sorted(plans),
        },
        "converged": rounds_to_converge is not None,
        "rounds_to_converge": rounds_to_converge,
        "pending_messages": mesh.pending_messages(),
        "totals": {
            "messages_sent": int(
                mesh.telemetry.value("fleet_gossip_messages_sent")
            ),
            "bytes_gossiped": int(
                mesh.telemetry.value("fleet_gossip_bytes_sent")
            ),
            "dropped": int(mesh.telemetry.value("fleet_gossip_dropped")),
            "delivered": int(mesh.telemetry.value("fleet_gossip_delivered")),
        },
        "equivalence": equivalence,
        "central_quality": score_fleet_against_truth(
            central_map, plans, cell_size=config.evidence.cell_size
        ),
        "rounds": rounds,
    }
    if config.maintain_local_maps:
        report["local_maps"] = {
            node.node_id: {
                "shards": len(node.shards.shards()),
                "snapshots_published": int(
                    node.telemetry.value("serving_snapshots_published")
                ),
            }
            for node in nodes
        }
    return report


def _config_payload(config: FleetSimConfig) -> Dict:
    """The config echo embedded in every report (JSON-safe, canonical)."""
    return {
        "buildings": list(config.buildings),
        "n_nodes": config.n_nodes,
        "users_per_building": config.users_per_building,
        "sws_per_user": config.sws_per_user,
        "srs_rooms_per_user": config.srs_rooms_per_user,
        "overlap": config.overlap,
        "seed": config.seed,
        "max_rounds": config.max_rounds,
        "round_interval": config.round_interval,
        "fanout": config.fanout,
        "base_latency": config.base_latency,
        "latency_jitter": config.latency_jitter,
        "loss_rate": config.loss_rate,
        "partitions": [
            {
                "start": p.start,
                "end": p.end,
                "groups": [list(g) for g in p.groups],
            }
            for p in config.partitions
        ],
        "maintain_local_maps": config.maintain_local_maps,
    }


def render_fleet_report(report: Dict) -> str:
    """Deterministic text rendering of a fleet run (the CLI output)."""
    from repro.eval.report import render_table

    lines: List[str] = []
    config = report["config"]
    lines.append(
        f"fleet-sim: {config['n_nodes']} nodes, "
        f"{report['crowd']['n_sessions']} sessions, "
        f"buildings={','.join(config['buildings'])}, seed={config['seed']}"
    )
    if report["converged"]:
        lines.append(
            f"converged in {report['rounds_to_converge']} rounds "
            f"({report['totals']['bytes_gossiped']} bytes gossiped, "
            f"{report['totals']['dropped']} messages dropped)"
        )
    else:
        lines.append(
            f"NOT converged after {len(report['rounds'])} rounds "
            f"({report['pending_messages']} messages still in flight)"
        )
    rows = []
    for entry in report["rounds"]:
        mean_jaccard = 0.0
        mean_mae = 0.0
        per_node = entry["divergence"]
        if per_node:
            mean_jaccard = sum(
                d["occupied_jaccard_distance"] for d in per_node.values()
            ) / len(per_node)
            mean_mae = sum(
                d["confidence_mae"] for d in per_node.values()
            ) / len(per_node)
        rows.append(
            (
                entry["round"],
                entry["messages_sent"],
                entry["bytes_sent"],
                entry["dropped"],
                f"{entry['nodes_identical_to_central']}/{config['n_nodes']}",
                f"{mean_jaccard:.4f}",
                f"{mean_mae:.4f}",
            )
        )
    lines.append(
        render_table(
            "Convergence (per gossip round)",
            ["round", "msgs", "bytes", "drop", "at central", "jaccard", "mae"],
            rows,
        )
    )
    eq_rows = []
    for node_id in sorted(report["equivalence"]):
        entry = report["equivalence"][node_id]
        metrics = entry["metrics"]
        eq_rows.append(
            (
                node_id,
                "yes" if entry["bit_identical_to_central"] else "no",
                f"{metrics['occupied_iou']:.4f}",
                f"{metrics['confidence_mae']:.4f}",
                f"{metrics['room_match_fraction']:.2f}",
                "ok" if not entry["problems"] else "; ".join(entry["problems"]),
            )
        )
    lines.append(
        render_table(
            "Fused vs central (final)",
            ["node", "bit-identical", "IoU", "conf MAE", "rooms", "bands"],
            eq_rows,
        )
    )
    if report["central_quality"]:
        quality_rows = [
            (
                building,
                f"{scores['hallway_precision']:.1%}",
                f"{scores['hallway_recall']:.1%}",
                f"{scores['hallway_f']:.1%}",
            )
            for building, scores in sorted(report["central_quality"].items())
        ]
        lines.append(
            render_table(
                "Fused map vs ground truth",
                ["building", "P", "R", "F"],
                quality_rows,
            )
        )
    return "\n".join(lines)


def report_json(report: Dict) -> str:
    """Canonical JSON serialization (what the CI smoke byte-compares)."""
    return canonical_json(report)
