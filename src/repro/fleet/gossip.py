"""Seeded push anti-entropy over fault-injected links.

Every round, every node (in fixed index order) picks a seeded random
peer and pushes the regions it cannot prove the peer already has
(:meth:`~repro.fleet.node.FleetNode.summary_for`). Messages traverse a
:class:`~repro.backend.faults.LinkFaultModel`: they may be delayed
(delivered on a later round, in ``(deliver_time, sequence)`` order),
dropped, or blocked by a scheduled partition.

Determinism: peer choice derives a fresh generator per
``(seed, round, node)`` event, and loss/latency decisions are pure
functions of ``(seed, edge, round)`` inside the link model — so a run
replays byte-identically, and no decision depends on dict ordering or
on how many other messages were in flight.

Convergence under faults is loss-safe because knowledge is only ever
learned from messages that *arrive*: a delivered push earns the sender
a reconcile response carrying the receiver's post-merge vectors (an ack
region — vector, no records — where the receiver holds nothing extra),
so both ends prove the exchange happened and stop re-pushing. A lost
push or lost response just means the push repeats next round; a healed
partition drains the same way.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.backend.faults import LinkFaultModel
from repro.backend.scheduler import ScheduledJob, SimulatedScheduler
from repro.backend.telemetry import TelemetryRegistry
from repro.fleet.node import FleetNode, FleetSummary


@dataclass(frozen=True)
class GossipConfig:
    """Mesh-wide knobs: cadence, fanout and the RNG seed."""

    seed: int = 0
    #: Virtual seconds between anti-entropy rounds.
    round_interval: float = 1.0
    #: Peers each node pushes to per round.
    fanout: int = 1

    def __post_init__(self) -> None:
        if self.round_interval <= 0:
            raise ValueError("round_interval must be positive")
        if self.fanout < 1:
            raise ValueError("fanout must be >= 1")


class GossipMesh:
    """The fleet's communication fabric: rounds, links, delivery queue."""

    def __init__(
        self,
        nodes: Sequence[FleetNode],
        link_model: Optional[LinkFaultModel] = None,
        config: Optional[GossipConfig] = None,
        telemetry: Optional[TelemetryRegistry] = None,
    ):
        if len(nodes) < 1:
            raise ValueError("a mesh needs at least one node")
        ids = [node.node_id for node in nodes]
        if len(set(ids)) != len(ids):
            raise ValueError("node ids must be unique")
        self.nodes = list(nodes)
        self.config = config or GossipConfig()
        self.link_model = link_model or LinkFaultModel()
        self.telemetry = telemetry or TelemetryRegistry()
        #: In-flight messages: (deliver_at, sequence, receiver_id, summary).
        self._pending: List[Tuple[float, int, str, FleetSummary]] = []
        self._round_index = 0
        self._sequence = 0
        #: Send attempts so far — the link model's fault tick, unique per
        #: message so retransmits of a lost push get fresh loss draws.
        self._attempts = 0

    @property
    def round_index(self) -> int:
        """Rounds run so far (also the link model's fault tick)."""
        return self._round_index

    def attach(
        self, scheduler: SimulatedScheduler, delay: Optional[float] = None
    ) -> ScheduledJob:
        """Register the periodic round job on the fleet's virtual clock."""
        return scheduler.add_job(
            "gossip_round",
            self.config.round_interval,
            lambda: self.run_round(scheduler.now),
            delay=delay,
        )

    def _peer_rng(self, node_id: str, slot: int) -> np.random.Generator:
        token = (
            f"{self.config.seed}:peer:{self._round_index}:{node_id}:{slot}"
        )
        return np.random.default_rng(zlib.crc32(token.encode("utf-8")))

    def _send(
        self,
        sender_id: str,
        receiver_id: str,
        summary: FleetSummary,
        now: float,
        stats: Dict[str, int],
    ) -> None:
        """Put one summary on the wire: count it, maybe drop it, queue it.

        Bytes are counted for every message *sent*, including ones the
        link then drops — that is what a real deployment's egress meter
        would see. The fault tick is the mesh-wide send-attempt counter,
        unique per message, so a retransmit of a lost push draws fresh
        loss/latency rather than replaying last round's verdict.
        """
        nbytes = summary.payload_bytes()
        stats["messages_sent"] += 1
        stats["bytes_sent"] += nbytes
        self.telemetry.counter(
            "fleet_gossip_messages_sent", "summaries put on the wire"
        ).inc()
        self.telemetry.counter(
            "fleet_gossip_bytes_sent", "summary bytes put on the wire"
        ).inc(nbytes)
        self._attempts += 1
        tick = self._attempts
        if not self.link_model.delivers(sender_id, receiver_id, tick, now):
            stats["dropped"] += 1
            self.telemetry.counter(
                "fleet_gossip_dropped", "summaries lost in flight"
            ).inc()
            return
        deliver_at = now + self.link_model.latency(
            sender_id, receiver_id, tick
        )
        self._sequence += 1
        self._pending.append(
            (deliver_at, self._sequence, receiver_id, summary)
        )

    def _deliver_due(self, now: float, stats: Dict[str, int]) -> None:
        """Apply every in-flight message whose delay has elapsed.

        Delivery happens in ``(deliver_time, sequence)`` order — the one
        total order a pair of same-time messages replay in. A delivered
        push earns its sender a reconcile response (the receiver's
        post-merge vectors, plus records where the receiver holds more),
        which is what lets both ends prove the exchange happened and
        quiesce; responses are never themselves responded to.
        """
        due = sorted(m for m in self._pending if m[0] <= now)
        self._pending = [m for m in self._pending if m[0] > now]
        by_id = {node.node_id: node for node in self.nodes}
        for _, _, receiver_id, summary in due:
            receiver = by_id[receiver_id]
            outcome = receiver.receive_summary(summary)
            stats["delivered"] += 1
            stats["merged_records"] += outcome["merged_records"]
            stats["stale_regions"] += outcome["stale_regions"]
            self.telemetry.counter(
                "fleet_gossip_delivered", "summaries delivered"
            ).inc()
            response = receiver.response_to(summary)
            if response is not None and summary.sender in by_id:
                self._send(receiver_id, summary.sender, response, now, stats)

    def deliver_due(self, now: float) -> Dict[str, int]:
        """Drain due deliveries outside a round (returns the stats)."""
        stats = {
            "messages_sent": 0,
            "bytes_sent": 0,
            "dropped": 0,
            "delivered": 0,
            "merged_records": 0,
            "stale_regions": 0,
        }
        self._deliver_due(now, stats)
        return stats

    def run_round(self, now: float) -> Dict[str, int]:
        """One anti-entropy round: drain due deliveries, then push."""
        stats = {
            "round": self._round_index,
            "messages_sent": 0,
            "bytes_sent": 0,
            "dropped": 0,
            "delivered": 0,
            "merged_records": 0,
            "stale_regions": 0,
        }
        self._deliver_due(now, stats)
        if len(self.nodes) > 1:
            for index, node in enumerate(self.nodes):
                for slot in range(self.config.fanout):
                    rng = self._peer_rng(node.node_id, slot)
                    peer_index = int(rng.integers(len(self.nodes) - 1))
                    if peer_index >= index:
                        peer_index += 1
                    peer = self.nodes[peer_index]
                    summary = node.summary_for(peer.node_id)
                    if summary is None:
                        continue
                    self._send(node.node_id, peer.node_id, summary, now, stats)
        self._round_index += 1
        return stats

    def pending_messages(self) -> int:
        """Messages still in flight (delayed past the current round)."""
        return len(self._pending)

    def digests(self) -> List[str]:
        """Every node's fusion-state digest, in node order."""
        return [node.digest() for node in self.nodes]

    def converged(self) -> bool:
        """True when all nodes hold bit-identical fusion state and the
        network has no undelivered messages left."""
        digests = self.digests()
        return len(set(digests)) == 1 and not self._pending
