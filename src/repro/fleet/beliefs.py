"""Evidence fusion: grow-only stores, belief projection, divergence.

The fleet's merge semantics live here, split into two halves on purpose:

- :class:`EvidenceStore` — the *state* each node replicates: per-region
  grow-only sets of :class:`~repro.fleet.evidence.SessionEvidence`
  keyed by session id, with a per-region
  :class:`~repro.fleet.versions.VersionVector`. Merging is set union +
  pointwise-max, so it is commutative, associative and idempotent by
  construction — delivery order, duplication and re-delivery of gossip
  summaries cannot change the converged state.
- :func:`project` — a *pure function* from a store's contents to the
  fused :class:`FleetMap`. Confidence weighting happens here, once, at
  read time: agreement between overlapping sessions raises a cell's
  confidence, disagreement (sessions that plausibly observed the cell
  but never touched it) decays it. Because projection is deterministic
  and order-independent (records are iterated in sorted session order),
  two nodes whose stores converge project *bit-identical* maps — which
  is exactly the headline equivalence property: a single node holding
  the union of all sessions is just a fleet of size one.

Per cell, with ``s`` = sessions whose trajectory touched it and ``n`` =
sessions whose inflated bbox covers it (``n >= s``):

    agreement  = s / n              # disagreement decays this toward 0
    saturation = 1 - 0.5 ** s       # each agreeing witness halves doubt
    confidence = agreement * saturation

A cell is *occupied* when confidence reaches the configured threshold.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.fleet.evidence import (
    EvidenceConfig,
    RegionKey,
    SessionEvidence,
    canonical_json,
)
from repro.fleet.versions import VersionVector


class EvidenceStore:
    """One node's replicated fusion state: regions of evidence + vectors.

    All mutation goes through :meth:`add` (local ingest) and
    :meth:`merge_region` (gossip); both only ever grow the record sets,
    so any interleaving of the two converges to the same state.
    """

    def __init__(self, config: Optional[EvidenceConfig] = None):
        self.config = config or EvidenceConfig()
        self._regions: Dict[RegionKey, Dict[str, SessionEvidence]] = {}
        self._versions: Dict[RegionKey, VersionVector] = {}

    def add(self, evidence: SessionEvidence, origin: str) -> bool:
        """Ingest a locally observed record; True when it was new.

        ``origin`` is the ingesting node's id — its version-vector
        component is bumped only for genuinely new records, so duplicate
        uploads never manufacture causality.
        """
        region = evidence.region(self.config)
        records = self._regions.setdefault(region, {})
        if evidence.session_id in records:
            return False
        records[evidence.session_id] = evidence
        self._versions[region] = self.version(region).bump(origin)
        return True

    def merge_region(
        self,
        region: RegionKey,
        records: Iterable[SessionEvidence],
        version: VersionVector,
    ) -> int:
        """Union a full-region summary into the store; returns #new records.

        The version merge happens even when every record was already
        known — learning that another node's history is covered is what
        lets vector comparison prove staleness later.
        """
        mine = self._regions.setdefault(region, {})
        added = 0
        for record in records:
            if record.session_id not in mine:
                mine[record.session_id] = record
                added += 1
        self._versions[region] = self.version(region).merge(version)
        return added

    def version(self, region: RegionKey) -> VersionVector:
        """The region's current version vector (empty when untouched)."""
        return self._versions.get(region, VersionVector())

    def regions(self) -> List[RegionKey]:
        """All known regions, sorted (deterministic iteration order)."""
        return sorted(self._regions)

    def records(self, region: RegionKey) -> List[SessionEvidence]:
        """The region's records in sorted session-id order."""
        return [
            self._regions[region][sid]
            for sid in sorted(self._regions.get(region, {}))
        ]

    def all_records(self) -> List[SessionEvidence]:
        """Every record in the store, sorted by session id."""
        merged: Dict[str, SessionEvidence] = {}
        for records in self._regions.values():
            merged.update(records)
        return [merged[sid] for sid in sorted(merged)]

    def n_records(self) -> int:
        """Total records held across all regions."""
        return sum(len(records) for records in self._regions.values())

    def digest(self) -> str:
        """Content hash of the full state (records + vectors)."""
        payload = {
            "regions": {
                "/".join(map(str, region)): {
                    "sids": sorted(self._regions[region]),
                    "vv": self.version(region).to_payload(),
                }
                for region in self.regions()
            }
        }
        return hashlib.sha1(
            canonical_json(payload).encode("utf-8")
        ).hexdigest()


@dataclass(frozen=True)
class FloorBelief:
    """Fused occupancy belief for one (building, floor)."""

    building: str
    floor: int
    #: Absolute cell -> fused confidence, nonzero cells only.
    confidences: Dict[Tuple[int, int], float]
    #: Absolute cell -> number of sessions that touched it.
    support: Dict[Tuple[int, int], int]
    #: Cells whose confidence reached the occupancy threshold, sorted.
    occupied: Tuple[Tuple[int, int], ...]


@dataclass(frozen=True)
class RoomBelief:
    """Fused belief about one room, accumulated from SRS spins."""

    building: str
    floor: int
    name: Optional[str]
    center: Tuple[float, float]
    n_observations: int
    confidence: float


@dataclass(frozen=True)
class FleetMap:
    """The fused fleet floor plan: a pure projection of an evidence set."""

    floors: Dict[Tuple[str, int], FloorBelief]
    rooms: Dict[Tuple[str, int, str], RoomBelief]
    config: EvidenceConfig = field(default_factory=EvidenceConfig)

    def to_payload(self) -> Dict:
        """Canonical JSON-safe form (digest and report substrate)."""
        floors = {}
        for (building, floor), belief in sorted(self.floors.items()):
            floors[f"{building}/{floor}"] = {
                "occupied": [list(c) for c in belief.occupied],
                "confidence": [
                    [cx, cy, belief.confidences[(cx, cy)]]
                    for cx, cy in sorted(belief.confidences)
                ],
            }
        rooms = {}
        for key, room in sorted(self.rooms.items()):
            rooms["/".join(map(str, key))] = {
                "name": room.name,
                "center": list(room.center),
                "n": room.n_observations,
                "confidence": room.confidence,
            }
        return {"floors": floors, "rooms": rooms}

    def digest(self) -> str:
        """Content hash — two maps are bit-identical iff digests match."""
        return hashlib.sha1(
            canonical_json(self.to_payload()).encode("utf-8")
        ).hexdigest()


def project(store: EvidenceStore) -> FleetMap:
    """Project a store's evidence set into the fused :class:`FleetMap`.

    Pure and order-independent: records are grouped per (building,
    floor) and iterated in sorted session-id order, so any two stores
    with equal contents — however they got there — project identical
    maps.
    """
    config = store.config
    by_floor: Dict[Tuple[str, int], List[SessionEvidence]] = {}
    for record in store.all_records():
        by_floor.setdefault((record.building, record.floor), []).append(record)

    floors: Dict[Tuple[str, int], FloorBelief] = {}
    rooms: Dict[Tuple[str, int, str], RoomBelief] = {}
    margin = config.observer_margin
    for (building, floor), records in sorted(by_floor.items()):
        # Array extent: the hull of every record's inflated bbox.
        min_cx = min(r.bbox[0] for r in records) - margin
        min_cy = min(r.bbox[1] for r in records) - margin
        max_cx = max(r.bbox[2] for r in records) + margin
        max_cy = max(r.bbox[3] for r in records) + margin
        shape = (max_cy - min_cy + 1, max_cx - min_cx + 1)
        support = np.zeros(shape, dtype=np.int64)
        observers = np.zeros(shape, dtype=np.int64)
        for record in records:  # already session-sorted per floor
            for cx, cy in record.cells:
                support[cy - min_cy, cx - min_cx] += 1
            x0, y0, x1, y1 = record.bbox
            observers[
                y0 - margin - min_cy : y1 + margin - min_cy + 1,
                x0 - margin - min_cx : x1 + margin - min_cx + 1,
            ] += 1
        agreement = np.zeros(shape, dtype=np.float64)
        seen = observers > 0
        agreement[seen] = support[seen] / observers[seen]
        confidence = agreement * (1.0 - np.power(0.5, support))
        confidence = np.round(confidence, 6)

        confidences: Dict[Tuple[int, int], float] = {}
        supports: Dict[Tuple[int, int], int] = {}
        occupied: List[Tuple[int, int]] = []
        for row, col in zip(*np.nonzero(support)):
            cell = (int(col) + min_cx, int(row) + min_cy)
            confidences[cell] = float(confidence[row, col])
            supports[cell] = int(support[row, col])
            if confidence[row, col] >= config.occupancy_threshold:
                occupied.append(cell)
        floors[(building, floor)] = FloorBelief(
            building=building,
            floor=floor,
            confidences=confidences,
            support=supports,
            occupied=tuple(sorted(occupied)),
        )

        # Room beliefs from SRS spins, keyed by room name (or spin locus
        # when the device had no annotation).
        spins: Dict[str, List[SessionEvidence]] = {}
        for record in records:
            if record.task != "SRS" or record.room_center is None:
                continue
            if record.room_name is not None:
                key = record.room_name
            else:
                qx = int(np.floor(record.room_center[0] / 2.5))
                qy = int(np.floor(record.room_center[1] / 2.5))
                key = f"@{qx}:{qy}"
            spins.setdefault(key, []).append(record)
        for key, group in sorted(spins.items()):
            centers = np.array([g.room_center for g in group])
            center = centers.mean(axis=0)
            names = [g.room_name for g in group if g.room_name is not None]
            rooms[(building, floor, key)] = RoomBelief(
                building=building,
                floor=floor,
                name=names[0] if names else None,
                center=(round(float(center[0]), 4), round(float(center[1]), 4)),
                n_observations=len(group),
                confidence=round(1.0 - 0.5 ** len(group), 6),
            )
    return FleetMap(floors=floors, rooms=rooms, config=config)


def divergence(a: FleetMap, b: FleetMap) -> Dict[str, float]:
    """How far apart two fused maps are, averaged over their floors.

    - ``occupied_jaccard_distance``: 1 − |A∩B| / |A∪B| over occupied
      cells (0 = identical footprints);
    - ``confidence_mae``: mean |Δconfidence| over the union of nonzero
      cells.

    Both are 0.0 exactly when the maps agree, which makes the per-node
    divergence curve of a fleet run hit a clean floor at convergence.
    """
    keys = sorted(set(a.floors) | set(b.floors))
    if not keys:
        return {"occupied_jaccard_distance": 0.0, "confidence_mae": 0.0}
    jaccard_total = 0.0
    mae_total = 0.0
    for key in keys:
        belief_a = a.floors.get(key)
        belief_b = b.floors.get(key)
        occ_a = set(belief_a.occupied) if belief_a else set()
        occ_b = set(belief_b.occupied) if belief_b else set()
        union = occ_a | occ_b
        if union:
            jaccard_total += 1.0 - len(occ_a & occ_b) / len(union)
        conf_a = belief_a.confidences if belief_a else {}
        conf_b = belief_b.confidences if belief_b else {}
        cells = set(conf_a) | set(conf_b)
        if cells:
            mae_total += sum(
                abs(conf_a.get(c, 0.0) - conf_b.get(c, 0.0)) for c in cells
            ) / len(cells)
    return {
        "occupied_jaccard_distance": round(jaccard_total / len(keys), 6),
        "confidence_mae": round(mae_total / len(keys), 6),
    }
