"""Fused-vs-central comparison and ground-truth scoring of fleet maps.

Two questions get answered here, with the eval layer's own machinery:

1. **Did the fleet converge to the centralized answer?**
   :func:`fused_vs_central_metrics` reduces a pair of
   :class:`~repro.fleet.beliefs.FleetMap` projections to a few scalar
   metrics, and :func:`compare_fused_to_central` gates them through
   :func:`repro.eval.scorecard.compare_metric_bands` — the same
   tolerance-band comparator the CI accuracy gate uses — against the
   perfect-agreement reference. In the partition-free case the maps are
   bit-identical (equal digests) and every metric sits exactly at its
   reference; under healed loss/partitions the bands say how much
   residual disagreement is acceptable.

2. **Is the fused map any good?** :func:`fleet_skeleton` lifts a
   fused floor belief into a :class:`~repro.core.skeleton.SkeletonResult`
   so :func:`repro.eval.hallway_metrics.evaluate_hallway_shape` can score
   it against the procedural ground-truth plan, exactly as the
   single-node scorecard scores pipeline output.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.core.skeleton import OccupancyGrid, SkeletonResult
from repro.eval.hallway_metrics import evaluate_hallway_shape
from repro.eval.scorecard import compare_metric_bands
from repro.fleet.beliefs import FleetMap, FloorBelief
from repro.geometry.primitives import BoundingBox
from repro.world.floorplan_model import FloorPlan

#: Score-like fused-vs-central metrics (reference 1.0): allowed drop.
FLEET_SCORE_TOLERANCES: Dict[str, float] = {
    "occupied_iou": 0.05,
    "room_match_fraction": 0.0,  # a whole lost room is never tolerable
}

#: Error-like fused-vs-central metrics (reference 0.0): allowed rise.
FLEET_ERROR_TOLERANCES: Dict[str, float] = {
    "confidence_mae": 0.05,
    "room_center_delta_m": 0.25,
}

#: The reference every fused map is banded against: perfect agreement
#: with the central projection.
FLEET_REFERENCE: Dict[str, float] = {
    "occupied_iou": 1.0,
    "room_match_fraction": 1.0,
    "confidence_mae": 0.0,
    "room_center_delta_m": 0.0,
}


def fused_vs_central_metrics(
    fused: FleetMap, central: FleetMap
) -> Dict[str, float]:
    """Scalar agreement metrics between a node's map and the central one.

    - ``occupied_iou``: intersection-over-union of occupied cells,
      averaged over floors (1.0 = identical footprints);
    - ``confidence_mae``: mean absolute confidence delta over nonzero
      cells, averaged over floors;
    - ``room_match_fraction``: fraction of central room beliefs present
      in the fused map (by key);
    - ``room_center_delta_m``: mean distance between matched room
      centres, metres.
    """
    floors = sorted(set(fused.floors) | set(central.floors))
    iou_total = 0.0
    mae_total = 0.0
    for key in floors:
        a = fused.floors.get(key)
        b = central.floors.get(key)
        occ_a = set(a.occupied) if a else set()
        occ_b = set(b.occupied) if b else set()
        union = occ_a | occ_b
        iou_total += len(occ_a & occ_b) / len(union) if union else 1.0
        conf_a = a.confidences if a else {}
        conf_b = b.confidences if b else {}
        cells = set(conf_a) | set(conf_b)
        if cells:
            mae_total += sum(
                abs(conf_a.get(c, 0.0) - conf_b.get(c, 0.0)) for c in cells
            ) / len(cells)
    n_floors = max(1, len(floors))

    matched = [key for key in central.rooms if key in fused.rooms]
    deltas = [
        float(
            np.hypot(
                fused.rooms[key].center[0] - central.rooms[key].center[0],
                fused.rooms[key].center[1] - central.rooms[key].center[1],
            )
        )
        for key in matched
    ]
    return {
        "occupied_iou": round(iou_total / n_floors, 6),
        "confidence_mae": round(mae_total / n_floors, 6),
        "room_match_fraction": round(
            len(matched) / len(central.rooms), 6
        ) if central.rooms else 1.0,
        "room_center_delta_m": round(
            sum(deltas) / len(deltas), 6
        ) if deltas else 0.0,
    }


def compare_fused_to_central(
    fused: FleetMap,
    central: FleetMap,
    tolerance_scale: float = 1.0,
    label: str = "fused",
) -> List[str]:
    """Tolerance-band problems of a fused map versus the central one.

    Empty list = within bands. Bit-identical maps (equal digests) short
    circuit to no problems by construction.
    """
    if fused.digest() == central.digest():
        return []
    return compare_metric_bands(
        fused_vs_central_metrics(fused, central),
        FLEET_REFERENCE,
        FLEET_SCORE_TOLERANCES,
        FLEET_ERROR_TOLERANCES,
        tolerance_scale=tolerance_scale,
        label=label,
    )


def fleet_skeleton(
    belief: FloorBelief, cell_size: float = 0.5
) -> Optional[SkeletonResult]:
    """Lift a fused floor belief into the eval layer's skeleton shape.

    Builds an :class:`~repro.core.skeleton.OccupancyGrid` over the
    belief's extent, fills counts from per-cell support and masks from
    the occupied set — enough structure for
    :func:`~repro.eval.hallway_metrics.evaluate_hallway_shape` to
    rasterize truth onto the same grid and align. Returns None for an
    empty belief.
    """
    if not belief.confidences:
        return None
    xs = [c[0] for c in belief.confidences]
    ys = [c[1] for c in belief.confidences]
    min_cx, max_cx = min(xs), max(xs)
    min_cy, max_cy = min(ys), max(ys)
    bounds = BoundingBox(
        min_x=min_cx * cell_size,
        min_y=min_cy * cell_size,
        max_x=(max_cx + 1) * cell_size,
        max_y=(max_cy + 1) * cell_size,
    )
    grid = OccupancyGrid(bounds, cell_size)
    probability = np.zeros((grid.rows, grid.cols), dtype=np.float64)
    occupied = np.zeros((grid.rows, grid.cols), dtype=bool)
    for (cx, cy), support in belief.support.items():
        row, col = cy - min_cy, cx - min_cx
        if grid.in_bounds(row, col):
            grid.counts[row, col] = support
            probability[row, col] = belief.confidences[(cx, cy)]
    for cx, cy in belief.occupied:
        row, col = cy - min_cy, cx - min_cx
        if grid.in_bounds(row, col):
            occupied[row, col] = True
    return SkeletonResult(
        grid=grid,
        probability=probability,
        binarized=occupied.copy(),
        alpha_mask=occupied.copy(),
        skeleton=occupied,
    )


def score_fleet_against_truth(
    fleet_map: FleetMap,
    plans: Dict[str, FloorPlan],
    cell_size: float = 0.5,
) -> Dict[str, Dict[str, float]]:
    """Hallway-shape scores of a fused map per building, vs ground truth.

    Returns ``{building: {hallway_precision, hallway_recall, hallway_f}}``
    for every building with both a plan and a non-empty fused belief.
    """
    scores: Dict[str, Dict[str, float]] = {}
    for (building, _floor), belief in sorted(fleet_map.floors.items()):
        plan = plans.get(building)
        if plan is None:
            continue
        skeleton = fleet_skeleton(belief, cell_size=cell_size)
        if skeleton is None:
            continue
        shape = evaluate_hallway_shape(skeleton, plan)
        scores[building] = {
            "hallway_precision": round(shape.precision, 4),
            "hallway_recall": round(shape.recall, 4),
            "hallway_f": round(shape.f_measure, 4),
        }
    return scores
