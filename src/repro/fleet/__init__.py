"""City-scale fleet simulation: distributed ingest with gossip map fusion.

The "millions of users" tier above :mod:`repro.serving`: no single node
ever holds the whole crowd. N simulated ingest nodes each observe a
partial, overlapping slice of a multi-building crowd, keep local partial
maps, and exchange compact per-session evidence over a seeded
anti-entropy gossip mesh with fault-injected links. Fusion is a pure,
deterministic projection of a grow-only evidence set with per-region
version vectors, so merges are commutative/associative/idempotent and
the converged fleet map is *bit-identical* to a single node run on the
union of all sessions.

- :mod:`repro.fleet.evidence` — compact per-session evidence records;
- :mod:`repro.fleet.versions` — per-region version vectors;
- :mod:`repro.fleet.beliefs` — grow-only stores, confidence-weighted
  projection, divergence measures;
- :mod:`repro.fleet.node` — one ingest node (store + optional private
  serving stack + summary exchange);
- :mod:`repro.fleet.gossip` — seeded push anti-entropy over
  :class:`~repro.backend.faults.LinkFaultModel` links;
- :mod:`repro.fleet.sim` — the end-to-end simulation and its
  deterministic convergence report (``python -m repro fleet-sim``);
- :mod:`repro.fleet.compare` — fused-vs-central tolerance bands and
  ground-truth scoring through the eval layer.
"""

from repro.fleet.evidence import (
    EvidenceConfig,
    SessionEvidence,
    extract_evidence,
    canonical_json,
)
from repro.fleet.versions import VersionVector
from repro.fleet.beliefs import (
    EvidenceStore,
    FleetMap,
    FloorBelief,
    RoomBelief,
    project,
    divergence,
)
from repro.fleet.node import FleetNode, FleetSummary
from repro.fleet.gossip import GossipConfig, GossipMesh
from repro.fleet.sim import (
    FleetSimConfig,
    build_fleet_crowd,
    run_fleet_simulation,
    render_fleet_report,
    report_json,
)
from repro.fleet.compare import (
    FLEET_SCORE_TOLERANCES,
    FLEET_ERROR_TOLERANCES,
    fused_vs_central_metrics,
    compare_fused_to_central,
    fleet_skeleton,
    score_fleet_against_truth,
)

__all__ = [
    "EvidenceConfig",
    "SessionEvidence",
    "extract_evidence",
    "canonical_json",
    "VersionVector",
    "EvidenceStore",
    "FleetMap",
    "FloorBelief",
    "RoomBelief",
    "project",
    "divergence",
    "FleetNode",
    "FleetSummary",
    "GossipConfig",
    "GossipMesh",
    "FleetSimConfig",
    "build_fleet_crowd",
    "run_fleet_simulation",
    "render_fleet_report",
    "report_json",
    "FLEET_SCORE_TOLERANCES",
    "FLEET_ERROR_TOLERANCES",
    "fused_vs_central_metrics",
    "compare_fused_to_central",
    "fleet_skeleton",
    "score_fleet_against_truth",
]
