"""A simulated fleet ingest node: local maps, evidence store, summaries.

Each :class:`FleetNode` stands in for one regional ingest deployment. It
sees only its slice of the crowd, and runs two parallel map products:

- the **fusion state** (:class:`~repro.fleet.beliefs.EvidenceStore`)
  that gossip replicates fleet-wide — compact per-session evidence plus
  per-region version vectors;
- optionally, the node's own **serving stack** — a private
  :class:`~repro.serving.shards.ShardManager` (hence its own
  :class:`~repro.core.incremental.IncrementalCrowdMap` instances and
  versioned snapshot stores) fed the same sessions, exactly as a
  standalone deployment would publish its partial regional map.

Every node gets its *own* :class:`~repro.backend.telemetry.TelemetryRegistry`
by default, so N nodes in one process never cross-count — the property
the multi-instance regression tests pin down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.backend.telemetry import TelemetryRegistry
from repro.fleet.beliefs import EvidenceStore, FleetMap, project
from repro.fleet.evidence import (
    EvidenceConfig,
    RegionKey,
    SessionEvidence,
    canonical_json,
    extract_evidence,
)
from repro.fleet.versions import VersionVector
from repro.serving.shards import ShardManager


@dataclass(frozen=True)
class FleetSummary:
    """One gossip message: full state of the sender's chosen regions.

    Anti-entropy ships *whole regions* (records + version vector) —
    never deltas — which is what keeps the version-vector dominance
    check sound (see :mod:`repro.fleet.versions`). The one exception is
    an **ack region**: an empty record tuple, meaning "my vector for
    this region, content elided because you provably have it". Receivers
    never merge ack vectors into their own store — they only update what
    they believe the sender knows, which is what quiesces traffic.

    ``kind`` is ``"push"`` for round-driven pushes and ``"response"``
    for the reconcile message a delivered push triggers; responses are
    never themselves responded to (no ack storms).
    """

    sender: str
    #: region -> (version vector, records sorted by session id).
    regions: Dict[
        RegionKey, Tuple[VersionVector, Tuple[SessionEvidence, ...]]
    ]
    kind: str = "push"

    def to_payload(self) -> Dict:
        """Wire form (canonical dict) — also the unit of byte accounting."""
        return {
            "sender": self.sender,
            "kind": self.kind,
            "regions": {
                "/".join(map(str, region)): {
                    "vv": vv.to_payload(),
                    "records": [r.to_payload() for r in records],
                }
                for region, (vv, records) in sorted(self.regions.items())
            },
        }

    def payload_bytes(self) -> int:
        """Serialized size in bytes, as counted by the gossip telemetry."""
        return len(canonical_json(self.to_payload()).encode("utf-8"))


class FleetNode:
    """One ingest node: slice-local ingest, summary exchange, projection."""

    def __init__(
        self,
        node_id: str,
        config: Optional[EvidenceConfig] = None,
        telemetry: Optional[TelemetryRegistry] = None,
        maintain_local_maps: bool = False,
        shard_manager: Optional[ShardManager] = None,
    ):
        self.node_id = node_id
        self.config = config or EvidenceConfig()
        #: Per-node registry by default: fleet nodes must never share the
        #: process-wide one, or N nodes' counters collapse into one.
        self.telemetry = telemetry or TelemetryRegistry()
        self.store = EvidenceStore(self.config)
        self.shards: Optional[ShardManager] = None
        if maintain_local_maps or shard_manager is not None:
            self.shards = shard_manager or ShardManager(
                telemetry=self.telemetry
            )
        #: What this node believes each peer knows, per region — learned
        #: *only* from summaries that actually arrived (a push is never
        #: assumed delivered, so lost messages are retried next round).
        self._peer_versions: Dict[str, Dict[RegionKey, VersionVector]] = {}
        self.sessions_ingested = 0

    # ------------------------------------------------------------------
    # ingest
    # ------------------------------------------------------------------

    def ingest_session(self, session) -> Optional[SessionEvidence]:
        """Feed one locally observed session into the node.

        Returns the extracted evidence record (None when the session
        carries none). Idempotent per session id — re-uploads neither
        grow the store nor bump version vectors.
        """
        evidence = extract_evidence(session, self.config)
        self.sessions_ingested += 1
        self.telemetry.counter(
            "fleet_sessions_ingested", "sessions observed by this node"
        ).inc()
        if evidence is None:
            return None
        if self.store.add(evidence, self.node_id):
            self.telemetry.counter(
                "fleet_evidence_records", "distinct evidence records stored"
            ).inc()
            if self.shards is not None:
                self.shards.ingest_session(session)
        return evidence

    # ------------------------------------------------------------------
    # gossip
    # ------------------------------------------------------------------

    def summary_for(self, peer_id: str) -> Optional[FleetSummary]:
        """The push this node owes ``peer_id``, or None when up to date.

        A region is included unless the peer's last-heard vector already
        dominates ours — so traffic decays to zero once the fleet
        converges and every node has heard every other's vectors.
        """
        known = self._peer_versions.get(peer_id, {})
        regions = {}
        for region in self.store.regions():
            mine = self.store.version(region)
            if known.get(region, VersionVector()).dominates(mine):
                continue
            regions[region] = (mine, tuple(self.store.records(region)))
        if not regions:
            return None
        return FleetSummary(sender=self.node_id, regions=regions)

    def receive_summary(self, summary: FleetSummary) -> Dict[str, int]:
        """Merge an arriving summary; safe under loss, delay, duplication.

        Stale regions (vector already dominated) are dropped without
        reading their records, and ack regions (no records) never touch
        the store at all. Either way the sender's vectors are recorded
        as peer knowledge, which is what quiesces future pushes back
        toward that sender.
        """
        merged = 0
        stale = 0
        known = self._peer_versions.setdefault(summary.sender, {})
        for region, (version, records) in sorted(summary.regions.items()):
            if not records:
                pass  # ack: vector without content must not merge
            elif self.store.version(region).dominates(version):
                stale += 1
            else:
                merged += self.store.merge_region(region, records, version)
            known[region] = known.get(region, VersionVector()).merge(version)
        self.telemetry.counter(
            "fleet_records_merged", "evidence records learned via gossip"
        ).inc(merged)
        self.telemetry.counter(
            "fleet_stale_regions", "summary regions dropped as stale"
        ).inc(stale)
        return {"merged_records": merged, "stale_regions": stale}

    def response_to(self, summary: FleetSummary) -> Optional[FleetSummary]:
        """The reconcile response a just-merged push earns its sender.

        For every region the push covered: when this node (post-merge)
        holds exactly what the sender asserted, reply with an ack region
        (vector only) so the sender stops re-pushing; when it holds
        more, reply with the full region so the sync completes in one
        exchange. Only ``"push"`` summaries get responses — never
        responses themselves — so reconciliation terminates.
        """
        if summary.kind != "push":
            return None
        regions = {}
        for region, (version, _records) in sorted(summary.regions.items()):
            mine = self.store.version(region)
            if version.dominates(mine):
                regions[region] = (mine, ())
            else:
                regions[region] = (mine, tuple(self.store.records(region)))
        if not regions:
            return None
        return FleetSummary(
            sender=self.node_id, regions=regions, kind="response"
        )

    # ------------------------------------------------------------------
    # projection
    # ------------------------------------------------------------------

    def fused_map(self) -> FleetMap:
        """This node's current fused belief (pure projection of its store)."""
        return project(self.store)

    def digest(self) -> str:
        """Content hash of the node's fusion state."""
        return self.store.digest()
