"""Per-region version vectors — causality tracking for fleet gossip.

Each node keeps one :class:`VersionVector` per map region. A node bumps
its own component when it ingests a *new* session into that region;
summaries carry the sender's full region state together with its vector,
and receivers merge both (set union of records, pointwise max of
vectors).

The invariant that makes vectors useful here: **component** ``X: n``
**implies possession of everything node X held in that region at its
n-th local bump**. Local ingests only bump after the record is stored,
states grow monotonically, and summaries always carry the *whole* region
(never a delta), so the invariant survives both bump and merge. Two
consequences the gossip layer leans on:

- a summary whose vector is dominated by the receiver's is provably
  stale — it can be dropped without reading its records (the
  late/out-of-order fast path);
- a node can decide it has nothing new for a peer by comparing vectors,
  which is what drives gossip traffic to zero after convergence.
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping, Optional


class VersionVector:
    """An immutable mapping ``node_id -> update counter``.

    All operations return new vectors; instances hash/compare by value so
    they can key dicts and appear in sets.
    """

    __slots__ = ("_counters",)

    def __init__(self, counters: Optional[Mapping[str, int]] = None):
        items = {}
        for node, count in (counters or {}).items():
            count = int(count)
            if count < 0:
                raise ValueError("version counters must be non-negative")
            if count > 0:
                items[node] = count
        self._counters: Dict[str, int] = dict(sorted(items.items()))

    def get(self, node: str) -> int:
        """This node's counter (0 when the node never updated the region)."""
        return self._counters.get(node, 0)

    def bump(self, node: str) -> "VersionVector":
        """A new vector with ``node``'s component incremented by one."""
        merged = dict(self._counters)
        merged[node] = merged.get(node, 0) + 1
        return VersionVector(merged)

    def merge(self, other: "VersionVector") -> "VersionVector":
        """Pointwise max — the least upper bound of the two histories."""
        merged = dict(self._counters)
        for node, count in other._counters.items():
            if count > merged.get(node, 0):
                merged[node] = count
        return VersionVector(merged)

    def dominates(self, other: "VersionVector") -> bool:
        """True when every component of ``other`` is <= ours.

        ``a.dominates(b)`` means a state carrying ``a`` already contains
        everything a full-region summary carrying ``b`` could add.
        """
        return all(
            self.get(node) >= count for node, count in other._counters.items()
        )

    def items(self) -> Iterator:
        """Sorted ``(node, counter)`` pairs (zero components omitted)."""
        return iter(self._counters.items())

    def to_payload(self) -> Dict[str, int]:
        """Wire form: a plain sorted dict."""
        return dict(self._counters)

    @staticmethod
    def from_payload(payload: Mapping[str, int]) -> "VersionVector":
        """Rebuild from wire form."""
        return VersionVector(payload)

    def __eq__(self, other) -> bool:
        if not isinstance(other, VersionVector):
            return NotImplemented
        return self._counters == other._counters

    def __hash__(self) -> int:
        return hash(tuple(self._counters.items()))

    def __bool__(self) -> bool:
        return bool(self._counters)

    def __repr__(self) -> str:
        inner = ",".join(f"{n}:{c}" for n, c in self._counters.items())
        return f"VersionVector({inner})"
