"""CrowdMap: indoor floor plan reconstruction from crowdsourced
sensor-rich videos.

A from-scratch reproduction of *CrowdMap: Accurate Reconstruction of
Indoor Floor Plans from Crowdsourced Sensor-Rich Videos* (Chen, Li, Ren,
Qiao - ICDCS 2015), including every substrate the system needs offline:

- :mod:`repro.core` - the CrowdMap pipeline itself (key-frame selection,
  hierarchical comparison, sequence-based trajectory aggregation, floor
  path skeleton, panoramas, room layouts, floor plan assembly);
- :mod:`repro.vision` - pure-numpy computer vision (SURF, HOG, color
  indexing, wavelet signatures, stitching, LSD, Hough, Otsu, RANSAC);
- :mod:`repro.sensors` - IMU simulation, step counting, heading fusion,
  dead reckoning;
- :mod:`repro.world` - procedural ground-truth buildings, a raycasting
  renderer, and the simulated crowd;
- :mod:`repro.backend` - the client-cloud dataflow (chunked uploads,
  document store, queue, scheduler, worker pool);
- :mod:`repro.baselines` - the comparators from the paper's evaluation;
- :mod:`repro.eval` - the paper's metrics and report rendering.

Quickstart::

    from repro import CrowdMapPipeline, CrowdMapConfig
    from repro.world import build_lab1, generate_crowd_dataset, CrowdConfig

    plan = build_lab1()
    dataset = generate_crowd_dataset(plan, CrowdConfig(n_users=6, seed=0))
    result = CrowdMapPipeline(CrowdMapConfig()).run(dataset)
    print(result.floorplan.render_ascii())
"""

from repro.core import CrowdMapConfig, CrowdMapPipeline, ReconstructionResult


def _wire_dataflow() -> None:
    """Assemble the dataflow planner above both of its layers.

    ``repro.dataflow`` sits below ``backend`` in the CM010 layer DAG, so
    it cannot import the cache/worker/telemetry modules itself; and
    ``core`` sits below ``dataflow``, so the pipeline cannot import the
    planner. This unlayered package root sees everything: it injects the
    backend surface into the planner runtime and the planner (plus the
    size dispatcher) into ``core``'s hooks. Runs at import time, before
    any pipeline can be constructed — including in worker processes,
    which import ``repro.core`` and therefore this package root first.
    """
    from repro.backend import batching, cache, workers
    from repro.backend.telemetry import default_registry
    from repro import dataflow
    from repro.core import keyframes as _keyframes
    from repro.core import pipeline as _pipeline

    dataflow.install_runtime(dataflow.PlannerRuntime(
        get_cache=cache.get_cache,
        frame_digest=cache.frame_digest,
        array_digest=cache.array_digest,
        config_fingerprint=cache.config_fingerprint,
        value_fingerprint=cache.value_fingerprint,
        plan_batches=batching.plan_batches,
        map_parallel=workers.map_parallel,
        map_with_failures=workers.map_with_failures,
        telemetry=default_registry,
    ))
    _pipeline.set_planner_factory(dataflow.DataflowPlanner)
    _keyframes.set_blur_dispatcher(dataflow.BlurDispatcher())


_wire_dataflow()

__version__ = "1.0.0"

__all__ = [
    "CrowdMapConfig",
    "CrowdMapPipeline",
    "ReconstructionResult",
    "__version__",
]
