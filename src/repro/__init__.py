"""CrowdMap: indoor floor plan reconstruction from crowdsourced
sensor-rich videos.

A from-scratch reproduction of *CrowdMap: Accurate Reconstruction of
Indoor Floor Plans from Crowdsourced Sensor-Rich Videos* (Chen, Li, Ren,
Qiao - ICDCS 2015), including every substrate the system needs offline:

- :mod:`repro.core` - the CrowdMap pipeline itself (key-frame selection,
  hierarchical comparison, sequence-based trajectory aggregation, floor
  path skeleton, panoramas, room layouts, floor plan assembly);
- :mod:`repro.vision` - pure-numpy computer vision (SURF, HOG, color
  indexing, wavelet signatures, stitching, LSD, Hough, Otsu, RANSAC);
- :mod:`repro.sensors` - IMU simulation, step counting, heading fusion,
  dead reckoning;
- :mod:`repro.world` - procedural ground-truth buildings, a raycasting
  renderer, and the simulated crowd;
- :mod:`repro.backend` - the client-cloud dataflow (chunked uploads,
  document store, queue, scheduler, worker pool);
- :mod:`repro.baselines` - the comparators from the paper's evaluation;
- :mod:`repro.eval` - the paper's metrics and report rendering.

Quickstart::

    from repro import CrowdMapPipeline, CrowdMapConfig
    from repro.world import build_lab1, generate_crowd_dataset, CrowdConfig

    plan = build_lab1()
    dataset = generate_crowd_dataset(plan, CrowdConfig(n_users=6, seed=0))
    result = CrowdMapPipeline(CrowdMapConfig()).run(dataset)
    print(result.floorplan.render_ascii())
"""

from repro.core import CrowdMapConfig, CrowdMapPipeline, ReconstructionResult

__version__ = "1.0.0"

__all__ = [
    "CrowdMapConfig",
    "CrowdMapPipeline",
    "ReconstructionResult",
    "__version__",
]
