"""Wire format for uploaded sensor-rich sessions.

The mobile front-end uploads raw capture data (frames + IMU + Task-1
annotations); the cloud side decodes it and performs the device-side
processing steps (heading fusion, dead reckoning) before the pipeline
consumes it. Frames are quantized to 8 bits and zlib-compressed — the
stand-in for the paper's video codec — so an uploaded session is a single
JSON-compatible dict that survives the chunked transport byte-exactly.
"""

from __future__ import annotations

import base64
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from repro.sensors.dead_reckoning import DeadReckoningConfig, dead_reckon
from repro.sensors.imu import ImuConfig, ImuSample, ImuTrace
from repro.sensors.trajectory import Trajectory
from repro.vision.image import Frame
from repro.world.walker import CaptureSession


def encode_array(arr: np.ndarray) -> Dict[str, Any]:
    """Pack a numpy array as base64(zlib(raw bytes)) plus dtype/shape."""
    contiguous = np.ascontiguousarray(arr)
    packed = zlib.compress(contiguous.tobytes())
    return {
        "dtype": str(contiguous.dtype),
        "shape": list(contiguous.shape),
        "data": base64.b64encode(packed).decode("ascii"),
    }


def decode_array(blob: Dict[str, Any]) -> np.ndarray:
    """Inverse of :func:`encode_array`."""
    raw = zlib.decompress(base64.b64decode(blob["data"]))
    arr = np.frombuffer(raw, dtype=np.dtype(blob["dtype"]))
    return arr.reshape(blob["shape"]).copy()


def _encode_pixels(pixels: np.ndarray) -> Dict[str, Any]:
    """8-bit quantized frame encoding (the 'video codec')."""
    quantized = np.clip(np.round(pixels * 255.0), 0, 255).astype(np.uint8)
    return encode_array(quantized)


def _decode_pixels(blob: Dict[str, Any]) -> np.ndarray:
    return decode_array(blob).astype(np.float64) / 255.0


def session_to_payload(session: CaptureSession) -> Dict[str, Any]:
    """Serialize what the mobile front-end actually uploads.

    Note what is deliberately *absent*: the hidden ground truth. The cloud
    only ever sees frames, IMU samples and the Task-1 annotation.
    """
    imu = session.imu
    return {
        "session_id": session.session_id,
        "user_id": session.user_id,
        "building": session.building,
        "floor": session.floor,
        "task": session.task,
        "origin": [
            session.device_trajectory.points[0].x,
            session.device_trajectory.points[0].y,
        ]
        if len(session.device_trajectory)
        else [0.0, 0.0],
        "initial_heading": (
            session.device_trajectory.points[0].heading
            if len(session.device_trajectory)
            else 0.0
        ),
        "frames": [
            {
                "timestamp": f.timestamp,
                "frame_index": f.frame_index,
                "pixels": _encode_pixels(f.pixels),
            }
            for f in session.frames
        ],
        "imu": {
            "t": encode_array(imu.times()),
            "gyro_z": encode_array(imu.gyro()),
            "accel": encode_array(imu.accel()),
            "compass": encode_array(imu.compass()),
        },
    }


@dataclass
class DecodedSession:
    """Cloud-side view of one uploaded session.

    Quacks like :class:`~repro.world.walker.CaptureSession` for the parts
    the pipeline touches (``frames``, ``device_trajectory``, ``task``,
    ``session_id``, ``room_name``); ground truth is naturally absent.
    """

    session_id: str
    user_id: str
    building: str
    floor: int
    task: str
    frames: List[Frame]
    imu: ImuTrace
    device_trajectory: Trajectory
    room_name: Optional[str] = None
    metadata: dict = field(default_factory=dict)

    @property
    def n_frames(self) -> int:
        return len(self.frames)


def payload_to_session(payload: Dict[str, Any]) -> DecodedSession:
    """Decode an upload and run the server-side sensor processing.

    The cloud re-derives the fused heading track and the dead-reckoned
    trajectory from the raw IMU samples, then annotates each frame with the
    device pose at its capture instant — the same processing the walker
    performs client-side, now exercised on the decoded bytes.
    """
    imu_blob = payload["imu"]
    times = decode_array(imu_blob["t"])
    gyro = decode_array(imu_blob["gyro_z"])
    accel = decode_array(imu_blob["accel"])
    compass = decode_array(imu_blob["compass"])
    samples = [
        ImuSample(t=float(t), gyro_z=float(g), accel_magnitude=float(a),
                  compass_heading=float(c))
        for t, g, a, c in zip(times, gyro, accel, compass)
    ]
    imu = ImuTrace(samples=samples, config=ImuConfig())

    origin = tuple(payload.get("origin", (0.0, 0.0)))
    trajectory = dead_reckon(
        imu,
        DeadReckoningConfig(),
        origin=origin,
        initial_heading=payload.get("initial_heading"),
        user_id=payload["user_id"],
        trajectory_id=payload["session_id"],
    )

    from repro.sensors.heading import HeadingEstimator

    headings = HeadingEstimator().estimate(
        imu, initial_heading=payload.get("initial_heading")
    )
    frames = []
    for blob in payload["frames"]:
        t = float(blob["timestamp"])
        dev_heading = float(np.interp(t, times, headings)) if len(times) else 0.0
        idx = trajectory.nearest_index(t) if len(trajectory) else 0
        pos = (
            (trajectory[idx].x, trajectory[idx].y) if len(trajectory) else None
        )
        frames.append(
            Frame(
                pixels=_decode_pixels(blob["pixels"]),
                timestamp=t,
                heading=dev_heading,
                position=pos,
                frame_index=int(blob["frame_index"]),
                user_id=payload["user_id"],
            )
        )
    return DecodedSession(
        session_id=payload["session_id"],
        user_id=payload["user_id"],
        building=payload["building"],
        floor=int(payload["floor"]),
        task=payload["task"],
        frames=frames,
        imu=imu,
        device_trajectory=trajectory,
    )
