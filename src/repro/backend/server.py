"""Ingest server: upload handling, reassembly and storage.

Stands in for the Tornado + WebSocket front door: clients open an upload
session, stream chunks (possibly out of order, possibly duplicated), and
the server reassembles completed uploads, verifies them, stores the
payload in the document store, and enqueues a processing task. Incomplete
or corrupt uploads are rejected exactly like a production endpoint would.
"""

from __future__ import annotations

import itertools
import json
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.backend.chunking import Chunk, ChunkReassemblyError, reassemble_chunks
from repro.backend.datastore import DocumentStore
from repro.backend.queue import TaskQueue
from repro.backend.scheduler import ScheduledJob, SimulatedScheduler
from repro.backend.telemetry import TelemetryRegistry, default_registry


@dataclass
class UploadSession:
    """Server-side state of one in-flight upload."""

    upload_id: str
    user_id: str
    metadata: Dict[str, Any]
    chunks: Dict[int, Chunk] = field(default_factory=dict)
    expected_total: Optional[int] = None
    completed: bool = False
    opened_at: float = 0.0
    last_activity: float = 0.0

    def is_complete(self) -> bool:
        return (
            self.expected_total is not None
            and len(self.chunks) == self.expected_total
        )


class IngestServer:
    """Receives chunked uploads and hands complete payloads to the pipeline.

    ``metadata`` carries the Task-1 geo-spatial annotation (building
    location + floor number); it is stored alongside the payload so the
    pipeline can bucket sessions per floor.
    """

    RAW_COLLECTION = "raw_uploads"

    def __init__(
        self,
        store: DocumentStore,
        queue: Optional[TaskQueue] = None,
        telemetry: Optional[TelemetryRegistry] = None,
        clock: Optional[Callable[[], float]] = None,
    ):
        self.store = store
        self.queue = queue
        self.telemetry = telemetry or default_registry
        # Injectable clock (crowdlint CM002: no wall-clock reads here).
        # Without one, every session timestamps as 0.0 and TTL expiry is
        # inert until attach_ttl_sweep adopts a scheduler's virtual clock.
        self._clock: Callable[[], float] = clock or (lambda: 0.0)
        self._clock_injected = clock is not None
        self._sessions: Dict[str, UploadSession] = {}
        self._counter = itertools.count(1)
        self._lock = threading.RLock()
        self.store.collection(self.RAW_COLLECTION).create_index("building")

    def open_upload(self, user_id: str, metadata: Optional[Dict[str, Any]] = None) -> str:
        """Open an upload session; returns its id."""
        metadata = dict(metadata or {})
        if "building" not in metadata or "floor" not in metadata:
            raise ValueError("metadata must include 'building' and 'floor'")
        with self._lock:
            upload_id = f"up-{next(self._counter):06d}"
            now = self._clock()
            self._sessions[upload_id] = UploadSession(
                upload_id=upload_id,
                user_id=user_id,
                metadata=metadata,
                opened_at=now,
                last_activity=now,
            )
            return upload_id

    def receive_chunk(self, chunk: Chunk) -> Dict[str, Any]:
        """Accept one chunk; returns an ack message (or raises on protocol errors)."""
        with self._lock:
            session = self._sessions.get(chunk.upload_id)
            if session is None:
                raise KeyError(f"unknown upload {chunk.upload_id!r}")
            if session.completed:
                raise ValueError(f"upload {chunk.upload_id!r} already finalized")
            if not chunk.verify():
                self.telemetry.counter(
                    "ingest_chunk_crc_failures",
                    "chunks that failed their CRC check",
                ).inc()
                return {"status": "retry", "index": chunk.index, "reason": "crc"}
            session.last_activity = self._clock()
            if session.expected_total is None:
                session.expected_total = chunk.total
            elif session.expected_total != chunk.total:
                raise ValueError("chunk total mismatch within upload")
            session.chunks[chunk.index] = chunk
            self.telemetry.counter(
                "ingest_chunks_received", "chunks accepted"
            ).inc()
            return {
                "status": "ok",
                "index": chunk.index,
                "received": len(session.chunks),
                "expected": session.expected_total,
            }

    def finalize_upload(self, upload_id: str) -> int:
        """Reassemble, verify, store and enqueue a completed upload.

        Returns the stored document's id. Raises
        :class:`ChunkReassemblyError` if chunks are missing or corrupt.
        """
        with self._lock:
            session = self._sessions.get(upload_id)
            if session is None:
                raise KeyError(f"unknown upload {upload_id!r}")
            if not session.is_complete():
                have = sorted(session.chunks)
                self.telemetry.counter(
                    "ingest_finalize_failures",
                    "finalize attempts rejected (incomplete or corrupt)",
                ).inc()
                raise ChunkReassemblyError(
                    f"upload {upload_id} incomplete: have {len(have)} of "
                    f"{session.expected_total}"
                )
            try:
                data = reassemble_chunks(list(session.chunks.values()))
            except ChunkReassemblyError:
                self.telemetry.counter(
                    "ingest_finalize_failures",
                    "finalize attempts rejected (incomplete or corrupt)",
                ).inc()
                raise
            doc = self.store.insert(
                self.RAW_COLLECTION,
                {
                    "upload_id": upload_id,
                    "user_id": session.user_id,
                    "building": session.metadata.get("building"),
                    "floor": session.metadata.get("floor"),
                    "metadata": session.metadata,
                    "payload": data,
                    "size": len(data),
                },
            )
            session.completed = True
            self.telemetry.counter(
                "ingest_uploads_finalized", "uploads stored"
            ).inc()
            self.telemetry.counter(
                "ingest_bytes_stored", "decompressed payload bytes"
            ).inc(len(data))
            if self.queue is not None:
                self.queue.submit(
                    "process_upload",
                    {"doc_id": doc.doc_id, "upload_id": upload_id},
                )
            return doc.doc_id

    def abandon_upload(self, upload_id: str) -> bool:
        """Discard an in-flight upload (client vanished mid-transfer).

        Dropped uploads are the crowdsourcing norm, not an error: the
        server frees the partial chunk buffer, counts the drop, and the
        caller may reopen a fresh upload later. Returns False when the
        id is unknown or already finalized (finalized uploads are data,
        not garbage).
        """
        with self._lock:
            session = self._sessions.get(upload_id)
            if session is None or session.completed:
                return False
            del self._sessions[upload_id]
            self.telemetry.counter(
                "ingest_uploads_abandoned",
                "in-flight uploads dropped before finalize",
            ).inc()
            return True

    def pending_uploads(self) -> List[str]:
        with self._lock:
            return [uid for uid, s in self._sessions.items() if not s.completed]

    def expire_stale(self, ttl: float, now: Optional[float] = None) -> List[str]:
        """Abandon pending uploads idle for ``ttl`` seconds or longer.

        Clients that vanish mid-transfer leave their chunk buffers behind;
        without a sweep those accumulate forever. Returns the upload ids
        expired, and counts them in ``ingest_uploads_expired`` (on top of
        the ``ingest_uploads_abandoned`` count every abandon records).
        """
        if ttl <= 0:
            raise ValueError("ttl must be positive")
        if now is None:
            now = self._clock()
        with self._lock:
            stale = [
                uid
                for uid, session in self._sessions.items()
                if not session.completed and now - session.last_activity >= ttl
            ]
        expired = [uid for uid in stale if self.abandon_upload(uid)]
        if expired:
            self.telemetry.counter(
                "ingest_uploads_expired",
                "pending uploads expired by the TTL sweep",
            ).inc(len(expired))
        return expired

    def attach_ttl_sweep(
        self,
        scheduler: SimulatedScheduler,
        ttl: float,
        interval: Optional[float] = None,
    ) -> ScheduledJob:
        """Register the periodic TTL sweep on ``scheduler``.

        If the server was constructed without an injected clock, it
        adopts the scheduler's virtual clock so new sessions timestamp
        consistently with the sweep that will judge them.
        """
        if not self._clock_injected:
            self._clock = lambda: scheduler.now
            self._clock_injected = True
        return scheduler.add_job(
            "upload_ttl_sweep",
            interval if interval is not None else ttl,
            lambda: self.expire_stale(ttl, now=scheduler.now),
        )


def encode_session_payload(payload: Dict[str, Any]) -> bytes:
    """Serialize an upload payload dict (JSON; arrays as nested lists)."""
    return json.dumps(payload, sort_keys=True).encode("utf-8")


def decode_session_payload(data: bytes) -> Dict[str, Any]:
    """Inverse of :func:`encode_session_payload`."""
    return json.loads(data.decode("utf-8"))
