"""Deterministic fault injection for the ingest and pipeline substrate.

Crowdsourced uploads arrive from unreliable phones over unreliable
networks: chunks get corrupted in flight, IMU streams are truncated when
an app is killed mid-upload, whole uploads are dropped, and backend
handlers hit transient errors. This module produces those failures *on
purpose* — seeded, so every chaos test replays the exact same faults —
which is how the graceful-degradation guarantees of the pipeline and the
retry/dead-letter semantics of the queue stay honest across PRs.

Three layers:

- :class:`FaultInjector` — a seeded planner that picks which items fault
  and how (``plan``), plus concrete corruptors for chunks, upload
  payloads and capture sessions;
- :class:`FlakyHandler` / :class:`SlowHandler` — wrappers that make a
  worker handler fail its first N calls or stall, exercising the queue's
  retry/backoff path deterministically;
- :class:`LinkFaultModel` / :class:`Partition` — a seeded network model
  for the fleet gossip mesh: per-message latency, probabilistic loss and
  scheduled partitions, each decision a pure function of
  ``(seed, edge, tick)`` so replays are exact regardless of the order in
  which links are evaluated.
"""

from __future__ import annotations

import threading
import time
import zlib
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.backend.chunking import Chunk
from repro.backend.serialization import decode_array, encode_array

#: Every fault kind the planner can assign, in assignment order.
FAULT_KINDS = (
    "corrupt_frames",   # NaN-poisoned pixels (decoder bit-rot)
    "truncate_imu",     # IMU stream cut short (app killed mid-capture)
    "drop_upload",      # upload never finalized (network loss)
    "corrupt_chunk",    # transport corruption (caught by CRC)
)


@dataclass(frozen=True)
class FaultDecision:
    """One planned fault: which item, what happens to it."""

    item_id: str
    kind: str


class FaultInjectionError(RuntimeError):
    """The error a flaky handler raises on an injected failure."""


class FaultInjector:
    """Seeded source of fault plans and concrete corruptions.

    The same ``(seed, fault_rate, kinds)`` triple always yields the same
    plan for the same item list, so a chaos test can assert exact
    telemetry counts against the number of injected faults.
    """

    def __init__(
        self,
        seed: int = 0,
        fault_rate: float = 0.2,
        kinds: Sequence[str] = FAULT_KINDS,
    ):
        if not 0.0 <= fault_rate <= 1.0:
            raise ValueError("fault_rate must be in [0, 1]")
        unknown = set(kinds) - set(FAULT_KINDS)
        if unknown:
            raise ValueError(f"unknown fault kinds: {sorted(unknown)}")
        if not kinds:
            raise ValueError("need at least one fault kind")
        self.seed = seed
        self.fault_rate = fault_rate
        self.kinds = tuple(kinds)
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------

    def plan(self, item_ids: Sequence[str]) -> List[FaultDecision]:
        """Pick ``round(rate * n)`` items and assign each a fault kind.

        Deterministic in the injector's seed; the decisions come back in
        the order the items were supplied.
        """
        ids = list(item_ids)
        n_faults = int(round(self.fault_rate * len(ids)))
        if n_faults == 0:
            return []
        rng = np.random.default_rng(self.seed)
        chosen = sorted(rng.choice(len(ids), size=n_faults, replace=False))
        return [
            FaultDecision(item_id=ids[idx], kind=self.kinds[k % len(self.kinds)])
            for k, idx in enumerate(chosen)
        ]

    # ------------------------------------------------------------------
    # concrete corruptions
    # ------------------------------------------------------------------

    def corrupt_chunk(self, chunk: Chunk) -> Chunk:
        """Flip payload bytes while keeping the original CRC.

        The mismatch is exactly what transport corruption looks like to
        the server: ``chunk.verify()`` returns False and the ingest path
        must ask for a resend instead of storing garbage.
        """
        payload = bytearray(chunk.payload)
        if not payload:
            payload = bytearray(b"\x00")
        n_flips = max(1, len(payload) // 256)
        positions = self._rng.integers(0, len(payload), size=n_flips)
        for pos in positions:
            payload[pos] ^= 0xFF
        corrupted = bytes(payload)
        if zlib.crc32(corrupted) == chunk.crc32:
            # Vanishingly unlikely, but a fault injector must never
            # accidentally inject a no-op: force a detectable mismatch.
            corrupted = corrupted[:-1] + bytes([corrupted[-1] ^ 0x01])
        return replace(chunk, payload=corrupted)

    def truncate_imu_payload(
        self, payload: Dict[str, Any], keep_fraction: float = 0.3
    ) -> Dict[str, Any]:
        """Cut every IMU channel of an upload payload to a prefix.

        Mirrors an app killed mid-capture: the frames made it out but the
        inertial stream stops early, so dead reckoning covers only part
        of the walk.
        """
        if not 0.0 <= keep_fraction <= 1.0:
            raise ValueError("keep_fraction must be in [0, 1]")
        faulted = dict(payload)
        imu = dict(faulted.get("imu", {}))
        for channel, blob in imu.items():
            arr = decode_array(blob)
            imu[channel] = encode_array(arr[: int(len(arr) * keep_fraction)])
        faulted["imu"] = imu
        return faulted

    def corrupt_session_frames(self, session, fraction: float = 0.5):
        """A copy of ``session`` with NaN-poisoned pixels in some frames.

        Works on any session-like dataclass exposing ``frames`` (both
        :class:`~repro.world.walker.CaptureSession` and
        :class:`~repro.backend.serialization.DecodedSession`); the input
        is never mutated.
        """
        frames = list(session.frames)
        if frames:
            n_bad = max(1, int(round(fraction * len(frames))))
            bad = self._rng.choice(len(frames), size=n_bad, replace=False)
            for idx in bad:
                frame = frames[idx]
                pixels = np.array(frame.pixels, copy=True)
                pixels[..., :] = np.nan
                frames[idx] = replace(frame, pixels=pixels)
        return replace(session, frames=frames)

    def truncate_session_imu(self, session, keep_fraction: float = 0.3):
        """A copy of ``session`` whose IMU trace stops early."""
        imu = session.imu
        kept = imu.samples[: int(len(imu.samples) * keep_fraction)]
        return replace(session, imu=replace(imu, samples=kept))


class FlakyHandler:
    """A handler that fails its first ``fail_times`` calls, then recovers.

    The canonical transient-fault shape: the queue should retry with
    backoff and the task should eventually succeed, with the attempt
    trail visible in telemetry. Thread-safe, so a multi-worker pool
    counts calls correctly.
    """

    def __init__(
        self,
        handler: Callable[[Any], Any],
        fail_times: int = 2,
        error: Optional[Exception] = None,
    ):
        self.handler = handler
        self.fail_times = fail_times
        self.error = error
        self.calls = 0
        self._lock = threading.Lock()

    def __call__(self, payload: Any) -> Any:
        with self._lock:
            self.calls += 1
            attempt = self.calls
        if attempt <= self.fail_times:
            raise self.error or FaultInjectionError(
                f"injected transient failure (call {attempt}/{self.fail_times})"
            )
        return self.handler(payload)


class SlowHandler:
    """A handler that stalls ``delay`` seconds before delegating.

    Models an overloaded downstream dependency; used to verify that slow
    tasks do not starve the pool or trip retry logic spuriously.
    """

    def __init__(self, handler: Callable[[Any], Any], delay: float = 0.05):
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self.handler = handler
        self.delay = delay
        self.calls = 0
        self._lock = threading.Lock()

    def __call__(self, payload: Any) -> Any:
        with self._lock:
            self.calls += 1
        time.sleep(self.delay)
        return self.handler(payload)


@dataclass(frozen=True)
class Partition:
    """A scheduled network partition over a window of virtual time.

    ``groups`` lists the connected components: nodes in different groups
    cannot exchange messages while ``start <= t < end``. Nodes absent
    from every group form one implicit extra component (they can still
    talk to each other, but to nobody listed).
    """

    start: float
    end: float
    groups: Sequence[Sequence[str]]

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError("partition end must be >= start")
        object.__setattr__(
            self, "groups", tuple(tuple(g) for g in self.groups)
        )

    def _group_of(self, node: str) -> int:
        for idx, group in enumerate(self.groups):
            if node in group:
                return idx
        return len(self.groups)  # the implicit leftover component

    def blocks(self, a: str, b: str, now: float) -> bool:
        """True when the link ``a -> b`` is severed at virtual time ``now``."""
        if not self.start <= now < self.end:
            return False
        return self._group_of(a) != self._group_of(b)


class LinkFaultModel:
    """Seeded latency/loss/partition model for simulated network links.

    Every decision — deliver or drop, and with what delay — is a pure
    function of ``(seed, sender, receiver, tick)``: the model derives a
    fresh generator per event from a CRC of that tuple, so outcomes do
    not depend on the order in which links are evaluated within a round.
    That is what lets a gossip mesh replay byte-identically while still
    shuffling peers.
    """

    def __init__(
        self,
        seed: int = 0,
        base_latency: float = 0.05,
        latency_jitter: float = 0.02,
        loss_rate: float = 0.0,
        partitions: Sequence[Partition] = (),
    ):
        if base_latency < 0 or latency_jitter < 0:
            raise ValueError("latencies must be non-negative")
        if not 0.0 <= loss_rate <= 1.0:
            raise ValueError("loss_rate must be in [0, 1]")
        self.seed = seed
        self.base_latency = base_latency
        self.latency_jitter = latency_jitter
        self.loss_rate = loss_rate
        self.partitions = tuple(partitions)

    def _rng(self, kind: str, sender: str, receiver: str, tick: int):
        token = f"{self.seed}:{kind}:{sender}->{receiver}:{tick}"
        return np.random.default_rng(zlib.crc32(token.encode("utf-8")))

    def partitioned(self, sender: str, receiver: str, now: float) -> bool:
        """True when any scheduled partition severs ``sender -> receiver``."""
        return any(p.blocks(sender, receiver, now) for p in self.partitions)

    def delivers(self, sender: str, receiver: str, tick: int, now: float) -> bool:
        """Decide whether the message sent on ``tick`` survives the link."""
        if self.partitioned(sender, receiver, now):
            return False
        if self.loss_rate <= 0.0:
            return True
        draw = float(self._rng("loss", sender, receiver, tick).random())
        return draw >= self.loss_rate

    def latency(self, sender: str, receiver: str, tick: int) -> float:
        """One-way delay for the message sent on ``tick``, in virtual seconds."""
        if self.latency_jitter <= 0.0:
            return self.base_latency
        jitter = float(self._rng("latency", sender, receiver, tick).random())
        return self.base_latency + jitter * self.latency_jitter
