"""Periodic job scheduler over a simulated clock (APScheduler stand-in).

The backend's "Advanced Python Scheduler will load the data and feed it to
a cascade pipeline". Using a simulated clock keeps tests deterministic and
instant: jobs declare an interval and the test advances time explicitly.
Jobs that raise are recorded, not fatal, and can be bounded by
``max_failures``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional


@dataclass
class ScheduledJob:
    """One periodic job registration."""

    job_id: int
    name: str
    interval: float
    callback: Callable[[], None]
    next_run: float
    runs: int = 0
    failures: int = 0
    max_failures: Optional[int] = None
    paused: bool = False
    last_error: Optional[str] = None


class SimulatedScheduler:
    """Runs periodic jobs against an explicitly advanced clock."""

    def __init__(self, start_time: float = 0.0):
        self._now = start_time
        self._jobs: Dict[int, ScheduledJob] = {}
        self._counter = itertools.count(1)

    @property
    def now(self) -> float:
        return self._now

    def add_job(
        self,
        name: str,
        interval: float,
        callback: Callable[[], None],
        delay: Optional[float] = None,
        max_failures: Optional[int] = None,
    ) -> ScheduledJob:
        """Register ``callback`` to run every ``interval`` simulated seconds.

        The first run happens at ``now + delay`` (default: one interval).
        """
        if interval <= 0:
            raise ValueError("interval must be positive")
        first = self._now + (interval if delay is None else delay)
        job = ScheduledJob(
            job_id=next(self._counter),
            name=name,
            interval=interval,
            callback=callback,
            next_run=first,
            max_failures=max_failures,
        )
        self._jobs[job.job_id] = job
        return job

    def remove_job(self, job_id: int) -> None:
        self._jobs.pop(job_id, None)

    def pause_job(self, job_id: int) -> None:
        self._jobs[job_id].paused = True

    def resume_job(self, job_id: int) -> None:
        job = self._jobs[job_id]
        job.paused = False
        # Resume the cadence from now rather than firing immediately for
        # every interval missed while paused.
        job.next_run = max(job.next_run, self._now + job.interval)

    def jobs(self) -> List[ScheduledJob]:
        return sorted(self._jobs.values(), key=lambda j: j.job_id)

    def advance(self, seconds: float) -> int:
        """Advance the simulated clock, firing due jobs in time order.

        Returns the number of job executions performed. A job that raises
        records the failure; after ``max_failures`` it pauses itself.
        """
        if seconds < 0:
            raise ValueError("cannot advance time backwards")
        deadline = self._now + seconds
        executed = 0
        while True:
            due = [
                j for j in self._jobs.values()
                if not j.paused and j.next_run <= deadline
            ]
            if not due:
                break
            job = min(due, key=lambda j: (j.next_run, j.job_id))
            self._now = max(self._now, job.next_run)
            job.next_run += job.interval
            job.runs += 1
            executed += 1
            try:
                job.callback()
            except Exception as exc:  # noqa: BLE001 - jobs must not kill the loop
                job.failures += 1
                job.last_error = f"{type(exc).__name__}: {exc}"
                if job.max_failures is not None and job.failures >= job.max_failures:
                    job.paused = True
        self._now = deadline
        return executed
