"""Content-addressed result cache for expensive per-frame computations.

The paper's backend recomputes nothing it has already seen: uploads are
content-addressed, so a key-frame whose pixels match a previously
processed frame reuses its SURF features, HOG descriptor and S1
signatures. This module provides that memo layer:

- **Keys** are digests of the *content* that determines the result: the
  raw array bytes (:func:`array_digest`) plus a fingerprint of the
  relevant :class:`~repro.core.config.CrowdMapConfig` thresholds
  (:func:`config_fingerprint`). Two bit-identical frames processed under
  the same thresholds share one cache slot, whatever session they came
  from — and a threshold change invalidates exactly the results it
  affects.
- **Storage** is an LRU-bounded in-memory map, optionally write-through
  to a content-addressed directory on disk (survives process restarts;
  shared by worker processes).
- **Modes** come from the ``CROWDMAP_CACHE`` env switch: ``off`` (every
  call recomputes), ``memory`` (the default) or ``disk``.
  ``CROWDMAP_CACHE_DIR`` relocates the disk store (default
  ``.crowdmap_cache``), ``CROWDMAP_CACHE_MAX`` resizes the LRU bound.
- **Telemetry**: ``cache_hits`` / ``cache_misses`` / ``cache_evictions``
  counters (plus per-namespace variants) in the default registry.

Determinism contract: the cache stores the bit-exact value the wrapped
computation produced, so cached and uncached pipelines are
indistinguishable — the twin-run test in ``tests/backend/test_cache.py``
enforces this end-to-end.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import threading
import weakref
from collections import OrderedDict
from functools import lru_cache
from typing import Any, Callable, Dict, Iterable, Optional, Tuple

import numpy as np

from repro.backend.telemetry import TelemetryRegistry, default_registry

#: Recognized ``CROWDMAP_CACHE`` values.
CACHE_MODES = ("off", "memory", "disk")

_DEFAULT_MAX_ENTRIES = 4096
_DEFAULT_CACHE_DIR = ".crowdmap_cache"

#: id-keyed digest memo: ``id(arr) -> (weakref to arr, digest)``. The
#: weakref callback evicts the entry when the array dies, so a recycled
#: id can never resurrect a dead array's digest; the liveness check in
#: :func:`array_digest` additionally re-verifies identity before reuse.
_digest_memo: Dict[int, Tuple["weakref.ref", str]] = {}
_digest_memo_lock = threading.Lock()


def _digest_memo_evict(key: int) -> Callable[[Any], None]:
    def _evict(_ref: Any) -> None:
        with _digest_memo_lock:
            _digest_memo.pop(key, None)
    return _evict


def array_digest(arr: np.ndarray) -> str:
    """Content digest of an array: dtype + shape + raw bytes.

    SHA-1, not a fancier hash: this is content addressing, not a
    security boundary, and on current CPUs (SHA extensions) it digests a
    frame in less than half blake2b's time — the digest is on the
    per-frame hot path. C-contiguous arrays — including read-only
    shared-memory views — are fed to the hash as a flat ``memoryview``
    of their existing buffer, so the digest is zero-copy; only
    non-contiguous inputs (slices, Fortran-order arrays) pay one
    contiguous copy first. The digest depends on dtype, shape and
    element order alone, so a strided view and its contiguous copy — or
    an array and its shared-memory twin — always hash identically.

    The digest is memoized per array *object* (id-keyed, weakly held):
    one value feeding several cached kernels is hashed once, and the
    repeats are counted by the ``digests_avoided`` telemetry counter.
    Like :func:`frame_digest`, the memo assumes content addressing's
    immutability contract — replace an array to change its content,
    never mutate it in place after digesting.
    """
    key = id(arr)
    with _digest_memo_lock:
        entry = _digest_memo.get(key)
    if entry is not None and entry[0]() is arr:
        default_registry.counter(
            "digests_avoided",
            "array digests served from the id-keyed memo",
        ).inc()
        return entry[1]
    base = arr
    if not arr.flags.c_contiguous:
        arr = np.ascontiguousarray(arr)
    h = hashlib.sha1()
    h.update(str(arr.dtype).encode())
    h.update(repr(arr.shape).encode())
    h.update(memoryview(arr).cast("B"))
    digest = h.hexdigest()
    try:
        ref = weakref.ref(base, _digest_memo_evict(key))
    except TypeError:  # non-weakref-able array subclass: skip the memo
        return digest
    with _digest_memo_lock:
        _digest_memo[key] = (ref, digest)
    return digest


def value_fingerprint(*parts: Any) -> str:
    """Digest of scalar key parts (floats via ``repr`` — exact, not rounded)."""
    h = hashlib.blake2b(digest_size=16)
    for part in parts:
        h.update(repr(part).encode())
        h.update(b"\x1f")
    return h.hexdigest()


@lru_cache(maxsize=256)
def _config_fingerprint_cached(config: Any, names: Tuple[str, ...]) -> str:
    return value_fingerprint(*[(name, getattr(config, name)) for name in names])


def config_fingerprint(config: Any, fields: Optional[Iterable[str]] = None) -> str:
    """Fingerprint of a (frozen dataclass) config, or a subset of its fields.

    Call sites pass the fields their computation actually reads, so a
    sweep over — say — ``force_iterations`` does not invalidate cached
    SURF features; omitting ``fields`` hashes every field.

    Hashable (frozen) configs are memoized per field subset — call sites
    invoke this once per frame, against a handful of live configs.
    """
    if fields is None:
        names = tuple(f.name for f in dataclasses.fields(config))
    else:
        names = tuple(fields)
    try:
        return _config_fingerprint_cached(config, names)
    except TypeError:  # unhashable config object: compute directly
        return value_fingerprint(*[(name, getattr(config, name)) for name in names])


def frame_digest(frame: Any) -> str:
    """Pixel-content digest of a Frame, memoized on the frame object."""
    digest = getattr(frame, "_crowdmap_digest", None)
    if digest is None:
        digest = array_digest(frame.pixels)
        try:
            frame._crowdmap_digest = digest
        except AttributeError:  # frozen/slots containers just recompute
            pass
    return digest


class ResultCache:
    """LRU-bounded content-addressed memo store with optional disk tier.

    Thread-safe; the compute callback runs outside the lock (two racing
    threads may compute the same entry once each — the deterministic
    kernels make both results identical, so last-write-wins is safe).
    """

    def __init__(
        self,
        mode: str = "memory",
        max_entries: int = _DEFAULT_MAX_ENTRIES,
        cache_dir: Optional[str] = None,
        telemetry: Optional[TelemetryRegistry] = None,
    ):
        if mode not in CACHE_MODES:
            raise ValueError(
                f"cache mode must be one of {CACHE_MODES}, got {mode!r}"
            )
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.mode = mode
        self.max_entries = max_entries
        self.cache_dir = cache_dir or _DEFAULT_CACHE_DIR
        self.telemetry = telemetry or default_registry
        self._entries: "OrderedDict[Tuple[str, str], Any]" = OrderedDict()
        self._lock = threading.Lock()

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    # -- counters ------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self.mode != "off"

    def _count(self, event: str, namespace: str) -> None:
        self.telemetry.counter(f"cache_{event}", f"result cache {event}").inc()
        self.telemetry.counter(f"cache_{event}_{namespace}").inc()

    # -- disk tier -----------------------------------------------------

    def _disk_path(self, namespace: str, key: str) -> str:
        return os.path.join(self.cache_dir, namespace, key[:2], key + ".pkl")

    def _disk_read(self, namespace: str, key: str) -> Tuple[bool, Any]:
        path = self._disk_path(namespace, key)
        try:
            with open(path, "rb") as fh:
                return True, pickle.load(fh)
        except (OSError, pickle.PickleError, EOFError):
            return False, None

    def _disk_write(self, namespace: str, key: str, value: Any) -> None:
        path = self._disk_path(namespace, key)
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(tmp, "wb") as fh:
                pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)  # atomic: concurrent writers can't tear
        except OSError:
            # A read-only or full disk degrades to memory-only caching.
            try:
                os.unlink(tmp)
            except OSError:
                pass

    # -- core API ------------------------------------------------------

    def lookup(self, namespace: str, key: str) -> Tuple[bool, Any]:
        """(hit, value) without computing; counts the hit/miss."""
        if not self.enabled:
            return False, None
        slot = (namespace, key)
        with self._lock:
            if slot in self._entries:
                self._entries.move_to_end(slot)
                value = self._entries[slot]
                self._count("hits", namespace)
                return True, value
        if self.mode == "disk":
            hit, value = self._disk_read(namespace, key)
            if hit:
                self._memory_store(slot, namespace)
                with self._lock:
                    self._entries[slot] = value
                self._count("hits", namespace)
                return True, value
        self._count("misses", namespace)
        return False, None

    def _memory_store(self, slot: Tuple[str, str], namespace: str) -> None:
        """Reserve LRU room for ``slot`` (evicting under the lock)."""
        with self._lock:
            while len(self._entries) >= self.max_entries:
                evicted_slot, _ = self._entries.popitem(last=False)
                self._count("evictions", evicted_slot[0])

    def store(self, namespace: str, key: str, value: Any) -> None:
        if not self.enabled:
            return
        slot = (namespace, key)
        self._memory_store(slot, namespace)
        with self._lock:
            self._entries[slot] = value
            self._entries.move_to_end(slot)
        if self.mode == "disk":
            self._disk_write(namespace, key, value)

    def get_or_compute(
        self, namespace: str, key: str, compute: Callable[[], Any]
    ) -> Any:
        """The memoization primitive every wired call site goes through."""
        if not self.enabled:
            return compute()
        hit, value = self.lookup(namespace, key)
        if hit:
            return value
        value = compute()
        self.store(namespace, key, value)
        return value

    def clear(self) -> None:
        """Drop the in-memory tier (the disk tier is left untouched)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict:
        """Aggregate hit/miss/eviction counts from telemetry."""
        return {
            "mode": self.mode,
            "entries": len(self),
            "hits": self.telemetry.value("cache_hits"),
            "misses": self.telemetry.value("cache_misses"),
            "evictions": self.telemetry.value("cache_evictions"),
        }


def _cache_from_env() -> ResultCache:
    mode = os.environ.get("CROWDMAP_CACHE", "memory").strip().lower() or "memory"
    if mode not in CACHE_MODES:
        raise ValueError(
            f"CROWDMAP_CACHE must be one of {CACHE_MODES}, got {mode!r}"
        )
    max_entries = int(os.environ.get("CROWDMAP_CACHE_MAX", _DEFAULT_MAX_ENTRIES))
    cache_dir = os.environ.get("CROWDMAP_CACHE_DIR") or None
    return ResultCache(mode=mode, max_entries=max_entries, cache_dir=cache_dir)


_default_cache: Optional[ResultCache] = None
_default_lock = threading.Lock()


def get_cache() -> ResultCache:
    """The process-wide cache, built from the environment on first use."""
    global _default_cache
    if _default_cache is None:
        with _default_lock:
            if _default_cache is None:
                _default_cache = _cache_from_env()
    return _default_cache


def set_cache(cache: Optional[ResultCache]) -> None:
    """Replace the process-wide cache (None re-reads the environment)."""
    global _default_cache
    with _default_lock:
        _default_cache = cache
