"""In-memory document store (MongoDB stand-in).

The backend lands raw uploads in MongoDB before the pipeline consumes
them. This store keeps the parts of the Mongo model the pipeline uses:
schemaless documents in named collections, auto ids, and query-by-example
filters with a few ``$``-operators (``$gt``, ``$gte``, ``$lt``, ``$lte``,
``$ne``, ``$in``), plus simple secondary indexes for equality lookups.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional


@dataclass
class Document:
    """A stored document: an id plus arbitrary fields."""

    doc_id: int
    fields: Dict[str, Any]

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self.fields.get(key, default)


_OPERATORS: Dict[str, Callable[[Any, Any], bool]] = {
    "$gt": lambda value, arg: value is not None and value > arg,
    "$gte": lambda value, arg: value is not None and value >= arg,
    "$lt": lambda value, arg: value is not None and value < arg,
    "$lte": lambda value, arg: value is not None and value <= arg,
    "$ne": lambda value, arg: value != arg,
    "$in": lambda value, arg: value in arg,
}


def _matches(fields: Dict[str, Any], query: Dict[str, Any]) -> bool:
    for key, expected in query.items():
        value = fields.get(key)
        if isinstance(expected, dict) and any(k.startswith("$") for k in expected):
            for op, arg in expected.items():
                handler = _OPERATORS.get(op)
                if handler is None:
                    raise ValueError(f"unsupported operator {op!r}")
                if not handler(value, arg):
                    return False
        elif value != expected:
            return False
    return True


class _Collection:
    def __init__(self, name: str):
        self.name = name
        self._docs: Dict[int, Document] = {}
        self._indexes: Dict[str, Dict[Any, set]] = {}
        self._id_counter = itertools.count(1)
        self._lock = threading.RLock()

    def create_index(self, field_name: str) -> None:
        with self._lock:
            if field_name in self._indexes:
                return
            index: Dict[Any, set] = {}
            for doc in self._docs.values():
                index.setdefault(doc.fields.get(field_name), set()).add(doc.doc_id)
            self._indexes[field_name] = index

    def insert(self, fields: Dict[str, Any]) -> Document:
        with self._lock:
            doc = Document(doc_id=next(self._id_counter), fields=dict(fields))
            self._docs[doc.doc_id] = doc
            for field_name, index in self._indexes.items():
                index.setdefault(doc.fields.get(field_name), set()).add(doc.doc_id)
            return doc

    def _candidates(self, query: Dict[str, Any]) -> Iterable[Document]:
        # Use the first indexed equality term to narrow the scan.
        for key, expected in query.items():
            if key in self._indexes and not isinstance(expected, dict):
                ids = self._indexes[key].get(expected, set())
                return [self._docs[i] for i in ids if i in self._docs]
        return list(self._docs.values())

    def find(self, query: Optional[Dict[str, Any]] = None) -> List[Document]:
        query = query or {}
        with self._lock:
            return [d for d in self._candidates(query) if _matches(d.fields, query)]

    def find_one(self, query: Optional[Dict[str, Any]] = None) -> Optional[Document]:
        results = self.find(query)
        return min(results, key=lambda d: d.doc_id) if results else None

    def update(self, query: Dict[str, Any], changes: Dict[str, Any]) -> int:
        with self._lock:
            matched = self.find(query)
            for doc in matched:
                for field_name, index in self._indexes.items():
                    if field_name in changes:
                        index.setdefault(doc.fields.get(field_name), set()).discard(
                            doc.doc_id
                        )
                        index.setdefault(changes[field_name], set()).add(doc.doc_id)
                doc.fields.update(changes)
            return len(matched)

    def delete(self, query: Dict[str, Any]) -> int:
        with self._lock:
            matched = self.find(query)
            for doc in matched:
                del self._docs[doc.doc_id]
                for index in self._indexes.values():
                    for bucket in index.values():
                        bucket.discard(doc.doc_id)
            return len(matched)

    def count(self, query: Optional[Dict[str, Any]] = None) -> int:
        return len(self.find(query))


class DocumentStore:
    """A set of named collections, safe for concurrent worker access."""

    def __init__(self) -> None:
        self._collections: Dict[str, _Collection] = {}
        self._lock = threading.RLock()

    def collection(self, name: str) -> _Collection:
        with self._lock:
            if name not in self._collections:
                self._collections[name] = _Collection(name)
            return self._collections[name]

    def insert(self, collection: str, fields: Dict[str, Any]) -> Document:
        return self.collection(collection).insert(fields)

    def find(self, collection: str, query: Optional[Dict[str, Any]] = None) -> List[Document]:
        return self.collection(collection).find(query)

    def find_one(self, collection: str, query: Optional[Dict[str, Any]] = None) -> Optional[Document]:
        return self.collection(collection).find_one(query)

    def update(self, collection: str, query: Dict[str, Any], changes: Dict[str, Any]) -> int:
        return self.collection(collection).update(query, changes)

    def delete(self, collection: str, query: Dict[str, Any]) -> int:
        return self.collection(collection).delete(query)

    def count(self, collection: str, query: Optional[Dict[str, Any]] = None) -> int:
        return self.collection(collection).count(query)

    def collection_names(self) -> List[str]:
        with self._lock:
            return sorted(self._collections)
