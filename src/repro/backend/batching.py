"""Frame-batch planning: group same-shape frames for batched kernels.

The vision kernels carry batch axes (``hog_descriptor_stack``,
``integral_image_stack``, ``surf_detect_batch``) that amortize numpy
dispatch overhead across frames — but they require every frame in a
batch to share one shape, and crowdsourced uploads mix resolutions
freely. The planner closes that gap: given the shapes of a frame
sequence it emits :class:`FrameBatch` groups of same-shape frames,
capped at a configurable batch size so the stacked working set stays
inside the cache hierarchy, with the original indices preserved so
results scatter back into sequence order.

Plans are deterministic: groups are keyed by first appearance and each
group's indices stay in input order, so batched execution visits frames
in a reproducible order regardless of how shapes interleave.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.backend.telemetry import TelemetryRegistry, default_registry

#: Default frames per batch; chosen so a batch of video-resolution
#: float64 grayscale frames stays within a few tens of megabytes.
DEFAULT_BATCH_SIZE = 16


@dataclass(frozen=True)
class FrameBatch:
    """One batch of same-shape frames: which inputs, and their shape."""

    indices: Tuple[int, ...]
    shape: Tuple[int, ...]

    def __len__(self) -> int:
        return len(self.indices)


def plan_batches(
    shapes: Sequence[Tuple[int, ...]],
    batch_size: int = DEFAULT_BATCH_SIZE,
    telemetry: Optional[TelemetryRegistry] = None,
) -> List[FrameBatch]:
    """Group frame indices by shape into batches of at most ``batch_size``.

    ``shapes[i]`` is the array shape of frame ``i``. Batches preserve the
    input order within each shape group, and groups are emitted in order
    of first appearance; the concatenation of all batch indices is a
    permutation of ``range(len(shapes))``.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be positive")
    groups: Dict[Tuple[int, ...], List[int]] = {}
    for index, shape in enumerate(shapes):
        groups.setdefault(tuple(shape), []).append(index)
    batches: List[FrameBatch] = []
    for shape, indices in groups.items():
        for start in range(0, len(indices), batch_size):
            batches.append(
                FrameBatch(
                    indices=tuple(indices[start : start + batch_size]),
                    shape=shape,
                )
            )
    registry = telemetry or default_registry
    registry.counter(
        "batch_plans", "frame-batch plans computed"
    ).inc()
    registry.counter(
        "batch_groups", "same-shape frame batches emitted"
    ).inc(float(len(batches)))
    registry.counter(
        "batch_frames", "frames routed through batched kernels"
    ).inc(float(len(shapes)))
    registry.counter(
        "batch_singleton_frames",
        "frames that ended up alone in their batch (no batching win)",
    ).inc(float(sum(1 for b in batches if len(b) == 1)))
    return batches


def scatter_results(
    batches: Sequence[FrameBatch],
    per_batch_results: Sequence[Sequence],
    n_items: int,
) -> list:
    """Reassemble per-batch result lists into input order.

    ``per_batch_results[k]`` must hold one result per index of
    ``batches[k]``, in the same order.
    """
    out: list = [None] * n_items
    for batch, results in zip(batches, per_batch_results):
        if len(results) != len(batch.indices):
            raise ValueError(
                f"batch produced {len(results)} results for "
                f"{len(batch.indices)} inputs"
            )
        for index, result in zip(batch.indices, results):
            out[index] = result
    return out
