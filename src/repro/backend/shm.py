"""Zero-copy shared-memory frame arena for the process worker backend.

The paper's Spark cluster keeps frame data on the executors; our process
backend instead round-tripped every frame through pickle — ~190 MB of
pixel bytes per quick-profile pipeline run serialized into the executor
queue and parsed back on the other side. This module removes that copy:

- :class:`ShmArena` owns a set of ``multiprocessing.shared_memory``
  segments and copies large arrays into them **once**, returning
  :class:`ShmArray` views;
- :class:`ShmArray` is an ``ndarray`` subclass whose ``__reduce__``
  pickles as a tiny :class:`ShmHandle` (segment name + offset + dtype +
  shape) instead of the array bytes, so any object graph containing one
  — frames, sessions, key-frames — crosses the process boundary at
  handle cost with **no call-site changes**;
- workers rebuild handles into read-only views of the same physical
  pages (attaching each segment at most once per process); in the
  parent, a rebuilt handle short-circuits to the original array.

Lifecycle is lease-counted and crash-safe:

- every live view of a segment holds a *lease* (dropped by a
  ``weakref.finalize`` when the view is garbage collected);
- :meth:`ShmArena.close` unlinks every segment name immediately — the
  kernel frees the pages when the last mapping dies — and closes the
  local mapping as soon as its lease count reaches zero;
- the creating process keeps the stdlib ``resource_tracker``
  registration, so segments are reclaimed even if the process is
  SIGKILLed before ``close``; *attaching* processes suppress the
  tracker's (unconditional) re-registration to avoid double-unlink
  races;
- :func:`sweep_orphans` removes leftover ``/dev/shm`` entries by name
  prefix — the belt-and-braces path for worker crashes — and
  :func:`audit_dev_shm` lets tests assert that nothing leaked.

When shared memory is unavailable (``CROWDMAP_SHM=off``, or a platform
without it) the arena degrades transparently: :meth:`ShmArena.share`
returns its input unchanged and the worker backend falls back to plain
pickle transport with identical results.
"""

from __future__ import annotations

import atexit
import contextlib
import copy
import dataclasses
import os
import secrets
import threading
import weakref
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.backend.telemetry import default_registry

#: ``CROWDMAP_SHM`` values: "auto" probes the platform, "on"/"off" force.
SHM_MODES = ("auto", "on", "off")

#: Arrays below this many bytes ride the normal pickle path — a handle
#: round-trip (plus segment bookkeeping) costs more than pickling them.
DEFAULT_MIN_BYTES = 65536

#: Default size of a freshly created segment; large arrays get a segment
#: sized to fit. Big segments amortize the per-segment syscall + tracker
#: cost over many frames.
DEFAULT_SEGMENT_BYTES = 32 * 1024 * 1024

#: Alignment of arrays inside a segment (cache-line friendly).
_ALIGN = 128

_DEV_SHM = "/dev/shm"


@dataclass(frozen=True)
class ShmHandle:
    """Picklable reference to an array stored in a shared-memory segment."""

    segment: str
    offset: int
    shape: Tuple[int, ...]
    dtype: str

    @property
    def nbytes(self) -> int:
        return int(np.dtype(self.dtype).itemsize * int(np.prod(self.shape, dtype=np.int64)))


class _Segment:
    """Per-process bookkeeping for one mapped segment."""

    __slots__ = ("mem", "leases", "owner", "closing")

    def __init__(self, mem, owner: bool):
        self.mem = mem
        self.leases = 0
        self.owner = owner
        self.closing = False


#: name -> _Segment for every segment this process has created or attached.
_SEGMENTS: Dict[str, _Segment] = {}
#: (segment, offset) -> original array, so rebuilding a handle in the
#: process that shared it returns the original without touching the copy.
_LOCAL_ORIGINALS: Dict[Tuple[str, int], np.ndarray] = {}
_REGISTRY_LOCK = threading.RLock()

#: Live arenas, closed by the atexit hook on interpreter shutdown.
_LIVE_ARENAS: "weakref.WeakSet[ShmArena]" = weakref.WeakSet()

#: Types that cannot contain an ndarray — the share walker skips them
#: without memo bookkeeping (session graphs are mostly float scalars).
_ATOMIC_TYPES = (type(None), bool, int, float, complex, str, bytes)

#: type -> tuple of dataclass fields, or None for non-dataclasses.
#: ``dataclasses.fields`` rebuilds its tuple per call; the walker visits
#: thousands of identical trajectory-point instances per share.
_FIELDS_BY_TYPE: Dict[type, Optional[Tuple[Any, ...]]] = {}
_FIELDS_UNKNOWN = object()


@contextlib.contextmanager
def _suppressed_tracker():
    """Temporarily no-op ``resource_tracker.register``.

    ``SharedMemory.__init__`` registers the segment with the resource
    tracker on *attach* as well as on create (CPython 3.8-3.12). The
    creating process's registration is the crash-safety net we want; a
    second registration from an attaching process would make the tracker
    attempt a second unlink at shutdown and warn about it.
    """
    from multiprocessing import resource_tracker

    original = resource_tracker.register
    resource_tracker.register = lambda name, rtype: None
    try:
        yield
    finally:
        resource_tracker.register = original


def _shm_module():
    from multiprocessing import shared_memory

    return shared_memory


_available: Optional[bool] = None


def shm_available() -> bool:
    """Whether this platform supports POSIX shared memory (probed once)."""
    global _available
    if _available is None:
        try:
            shared_memory = _shm_module()
            probe = shared_memory.SharedMemory(create=True, size=16)
            probe.close()
            probe.unlink()
            _available = True
        except Exception:  # noqa: BLE001  # crowdlint: allow[CM003] any failure to create a probe segment means "fall back to pickle", whatever its type
            _available = False
    return _available


def shm_enabled(override: Optional[bool] = None) -> bool:
    """Resolve the ``CROWDMAP_SHM`` gate (+ availability probe)."""
    if override is not None:
        return override and shm_available()
    mode = os.environ.get("CROWDMAP_SHM", "auto").strip().lower() or "auto"
    if mode not in SHM_MODES:
        raise ValueError(f"CROWDMAP_SHM must be one of {SHM_MODES}, got {mode!r}")
    if mode == "off":
        return False
    return shm_available()


def _release_lease(name: str) -> None:
    """Finalizer for one array view: drop its lease, close if last out."""
    with _REGISTRY_LOCK:
        entry = _SEGMENTS.get(name)
        if entry is None:
            return
        entry.leases -= 1
        if entry.leases <= 0 and entry.closing:
            try:
                entry.mem.close()
            except OSError:
                pass
            del _SEGMENTS[name]


class ShmArray(np.ndarray):
    """ndarray view backed by a shared-memory segment.

    Carries the :class:`ShmHandle` it was built from (or that its arena
    assigned), and pickles as that handle. Any *derived* array — a slice,
    a transpose, the result of an ufunc — is an ordinary array again
    (``__array_finalize__`` clears the handle): only the exact shared
    buffer may ship by reference, anything else must ship by value.
    """

    crowdmap_handle: Optional[ShmHandle]

    def __array_finalize__(self, obj) -> None:
        # Never inherit: a view with a stale handle would rebuild as the
        # *full* original array on the far side — silent corruption.
        self.crowdmap_handle = None

    def __reduce__(self):
        handle = getattr(self, "crowdmap_handle", None)
        if handle is not None:
            with _REGISTRY_LOCK:
                entry = _SEGMENTS.get(handle.segment)
                # A closing segment is already unlinked: this process can
                # still read it, but a receiver could no longer attach.
                alive = entry is not None and not entry.closing
            if alive:
                default_registry.counter(
                    "shm_bytes_copy_avoided",
                    "array bytes that crossed a process boundary as a handle",
                ).inc(float(handle.nbytes))
                return (_rebuild_shm_array, (handle,))
        # Segment gone (arena closed) or handle never set: fall back to
        # the regular by-value ndarray pickle.
        return super().__reduce__()


def _wrap_view(
    buffer, handle: ShmHandle, writeable: bool = False
) -> ShmArray:
    arr = np.ndarray(
        handle.shape, dtype=np.dtype(handle.dtype),
        buffer=buffer, offset=handle.offset,
    ).view(ShmArray)
    arr.flags.writeable = writeable
    arr.crowdmap_handle = handle
    return arr


def _rebuild_shm_array(handle: ShmHandle) -> np.ndarray:
    """Resolve a handle to an array in this process.

    Resolution order: the original array (if this process shared it —
    includes fork children, which inherit the registry), an
    already-mapped segment, a fresh attach. Each live view holds one
    lease on its segment.
    """
    key = (handle.segment, handle.offset)
    with _REGISTRY_LOCK:
        original = _LOCAL_ORIGINALS.get(key)
        if original is not None:
            return original
        entry = _SEGMENTS.get(handle.segment)
        if entry is None:
            shared_memory = _shm_module()
            with _suppressed_tracker():
                mem = shared_memory.SharedMemory(name=handle.segment)
            entry = _Segment(mem, owner=False)
            _SEGMENTS[handle.segment] = entry
            default_registry.counter(
                "shm_segments_attached",
                "segments mapped by a non-creating process",
            ).inc()
        view = _wrap_view(entry.mem.buf, handle)
        entry.leases += 1
    weakref.finalize(view, _release_lease, handle.segment)
    default_registry.counter(
        "shm_handles_rebuilt", "handles resolved back into array views"
    ).inc()
    return view


class ShmArena:
    """Bump allocator over named shared-memory segments.

    One arena per parallel stage: the parent shares the stage's inputs
    into it, runs the pool, and closes it — :meth:`close` unlinks every
    segment so nothing outlives the stage in ``/dev/shm``, while leases
    keep already-built views (e.g. arrays inside returned results) valid
    until they are garbage collected.
    """

    def __init__(
        self,
        prefix: Optional[str] = None,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        min_bytes: int = DEFAULT_MIN_BYTES,
        enabled: Optional[bool] = None,
    ):
        if segment_bytes < _ALIGN:
            raise ValueError("segment_bytes too small")
        self.prefix = prefix or f"cmshm{os.getpid():x}x{secrets.token_hex(4)}"
        self.segment_bytes = segment_bytes
        self.min_bytes = min_bytes
        self.enabled = shm_enabled(enabled)
        self._names: List[str] = []
        self._current: Optional[_Segment] = None
        self._current_name = ""
        self._cursor = 0
        self._capacity = 0
        self._seq = 0
        self._closed = False
        self._lock = threading.Lock()
        if self.enabled:
            _LIVE_ARENAS.add(self)

    # -- allocation ----------------------------------------------------

    def _new_segment(self, min_size: int) -> None:
        shared_memory = _shm_module()
        size = max(self.segment_bytes, min_size)
        name = f"{self.prefix}n{self._seq}"
        self._seq += 1
        # Registration (create side) is deliberately kept: it is the
        # crash-safety net that reclaims the segment if this process dies
        # before close() runs.
        mem = shared_memory.SharedMemory(name=name, create=True, size=size)
        entry = _Segment(mem, owner=True)
        with _REGISTRY_LOCK:
            _SEGMENTS[name] = entry
        self._names.append(name)
        self._current = entry
        self._current_name = name
        self._cursor = 0
        self._capacity = mem.size  # may be rounded up by the kernel
        default_registry.counter(
            "shm_segments_created", "arena segments created"
        ).inc()
        default_registry.counter(
            "shm_segment_bytes_reserved", "total bytes of created segments"
        ).inc(float(size))

    def share_array(self, arr: np.ndarray) -> np.ndarray:
        """Copy ``arr`` into the arena once; return a handle-carrying view.

        Pass-through cases: arenas disabled, arrays below ``min_bytes``,
        and arrays that already carry a live handle (already shared).
        """
        if not self.enabled or self._closed:
            return arr
        if getattr(arr, "crowdmap_handle", None) is not None:
            return arr
        nbytes = arr.nbytes
        if nbytes < self.min_bytes:
            return arr
        with self._lock:
            if self._current is None or self._cursor + nbytes > self._capacity:
                self._new_segment(nbytes)
            assert self._current is not None
            offset = self._cursor
            self._cursor += -(-nbytes // _ALIGN) * _ALIGN  # round up
            entry = self._current
            name = self._current_name
        handle = ShmHandle(
            segment=name, offset=offset,
            shape=tuple(arr.shape), dtype=arr.dtype.str,
        )
        dest = np.ndarray(
            handle.shape, dtype=arr.dtype, buffer=entry.mem.buf, offset=offset
        )
        np.copyto(dest, arr)
        view = _wrap_view(entry.mem.buf, handle)
        with _REGISTRY_LOCK:
            entry.leases += 1
            _LOCAL_ORIGINALS[(name, offset)] = np.asarray(arr)
        weakref.finalize(view, _release_lease, name)
        default_registry.counter(
            "shm_arrays_shared", "arrays copied into an arena"
        ).inc()
        default_registry.counter(
            "shm_bytes_shared", "array bytes copied into arenas"
        ).inc(float(nbytes))
        return view

    def share(self, obj: Any, _memo: Optional[Dict[int, Any]] = None) -> Any:
        """Recursively replace large arrays in ``obj`` with arena views.

        Walks lists, tuples, dicts and dataclass instances (the shapes
        session/frame containers actually take); anything else is left
        untouched. Shared sub-objects and cycles are preserved via an
        id-memo. Containers are only rebuilt when something inside them
        actually changed, so a disabled arena returns ``obj`` itself.
        """
        if not self.enabled or self._closed:
            return obj
        if isinstance(obj, _ATOMIC_TYPES):
            return obj
        if _memo is None:
            _memo = {}
        oid = id(obj)
        if oid in _memo:
            return _memo[oid]
        if isinstance(obj, np.ndarray):
            shared = self.share_array(obj)
            _memo[oid] = shared
            return shared
        if isinstance(obj, list):
            walked = [self.share(item, _memo) for item in obj]
            out = walked if any(a is not b for a, b in zip(walked, obj)) else obj
            _memo[oid] = out
            return out
        if isinstance(obj, tuple):
            walked_t = tuple(self.share(item, _memo) for item in obj)
            out = walked_t if any(a is not b for a, b in zip(walked_t, obj)) else obj
            _memo[oid] = out
            return out
        if isinstance(obj, dict):
            walked_d = {k: self.share(v, _memo) for k, v in obj.items()}
            changed = any(walked_d[k] is not v for k, v in obj.items())
            out = walked_d if changed else obj
            _memo[oid] = out
            return out
        cls = type(obj)
        fields = _FIELDS_BY_TYPE.get(cls, _FIELDS_UNKNOWN)
        if fields is _FIELDS_UNKNOWN:
            fields = (
                tuple(dataclasses.fields(obj))
                if dataclasses.is_dataclass(obj) and not isinstance(obj, type)
                else None
            )
            _FIELDS_BY_TYPE[cls] = fields
        if fields is not None:
            _memo[oid] = obj  # provisional (cycle guard)
            replacements = {}
            for f in fields:
                value = getattr(obj, f.name, None)
                walked_v = self.share(value, _memo)
                if walked_v is not value:
                    replacements[f.name] = walked_v
            if not replacements:
                return obj
            clone = copy.copy(obj)
            for field_name, value in replacements.items():
                object.__setattr__(clone, field_name, value)
            _memo[oid] = clone
            return clone
        _memo[oid] = obj
        return obj

    # -- lifecycle -----------------------------------------------------

    def active_segments(self) -> List[str]:
        """Names of this arena's segments still mapped in this process."""
        with _REGISTRY_LOCK:
            return [name for name in self._names if name in _SEGMENTS]

    def close(self) -> None:
        """Unlink every segment; close mappings as their leases drain.

        Idempotent. After close, pickling a view of this arena falls back
        to by-value (the handle no longer resolves for new attachers),
        and existing views stay readable until garbage collected.
        """
        if self._closed:
            return
        self._closed = True
        self._current = None
        with _REGISTRY_LOCK:
            for name in self._names:
                entry = _SEGMENTS.get(name)
                if entry is None:
                    continue
                try:
                    entry.mem.unlink()
                    default_registry.counter(
                        "shm_segments_unlinked", "segments unlinked at arena close"
                    ).inc()
                except (FileNotFoundError, OSError):
                    pass
                if entry.leases <= 0:
                    try:
                        entry.mem.close()
                    except OSError:
                        pass
                    del _SEGMENTS[name]
                else:
                    entry.closing = True
            stale = [key for key in _LOCAL_ORIGINALS if key[0] in set(self._names)]
            for key in stale:
                del _LOCAL_ORIGINALS[key]
        sweep_orphans(self.prefix)

    def __enter__(self) -> "ShmArena":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def audit_dev_shm(prefix: str = "cmshm") -> List[str]:
    """``/dev/shm`` entries matching ``prefix`` (leak detection for tests)."""
    try:
        entries = os.listdir(_DEV_SHM)
    except OSError:
        return []
    return sorted(e for e in entries if e.startswith(prefix))


def sweep_orphans(prefix: str) -> int:
    """Unlink stray ``/dev/shm`` segments left by crashed processes.

    Only touches names under ``prefix`` (arena prefixes embed the
    creating pid plus a random token, so one arena's sweep cannot reap
    another's live segments). Returns the number of entries removed.
    """
    removed = 0
    for name in audit_dev_shm(prefix):
        with _REGISTRY_LOCK:
            if name in _SEGMENTS:
                continue  # still mapped here: not an orphan
        try:
            os.unlink(os.path.join(_DEV_SHM, name))
            removed += 1
        except OSError:
            continue
        try:
            from multiprocessing import resource_tracker

            resource_tracker.unregister(f"/{name}", "shared_memory")
        except Exception:  # noqa: BLE001  # crowdlint: allow[CM003] the tracker may not know this orphan; best-effort dedup of its shutdown pass
            pass
    if removed:
        default_registry.counter(
            "shm_segments_swept", "orphaned segments removed by prefix sweep"
        ).inc(removed)
    return removed


@atexit.register
def _close_live_arenas() -> None:
    for arena in list(_LIVE_ARENAS):
        try:
            arena.close()
        except Exception:  # noqa: BLE001  # crowdlint: allow[CM003] interpreter teardown: cleanup must not raise past atexit
            pass
