"""Backend telemetry: counters, gauges and latency histograms.

A cloud pipeline ingesting crowdsourced uploads needs observability —
which stage is slow, how many uploads failed CRC, how deep is the queue.
This registry provides the standard trio (counter / gauge / histogram)
with thread-safe updates and a text scrape, and a timer context manager
the pipeline stages can wrap themselves in.
"""

from __future__ import annotations

import bisect
import threading
import time
from contextlib import contextmanager
from typing import Dict, List, Tuple

_DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0
)


class _Picklable:
    """Drop the (unpicklable) lock on pickle; rebuild it on unpickle.

    The process worker backend ships job callables to worker processes;
    anything they close over — including metrics and registries — must
    survive a pickle round-trip. Worker-side mutations stay worker-local
    (processes do not share memory); the parent aggregates results.
    """

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state.pop("_lock", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()


class Counter(_Picklable):
    """Monotonically increasing counter."""

    def __init__(self, name: str, help_text: str = ""):
        self.name = name
        self.help_text = help_text
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge(_Picklable):
    """A value that can go up and down (queue depth, workers busy)."""

    def __init__(self, name: str, help_text: str = ""):
        self.name = name
        self.help_text = help_text
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value


class Histogram(_Picklable):
    """Cumulative-bucket histogram (Prometheus-style) plus sum/count.

    Besides the buckets, every observation is retained verbatim so
    :meth:`percentile` can report *exact* sample quantiles — the serving
    SLO tracker promises p99 numbers, and a bucket-boundary approximation
    would round an SLO violation away (or invent one). Observation
    volumes here are bounded by simulation length, so retention is cheap.
    """

    def __init__(self, name: str, help_text: str = "",
                 buckets: Tuple[float, ...] = _DEFAULT_BUCKETS):
        self.name = name
        self.help_text = help_text
        self.buckets = tuple(sorted(buckets))
        self._counts = [0] * (len(self.buckets) + 1)  # last = +inf
        self._sum = 0.0
        self._count = 0
        self._samples: List[float] = []
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        idx = bisect.bisect_left(self.buckets, value)
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1
            self._samples.append(value)

    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> float:
        return self._sum

    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def percentile(self, q: float) -> float:
        """Exact ``q``-th percentile of the raw samples, ``q`` in [0, 100].

        Linear interpolation between closest ranks — the same definition
        as ``numpy.percentile``'s default method, so SLO reports agree
        with any offline analysis of the same latencies.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError("q must be in [0, 100]")
        with self._lock:
            if not self._samples:
                return 0.0
            ordered = sorted(self._samples)
        rank = (q / 100.0) * (len(ordered) - 1)
        lo = int(rank)
        hi = min(lo + 1, len(ordered) - 1)
        frac = rank - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

    def summary(self) -> Dict[str, float]:
        """Count, mean and the standard latency percentiles (p50/p95/p99)."""
        return {
            "count": float(self._count),
            "mean": self.mean(),
            "p50": self.percentile(50.0),
            "p95": self.percentile(95.0),
            "p99": self.percentile(99.0),
        }

    def quantile(self, q: float) -> float:
        """Approximate quantile from the bucket boundaries."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self._count == 0:
            return 0.0
        target = q * self._count
        running = 0
        for idx, bucket_count in enumerate(self._counts):
            running += bucket_count
            if running >= target:
                if idx < len(self.buckets):
                    return self.buckets[idx]
                return self.buckets[-1]
        return self.buckets[-1]


class TelemetryRegistry(_Picklable):
    """Named metric registry with a text scrape."""

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}
        self._lock = threading.Lock()

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._get_or_create(name, help_text, Counter)

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._get_or_create(name, help_text, Gauge)

    def histogram(self, name: str, help_text: str = "") -> Histogram:
        return self._get_or_create(name, help_text, Histogram)

    def _get_or_create(self, name, help_text, kind):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, kind):
                    raise TypeError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__}"
                    )
                return existing
            metric = kind(name, help_text)
            self._metrics[name] = metric
            return metric

    @contextmanager
    def timer(self, name: str):
        """Time a block into the named histogram (seconds)."""
        histogram = self.histogram(name)
        start = time.perf_counter()
        try:
            yield
        finally:
            histogram.observe(time.perf_counter() - start)

    def value(self, name: str) -> float:
        """Current value of a counter/gauge (0.0 when never registered).

        Chaos tests assert exact fault counts through this without having
        to pre-register every metric they might read.
        """
        with self._lock:
            metric = self._metrics.get(name)
        if isinstance(metric, (Counter, Gauge)):
            return metric.value
        if isinstance(metric, Histogram):
            return float(metric.count)
        return 0.0

    def reset(self) -> None:
        """Drop every metric (test isolation for the process-wide registry)."""
        with self._lock:
            self._metrics.clear()

    def scrape(self) -> str:
        """Plain-text dump of every metric, stable-ordered."""
        lines: List[str] = []
        with self._lock:
            items = sorted(self._metrics.items())
        for name, metric in items:
            if isinstance(metric, (Counter, Gauge)):
                lines.append(f"{name} {metric.value:g}")
            elif isinstance(metric, Histogram):
                lines.append(
                    f"{name}_count {metric.count} "
                    f"{name}_sum {metric.total:.6g} "
                    f"{name}_p50 {metric.quantile(0.5):g} "
                    f"{name}_p99 {metric.quantile(0.99):g}"
                )
        return "\n".join(lines)


#: Process-wide default registry (import and use directly).
default_registry = TelemetryRegistry()
