"""Client-cloud backend substrate.

The paper deploys CrowdMap's backend on Azure: a Tornado web server
receives 5 MB-chunked uploads over WebSockets, raw data lands in MongoDB,
an APScheduler feeds a cascade pipeline, and PySpark parallelizes
trajectory aggregation. This package reproduces that dataflow in-process:

- :mod:`repro.backend.chunking` — zip-and-chunk upload protocol;
- :mod:`repro.backend.datastore` — an in-memory document store with
  MongoDB-style filters (the raw-data landing zone);
- :mod:`repro.backend.queue` — a task queue with retry/ack semantics;
- :mod:`repro.backend.scheduler` — a simulated-clock periodic scheduler;
- :mod:`repro.backend.workers` — a worker pool running pipeline stages in
  parallel (threads), standing in for the Spark job;
- :mod:`repro.backend.server` — the ingest server tying upload, reassembly
  and storage together;
- :mod:`repro.backend.faults` — seeded fault injection (chaos testing the
  above: corrupt chunks, truncated IMU streams, flaky handlers).
"""

from repro.backend.chunking import chunk_payload, reassemble_chunks, Chunk
from repro.backend.datastore import DocumentStore, Document
from repro.backend.faults import (
    FaultDecision,
    FaultInjectionError,
    FaultInjector,
    FlakyHandler,
    LinkFaultModel,
    Partition,
    SlowHandler,
)
from repro.backend.queue import TaskQueue, Task, TaskState, RetryPolicy
from repro.backend.scheduler import SimulatedScheduler, ScheduledJob
from repro.backend.workers import WorkerPool, map_parallel, map_with_failures
from repro.backend.server import IngestServer, UploadSession
from repro.backend.telemetry import TelemetryRegistry, default_registry
from repro.backend.serialization import (
    DecodedSession,
    payload_to_session,
    session_to_payload,
)

__all__ = [
    "chunk_payload",
    "reassemble_chunks",
    "Chunk",
    "DocumentStore",
    "Document",
    "TaskQueue",
    "Task",
    "TaskState",
    "RetryPolicy",
    "FaultDecision",
    "FaultInjectionError",
    "FaultInjector",
    "FlakyHandler",
    "LinkFaultModel",
    "Partition",
    "SlowHandler",
    "SimulatedScheduler",
    "ScheduledJob",
    "WorkerPool",
    "map_parallel",
    "map_with_failures",
    "IngestServer",
    "UploadSession",
    "TelemetryRegistry",
    "default_registry",
    "DecodedSession",
    "payload_to_session",
    "session_to_payload",
]
