"""Chunked upload protocol.

Paper Section IV: "The datasets are zipped and then separated into 5MB
chunks for transmitting." Each chunk carries a sequence number and a CRC so
the server can detect loss, reordering and corruption; payloads are
zlib-compressed before splitting, mirroring the zip step.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import List, Sequence

#: The paper's chunk size.
DEFAULT_CHUNK_SIZE = 5 * 1024 * 1024


@dataclass(frozen=True)
class Chunk:
    """One transmitted fragment of an upload."""

    upload_id: str
    index: int
    total: int
    payload: bytes
    crc32: int

    def verify(self) -> bool:
        return zlib.crc32(self.payload) == self.crc32


def chunk_payload(
    upload_id: str,
    data: bytes,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    compress: bool = True,
) -> List[Chunk]:
    """Compress ``data`` and split it into CRC-tagged chunks."""
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    blob = zlib.compress(data) if compress else data
    total = max(1, (len(blob) + chunk_size - 1) // chunk_size)
    chunks = []
    for i in range(total):
        part = blob[i * chunk_size : (i + 1) * chunk_size]
        chunks.append(
            Chunk(
                upload_id=upload_id,
                index=i,
                total=total,
                payload=part,
                crc32=zlib.crc32(part),
            )
        )
    return chunks


class ChunkReassemblyError(Exception):
    """Raised when a chunk set cannot be reassembled into the original data."""


def reassemble_chunks(chunks: Sequence[Chunk], compressed: bool = True) -> bytes:
    """Reassemble (possibly reordered) chunks back into the original bytes.

    Raises :class:`ChunkReassemblyError` on missing, duplicate-conflicting,
    corrupt or inconsistent chunks.
    """
    if not chunks:
        raise ChunkReassemblyError("no chunks to reassemble")
    upload_ids = {c.upload_id for c in chunks}
    if len(upload_ids) != 1:
        raise ChunkReassemblyError(f"mixed upload ids: {sorted(upload_ids)}")
    total = chunks[0].total
    if any(c.total != total for c in chunks):
        raise ChunkReassemblyError("inconsistent chunk totals")
    by_index: dict[int, Chunk] = {}
    for c in chunks:
        if not c.verify():
            raise ChunkReassemblyError(f"chunk {c.index} failed CRC check")
        existing = by_index.get(c.index)
        if existing is not None and existing.payload != c.payload:
            raise ChunkReassemblyError(f"conflicting duplicates of chunk {c.index}")
        by_index[c.index] = c
    missing = sorted(set(range(total)) - set(by_index))
    if missing:
        raise ChunkReassemblyError(f"missing chunks: {missing}")
    blob = b"".join(by_index[i].payload for i in range(total))
    if not compressed:
        return blob
    try:
        return zlib.decompress(blob)
    except zlib.error as exc:
        raise ChunkReassemblyError(f"decompression failed: {exc}") from exc
