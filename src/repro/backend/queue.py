"""Task queue with acknowledgement and retry semantics.

Connects the ingest path to the processing pipeline: uploads become tasks,
workers lease them, and failed leases are retried up to a bound before
landing in a dead-letter list — the behaviour a production cloud pipeline
needs when a pipeline stage crashes mid-document.
"""

from __future__ import annotations

import enum
import itertools
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional


class TaskState(enum.Enum):
    """Lifecycle of a queued task."""

    PENDING = "pending"
    LEASED = "leased"
    DONE = "done"
    DEAD = "dead"


@dataclass
class Task:
    """One unit of pipeline work."""

    task_id: int
    kind: str
    payload: Any
    state: TaskState = TaskState.PENDING
    attempts: int = 0
    last_error: Optional[str] = None
    result: Any = None


class TaskQueue:
    """FIFO queue with lease/ack/nack and bounded retries."""

    def __init__(self, max_attempts: int = 3):
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        self.max_attempts = max_attempts
        self._pending: Deque[int] = deque()
        self._tasks: Dict[int, Task] = {}
        self._counter = itertools.count(1)
        self._lock = threading.Condition()

    def submit(self, kind: str, payload: Any) -> Task:
        with self._lock:
            task = Task(task_id=next(self._counter), kind=kind, payload=payload)
            self._tasks[task.task_id] = task
            self._pending.append(task.task_id)
            self._lock.notify()
            return task

    def lease(self, timeout: Optional[float] = None) -> Optional[Task]:
        """Take the next pending task, blocking up to ``timeout`` seconds."""
        with self._lock:
            if not self._pending and timeout:
                self._lock.wait(timeout)
            if not self._pending:
                return None
            task = self._tasks[self._pending.popleft()]
            task.state = TaskState.LEASED
            task.attempts += 1
            return task

    def ack(self, task_id: int, result: Any = None) -> None:
        with self._lock:
            task = self._require(task_id, TaskState.LEASED)
            task.state = TaskState.DONE
            task.result = result
            self._lock.notify_all()

    def nack(self, task_id: int, error: str = "") -> None:
        """Report a failed lease; requeues or dead-letters the task."""
        with self._lock:
            task = self._require(task_id, TaskState.LEASED)
            task.last_error = error
            if task.attempts >= self.max_attempts:
                task.state = TaskState.DEAD
            else:
                task.state = TaskState.PENDING
                self._pending.append(task.task_id)
            self._lock.notify_all()

    def _require(self, task_id: int, expected: TaskState) -> Task:
        task = self._tasks.get(task_id)
        if task is None:
            raise KeyError(f"unknown task {task_id}")
        if task.state is not expected:
            raise ValueError(
                f"task {task_id} is {task.state.value}, expected {expected.value}"
            )
        return task

    def task(self, task_id: int) -> Task:
        with self._lock:
            return self._tasks[task_id]

    def tasks_in_state(self, state: TaskState) -> List[Task]:
        with self._lock:
            return [t for t in self._tasks.values() if t.state is state]

    def pending_count(self) -> int:
        with self._lock:
            return len(self._pending)

    def all_settled(self) -> bool:
        """True when nothing is pending or leased."""
        with self._lock:
            return all(
                t.state in (TaskState.DONE, TaskState.DEAD)
                for t in self._tasks.values()
            )
