"""Task queue with acknowledgement, retry-with-backoff and dead-letter semantics.

Connects the ingest path to the processing pipeline: uploads become tasks,
workers lease them, and failed leases are retried up to a bound before
landing in a dead-letter list — the behaviour a production cloud pipeline
needs when a pipeline stage crashes mid-document.

Retries are governed by a :class:`RetryPolicy`: each failed attempt
schedules the task ``backoff_base * backoff_factor**(attempt-1)`` seconds
into the future (capped at ``backoff_max``, optionally jittered with a
seeded RNG so tests replay exactly), and a task that exhausts its attempts
is dead-lettered rather than dropped. Every transition lands in telemetry
(``tasks_retried`` / ``tasks_dead_lettered``) and on the task itself
(``attempt_errors``), so an operator can reconstruct the attempt trail of
any upload.
"""

from __future__ import annotations

import enum
import itertools
import random
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional

from repro.backend.telemetry import TelemetryRegistry, default_registry


class TaskState(enum.Enum):
    """Lifecycle of a queued task."""

    PENDING = "pending"
    LEASED = "leased"
    DONE = "done"
    DEAD = "dead"


@dataclass(frozen=True)
class RetryPolicy:
    """How failed tasks are retried before dead-lettering.

    ``max_attempts`` bounds total tries (first attempt included). With
    ``backoff_base == 0`` retries are immediate, preserving the seed
    behaviour; otherwise attempt ``k``'s retry is delayed exponentially
    and jittered by up to ``jitter`` of itself (symmetric, seeded).
    """

    max_attempts: int = 3
    backoff_base: float = 0.0
    backoff_factor: float = 2.0
    backoff_max: float = 30.0
    jitter: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ValueError("backoff delays must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def delay_for(self, attempt: int, rng: random.Random) -> float:
        """Backoff delay after the ``attempt``-th failure (1-based)."""
        if self.backoff_base <= 0.0:
            return 0.0
        delay = min(
            self.backoff_max,
            self.backoff_base * self.backoff_factor ** max(0, attempt - 1),
        )
        if self.jitter > 0.0:
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return delay


@dataclass
class Task:
    """One unit of pipeline work."""

    task_id: int
    kind: str
    payload: Any
    state: TaskState = TaskState.PENDING
    attempts: int = 0
    last_error: Optional[str] = None
    result: Any = None
    #: Earliest clock time this task may be leased again (backoff gate).
    not_before: float = 0.0
    #: Error message of every failed attempt, in order.
    attempt_errors: List[str] = field(default_factory=list)


class TaskQueue:
    """FIFO queue with lease/ack/nack, bounded retries and backoff.

    ``clock`` is injectable (monotonic seconds) so tests can drive the
    backoff schedule without sleeping.
    """

    def __init__(
        self,
        max_attempts: int = 3,
        retry_policy: Optional[RetryPolicy] = None,
        telemetry: Optional[TelemetryRegistry] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if retry_policy is None:
            retry_policy = RetryPolicy(max_attempts=max_attempts)
        self.retry_policy = retry_policy
        self.max_attempts = retry_policy.max_attempts
        self.telemetry = telemetry or default_registry
        self._clock = clock
        self._jitter_rng = random.Random(retry_policy.seed)
        self._pending: Deque[int] = deque()
        self._tasks: Dict[int, Task] = {}
        self._counter = itertools.count(1)
        self._lock = threading.Condition()

    def submit(self, kind: str, payload: Any) -> Task:
        with self._lock:
            task = Task(task_id=next(self._counter), kind=kind, payload=payload)
            self._tasks[task.task_id] = task
            self._pending.append(task.task_id)
            self._lock.notify()
            return task

    def lease(self, timeout: Optional[float] = None) -> Optional[Task]:
        """Take the next *ready* pending task, blocking up to ``timeout``.

        A task still inside its backoff window is skipped (it stays
        queued); FIFO order holds among ready tasks.
        """
        with self._lock:
            deadline = None if not timeout else time.monotonic() + timeout
            while True:
                now = self._clock()
                for idx, task_id in enumerate(self._pending):
                    task = self._tasks[task_id]
                    if task.not_before <= now:
                        del self._pending[idx]
                        task.state = TaskState.LEASED
                        task.attempts += 1
                        return task
                if deadline is None:
                    return None
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return None
                # Sleep until a submit/nack notifies us or the earliest
                # backoff window could open, whichever comes first.
                waits = [remaining]
                if self._pending:
                    waits.append(
                        max(
                            0.001,
                            min(self._tasks[i].not_before
                                for i in self._pending) - now,
                        )
                    )
                self._lock.wait(min(waits))

    def ack(self, task_id: int, result: Any = None) -> None:
        with self._lock:
            task = self._require(task_id, TaskState.LEASED)
            task.state = TaskState.DONE
            task.result = result
            self._lock.notify_all()

    def nack(self, task_id: int, error: str = "") -> None:
        """Report a failed lease; requeues (with backoff) or dead-letters."""
        with self._lock:
            task = self._require(task_id, TaskState.LEASED)
            task.last_error = error
            task.attempt_errors.append(error)
            if task.attempts >= self.max_attempts:
                task.state = TaskState.DEAD
                self.telemetry.counter(
                    "tasks_dead_lettered", "tasks that exhausted their retries"
                ).inc()
            else:
                task.state = TaskState.PENDING
                task.not_before = self._clock() + self.retry_policy.delay_for(
                    task.attempts, self._jitter_rng
                )
                self._pending.append(task.task_id)
                self.telemetry.counter(
                    "tasks_retried", "failed attempts that were requeued"
                ).inc()
            self._lock.notify_all()

    def retry_dead(self, task_id: int) -> Task:
        """Resurrect a dead-lettered task with a fresh attempt budget."""
        with self._lock:
            task = self._require(task_id, TaskState.DEAD)
            task.state = TaskState.PENDING
            task.attempts = 0
            task.not_before = 0.0
            self._pending.append(task.task_id)
            self._lock.notify()
            return task

    def _require(self, task_id: int, expected: TaskState) -> Task:
        task = self._tasks.get(task_id)
        if task is None:
            raise KeyError(f"unknown task {task_id}")
        if task.state is not expected:
            raise ValueError(
                f"task {task_id} is {task.state.value}, expected {expected.value}"
            )
        return task

    def task(self, task_id: int) -> Task:
        with self._lock:
            return self._tasks[task_id]

    def tasks_in_state(self, state: TaskState) -> List[Task]:
        with self._lock:
            return [t for t in self._tasks.values() if t.state is state]

    def dead_letters(self) -> List[Task]:
        """Every task that exhausted its retries (the dead-letter list)."""
        return self.tasks_in_state(TaskState.DEAD)

    def pending_count(self) -> int:
        with self._lock:
            return len(self._pending)

    def next_ready_in(self) -> Optional[float]:
        """Seconds until the earliest pending task becomes leasable.

        0.0 when one is ready now; None when nothing is pending. Lets a
        draining worker sleep exactly as long as the backoff requires.
        """
        with self._lock:
            if not self._pending:
                return None
            now = self._clock()
            return max(
                0.0,
                min(self._tasks[i].not_before for i in self._pending) - now,
            )

    def all_settled(self) -> bool:
        """True when nothing is pending or leased."""
        with self._lock:
            return all(
                t.state in (TaskState.DONE, TaskState.DEAD)
                for t in self._tasks.values()
            )
