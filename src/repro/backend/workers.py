"""Worker pool for parallel pipeline stages (Spark stand-in).

The paper "leverage[s] PySpark with MLlib ... to accelerate the process of
user trajectories aggregation". The equivalent here is a pluggable-backend
:func:`map_parallel` for embarrassingly parallel stages (trajectory pair
scoring, per-room layout generation) plus a thread pool that drains a
:class:`~repro.backend.queue.TaskQueue` through per-kind handlers.

Three map backends:

- ``"serial"`` — plain loop in the calling thread. With the vectorized
  kernels most stages are memory-bound numpy; on small fan-outs this
  beats both pools.
- ``"thread"`` — a thread pool. Only pays off where numpy actually
  releases the GIL for long stretches.
- ``"process"`` — a process pool with *chunked* submission: items are
  grouped into ``workers * 4`` chunks so the callable is pickled once
  per chunk, not once per item. Exceptions are pickle-round-trip
  checked worker-side; ones that cannot cross the process boundary
  come back as :class:`WorkerTransportError` carrying the original
  type name and message.

The process backend additionally supports zero-copy **transport**
(``transport="auto"|"shm"|"pickle"``): under ``shm`` (or ``auto`` with
shared memory available) the items are walked through a per-call
:class:`~repro.backend.shm.ShmArena` before submission, so every large
array crosses the pool boundary as a segment handle instead of pickled
bytes. The arena is closed — and its segments unlinked — before the
call returns, win or lose. Results stream back in input order through
an optional ``consume`` callback, which lets a caller overlap its own
follow-up work (e.g. SURF extraction for finished sessions) with the
chunks still executing.

Failure semantics are backend-independent: a queue handler exception
nacks the task, which the queue retries with backoff until it
dead-letters; :func:`map_parallel` defaults to fail-fast
(``on_error="raise"``) but can shed bad items (``on_error="skip"``), and
:func:`map_with_failures` reports every failure with its input index so
the pipeline can quarantine exactly the sessions that broke — under any
backend.
"""

from __future__ import annotations

import math
import pickle
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

from repro.backend.queue import Task, TaskQueue
from repro.backend.telemetry import TelemetryRegistry, default_registry

T = TypeVar("T")
R = TypeVar("R")

#: Valid values for the ``backend`` argument / ``worker_backend`` config.
MAP_BACKENDS = ("serial", "thread", "process")

#: Valid values for the ``transport`` argument / ``worker_transport``
#: config. "auto" means shared memory when the platform has it, pickle
#: otherwise; serial and thread backends have no boundary to transport
#: across and ignore it.
MAP_TRANSPORTS = ("auto", "shm", "pickle")

#: Target chunks per worker for the process backend — enough chunks that
#: an uneven item-cost distribution still balances, few enough that the
#: per-chunk pickle of the callable is amortized over many items.
_CHUNKS_PER_WORKER = 4


class WorkerTransportError(RuntimeError):
    """Stands in for a worker exception that could not be pickled back.

    Carries the original exception's type name and message so quarantine
    reports stay meaningful even when the original object cannot cross
    the process boundary.
    """

    def __init__(self, exc_type: str, message: str):
        # args must mirror the constructor signature so the stand-in
        # itself survives the pickle trip it exists to make possible.
        super().__init__(exc_type, message)
        self.exc_type = exc_type
        self.message = message

    def __str__(self) -> str:
        return f"{self.exc_type}: {self.message}"


def _portable_exception(exc: Exception) -> Exception:
    """The exception itself if it survives pickling, else a stand-in."""
    try:
        roundtripped = pickle.loads(pickle.dumps(exc))
        if isinstance(roundtripped, Exception):
            return exc
    except Exception:  # noqa: BLE001  # crowdlint: allow[CM003] any pickle failure means "not portable"; the returned WorkerTransportError preserves the original error's type and message
        pass
    return WorkerTransportError(type(exc).__name__, str(exc))


def _run_chunk(
    function: Callable[[T], R], chunk: Sequence[T]
) -> List[Tuple[bool, Any]]:
    """Apply ``function`` to a chunk, capturing per-item success/failure.

    Module-level so the process backend can pickle it; the ``(ok, value)``
    encoding keeps result and exception streams in input order without
    raising across the pool boundary.
    """
    out: List[Tuple[bool, Any]] = []
    for item in chunk:
        try:
            out.append((True, function(item)))
        except Exception as exc:  # noqa: BLE001  # crowdlint: allow[CM003] the (ok, exc) encoding defers the raise/skip/quarantine decision to the caller, which re-raises under on_error="raise"
            out.append((False, _portable_exception(exc)))
    return out


#: Per-item streaming callback: ``consume(index, ok, value)`` fires in
#: input order as results land, while later chunks may still be running.
ConsumeFn = Callable[[int, bool, Any], None]


def _execute(
    function: Callable[[T], R],
    items: Sequence[T],
    max_workers: int,
    backend: str,
    transport: str = "auto",
    consume: Optional[ConsumeFn] = None,
) -> List[Tuple[bool, Any]]:
    """Run ``function`` over ``items`` on the chosen backend.

    Returns ``(ok, value_or_exception)`` per item, in input order — the
    shared core of :func:`map_parallel` and :func:`map_with_failures`.
    """
    if backend not in MAP_BACKENDS:
        raise ValueError(
            f"backend must be one of {MAP_BACKENDS}, got {backend!r}"
        )
    if transport not in MAP_TRANSPORTS:
        raise ValueError(
            f"transport must be one of {MAP_TRANSPORTS}, got {transport!r}"
        )

    def emit(start: int, pairs: List[Tuple[bool, Any]]) -> None:
        if consume is not None:
            for offset, (ok, value) in enumerate(pairs):
                consume(start + offset, ok, value)

    n = len(items)
    if backend == "serial" or max_workers <= 1 or n == 1:
        out: List[Tuple[bool, Any]] = []
        for idx, item in enumerate(items):
            pair = _run_chunk(function, (item,))
            emit(idx, pair)
            out.extend(pair)
        return out
    if backend == "thread":
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            results: List[Tuple[bool, Any]] = []
            for idx, chunk in enumerate(
                pool.map(lambda item: _run_chunk(function, (item,)), items)
            ):
                emit(idx, chunk)
                results.extend(chunk)
            return results
    # Process backend: chunk to amortize pickling of the callable and of
    # per-item overhead across the pool boundary. Under shm transport the
    # items are shared into an arena first, so their large arrays cross
    # the boundary as handles; the arena is torn down before returning,
    # which also guarantees no segment outlives the call.
    from repro.backend.shm import ShmArena, shm_enabled

    use_shm = transport == "shm" or (transport == "auto" and shm_enabled())
    arena: Optional[ShmArena] = None
    send: Sequence[Any] = items
    try:
        if use_shm:
            arena = ShmArena()
            if arena.enabled:
                with default_registry.timer("shm_share_seconds"):
                    memo: Dict[int, Any] = {}
                    send = [arena.share(item, memo) for item in items]
        chunk_size = max(1, math.ceil(n / (max_workers * _CHUNKS_PER_WORKER)))
        chunks = [send[i : i + chunk_size] for i in range(0, n, chunk_size)]
        workers = min(max_workers, len(chunks))
        results = []
        with ProcessPoolExecutor(max_workers=workers) as pool:
            for chunk_pairs in pool.map(
                _run_chunk, [function] * len(chunks), chunks
            ):
                emit(len(results), chunk_pairs)
                results.extend(chunk_pairs)
        return results
    finally:
        if arena is not None:
            arena.close()


def map_parallel(
    function: Callable[[T], R],
    items: Sequence[T],
    max_workers: int = 4,
    on_error: str = "raise",
    telemetry: Optional[TelemetryRegistry] = None,
    backend: str = "thread",
    transport: str = "auto",
    consume: Optional[ConsumeFn] = None,
) -> List[R]:
    """Apply ``function`` to every item in parallel, preserving order.

    With ``on_error="raise"`` exceptions propagate to the caller,
    matching the fail-fast behaviour of a Spark job with a failing
    partition. With ``on_error="skip"`` the failing items are dropped
    from the result (survivor order preserved) and counted in the
    ``map_parallel_items_skipped`` telemetry counter — the mode the
    pipeline's fault-tolerant stages use to shed corrupt sessions.

    ``backend`` selects serial, thread-pool or chunked process-pool
    execution (see module docstring); semantics are identical across
    backends, modulo process-unpicklable exceptions surfacing as
    :class:`WorkerTransportError`. ``transport`` picks the process-pool
    wire format (shared-memory handles vs pickled bytes) and ``consume``
    streams ``(index, ok, value)`` triples back in input order as they
    complete — both are no-ops for serial/thread execution apart from
    the streaming calls themselves.
    """
    if on_error not in ("raise", "skip"):
        raise ValueError(f"on_error must be 'raise' or 'skip', got {on_error!r}")
    if not items:
        return []

    registry = telemetry or default_registry
    results: List[R] = []
    for ok, value in _execute(
        function, items, max_workers, backend, transport, consume
    ):
        if ok:
            results.append(value)
        elif on_error == "raise":
            raise value
        else:
            registry.counter(
                "map_parallel_items_skipped",
                "items dropped by map_parallel(on_error='skip')",
            ).inc()
    return results


def map_with_failures(
    function: Callable[[T], R],
    items: Sequence[T],
    max_workers: int = 4,
    backend: str = "thread",
    transport: str = "auto",
    consume: Optional[ConsumeFn] = None,
) -> Tuple[List[Tuple[int, R]], List[Tuple[int, Exception]]]:
    """Like ``map_parallel(on_error="skip")`` but the failures come back.

    Returns ``(successes, failures)`` where each entry is paired with the
    item's original index, so callers that must *report* which items were
    quarantined (rather than silently shedding them) can reconstruct
    both streams in input order. ``backend``, ``transport`` and
    ``consume`` behave as in :func:`map_parallel`; quarantine semantics
    are preserved under all three backends and both transports.
    """
    if not items:
        return [], []
    successes: List[Tuple[int, R]] = []
    failures: List[Tuple[int, Exception]] = []
    for idx, (ok, value) in enumerate(
        _execute(function, items, max_workers, backend, transport, consume)
    ):
        if ok:
            successes.append((idx, value))
        else:
            failures.append((idx, value))
    return successes, failures


class WorkerPool:
    """Threads draining a task queue through registered handlers."""

    def __init__(
        self,
        queue: TaskQueue,
        n_workers: int = 2,
        telemetry: Optional[TelemetryRegistry] = None,
    ):
        if n_workers < 1:
            raise ValueError("need at least one worker")
        self.queue = queue
        self.n_workers = n_workers
        self.telemetry = telemetry or default_registry
        self._handlers: Dict[str, Callable[[Any], Any]] = {}
        self._threads: List[threading.Thread] = []
        self._stop = threading.Event()

    def register(self, kind: str, handler: Callable[[Any], Any]) -> None:
        """Route tasks of ``kind`` to ``handler(payload) -> result``."""
        self._handlers[kind] = handler

    def _run_one(self, task: Task) -> None:
        handler = self._handlers.get(task.kind)
        if handler is None:
            self.queue.nack(task.task_id, error=f"no handler for kind {task.kind!r}")
            return
        try:
            with self.telemetry.timer(f"worker_{task.kind}_seconds"):
                result = handler(task.payload)
        except Exception as exc:  # noqa: BLE001 - worker must survive bad tasks
            self.telemetry.counter("worker_task_failures").inc()
            self.telemetry.counter(
                f"worker_{task.kind}_failures",
                "failed handler attempts for this task kind",
            ).inc()
            self.queue.nack(task.task_id, error=f"{type(exc).__name__}: {exc}")
        else:
            self.telemetry.counter("worker_tasks_done").inc()
            self.telemetry.histogram(
                "task_attempts_to_success",
                "attempts a task needed before acking",
            ).observe(task.attempts)
            self.queue.ack(task.task_id, result=result)

    def _worker_loop(self) -> None:
        while not self._stop.is_set():
            task = self.queue.lease(timeout=0.05)
            if task is not None:
                self._run_one(task)

    def start(self) -> None:
        if self._threads:
            raise RuntimeError("pool already started")
        self._stop.clear()
        for i in range(self.n_workers):
            thread = threading.Thread(
                target=self._worker_loop, name=f"worker-{i}", daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def stop(self) -> None:
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout=5.0)
        self._threads.clear()

    def drain(self, poll_interval: float = 0.01, timeout: float = 30.0) -> None:
        """Block until every submitted task settles (done or dead)."""
        deadline = time.monotonic() + timeout
        while not self.queue.all_settled():
            if time.monotonic() > deadline:
                raise TimeoutError("worker pool did not drain in time")
            time.sleep(poll_interval)

    def __enter__(self) -> "WorkerPool":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
