"""Worker pool for parallel pipeline stages (Spark stand-in).

The paper "leverage[s] PySpark with MLlib ... to accelerate the process of
user trajectories aggregation". The equivalent here is a thread pool that
drains a :class:`~repro.backend.queue.TaskQueue` through per-kind handlers,
plus a convenience :func:`map_parallel` for embarrassingly parallel stages
(trajectory pair scoring, per-room layout generation). Threads are the
right tool offline: numpy releases the GIL in its inner loops.

Failure semantics: a handler exception nacks the task, which the queue
retries with backoff until it dead-letters; :func:`map_parallel` defaults
to fail-fast (``on_error="raise"``) but can shed bad items
(``on_error="skip"``) so one corrupt session cannot abort a whole
embarrassingly parallel stage.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

from repro.backend.queue import Task, TaskQueue
from repro.backend.telemetry import TelemetryRegistry, default_registry

T = TypeVar("T")
R = TypeVar("R")

#: Internal marker for items dropped by ``on_error="skip"``.
_SKIPPED = object()


def map_parallel(
    function: Callable[[T], R],
    items: Sequence[T],
    max_workers: int = 4,
    on_error: str = "raise",
    telemetry: Optional[TelemetryRegistry] = None,
) -> List[R]:
    """Apply ``function`` to every item in parallel, preserving order.

    With ``on_error="raise"`` exceptions propagate to the caller,
    matching the fail-fast behaviour of a Spark job with a failing
    partition. With ``on_error="skip"`` the failing items are dropped
    from the result (survivor order preserved) and counted in the
    ``map_parallel_items_skipped`` telemetry counter — the mode the
    pipeline's fault-tolerant stages use to shed corrupt sessions.
    """
    if on_error not in ("raise", "skip"):
        raise ValueError(f"on_error must be 'raise' or 'skip', got {on_error!r}")
    if not items:
        return []

    registry = telemetry or default_registry

    def call(item: T):
        if on_error == "raise":
            return function(item)
        try:
            return function(item)
        except Exception:  # noqa: BLE001  # crowdlint: allow[CM003] skip mode's documented contract is to shed; map_with_failures is the recording variant and the skip counter below keeps the tally
            registry.counter(
                "map_parallel_items_skipped",
                "items dropped by map_parallel(on_error='skip')",
            ).inc()
            return _SKIPPED

    if max_workers <= 1 or len(items) == 1:
        raw = [call(item) for item in items]
    else:
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            raw = list(pool.map(call, items))
    return [r for r in raw if r is not _SKIPPED]


def map_with_failures(
    function: Callable[[T], R],
    items: Sequence[T],
    max_workers: int = 4,
) -> Tuple[List[Tuple[int, R]], List[Tuple[int, Exception]]]:
    """Like ``map_parallel(on_error="skip")`` but the failures come back.

    Returns ``(successes, failures)`` where each entry is paired with the
    item's original index, so callers that must *report* which items were
    quarantined (rather than silently shedding them) can reconstruct
    both streams in input order.
    """
    if not items:
        return [], []

    def call(indexed: Tuple[int, T]):
        idx, item = indexed
        try:
            return idx, function(item), None
        except Exception as exc:  # noqa: BLE001 - caller handles the report
            return idx, None, exc

    indexed_items = list(enumerate(items))
    if max_workers <= 1 or len(items) == 1:
        raw = [call(pair) for pair in indexed_items]
    else:
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            raw = list(pool.map(call, indexed_items))
    successes = [(idx, result) for idx, result, exc in raw if exc is None]
    failures = [(idx, exc) for idx, _, exc in raw if exc is not None]
    return successes, failures


class WorkerPool:
    """Threads draining a task queue through registered handlers."""

    def __init__(
        self,
        queue: TaskQueue,
        n_workers: int = 2,
        telemetry: Optional[TelemetryRegistry] = None,
    ):
        if n_workers < 1:
            raise ValueError("need at least one worker")
        self.queue = queue
        self.n_workers = n_workers
        self.telemetry = telemetry or default_registry
        self._handlers: Dict[str, Callable[[Any], Any]] = {}
        self._threads: List[threading.Thread] = []
        self._stop = threading.Event()

    def register(self, kind: str, handler: Callable[[Any], Any]) -> None:
        """Route tasks of ``kind`` to ``handler(payload) -> result``."""
        self._handlers[kind] = handler

    def _run_one(self, task: Task) -> None:
        handler = self._handlers.get(task.kind)
        if handler is None:
            self.queue.nack(task.task_id, error=f"no handler for kind {task.kind!r}")
            return
        try:
            with self.telemetry.timer(f"worker_{task.kind}_seconds"):
                result = handler(task.payload)
        except Exception as exc:  # noqa: BLE001 - worker must survive bad tasks
            self.telemetry.counter("worker_task_failures").inc()
            self.telemetry.counter(
                f"worker_{task.kind}_failures",
                "failed handler attempts for this task kind",
            ).inc()
            self.queue.nack(task.task_id, error=f"{type(exc).__name__}: {exc}")
        else:
            self.telemetry.counter("worker_tasks_done").inc()
            self.telemetry.histogram(
                "task_attempts_to_success",
                "attempts a task needed before acking",
            ).observe(task.attempts)
            self.queue.ack(task.task_id, result=result)

    def _worker_loop(self) -> None:
        while not self._stop.is_set():
            task = self.queue.lease(timeout=0.05)
            if task is not None:
                self._run_one(task)

    def start(self) -> None:
        if self._threads:
            raise RuntimeError("pool already started")
        self._stop.clear()
        for i in range(self.n_workers):
            thread = threading.Thread(
                target=self._worker_loop, name=f"worker-{i}", daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def stop(self) -> None:
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout=5.0)
        self._threads.clear()

    def drain(self, poll_interval: float = 0.01, timeout: float = 30.0) -> None:
        """Block until every submitted task settles (done or dead)."""
        deadline = time.monotonic() + timeout
        while not self.queue.all_settled():
            if time.monotonic() > deadline:
                raise TimeoutError("worker pool did not drain in time")
            time.sleep(poll_interval)

    def __enter__(self) -> "WorkerPool":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
