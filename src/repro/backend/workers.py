"""Worker pool for parallel pipeline stages (Spark stand-in).

The paper "leverage[s] PySpark with MLlib ... to accelerate the process of
user trajectories aggregation". The equivalent here is a thread pool that
drains a :class:`~repro.backend.queue.TaskQueue` through per-kind handlers,
plus a convenience :func:`map_parallel` for embarrassingly parallel stages
(trajectory pair scoring, per-room layout generation). Threads are the
right tool offline: numpy releases the GIL in its inner loops.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Sequence, TypeVar

from repro.backend.queue import Task, TaskQueue
from repro.backend.telemetry import TelemetryRegistry, default_registry

T = TypeVar("T")
R = TypeVar("R")


def map_parallel(
    function: Callable[[T], R],
    items: Sequence[T],
    max_workers: int = 4,
) -> List[R]:
    """Apply ``function`` to every item in parallel, preserving order.

    Exceptions propagate to the caller (after all futures settle), matching
    the fail-fast behaviour of a Spark job with a failing partition.
    """
    if not items:
        return []
    if max_workers <= 1 or len(items) == 1:
        return [function(item) for item in items]
    with ThreadPoolExecutor(max_workers=max_workers) as pool:
        return list(pool.map(function, items))


class WorkerPool:
    """Threads draining a task queue through registered handlers."""

    def __init__(
        self,
        queue: TaskQueue,
        n_workers: int = 2,
        telemetry: Optional[TelemetryRegistry] = None,
    ):
        if n_workers < 1:
            raise ValueError("need at least one worker")
        self.queue = queue
        self.n_workers = n_workers
        self.telemetry = telemetry or default_registry
        self._handlers: Dict[str, Callable[[Any], Any]] = {}
        self._threads: List[threading.Thread] = []
        self._stop = threading.Event()

    def register(self, kind: str, handler: Callable[[Any], Any]) -> None:
        """Route tasks of ``kind`` to ``handler(payload) -> result``."""
        self._handlers[kind] = handler

    def _run_one(self, task: Task) -> None:
        handler = self._handlers.get(task.kind)
        if handler is None:
            self.queue.nack(task.task_id, error=f"no handler for kind {task.kind!r}")
            return
        try:
            with self.telemetry.timer(f"worker_{task.kind}_seconds"):
                result = handler(task.payload)
        except Exception as exc:  # noqa: BLE001 - worker must survive bad tasks
            self.telemetry.counter("worker_task_failures").inc()
            self.queue.nack(task.task_id, error=f"{type(exc).__name__}: {exc}")
        else:
            self.telemetry.counter("worker_tasks_done").inc()
            self.queue.ack(task.task_id, result=result)

    def _worker_loop(self) -> None:
        while not self._stop.is_set():
            task = self.queue.lease(timeout=0.05)
            if task is not None:
                self._run_one(task)

    def start(self) -> None:
        if self._threads:
            raise RuntimeError("pool already started")
        self._stop.clear()
        for i in range(self.n_workers):
            thread = threading.Thread(
                target=self._worker_loop, name=f"worker-{i}", daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def stop(self) -> None:
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout=5.0)
        self._threads.clear()

    def drain(self, poll_interval: float = 0.01, timeout: float = 30.0) -> None:
        """Block until every submitted task settles (done or dead)."""
        import time

        deadline = time.monotonic() + timeout
        while not self.queue.all_settled():
            if time.monotonic() > deadline:
                raise TimeoutError("worker pool did not drain in time")
            time.sleep(poll_interval)

    def __enter__(self) -> "WorkerPool":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
