"""Mutual nearest-neighbour descriptor matching (paper Algorithm 1).

Given two SURF descriptor sets {F1} and {F2}, the paper accepts a pair
(f1, f2) when f2 is f1's nearest neighbour in {F2}, f1 is in turn f2's
nearest neighbour back in {F1}, and their distance is under a threshold
``hd``. The similarity of the two frames is then

    S2(F1, F2) = |A| / |F1 ∪ F2|            (paper Eq. 1)

where A is the set of accepted pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.core.contracts import shaped
from repro.vision.surf import SurfFeature, descriptor_matrix


@dataclass(frozen=True)
class MatchResult:
    """Outcome of matching two descriptor sets."""

    pairs: Tuple[Tuple[int, int], ...]  # (index into F1, index into F2)
    similarity: float  # S2 score, Eq. 1

    @property
    def n_matches(self) -> int:
        return len(self.pairs)


def descriptor_norms(matrix: np.ndarray) -> np.ndarray:
    """Per-row squared norms of a descriptor matrix, ``(N,)``.

    Exactly the ``sum(a * a, axis=1)`` term of the pairwise-distance
    expansion, split out so callers that compare one descriptor set
    against many others (every key-frame pair shares its two halves) can
    compute it once per set instead of once per pair.
    """
    return np.sum(matrix * matrix, axis=1)


@shaped(a="(N,D)", b="(M,D)", out="(N,M) float64")
def _pairwise_distances(
    a: np.ndarray,
    b: np.ndarray,
    sq_a: np.ndarray = None,
    sq_b: np.ndarray = None,
) -> np.ndarray:
    """Euclidean distance matrix between rows of ``a`` (N,D) and ``b`` (M,D)."""
    # (x-y)^2 = x^2 + y^2 - 2xy, clamped against negative rounding error.
    if sq_a is None:
        sq_a = descriptor_norms(a)
    if sq_b is None:
        sq_b = descriptor_norms(b)
    sq = sq_a[:, None] + sq_b[None, :] - 2.0 * (a @ b.T)
    return np.sqrt(np.maximum(sq, 0.0))


def match_descriptors(
    features_a: Sequence[SurfFeature],
    features_b: Sequence[SurfFeature],
    distance_threshold: float = 0.35,
    precomputed_a: tuple = None,
    precomputed_b: tuple = None,
) -> MatchResult:
    """Mutual-NN matching of two SURF feature sets with S2 scoring.

    ``distance_threshold`` is the paper's ``hd``: a mutual nearest-neighbour
    pair only counts as a good match when its descriptor distance is below
    it. The union size in Eq. 1 is ``|F1| + |F2| - |A|`` (matched pairs are
    identified across the two sets).

    ``precomputed_a``/``precomputed_b`` optionally carry a
    ``(descriptor_matrix, descriptor_norms)`` pair for either side. A
    key-frame participates in many pairwise comparisons; reusing its
    stacked matrix and squared row norms (the per-set halves of the
    distance expansion) skips the per-call restacking without changing a
    bit — the cached values are produced by the very same expressions.
    """
    if not features_a or not features_b:
        return MatchResult(pairs=(), similarity=0.0)
    mat_a, sq_a = precomputed_a or (descriptor_matrix(features_a), None)
    mat_b, sq_b = precomputed_b or (descriptor_matrix(features_b), None)
    distances = _pairwise_distances(mat_a, mat_b, sq_a, sq_b)
    nn_ab = distances.argmin(axis=1)  # for each f1, nearest f2
    nn_ba = distances.argmin(axis=0)  # for each f2, nearest f1

    # Mutual agreement in one shot: f1_i survives when its nearest f2's
    # nearest f1 points back at i and the pair distance clears h_d.
    rows = np.arange(nn_ab.size)
    mutual = np.flatnonzero(
        (nn_ba[nn_ab] == rows) & (distances[rows, nn_ab] < distance_threshold)
    )
    pairs: List[Tuple[int, int]] = [(int(i), int(nn_ab[i])) for i in mutual]

    union = len(features_a) + len(features_b) - len(pairs)
    similarity = len(pairs) / union if union > 0 else 0.0
    return MatchResult(pairs=tuple(pairs), similarity=similarity)


def matched_point_pairs(
    features_a: Sequence[SurfFeature],
    features_b: Sequence[SurfFeature],
    result: MatchResult,
) -> Tuple[np.ndarray, np.ndarray]:
    """(N, 2) arrays of matched (x, y) image coordinates from both frames."""
    if not result.pairs:
        return np.zeros((0, 2)), np.zeros((0, 2))
    pts_a = np.array([[features_a[i].x, features_a[i].y] for i, _ in result.pairs])
    pts_b = np.array([[features_b[j].x, features_b[j].y] for _, j in result.pairs])
    return pts_a, pts_b
