"""Separable filtering primitives: convolution, Gaussian blur, Sobel.

Implemented with :func:`scipy.ndimage.convolve`-free numpy code so the
dependency surface stays minimal and behaviour is easy to audit. All filters
use reflect padding, which avoids the dark borders that zero padding would
inject into gradient histograms.

The dense and separable convolutions run on stride-trick windowed views
(:func:`numpy.lib.stride_tricks.sliding_window_view` + ``einsum``/``@``)
so a k-tap kernel costs one BLAS-shaped contraction instead of k
interpreter-dispatched array ops; a per-tap accumulation path remains for
kernels large enough that the windowed view's memory traffic would lose.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.core.contracts import shaped

#: Kernels up to this many taps use the windowed-view contraction; above
#: it the per-tap accumulation path wins on memory traffic (the windowed
#: view reads H*W*k_h*k_w elements, the tap loop only H*W per tap).
_WINDOWED_MAX_TAPS = 169


def _reflect_pad(image: np.ndarray, pad_h: int, pad_w: int) -> np.ndarray:
    return np.pad(image, ((pad_h, pad_h), (pad_w, pad_w)), mode="reflect")


@shaped(image="(H,W)", kernel="(?,?)", out="(H,W) float64")
def convolve2d(image: np.ndarray, kernel: np.ndarray) -> np.ndarray:
    """Dense 2D convolution with reflect padding (same-size output)."""
    if image.ndim != 2 or kernel.ndim != 2:
        raise ValueError("convolve2d expects 2D image and kernel")
    kh, kw = kernel.shape
    pad_h, pad_w = kh // 2, kw // 2
    padded = _reflect_pad(np.asarray(image, dtype=np.float64), pad_h, pad_w)
    flipped = np.ascontiguousarray(kernel[::-1, ::-1], dtype=np.float64)
    h, w = image.shape
    if kh * kw <= _WINDOWED_MAX_TAPS:
        windows = sliding_window_view(padded, (kh, kw))
        return np.einsum("hwij,ij->hw", windows, flipped, optimize=True)
    out = np.zeros((h, w), dtype=np.float64)
    for i in range(kh):  # crowdlint: allow[CM006] loop is over kernel taps, not pixels; each tap is a full-array multiply-add
        for j in range(kw):  # crowdlint: allow[CM006] loop is over kernel taps, not pixels; each tap is a full-array multiply-add
            out += flipped[i, j] * padded[i : i + h, j : j + w]
    return out


def _convolve_separable(image: np.ndarray, kernel_1d: np.ndarray) -> np.ndarray:
    """Convolve with a separable symmetric 1D kernel along both axes.

    Accepts a single ``(H, W)`` image or an ``(N, H, W)`` stack; the
    stacked result is bit-identical to filtering each frame alone (the
    contraction runs over the same contiguous last axis either way).
    """
    k = kernel_1d.size
    pad = k // 2
    h, w = image.shape[-2], image.shape[-1]
    kernel = np.ascontiguousarray(kernel_1d, dtype=np.float64)
    img = np.asarray(image, dtype=np.float64)
    lead = [(0, 0)] * (img.ndim - 2)
    if k <= _WINDOWED_MAX_TAPS:
        padded = np.pad(img, lead + [(0, 0), (pad, pad)], mode="reflect")
        tmp = sliding_window_view(padded, k, axis=-1) @ kernel
        padded = np.pad(tmp, lead + [(pad, pad), (0, 0)], mode="reflect")
        # Windowing rows along the row axis keeps the contraction on the
        # last axis (contiguous reads) by windowing the transpose instead.
        out = sliding_window_view(padded.swapaxes(-1, -2), k, axis=-1) @ kernel
        return np.ascontiguousarray(out.swapaxes(-1, -2))
    padded = np.pad(img, lead + [(0, 0), (pad, pad)], mode="reflect")
    tmp = np.zeros_like(img, dtype=np.float64)
    for j in range(k):  # crowdlint: allow[CM006] loop is over kernel taps, not pixels; chosen when windowed views would thrash memory
        tmp += kernel[j] * padded[..., :, j : j + w]
    padded = np.pad(tmp, lead + [(pad, pad), (0, 0)], mode="reflect")
    out = np.zeros_like(img, dtype=np.float64)
    for i in range(k):  # crowdlint: allow[CM006] loop is over kernel taps, not pixels; chosen when windowed views would thrash memory
        out += kernel[i] * padded[..., i : i + h, :]
    return out


def gaussian_kernel_1d(sigma: float, truncate: float = 3.0) -> np.ndarray:
    """Normalized 1D Gaussian kernel truncated at ``truncate`` sigmas."""
    if sigma <= 0:
        raise ValueError("sigma must be positive")
    radius = max(1, int(truncate * sigma + 0.5))
    x = np.arange(-radius, radius + 1, dtype=np.float64)
    kernel = np.exp(-0.5 * (x / sigma) ** 2)
    return kernel / kernel.sum()


@shaped(image="(H,W)", out="(H,W) float64")
def gaussian_blur(image: np.ndarray, sigma: float) -> np.ndarray:
    """Separable Gaussian blur of a grayscale image."""
    if image.ndim != 2:
        raise ValueError("gaussian_blur expects a grayscale image")
    return _convolve_separable(image.astype(np.float64), gaussian_kernel_1d(sigma))


@shaped(images="(N,H,W)", out="(N,H,W) float64")
def gaussian_blur_stack(images: np.ndarray, sigma: float) -> np.ndarray:
    """Separable Gaussian blur of a stack of grayscale images at once.

    Bit-identical to :func:`gaussian_blur` applied per frame; batching the
    frame axis amortizes padding and dispatch over the whole stack.
    """
    if images.ndim != 3:
        raise ValueError("gaussian_blur_stack expects an (N, H, W) stack")
    return _convolve_separable(images.astype(np.float64), gaussian_kernel_1d(sigma))


@shaped(image="(H,W)|(N,H,W)")
def sobel_gradients(image: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Horizontal and vertical Sobel derivatives ``(gx, gy)``.

    ``gx`` responds to vertical edges (intensity change along columns),
    ``gy`` to horizontal edges. An ``(N, H, W)`` stack is differentiated
    per frame in one pass.
    """
    if image.ndim not in (2, 3):
        raise ValueError("sobel_gradients expects a grayscale image or stack")
    img = image.astype(np.float64)
    lead = [(0, 0)] * (img.ndim - 2)
    padded = np.pad(img, lead + [(1, 1), (1, 1)], mode="reflect")
    h, w = img.shape[-2], img.shape[-1]
    # Separable Sobel: smooth [1 2 1] across, differentiate [-1 0 1] along.
    # Accumulated in place (with 2*t written as t += t, the same exact
    # doubling) to halve the temporary allocations on this per-frame path.
    p = padded
    gx = p[..., 0:h, 2 : w + 2] - p[..., 0:h, 0:w]
    t = p[..., 1 : h + 1, 2 : w + 2] - p[..., 1 : h + 1, 0:w]
    t += t
    gx += t
    np.subtract(p[..., 2 : h + 2, 2 : w + 2], p[..., 2 : h + 2, 0:w], out=t)
    gx += t
    gy = p[..., 2 : h + 2, 0:w] - p[..., 0:h, 0:w]
    np.subtract(p[..., 2 : h + 2, 1 : w + 1], p[..., 0:h, 1 : w + 1], out=t)
    t += t
    gy += t
    np.subtract(p[..., 2 : h + 2, 2 : w + 2], p[..., 0:h, 2 : w + 2], out=t)
    gy += t
    return gx, gy


def gradient_magnitude_orientation(image: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Gradient magnitude and orientation (radians in ``[0, pi)``)."""
    gx, gy = sobel_gradients(image)
    # Fold [-pi, pi] -> [0, pi) without np.mod's general divide path.
    # For x in (-pi, 0) this is the same `x + pi` that mod performs
    # (floor(x/pi) == -1), so results match bit for bit; the one input
    # mod treats specially, x == pi exactly, is mapped to 0.0 below.
    orientation = np.arctan2(gy, gx)
    np.add(orientation, np.pi, out=orientation, where=orientation < 0.0)
    orientation[orientation == np.pi] = 0.0
    # sqrt(gx^2+gy^2) instead of hypot: Sobel responses on unit-range
    # images cannot overflow, so hypot's scaling pass only costs time.
    # The gradients are dead after this point, so the squares, their sum
    # and the root all land in the gx/gy buffers (same op order).
    np.multiply(gx, gx, out=gx)
    np.multiply(gy, gy, out=gy)
    gx += gy
    magnitude = np.sqrt(gx, out=gx)
    return magnitude, orientation
