"""Separable filtering primitives: convolution, Gaussian blur, Sobel.

Implemented with :func:`scipy.ndimage.convolve`-free numpy code so the
dependency surface stays minimal and behaviour is easy to audit. All filters
use reflect padding, which avoids the dark borders that zero padding would
inject into gradient histograms.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core.contracts import shaped


def _reflect_pad(image: np.ndarray, pad_h: int, pad_w: int) -> np.ndarray:
    return np.pad(image, ((pad_h, pad_h), (pad_w, pad_w)), mode="reflect")


@shaped(image="(H,W)", kernel="(?,?)", out="(H,W) float64")
def convolve2d(image: np.ndarray, kernel: np.ndarray) -> np.ndarray:
    """Dense 2D convolution with reflect padding (same-size output)."""
    if image.ndim != 2 or kernel.ndim != 2:
        raise ValueError("convolve2d expects 2D image and kernel")
    kh, kw = kernel.shape
    pad_h, pad_w = kh // 2, kw // 2
    padded = _reflect_pad(image, pad_h, pad_w)
    flipped = kernel[::-1, ::-1]
    h, w = image.shape
    out = np.zeros_like(image, dtype=np.float64)
    for i in range(kh):
        for j in range(kw):
            out += flipped[i, j] * padded[i : i + h, j : j + w]
    return out


def _convolve_separable(image: np.ndarray, kernel_1d: np.ndarray) -> np.ndarray:
    """Convolve with a separable symmetric 1D kernel along both axes."""
    k = kernel_1d.size
    pad = k // 2
    h, w = image.shape
    padded = np.pad(image, ((0, 0), (pad, pad)), mode="reflect")
    tmp = np.zeros_like(image, dtype=np.float64)
    for j in range(k):
        tmp += kernel_1d[j] * padded[:, j : j + w]
    padded = np.pad(tmp, ((pad, pad), (0, 0)), mode="reflect")
    out = np.zeros_like(image, dtype=np.float64)
    for i in range(k):
        out += kernel_1d[i] * padded[i : i + h, :]
    return out


def gaussian_kernel_1d(sigma: float, truncate: float = 3.0) -> np.ndarray:
    """Normalized 1D Gaussian kernel truncated at ``truncate`` sigmas."""
    if sigma <= 0:
        raise ValueError("sigma must be positive")
    radius = max(1, int(truncate * sigma + 0.5))
    x = np.arange(-radius, radius + 1, dtype=np.float64)
    kernel = np.exp(-0.5 * (x / sigma) ** 2)
    return kernel / kernel.sum()


@shaped(image="(H,W)", out="(H,W) float64")
def gaussian_blur(image: np.ndarray, sigma: float) -> np.ndarray:
    """Separable Gaussian blur of a grayscale image."""
    if image.ndim != 2:
        raise ValueError("gaussian_blur expects a grayscale image")
    return _convolve_separable(image.astype(np.float64), gaussian_kernel_1d(sigma))


@shaped(image="(H,W)")
def sobel_gradients(image: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Horizontal and vertical Sobel derivatives ``(gx, gy)``.

    ``gx`` responds to vertical edges (intensity change along columns),
    ``gy`` to horizontal edges.
    """
    if image.ndim != 2:
        raise ValueError("sobel_gradients expects a grayscale image")
    img = image.astype(np.float64)
    padded = _reflect_pad(img, 1, 1)
    h, w = img.shape
    # Separable Sobel: smooth [1 2 1] across, differentiate [-1 0 1] along.
    p = padded
    gx = (
        (p[0:h, 2 : w + 2] - p[0:h, 0:w])
        + 2.0 * (p[1 : h + 1, 2 : w + 2] - p[1 : h + 1, 0:w])
        + (p[2 : h + 2, 2 : w + 2] - p[2 : h + 2, 0:w])
    )
    gy = (
        (p[2 : h + 2, 0:w] - p[0:h, 0:w])
        + 2.0 * (p[2 : h + 2, 1 : w + 1] - p[0:h, 1 : w + 1])
        + (p[2 : h + 2, 2 : w + 2] - p[0:h, 2 : w + 2])
    )
    return gx, gy


def gradient_magnitude_orientation(image: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Gradient magnitude and orientation (radians in ``[0, pi)``)."""
    gx, gy = sobel_gradients(image)
    magnitude = np.hypot(gx, gy)
    orientation = np.mod(np.arctan2(gy, gx), np.pi)
    return magnitude, orientation
