"""Histogram of Oriented Gradients descriptor (Dalal & Triggs, CVPR 2005).

CrowdMap uses HOG during key-frame selection (paper Section III.B.I): a
whole-frame HOG descriptor summarizes the scene's gradient structure, and
extremely similar consecutive frames — whose HOG descriptors barely change —
are pruned before the expensive SURF matching stage.

This implementation follows the standard recipe: gradient orientation
histograms over a grid of cells with soft orientation binning, followed by
L2-hysteresis block normalization over 2x2 cell blocks.
"""

from __future__ import annotations

import numpy as np

from repro.core.contracts import shaped
from repro.vision.filters import gradient_magnitude_orientation
from repro.vision.image import to_grayscale


@shaped(image="(H,W)|(H,W,3)", out="(D,) float64 descriptor")
def hog_descriptor(
    image: np.ndarray,
    cell_size: int = 8,
    n_bins: int = 9,
    block_size: int = 2,
    eps: float = 1e-6,
    clip: float = 0.2,
) -> np.ndarray:
    """Flattened HOG descriptor of ``image``.

    Parameters follow Dalal & Triggs: unsigned gradients binned into
    ``n_bins`` orientations per ``cell_size`` x ``cell_size`` cell, then
    blocks of ``block_size`` x ``block_size`` cells are L2-normalized,
    clipped at ``clip`` and renormalized (L2-Hys).
    """
    if cell_size < 2:
        raise ValueError("cell_size must be at least 2")
    gray = to_grayscale(image)
    h, w = gray.shape
    cells_y = h // cell_size
    cells_x = w // cell_size
    if cells_y == 0 or cells_x == 0:
        raise ValueError(
            f"image {gray.shape} too small for cell_size={cell_size}"
        )
    magnitude, orientation = gradient_magnitude_orientation(gray)
    # Crop to a whole number of cells.
    magnitude = magnitude[: cells_y * cell_size, : cells_x * cell_size]
    orientation = orientation[: cells_y * cell_size, : cells_x * cell_size]

    bin_width = np.pi / n_bins
    # Soft assignment between the two nearest orientation bins.
    scaled = orientation / bin_width - 0.5
    lower_bin = np.floor(scaled).astype(int)
    upper_frac = scaled - lower_bin
    lower_frac = 1.0 - upper_frac
    lower_bin_mod = np.mod(lower_bin, n_bins)
    upper_bin_mod = np.mod(lower_bin + 1, n_bins)

    hist = np.zeros((cells_y, cells_x, n_bins), dtype=np.float64)
    mag_cells = magnitude.reshape(cells_y, cell_size, cells_x, cell_size)
    lower_cells = lower_bin_mod.reshape(cells_y, cell_size, cells_x, cell_size)
    upper_cells = upper_bin_mod.reshape(cells_y, cell_size, cells_x, cell_size)
    lfrac_cells = lower_frac.reshape(cells_y, cell_size, cells_x, cell_size)
    ufrac_cells = upper_frac.reshape(cells_y, cell_size, cells_x, cell_size)
    for b in range(n_bins):
        contrib = mag_cells * (
            lfrac_cells * (lower_cells == b) + ufrac_cells * (upper_cells == b)
        )
        hist[:, :, b] = contrib.sum(axis=(1, 3))

    blocks_y = cells_y - block_size + 1
    blocks_x = cells_x - block_size + 1
    if blocks_y <= 0 or blocks_x <= 0:
        # Image too small for block normalization; normalize the cell grid.
        vec = hist.ravel()
        norm = np.sqrt(np.sum(vec**2) + eps**2)
        return vec / norm

    descriptor = np.empty(
        (blocks_y, blocks_x, block_size * block_size * n_bins), dtype=np.float64
    )
    for by in range(blocks_y):
        for bx in range(blocks_x):
            block = hist[by : by + block_size, bx : bx + block_size, :].ravel()
            norm = np.sqrt(np.sum(block**2) + eps**2)
            block = block / norm
            block = np.minimum(block, clip)
            norm = np.sqrt(np.sum(block**2) + eps**2)
            descriptor[by, bx, :] = block / norm
    return descriptor.ravel()


@shaped(desc_a="(D,) descriptor", desc_b="(D,) descriptor")
def hog_similarity(desc_a: np.ndarray, desc_b: np.ndarray) -> float:
    """Normalized cross-correlation between two HOG descriptors, in [-1, 1].

    This is the ``Scc`` score the paper thresholds to drop near-duplicate
    frames during key-frame selection.
    """
    if desc_a.shape != desc_b.shape:
        raise ValueError("HOG descriptors must have identical length")
    a = desc_a - desc_a.mean()
    b = desc_b - desc_b.mean()
    denom = np.linalg.norm(a) * np.linalg.norm(b)
    if denom <= 0.0:
        return 1.0 if np.allclose(desc_a, desc_b) else 0.0
    return float(np.dot(a, b) / denom)
