"""Histogram of Oriented Gradients descriptor (Dalal & Triggs, CVPR 2005).

CrowdMap uses HOG during key-frame selection (paper Section III.B.I): a
whole-frame HOG descriptor summarizes the scene's gradient structure, and
extremely similar consecutive frames — whose HOG descriptors barely change —
are pruned before the expensive SURF matching stage.

This implementation follows the standard recipe: gradient orientation
histograms over a grid of cells with soft orientation binning, followed by
L2-hysteresis block normalization over 2x2 cell blocks.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Sequence

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.backend.batching import plan_batches, scatter_results
from repro.core.contracts import shaped
from repro.vision.filters import gradient_magnitude_orientation
from repro.vision.image import to_grayscale, to_grayscale_stack


@lru_cache(maxsize=16)
def _cell_base_grid(
    cells_y: int, cells_x: int, cell_size: int, n_bins: int
) -> np.ndarray:
    """Per-pixel flat (cell * n_bins) offsets; fixed for a given geometry."""
    cell_row = np.arange(cells_y * cell_size) // cell_size
    cell_col = np.arange(cells_x * cell_size) // cell_size
    grid = (cell_row[:, None] * cells_x + cell_col[None, :]) * n_bins
    grid.setflags(write=False)
    return grid


@shaped(image="(H,W)|(H,W,3)", out="(D,) float64 descriptor")
def hog_descriptor(
    image: np.ndarray,
    cell_size: int = 8,
    n_bins: int = 9,
    block_size: int = 2,
    eps: float = 1e-6,
    clip: float = 0.2,
) -> np.ndarray:
    """Flattened HOG descriptor of ``image``.

    Parameters follow Dalal & Triggs: unsigned gradients binned into
    ``n_bins`` orientations per ``cell_size`` x ``cell_size`` cell, then
    blocks of ``block_size`` x ``block_size`` cells are L2-normalized,
    clipped at ``clip`` and renormalized (L2-Hys).
    """
    gray = to_grayscale(image)
    return np.ascontiguousarray(
        hog_descriptor_stack(
            gray[None, :, :],
            cell_size=cell_size,
            n_bins=n_bins,
            block_size=block_size,
            eps=eps,
            clip=clip,
        )[0]
    )


@shaped(images="(N,H,W)", out="(N,D) float64 descriptors")
def hog_descriptor_stack(
    images: np.ndarray,
    cell_size: int = 8,
    n_bins: int = 9,
    block_size: int = 2,
    eps: float = 1e-6,
    clip: float = 0.2,
) -> np.ndarray:
    """HOG descriptors for a whole ``(N, H, W)`` grayscale stack at once.

    One vectorized pass over the frame axis: gradients, soft binning and
    block normalization all batch, and the per-frame histograms come from
    a single ``bincount`` whose flat slot index is offset per frame. Each
    row is bit-identical to :func:`hog_descriptor` on that frame alone —
    per-frame slot ranges are disjoint and scanned in the same order, and
    every other step is elementwise or a last-axis reduction.
    """
    if cell_size < 2:
        raise ValueError("cell_size must be at least 2")
    if images.ndim != 3:
        raise ValueError("hog_descriptor_stack expects an (N, H, W) stack")
    n, h, w = images.shape
    cells_y = h // cell_size
    cells_x = w // cell_size
    if cells_y == 0 or cells_x == 0:
        raise ValueError(
            f"images {images.shape[1:]} too small for cell_size={cell_size}"
        )
    magnitude, orientation = gradient_magnitude_orientation(images)
    # Crop to a whole number of cells.
    magnitude = magnitude[:, : cells_y * cell_size, : cells_x * cell_size]
    orientation = orientation[:, : cells_y * cell_size, : cells_x * cell_size]

    bin_width = np.pi / n_bins
    # Soft assignment between the two nearest orientation bins. The
    # orientation crop is consumed only here, so the scaling runs in
    # place on it (same divide-then-subtract sequence, fewer temporaries).
    scaled = np.divide(orientation, bin_width, out=orientation)
    scaled -= 0.5
    lower_bin = np.floor(scaled).astype(int)
    upper_frac = np.subtract(scaled, lower_bin, out=scaled)
    lower_frac = np.subtract(1.0, upper_frac)
    # Orientation lies in [0, pi), so lower_bin is in [-1, n_bins - 1]
    # and upper_bin in [0, n_bins]: the wrap is a single conditional
    # add/subtract, not a general modulo. Both wraps run as masked
    # in-place updates (identical values to the np.where form).
    upper_bin = lower_bin + 1
    lower_bin[lower_bin < 0] += n_bins
    upper_bin[upper_bin == n_bins] = 0

    # Histogram every (frame, cell, bin) triple in two bincount passes:
    # each pixel scatters its magnitude into flat index
    # frame * n_slots + cell_index * n_bins + bin. The frame + cell part
    # is shared between the passes, so it is summed once.
    cell_base = _cell_base_grid(cells_y, cells_x, cell_size, n_bins)
    n_slots = cells_y * cells_x * n_bins
    base = (np.arange(n) * n_slots)[:, None, None] + cell_base
    hist = np.bincount(
        (base + lower_bin).ravel(),
        weights=np.multiply(magnitude, lower_frac, out=lower_frac).ravel(),
        minlength=n * n_slots,
    )
    hist += np.bincount(
        (base + upper_bin).ravel(),
        weights=np.multiply(magnitude, upper_frac, out=upper_frac).ravel(),
        minlength=n * n_slots,
    )
    hist = hist.reshape(n, cells_y, cells_x, n_bins)

    blocks_y = cells_y - block_size + 1
    blocks_x = cells_x - block_size + 1
    if blocks_y <= 0 or blocks_x <= 0:
        # Images too small for block normalization; normalize the cell grid.
        vecs = hist.reshape(n, -1)
        norms = np.sqrt(
            np.einsum("nd,nd->n", vecs, vecs) + eps**2
        )
        return vecs / norms[:, None]

    # All blocks at once: window the cell grid, flatten each block in the
    # same (cell_y, cell_x, bin) order the per-block loop used, then apply
    # L2-Hys across the trailing axis.
    windows = sliding_window_view(
        hist, (block_size, block_size), axis=(1, 2)
    )
    blocks = windows.transpose(0, 1, 2, 4, 5, 3).reshape(
        n, blocks_y, blocks_x, block_size * block_size * n_bins
    )
    norms = np.sqrt(np.einsum("nyxd,nyxd->nyx", blocks, blocks) + eps**2)
    descriptor = blocks / norms[:, :, :, None]
    np.minimum(descriptor, clip, out=descriptor)
    norms = np.sqrt(
        np.einsum("nyxd,nyxd->nyx", descriptor, descriptor) + eps**2
    )
    descriptor /= norms[:, :, :, None]
    return descriptor.reshape(n, -1)


def hog_descriptors_batch(
    images: Sequence[np.ndarray],
    cell_size: int = 8,
    n_bins: int = 9,
    block_size: int = 2,
    eps: float = 1e-6,
    clip: float = 0.2,
    batch_size: int = 16,
) -> List[np.ndarray]:
    """HOG descriptors for a mixed-shape image sequence, batched by shape.

    Same-shape frames are grouped by the frame-batch planner, stacked and
    pushed through :func:`hog_descriptor_stack` in one vectorized pass;
    results come back in input order. Each descriptor is bit-identical to
    :func:`hog_descriptor` on that image alone — grayscale conversion and
    the stacked HOG are both exact per lane.
    """
    arrays = [np.asarray(image) for image in images]
    batches = plan_batches([a.shape for a in arrays], batch_size=batch_size)
    per_batch: List[List[np.ndarray]] = []
    for batch in batches:
        grays = to_grayscale_stack(
            np.stack([arrays[i] for i in batch.indices])
        )
        stack = hog_descriptor_stack(
            grays, cell_size=cell_size, n_bins=n_bins,
            block_size=block_size, eps=eps, clip=clip,
        )
        per_batch.append([np.ascontiguousarray(row) for row in stack])
    return scatter_results(batches, per_batch, len(arrays))


@shaped(desc_a="(D,) descriptor", desc_b="(D,) descriptor")
def hog_similarity(desc_a: np.ndarray, desc_b: np.ndarray) -> float:
    """Normalized cross-correlation between two HOG descriptors, in [-1, 1].

    This is the ``Scc`` score the paper thresholds to drop near-duplicate
    frames during key-frame selection.
    """
    if desc_a.shape != desc_b.shape:
        raise ValueError("HOG descriptors must have identical length")
    a = desc_a - desc_a.mean()
    b = desc_b - desc_b.mean()
    denom = np.linalg.norm(a) * np.linalg.norm(b)
    if denom <= 0.0:
        return 1.0 if np.allclose(desc_a, desc_b) else 0.0
    return float(np.dot(a, b) / denom)
