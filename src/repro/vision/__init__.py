"""Pure-numpy computer vision substrate for CrowdMap.

The paper leans on off-the-shelf CV building blocks (SURF, HOG, color
indexing, wavelet signatures, AutoStitch, LSD, Hough, Otsu). None of those
libraries are available offline, so this package reimplements each one on
top of numpy/scipy with the same interfaces the pipeline needs:

- :mod:`repro.vision.filters` — convolution, Gaussian smoothing, Sobel.
- :mod:`repro.vision.integral` — integral images and box sums.
- :mod:`repro.vision.hog` — Histogram of Oriented Gradients descriptors.
- :mod:`repro.vision.surf` — fast-Hessian interest points + 64-d descriptors.
- :mod:`repro.vision.color_histogram` — Swain-Ballard color indexing.
- :mod:`repro.vision.shape_matching` — edge-orientation shape signatures.
- :mod:`repro.vision.wavelet` — Haar wavelet image-querying signatures.
- :mod:`repro.vision.ncc` — normalized cross-correlation scores.
- :mod:`repro.vision.matching` — mutual nearest-neighbour descriptor matching.
- :mod:`repro.vision.homography` — DLT + RANSAC homography estimation.
- :mod:`repro.vision.stitching` — cylindrical 360-degree panorama compositor.
- :mod:`repro.vision.lsd` — gradient-grown line segment detector.
- :mod:`repro.vision.hough` — Hough line transform + vanishing structure.
- :mod:`repro.vision.otsu` — Otsu's threshold.
"""

from repro.vision.image import to_grayscale, resize_nearest, Frame
from repro.vision.filters import convolve2d, gaussian_blur, sobel_gradients
from repro.vision.integral import integral_image, box_sum
from repro.vision.hog import hog_descriptor
from repro.vision.surf import detect_and_describe, SurfFeature
from repro.vision.color_histogram import color_histogram, histogram_intersection
from repro.vision.shape_matching import shape_signature, shape_similarity
from repro.vision.wavelet import wavelet_signature, wavelet_similarity
from repro.vision.ncc import normalized_cross_correlation
from repro.vision.matching import match_descriptors, MatchResult
from repro.vision.homography import estimate_homography, ransac_homography
from repro.vision.stitching import stitch_cylindrical, Panorama
from repro.vision.lsd import detect_line_segments, LineSegment2D
from repro.vision.hough import hough_lines, HoughLine
from repro.vision.otsu import otsu_threshold

__all__ = [
    "to_grayscale",
    "resize_nearest",
    "Frame",
    "convolve2d",
    "gaussian_blur",
    "sobel_gradients",
    "integral_image",
    "box_sum",
    "hog_descriptor",
    "detect_and_describe",
    "SurfFeature",
    "color_histogram",
    "histogram_intersection",
    "shape_signature",
    "shape_similarity",
    "wavelet_signature",
    "wavelet_similarity",
    "normalized_cross_correlation",
    "match_descriptors",
    "MatchResult",
    "estimate_homography",
    "ransac_homography",
    "stitch_cylindrical",
    "Panorama",
    "detect_line_segments",
    "LineSegment2D",
    "hough_lines",
    "HoughLine",
    "otsu_threshold",
]
