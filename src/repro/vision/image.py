"""Image containers and basic raster utilities.

A frame is an ``(H, W, 3)`` float64 RGB array in ``[0, 1]``; grayscale
images are ``(H, W)`` float64 in the same range. The :class:`Frame` type
bundles pixels with the capture metadata the pipeline needs (timestamp and
the camera heading reported by the inertial track at capture time).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.core.contracts import shaped

# ITU-R BT.601 luma coefficients.
_LUMA = np.array([0.299, 0.587, 0.114])


@shaped(out="(H,W) float64")
def to_grayscale(image: np.ndarray) -> np.ndarray:
    """Convert an RGB image to grayscale; pass grayscale through unchanged."""
    arr = np.asarray(image, dtype=np.float64)
    if arr.ndim == 2:
        return arr
    if arr.ndim == 3 and arr.shape[2] == 3:
        return arr @ _LUMA
    raise ValueError(f"expected (H, W) or (H, W, 3) image, got shape {arr.shape}")


@shaped(out="(N,H,W) float64")
def to_grayscale_stack(images: np.ndarray) -> np.ndarray:
    """Convert an ``(N, H, W, 3)`` frame stack to ``(N, H, W)`` grayscale.

    Grayscale stacks pass through unchanged. The luma matmul runs over the
    same contiguous channel axis as :func:`to_grayscale`, so each frame's
    result is bit-identical to converting it alone.
    """
    arr = np.asarray(images, dtype=np.float64)
    if arr.ndim == 3:
        return arr
    if arr.ndim == 4 and arr.shape[3] == 3:
        return arr @ _LUMA
    raise ValueError(
        f"expected (N, H, W) or (N, H, W, 3) stack, got shape {arr.shape}"
    )


def resize_nearest(image: np.ndarray, height: int, width: int) -> np.ndarray:
    """Nearest-neighbour resize; preserves the channel axis if present."""
    if height <= 0 or width <= 0:
        raise ValueError("target dimensions must be positive")
    src_h, src_w = image.shape[:2]
    rows = np.minimum((np.arange(height) * src_h / height).astype(int), src_h - 1)
    cols = np.minimum((np.arange(width) * src_w / width).astype(int), src_w - 1)
    return image[np.ix_(rows, cols)]


def clip01(image: np.ndarray) -> np.ndarray:
    """Clamp pixel values into [0, 1]."""
    return np.clip(image, 0.0, 1.0)


@dataclass
class Frame:
    """A single video frame with its capture metadata.

    ``heading`` is the camera yaw in radians (CCW from +x) as reported by the
    device's fused inertial track at capture time — this is the ``Δω`` the
    paper reads from the gyroscope during SRS/SWS micro-tasks. ``position``
    is the dead-reckoned camera position in the user's local frame and is
    *not* ground truth.
    """

    pixels: np.ndarray
    timestamp: float
    heading: float
    position: Optional[Tuple[float, float]] = None
    frame_index: int = 0
    user_id: str = ""
    _gray_cache: Optional[np.ndarray] = field(default=None, repr=False, compare=False)
    #: Memoized FrameStack of shared derived planes (see
    #: repro.vision.framestack); typed loosely to avoid an import cycle.
    _stack_cache: Optional[object] = field(default=None, repr=False, compare=False)

    @property
    def height(self) -> int:
        return int(self.pixels.shape[0])

    @property
    def width(self) -> int:
        return int(self.pixels.shape[1])

    def grayscale(self) -> np.ndarray:
        """Cached grayscale view of the frame."""
        if self._gray_cache is None:
            self._gray_cache = to_grayscale(self.pixels)
        return self._gray_cache

    def downsampled(self, factor: int) -> "Frame":
        """Frame with pixels decimated by an integer factor (metadata kept)."""
        if factor < 1:
            raise ValueError("factor must be >= 1")
        return Frame(
            pixels=self.pixels[::factor, ::factor],
            timestamp=self.timestamp,
            heading=self.heading,
            position=self.position,
            frame_index=self.frame_index,
            user_id=self.user_id,
        )
