"""Line segment detection (after von Gioi et al., "LSD", IPOL 2012).

Room layout generation (paper Section III.C.II, Fig. 5a) begins by
detecting line segments in the room panorama. LSD's core idea is region
growing on the level-line field: pixels whose gradient orientations agree
within a tolerance are grouped into line-support regions, each approximated
by a rectangle and validated by its density of aligned points. We implement
that pipeline (greedy region growing, PCA rectangle fit, density
validation) without the a-contrario NFA machinery — the fixed density test
is sufficient at the panorama resolutions the pipeline uses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

import numpy as np

from repro.vision.filters import sobel_gradients
from repro.vision.image import to_grayscale


@dataclass(frozen=True)
class LineSegment2D:
    """A detected image-space line segment with its support strength."""

    x1: float
    y1: float
    x2: float
    y2: float
    strength: float  # total gradient magnitude of the support region

    def length(self) -> float:
        return math.hypot(self.x2 - self.x1, self.y2 - self.y1)

    def angle(self) -> float:
        """Orientation in ``[0, pi)``."""
        return math.atan2(self.y2 - self.y1, self.x2 - self.x1) % math.pi

    def midpoint(self) -> tuple:
        return ((self.x1 + self.x2) / 2.0, (self.y1 + self.y2) / 2.0)

    def is_vertical(self, tolerance: float = math.pi / 8) -> bool:
        """True when the segment is within ``tolerance`` of image-vertical."""
        return abs(self.angle() - math.pi / 2.0) < tolerance


def _angle_diff(a: np.ndarray, b: float) -> np.ndarray:
    """Absolute difference of orientations on the half-circle [0, pi)."""
    d = np.abs(a - b) % math.pi
    return np.minimum(d, math.pi - d)


def detect_line_segments(
    image: np.ndarray,
    magnitude_quantile: float = 0.7,
    angle_tolerance: float = math.pi / 8,
    min_region_size: int = 12,
    min_length: float = 6.0,
    min_density: float = 0.4,
    max_segments: int = 400,
) -> List[LineSegment2D]:
    """Detect line segments by level-line region growing.

    Pixels above the ``magnitude_quantile`` gradient-magnitude quantile are
    seeds, visited in decreasing magnitude order (LSD's ordering). A region
    grows through 8-connected neighbours whose level-line angle stays within
    ``angle_tolerance`` of the region's running mean angle. Each region is
    fit with a PCA line; it is kept when it has at least ``min_region_size``
    pixels, spans ``min_length`` pixels and fills at least ``min_density``
    of its bounding rectangle.
    """
    gray = to_grayscale(image)
    if gray.max() > 1.5:
        gray = gray / 255.0
    gx, gy = sobel_gradients(gray)
    magnitude = np.hypot(gx, gy)
    # Level-line angle: orthogonal to the gradient, on the half circle.
    level_angle = np.mod(np.arctan2(gy, gx) + math.pi / 2.0, math.pi)

    h, w = gray.shape
    positive = magnitude[magnitude > 0]
    if positive.size == 0:
        return []
    threshold = np.quantile(positive, magnitude_quantile)
    usable = magnitude >= max(threshold, 1e-9)
    used = ~usable  # mark weak pixels as already consumed

    seed_rows, seed_cols = np.nonzero(usable)
    order = np.argsort(-magnitude[seed_rows, seed_cols])
    seeds = list(zip(seed_rows[order], seed_cols[order]))

    neighbours = [(-1, -1), (-1, 0), (-1, 1), (0, -1),
                  (0, 1), (1, -1), (1, 0), (1, 1)]
    segments: List[LineSegment2D] = []

    for sy, sx in seeds:
        if used[sy, sx]:
            continue
        region = [(sy, sx)]
        used[sy, sx] = True
        # Track mean region angle as a unit vector on the doubled circle so
        # that angles near 0 and near pi average correctly.
        angle0 = level_angle[sy, sx]
        sum_cos = math.cos(2.0 * angle0)
        sum_sin = math.sin(2.0 * angle0)
        head = 0
        while head < len(region):
            cy, cx = region[head]
            head += 1
            mean_angle = 0.5 * math.atan2(sum_sin, sum_cos) % math.pi
            for dy, dx in neighbours:
                ny, nx = cy + dy, cx + dx
                if not (0 <= ny < h and 0 <= nx < w) or used[ny, nx]:
                    continue
                if _angle_diff(np.array(level_angle[ny, nx]), mean_angle) \
                        < angle_tolerance:
                    used[ny, nx] = True
                    region.append((ny, nx))
                    sum_cos += math.cos(2.0 * level_angle[ny, nx])
                    sum_sin += math.sin(2.0 * level_angle[ny, nx])
        if len(region) < min_region_size:
            continue
        pts = np.array(region, dtype=np.float64)  # (n, 2) rows=(y, x)
        weights = magnitude[pts[:, 0].astype(int), pts[:, 1].astype(int)]
        centroid = np.average(pts, axis=0, weights=weights)
        centered = pts - centroid
        cov = (centered * weights[:, None]).T @ centered / weights.sum()
        eigvals, eigvecs = np.linalg.eigh(cov)
        principal = eigvecs[:, int(np.argmax(eigvals))]  # (dy, dx)
        projections = centered @ principal
        t_min, t_max = float(projections.min()), float(projections.max())
        length = t_max - t_min
        if length < min_length:
            continue
        # Density of support pixels within the fitted rectangle.
        ortho = eigvecs[:, int(np.argmin(eigvals))]
        widths = centered @ ortho
        rect_width = max(1.0, float(widths.max() - widths.min()))
        density = len(region) / (length * rect_width)
        if density < min_density:
            continue
        p1 = centroid + t_min * principal
        p2 = centroid + t_max * principal
        segments.append(
            LineSegment2D(
                x1=float(p1[1]), y1=float(p1[0]),
                x2=float(p2[1]), y2=float(p2[0]),
                strength=float(weights.sum()),
            )
        )
        if len(segments) >= max_segments:
            break
    segments.sort(key=lambda s: -s.strength)
    return segments
