"""Line segment detection (after von Gioi et al., "LSD", IPOL 2012).

Room layout generation (paper Section III.C.II, Fig. 5a) begins by
detecting line segments in the room panorama. LSD's core idea is region
growing on the level-line field: pixels whose gradient orientations agree
within a tolerance are grouped into line-support regions, each approximated
by a rectangle and validated by its density of aligned points. We implement
that pipeline (greedy region growing, PCA rectangle fit, density
validation) without the a-contrario NFA machinery — the fixed density test
is sufficient at the panorama resolutions the pipeline uses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

import numpy as np

from repro.vision.filters import sobel_gradients
from repro.vision.image import to_grayscale


@dataclass(frozen=True)
class LineSegment2D:
    """A detected image-space line segment with its support strength."""

    x1: float
    y1: float
    x2: float
    y2: float
    strength: float  # total gradient magnitude of the support region

    def length(self) -> float:
        return math.hypot(self.x2 - self.x1, self.y2 - self.y1)

    def angle(self) -> float:
        """Orientation in ``[0, pi)``."""
        return math.atan2(self.y2 - self.y1, self.x2 - self.x1) % math.pi

    def midpoint(self) -> tuple:
        return ((self.x1 + self.x2) / 2.0, (self.y1 + self.y2) / 2.0)

    def is_vertical(self, tolerance: float = math.pi / 8) -> bool:
        """True when the segment is within ``tolerance`` of image-vertical."""
        return abs(self.angle() - math.pi / 2.0) < tolerance


def _angle_diff(a: np.ndarray, b: float) -> np.ndarray:
    """Absolute difference of orientations on the half-circle [0, pi)."""
    d = np.abs(a - b) % math.pi
    return np.minimum(d, math.pi - d)


def _coarse_support_screen(
    usable: np.ndarray,
    min_region_size: int,
    min_length: float,
    aggressive: bool,
) -> np.ndarray:
    """Mask out support provably unable to seed a surviving segment.

    A 2x2 max-pool of the support mask is labelled instead of the full
    grid (a quarter of the labelling work): 8-connected fine pixels land
    in the same or 8-adjacent coarse cells, so every fine support
    component maps *inside* one coarse component. Each coarse component
    bounds its fine content: at most 4 fine pixels per cell, and a fine
    bounding box no larger than the coarse box scaled by two. Coarse
    components whose bounds already fail the size or length test are
    erased wholesale — regions grow only through usable pixels, so
    removing a whole (coarse-connected superset of a) fine component
    cannot change any other region's growth, the same argument as the
    fine component shave below.

    In default mode the thresholds are the provable bounds
    (``4 * cells < min_region_size``, scaled diagonal < ``min_length``)
    and the output is bit-identical to no screen at all. ``aggressive``
    tightens them to the unscaled values — assuming fine support is
    roughly one pixel per coarse cell, true for thin line evidence but
    not provable — trading exactness (accuracy-gated in CI) for pruning
    noise-speckle panoramas much harder.
    """
    from scipy.ndimage import find_objects, label

    h, w = usable.shape
    ph, pw = (h + 1) // 2, (w + 1) // 2
    padded = np.zeros((ph * 2, pw * 2), dtype=bool)
    padded[:h, :w] = usable
    coarse = padded.reshape(ph, 2, pw, 2).any(axis=(1, 3))

    labels, n = label(coarse, structure=np.ones((3, 3), bool))
    if not n:
        return usable
    sizes = np.bincount(labels.ravel())
    if aggressive:
        size_cap, length_scale = 1, 1.0
    else:
        size_cap, length_scale = 4, 2.0
    doomed = sizes * size_cap < min_region_size
    doomed[0] = False
    for idx, slices in enumerate(find_objects(labels)):  # crowdlint: allow[CM006] loop is over connected components (few), reading each one's bounding-box slices
        if slices is None or doomed[idx + 1]:
            continue
        sy, sx = slices
        bh = (sy.stop - sy.start) * length_scale
        bw = (sx.stop - sx.start) * length_scale
        if math.hypot(bh - 1.0, bw - 1.0) < min_length:
            doomed[idx + 1] = True
    if doomed.any():
        keep_coarse = ~doomed[labels]  # (ph, pw)
        fine_keep = np.repeat(
            np.repeat(keep_coarse, 2, axis=0), 2, axis=1
        )[:h, :w]
        usable = usable & fine_keep
    return usable


def detect_line_segments(
    image: np.ndarray,
    magnitude_quantile: float = 0.7,
    angle_tolerance: float = math.pi / 8,
    min_region_size: int = 12,
    min_length: float = 6.0,
    min_density: float = 0.4,
    max_segments: int = 400,
    gray: np.ndarray = None,
    prescreen: bool = True,
    aggressive: bool = False,
) -> List[LineSegment2D]:
    """Detect line segments by level-line region growing.

    Pixels above the ``magnitude_quantile`` gradient-magnitude quantile are
    seeds, visited in decreasing magnitude order (LSD's ordering). A region
    grows through 8-connected neighbours whose level-line angle stays within
    ``angle_tolerance`` of the region's running mean angle. Each region is
    fit with a PCA line; it is kept when it has at least ``min_region_size``
    pixels, spans ``min_length`` pixels and fills at least ``min_density``
    of its bounding rectangle.

    ``gray`` optionally carries the image's precomputed grayscale plane
    (the shared frame stack computes it once per frame); it must be the
    untouched ``to_grayscale(image)`` output. ``prescreen`` enables the
    coarse-to-fine support screen — provably output-invisible by itself,
    exposed as a flag so the oracle tests can compare both paths.
    ``aggressive`` additionally tightens the coarse bounds beyond what is
    provable (see :func:`_coarse_support_screen`); callers enable it only
    under the accuracy-gated aggressive planner profile.
    """
    if gray is None:
        gray = to_grayscale(image)
    if gray.max() > 1.5:
        gray = gray / 255.0
    gx, gy = sobel_gradients(gray)
    magnitude = np.sqrt(gx * gx + gy * gy)
    # Level-line angle: orthogonal to the gradient, on the half circle.
    # arctan2 + pi/2 lies in (-pi/2, 3pi/2]; folding into [0, pi) needs
    # one conditional add and one conditional subtract of pi — the same
    # additions np.mod performs (both exact here), minus its divide.
    level_angle = np.arctan2(gy, gx) + math.pi / 2.0
    np.subtract(
        level_angle, math.pi, out=level_angle, where=level_angle >= math.pi
    )
    np.add(level_angle, math.pi, out=level_angle, where=level_angle < 0.0)

    h, w = gray.shape
    positive = magnitude[magnitude > 0]
    if positive.size == 0:
        return []
    threshold = np.quantile(positive, magnitude_quantile)
    usable = magnitude >= max(threshold, 1e-9)
    if prescreen:
        # Coarse stage first: the quarter-resolution screen erases
        # hopeless support cheaply before the full-resolution labelling
        # pass below spends time on it.
        usable = _coarse_support_screen(
            usable, min_region_size, min_length, aggressive
        )
    # Early rejection of undersized support components: a region grows
    # only through usable pixels, so every region is a subset of one
    # 8-connected component of ``usable`` — components smaller than
    # ``min_region_size`` can therefore never survive the size check
    # below. Discarding them up front skips their seed visits and
    # growth work without changing any kept segment (small components
    # cannot interact with other components' growth either). The same
    # argument covers the length test: a region's PCA extent is at most
    # its component's bounding-box diagonal, so components whose
    # diagonal is under ``min_length`` are equally doomed.
    from scipy.ndimage import find_objects, label

    components, n_components = label(usable, structure=np.ones((3, 3), bool))
    if n_components:
        sizes = np.bincount(components.ravel())
        doomed = sizes < min_region_size
        doomed[0] = False
        for idx, slices in enumerate(find_objects(components)):  # crowdlint: allow[CM006] loop is over connected components (few), reading each one's bounding-box slices
            if slices is None or doomed[idx + 1]:
                continue
            sy, sx = slices
            diag = math.hypot(
                (sy.stop - sy.start) - 1.0, (sx.stop - sx.start) - 1.0
            )
            if diag < min_length:
                doomed[idx + 1] = True
        if doomed.any():
            usable &= ~doomed[components]
    used = ~usable  # mark weak pixels as already consumed

    seed_rows, seed_cols = np.nonzero(usable)
    order = np.argsort(-magnitude[seed_rows, seed_cols])
    # Flat indices into a one-pixel-padded raster: the padding ring is
    # pre-marked "used", so the growth loop needs no bounds checks, and
    # every neighbour is one integer offset away.
    wp = w + 2
    seeds = ((seed_rows[order] + 1) * wp + (seed_cols[order] + 1)).tolist()

    # Region growing is inherently sequential (each accepted pixel shifts
    # the running mean angle the next acceptance test uses), so the loop
    # stays — but it runs on plain Python scalars over flat buffers: a
    # bytearray visited mask and a flat list of angles index ~20x faster
    # than per-pixel numpy calls, and the raster values are identical.
    level_flat = np.pad(level_angle, 1).ravel().tolist()
    magnitude_flat = np.pad(magnitude, 1).ravel()
    used_pad = np.ones((h + 2, w + 2), dtype=bool)
    used_pad[1:-1, 1:-1] = used
    used_flat = bytearray(used_pad.ravel().tobytes())
    pi = math.pi
    half_pi = 0.5 * math.pi
    cos = math.cos
    sin = math.sin
    atan2 = math.atan2

    neighbours = (-wp - 1, -wp, -wp + 1, -1, 1, wp - 1, wp, wp + 1)
    segments: List[LineSegment2D] = []

    for si in seeds:  # crowdlint: allow[CM006] sequential region growing on flat python buffers is the vectorization-resistant core of LSD
        if used_flat[si]:
            continue
        region = [si]
        used_flat[si] = True
        # Track mean region angle as a unit vector on the doubled circle so
        # that angles near 0 and near pi average correctly.
        angle0 = level_flat[si]
        sum_cos = cos(2.0 * angle0)
        sum_sin = sin(2.0 * angle0)
        head = 0
        # The mean angle only moves when a pixel is accepted, so it is
        # recomputed lazily (stale flag) instead of once per popped
        # pixel — the value each acceptance test sees is unchanged.
        mean_angle = 0.5 * atan2(sum_sin, sum_cos) % pi
        stale = False
        while head < len(region):
            ci = region[head]
            head += 1
            if stale:
                mean_angle = 0.5 * atan2(sum_sin, sum_cos) % pi
                stale = False
            for off in neighbours:
                ni = ci + off
                if used_flat[ni]:
                    continue
                angle = level_flat[ni]
                # Both angles live in [0, pi), so |difference| < pi and
                # the half-circle fold needs no modulo; at d == pi/2 the
                # two fold branches agree exactly.
                d = abs(angle - mean_angle)
                if d >= half_pi:
                    d = pi - d
                if d < angle_tolerance:
                    used_flat[ni] = True
                    region.append(ni)
                    sum_cos += cos(2.0 * angle)
                    sum_sin += sin(2.0 * angle)
                    stale = True
        if len(region) < min_region_size:
            continue
        flat = np.array(region)
        rows, cols = np.divmod(flat, wp)
        pts = np.empty((len(region), 2), dtype=np.float64)  # rows=(y, x)
        np.subtract(rows, 1, out=pts[:, 0], casting="unsafe")
        np.subtract(cols, 1, out=pts[:, 1], casting="unsafe")
        # The padded flat raster serves the weights in one gather (the
        # same magnitude values the (y, x) fancy index would fetch).
        weights = magnitude_flat[flat]
        # Inlined np.average (same multiply/sum/divide sequence, minus its
        # dispatch overhead); the weight total is reused by the covariance
        # normalization and the strength sum below.
        total_weight = weights.sum()
        centroid = np.multiply(pts, weights[:, None]).sum(axis=0) / total_weight
        centered = pts - centroid
        cov = (centered * weights[:, None]).T @ centered / total_weight
        eigvals, eigvecs = np.linalg.eigh(cov)
        principal = eigvecs[:, int(np.argmax(eigvals))]  # (dy, dx)
        projections = centered @ principal
        t_min, t_max = float(projections.min()), float(projections.max())
        length = t_max - t_min
        if length < min_length:
            continue
        # Density of support pixels within the fitted rectangle.
        ortho = eigvecs[:, int(np.argmin(eigvals))]
        widths = centered @ ortho
        rect_width = max(1.0, float(widths.max() - widths.min()))
        density = len(region) / (length * rect_width)
        if density < min_density:
            continue
        p1 = centroid + t_min * principal
        p2 = centroid + t_max * principal
        segments.append(
            LineSegment2D(
                x1=float(p1[1]), y1=float(p1[0]),
                x2=float(p2[1]), y2=float(p2[0]),
                strength=float(total_weight),
            )
        )
        if len(segments) >= max_segments:
            break
    segments.sort(key=lambda s: -s.strength)
    return segments
