"""Shared per-frame image-plane stack.

Every cold-path kernel family starts from the same handful of derived
planes — grayscale, Gaussian-blurred grayscale, gradient magnitude and
orientation, and the (contrast-standardized) integral table — but the
seed pipeline recomputed them per consumer: the HOG chain converted each
frame to grayscale, then SURF converted it again, then the shape and
wavelet signatures each converted it a third and fourth time.

:class:`FrameStack` anchors those planes on the :class:`~repro.vision.
image.Frame` itself, computed lazily and exactly once. Consumers that
can share a plane take it as an optional argument (``shape_signature``,
``wavelet_signature``, ``detect_and_describe``) or adopt it from a
batched pass (:func:`adopt_gray_stack` writes each lane of a stacked
grayscale conversion back onto its frame — bit-identical per lane, see
:func:`~repro.vision.image.to_grayscale_stack`).

Bit-exactness contract: every plane served by the stack is computed by
the *same expression* the consumer would have used inline, so sharing is
invisible to the artifact byte-for-byte. The dataflow planner surfaces
stack materialization as first-class ``framestack`` graph nodes (see
``repro.dataflow.graph``), so cache invalidation stays subgraph-local:
a config change that only touches comparison thresholds skips every
framestack node.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.vision.filters import gaussian_blur, gradient_magnitude_orientation
from repro.vision.image import Frame, to_grayscale
from repro.vision.integral import integral_image


def standardize_gray(gray: np.ndarray) -> np.ndarray:
    """Range + contrast standardization of one grayscale plane.

    The fast-Hessian detector's response scales with the square of image
    contrast, so un-normalized night captures would lose most of their
    interest points to a fixed threshold. This is the per-frame scalar
    recipe ``repro.vision.surf`` applies before building integral
    tables; it lives here so the stack and the detector share one
    definition.
    """
    if gray.max() > 1.5:  # tolerate [0, 255] input
        gray = gray / 255.0
    std = gray.std()
    if std > 1e-6:
        gray = (gray - gray.mean()) / (4.0 * std) + 0.5
    return gray


class FrameStack:
    """Lazily computed shared planes for one frame.

    Construction is free; each plane is computed on first access and
    memoized. The grayscale plane delegates to ``Frame.grayscale()`` so
    a plane adopted from a batched conversion (``adopt_gray_stack``) is
    found here too.
    """

    __slots__ = ("frame", "_blurred", "_gradients", "_standardized", "_integral")

    def __init__(self, frame: Frame):
        self.frame = frame
        self._blurred: Dict[float, np.ndarray] = {}
        self._gradients: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._standardized: Optional[np.ndarray] = None
        self._integral: Optional[np.ndarray] = None

    @property
    def gray(self) -> np.ndarray:
        """Grayscale plane (memoized on the frame itself)."""
        return self.frame.grayscale()

    def blurred(self, sigma: float) -> np.ndarray:
        """Gaussian-blurred grayscale plane, memoized per sigma."""
        plane = self._blurred.get(sigma)
        if plane is None:
            plane = gaussian_blur(self.gray, sigma)
            self._blurred[sigma] = plane
        return plane

    def gradients(self) -> Tuple[np.ndarray, np.ndarray]:
        """(magnitude, orientation) of the unblurred grayscale plane."""
        if self._gradients is None:
            self._gradients = gradient_magnitude_orientation(self.gray)
        return self._gradients

    def standardized(self) -> np.ndarray:
        """Contrast-standardized grayscale plane (the detector's input)."""
        if self._standardized is None:
            self._standardized = standardize_gray(self.gray)
        return self._standardized

    def integral(self) -> np.ndarray:
        """Integral table of the standardized plane."""
        if self._integral is None:
            self._integral = integral_image(self.standardized())
        return self._integral


def frame_stack(frame: Frame) -> FrameStack:
    """The frame's shared plane stack, memoized on the frame object."""
    stack = getattr(frame, "_stack_cache", None)
    if stack is None:
        stack = FrameStack(frame)
        frame._stack_cache = stack
    return stack


def adopt_gray_stack(frames, gray_stack: np.ndarray) -> None:
    """Install each lane of a batched grayscale conversion on its frame.

    ``gray_stack`` must be the ``to_grayscale_stack`` output for exactly
    these frames, in order — each lane is bit-identical to converting
    that frame alone, so later per-frame consumers (SURF, shape, wavelet
    signatures) reuse it invisibly. Frames that already carry a gray
    plane keep it (it is the same bytes by the content contract).
    """
    for lane, frame in enumerate(frames):  # crowdlint: allow[CM006] loop hands each frame object its own stack lane — per-object attribute writes, nothing to vectorize
        if getattr(frame, "_gray_cache", None) is None:
            frame._gray_cache = gray_stack[lane]
