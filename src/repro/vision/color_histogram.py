"""Color indexing via histogram intersection (Swain & Ballard, IJCV 1991).

First rung of CrowdMap's hierarchical key-frame comparison (paper Section
III.B.I): a cheap whole-image color histogram rejects frame pairs whose
color content clearly differs before SURF is attempted. Swain & Ballard's
histogram-intersection measure is robust to small viewpoint changes and to
distractors, which is exactly the filtering role it plays here.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.backend.batching import plan_batches, scatter_results
from repro.core.contracts import shaped


@shaped(image="(H,W)|(H,W,3)", out="(?,) float64")
def color_histogram(image: np.ndarray, bins_per_channel: int = 8) -> np.ndarray:
    """Normalized joint RGB histogram of an image.

    Returns a flattened ``bins_per_channel**3`` vector summing to 1.
    Grayscale input is treated as an (R=G=B) image.
    """
    if bins_per_channel < 2:
        raise ValueError("bins_per_channel must be at least 2")
    arr = np.asarray(image, dtype=np.float64)
    if arr.ndim == 2:
        arr = np.stack([arr] * 3, axis=-1)
    if arr.ndim != 3 or arr.shape[2] != 3:
        raise ValueError(f"expected RGB image, got shape {arr.shape}")
    if arr.max() > 1.5:
        arr = arr / 255.0
    quantized = np.clip(
        (arr * bins_per_channel).astype(int), 0, bins_per_channel - 1
    )
    flat_index = (
        quantized[:, :, 0] * bins_per_channel * bins_per_channel
        + quantized[:, :, 1] * bins_per_channel
        + quantized[:, :, 2]
    ).ravel()
    hist = np.bincount(flat_index, minlength=bins_per_channel**3).astype(np.float64)
    total = hist.sum()
    if total > 0:
        hist /= total
    return hist


@shaped(hist_a="(B,)", hist_b="(B,)")
def histogram_intersection(hist_a: np.ndarray, hist_b: np.ndarray) -> float:
    """Swain-Ballard intersection of two normalized histograms, in [0, 1]."""
    if hist_a.shape != hist_b.shape:
        raise ValueError("histograms must have identical shape")
    return float(np.minimum(hist_a, hist_b).sum())


def color_similarity(image_a: np.ndarray, image_b: np.ndarray,
                     bins_per_channel: int = 8) -> float:
    """Histogram-intersection similarity of two images, in [0, 1]."""
    return histogram_intersection(
        color_histogram(image_a, bins_per_channel),
        color_histogram(image_b, bins_per_channel),
    )


@shaped(image="(H,W)|(H,W,3)", out="(?,) float64")
def chromaticity_histogram(image: np.ndarray, bins: int = 8) -> np.ndarray:
    """Illumination-invariant color signature: gray-world + chromaticity.

    Crowdsourced captures span daylight to incandescent night lighting
    (paper Section V.A), which shifts both exposure and color temperature.
    Dividing each channel by its image mean (gray-world constancy) cancels
    the global cast, and binning the (r, g) chromaticities discards the
    remaining brightness axis — the same scene then hashes to nearly the
    same histogram day or night.
    """
    if bins < 2:
        raise ValueError("bins must be at least 2")
    arr = np.asarray(image, dtype=np.float64)
    if arr.ndim == 2:
        arr = np.stack([arr] * 3, axis=-1)
    if arr.ndim != 3 or arr.shape[2] != 3:
        raise ValueError(f"expected RGB image, got shape {arr.shape}")
    if arr.max() > 1.5:
        arr = arr / 255.0
    means = arr.reshape(-1, 3).mean(axis=0)
    means = np.where(means < 1e-6, 1.0, means)
    balanced = arr / means[None, None, :]
    total = balanced.sum(axis=2)
    total[total < 1e-6] = 1.0
    # The balanced buffer is consumed only by the two chromaticity
    # channels, so the divisions and the bin scaling run in place on it
    # (same op sequence as the fresh-buffer form, fewer temporaries).
    r = np.divide(balanced[:, :, 0], total, out=balanced[:, :, 0])
    g = np.divide(balanced[:, :, 1], total, out=balanced[:, :, 1])
    # Chromaticities concentrate near (1/3, 1/3); spread the useful range.
    r -= 0.1
    r /= 0.5
    r *= bins
    g -= 0.1
    g /= 0.5
    g *= bins
    r_idx = r.astype(int)
    np.clip(r_idx, 0, bins - 1, out=r_idx)
    g_idx = g.astype(int)
    np.clip(g_idx, 0, bins - 1, out=g_idx)
    r_idx *= bins
    r_idx += g_idx
    flat = r_idx.ravel()
    # Weight by luminance: chromaticity is noise-dominated in dark pixels,
    # so letting bright pixels dominate makes the signature stable at night.
    weights = arr.mean(axis=2).ravel()
    hist = np.bincount(flat, weights=weights,
                       minlength=bins * bins).astype(np.float64)
    norm = hist.sum()
    if norm > 0:
        hist /= norm
    return hist


def chromaticity_histogram_batch(
    images: Sequence[np.ndarray],
    bins: int = 8,
    batch_size: int = 16,
) -> List[np.ndarray]:
    """Chromaticity signatures for a mixed-shape sequence, batched by shape.

    Same-shape frames stack and share one pass through the elementwise
    chromaticity math and a single offset ``bincount``; results come back
    in input order. Each histogram is bit-identical to
    :func:`chromaticity_histogram` on that image alone: elementwise steps
    and the per-frame-disjoint ``bincount`` are exact per lane, and the
    order-sensitive reductions (the channel means and the final
    normalization) deliberately stay per-frame loops so their summation
    order matches the single-image path.
    """
    if bins < 2:
        raise ValueError("bins must be at least 2")
    arrays = []
    for image in images:
        arr = np.asarray(image, dtype=np.float64)
        if arr.ndim == 2:
            arr = np.stack([arr] * 3, axis=-1)
        if arr.ndim != 3 or arr.shape[2] != 3:
            raise ValueError(f"expected RGB image, got shape {arr.shape}")
        arrays.append(arr)
    batches = plan_batches([a.shape for a in arrays], batch_size=batch_size)
    per_batch: List[List[np.ndarray]] = []
    for batch in batches:
        stack = np.stack([arrays[i] for i in batch.indices])
        n = stack.shape[0]
        # max is order-insensitive, so the rescale *decision* vectorizes;
        # the division itself runs on the selected lanes (elementwise, so
        # exact per lane).
        needs_rescale = stack.reshape(n, -1).max(axis=1) > 1.5
        if needs_rescale.any():
            stack = stack.copy()
            stack[needs_rescale] = stack[needs_rescale] / 255.0
        # Channel means are long reductions whose summation order must
        # match the per-image call — keep them per frame.
        means = np.stack(
            [lane.reshape(-1, 3).mean(axis=0) for lane in stack]
        )
        means = np.where(means < 1e-6, 1.0, means)
        balanced = stack / means[:, None, None, :]
        total = balanced.sum(axis=3)
        total = np.where(total < 1e-6, 1.0, total)
        r = balanced[:, :, :, 0] / total
        g = balanced[:, :, :, 1] / total
        r_idx = np.clip(((r - 0.1) / 0.5 * bins).astype(int), 0, bins - 1)
        g_idx = np.clip(((g - 0.1) / 0.5 * bins).astype(int), 0, bins - 1)
        n_slots = bins * bins
        frame_base = (np.arange(n) * n_slots)[:, None, None]
        flat = (frame_base + r_idx * bins + g_idx).ravel()
        weights = stack.mean(axis=3).ravel()
        hists = np.bincount(
            flat, weights=weights, minlength=n * n_slots
        ).astype(np.float64).reshape(n, n_slots)
        results = []
        for row in hists:
            hist = row.copy()
            norm = hist.sum()
            if norm > 0:
                hist /= norm
            results.append(hist)
        per_batch.append(results)
    return scatter_results(batches, per_batch, len(arrays))
