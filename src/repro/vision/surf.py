"""SURF-style interest points and descriptors (Bay et al., ECCV 2006).

CrowdMap's precise key-frame matching stage (paper Algorithm 1) extracts
SURF descriptors from both frames and mutually matches them. This module
implements the same pipeline shape on integral images:

- a fast-Hessian detector: box-filter approximations of the Hessian's
  second-order derivatives at several filter sizes, with 3x3x3 non-maximum
  suppression across space and scale;
- an upright 64-dimensional descriptor: Haar-wavelet responses summed over a
  4x4 grid of subregions around each keypoint (U-SURF — the phone is held
  level during SRS/SWS capture, so in-plane rotation invariance is not
  needed and skipping it roughly doubles speed, as in the original paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.core.contracts import shaped
from repro.vision.image import to_grayscale
from repro.vision.integral import box_sum_grid, integral_image

#: Box-filter sizes of the scale stack (SURF's first octave uses 9,15,21,27).
DEFAULT_FILTER_SIZES = (9, 15, 21, 27)

#: Weight balancing Dxy against Dxx*Dyy in the Hessian determinant.
_DXY_WEIGHT = 0.9


@dataclass(frozen=True)
class SurfFeature:
    """One detected interest point with its descriptor."""

    x: float
    y: float
    scale: float
    response: float
    descriptor: np.ndarray

    def distance_to(self, other: "SurfFeature") -> float:
        """Euclidean distance between descriptors (the paper's ``d``)."""
        return float(np.linalg.norm(self.descriptor - other.descriptor))


def _hessian_response(table: np.ndarray, size: int) -> np.ndarray:
    """Approximated Hessian determinant for one box-filter ``size``.

    Uses the classic 3-lobe Dyy/Dxx and 4-lobe Dxy box layouts. ``size``
    must be ``9 + 6k``; the lobe width is ``size // 3``.
    """
    h, w = table.shape[0] - 1, table.shape[1] - 1
    lobe = size // 3
    half = size // 2
    ys = np.arange(h)[:, None]
    xs = np.arange(w)[None, :]

    # Dyy: three stacked lobes of height `lobe`, middle weighted -2; the
    # filter is (2*lobe - 1) wide. whole - 3*middle realizes (+1, -2, +1).
    wx1, wx2 = -(lobe - 1), lobe  # (2*lobe - 1) columns centred on x
    whole = box_sum_grid(table, ys, xs, -half, wx1, half + 1, wx2)
    middle = box_sum_grid(table, ys, xs, -(lobe // 2), wx1,
                          lobe // 2 + 1, wx2)
    dyy = whole - 3.0 * middle

    # Dxx: transpose of the Dyy layout.
    whole = box_sum_grid(table, ys, xs, wx1, -half, wx2, half + 1)
    middle = box_sum_grid(table, ys, xs, wx1, -(lobe // 2),
                          wx2, lobe // 2 + 1)
    dxx = whole - 3.0 * middle

    # Dxy: four lobe x lobe quadrants with alternating signs.
    q = lobe
    tl = box_sum_grid(table, ys, xs, -q, -q, 0, 0)
    tr = box_sum_grid(table, ys, xs, -q, 1, 0, q + 1)
    bl = box_sum_grid(table, ys, xs, 1, -q, q + 1, 0)
    br = box_sum_grid(table, ys, xs, 1, 1, q + 1, q + 1)
    dxy = tl + br - tr - bl

    norm = 1.0 / (size * size)
    dxx *= norm
    dyy *= norm
    dxy *= norm
    response = dxx * dyy - (_DXY_WEIGHT * dxy) ** 2
    # Box sums are clamped at the image border, which fabricates strong
    # responses there; blank the border band the filter cannot fully cover.
    margin = half + 1
    response[:margin, :] = 0.0
    response[-margin:, :] = 0.0
    response[:, :margin] = 0.0
    response[:, -margin:] = 0.0
    return response


def _non_max_suppression(
    stack: np.ndarray, threshold: float
) -> List[tuple]:
    """3x3x3 maxima of a (scales, H, W) response stack above ``threshold``.

    Vectorized: a point survives when it strictly exceeds all 26 neighbours
    in the scale-space cube (ties are dropped, as in the reference SURF).
    """
    n_scales, h, w = stack.shape
    if n_scales < 3 or h < 3 or w < 3:
        return []
    center = stack[1:-1, 1:-1, 1:-1]
    is_max = center > threshold
    for ds in (-1, 0, 1):
        for dy in (-1, 0, 1):
            for dx in (-1, 0, 1):
                if ds == 0 and dy == 0 and dx == 0:
                    continue
                neighbour = stack[
                    1 + ds : n_scales - 1 + ds,
                    1 + dy : h - 1 + dy,
                    1 + dx : w - 1 + dx,
                ]
                is_max &= center > neighbour
                if not is_max.any():
                    return []
    ss, ys, xs = np.nonzero(is_max)
    values = center[ss, ys, xs]
    return [
        (int(s + 1), int(y + 1), int(x + 1), float(v))
        for s, y, x, v in zip(ss, ys, xs, values)
    ]


def _haar_responses(
    table: np.ndarray, ys: np.ndarray, xs: np.ndarray, size: int
) -> tuple:
    """Haar wavelet responses (dx, dy) of side ``2*size`` at sample points."""
    left = box_sum_grid(table, ys, xs, -size, -size, size, 0)
    right = box_sum_grid(table, ys, xs, -size, 0, size, size)
    top = box_sum_grid(table, ys, xs, -size, -size, 0, size)
    bottom = box_sum_grid(table, ys, xs, 0, -size, size, size)
    return right - left, bottom - top


def _describe_batch(
    table: np.ndarray,
    ys: np.ndarray,
    xs: np.ndarray,
    scales: np.ndarray,
) -> np.ndarray:
    """Upright 64-d SURF descriptors for K keypoints at once, (K, 64).

    Keypoints are grouped by their integer sampling step so each group's
    20x20 Haar-response grid is computed in a single vectorized pass.
    """
    k = len(ys)
    descriptors = np.zeros((k, 64), dtype=np.float64)
    steps = np.maximum(1, np.round(scales).astype(int))
    grid = (np.arange(20) - 9.5)  # sample offsets in units of step
    for step in np.unique(steps):
        sel = np.nonzero(steps == step)[0]
        offsets = grid * step
        sy = np.round(ys[sel, None, None] + offsets[None, :, None]).astype(int)
        sx = np.round(xs[sel, None, None] + offsets[None, None, :]).astype(int)
        sy = np.broadcast_to(sy, (len(sel), 20, 20))
        sx = np.broadcast_to(sx, (len(sel), 20, 20))
        dx, dy = _haar_responses(table, sy, sx, int(step))
        # Gaussian weighting centred on the keypoint (sigma = 3.3 * scale).
        sigma = 3.3 * scales[sel]
        gy = np.exp(-0.5 * (offsets[None, :] / sigma[:, None]) ** 2)
        weight = gy[:, :, None] * gy[:, None, :]
        dx = dx * weight
        dy = dy * weight
        # 4x4 subregions of 5x5 samples each.
        dx_sub = dx.reshape(len(sel), 4, 5, 4, 5)
        dy_sub = dy.reshape(len(sel), 4, 5, 4, 5)
        parts = np.stack(
            [
                dx_sub.sum(axis=(2, 4)),
                dy_sub.sum(axis=(2, 4)),
                np.abs(dx_sub).sum(axis=(2, 4)),
                np.abs(dy_sub).sum(axis=(2, 4)),
            ],
            axis=-1,
        )  # (k, 4, 4, 4)
        descriptors[sel] = parts.reshape(len(sel), 64)
    norms = np.linalg.norm(descriptors, axis=1, keepdims=True)
    norms[norms == 0] = 1.0
    return descriptors / norms


def detect_and_describe(
    image: np.ndarray,
    threshold: float = 0.0001,
    max_features: int = 200,
    filter_sizes: Sequence[int] = DEFAULT_FILTER_SIZES,
) -> List[SurfFeature]:
    """Detect fast-Hessian interest points and compute their descriptors.

    ``threshold`` is on the normalized Hessian determinant; raise it to keep
    only stronger blobs. At most ``max_features`` strongest features are
    described (sorted by response), which bounds matching cost.
    """
    gray = to_grayscale(image)
    if gray.max() > 1.5:  # tolerate [0, 255] input
        gray = gray / 255.0
    # Contrast standardization: the Hessian determinant scales with the
    # square of image contrast, so un-normalized night captures would lose
    # most of their interest points to the fixed threshold.
    std = gray.std()
    if std > 1e-6:
        gray = (gray - gray.mean()) / (4.0 * std) + 0.5
    table = integral_image(gray)

    stack = np.stack([_hessian_response(table, s) for s in filter_sizes])
    raw_keypoints = _non_max_suppression(stack, threshold)
    raw_keypoints.sort(key=lambda kp: -kp[3])
    raw_keypoints = raw_keypoints[:max_features]
    if not raw_keypoints:
        return []

    # SURF maps filter size L to scale sigma = 1.2 * L / 9.
    ys = np.array([kp[1] for kp in raw_keypoints], dtype=np.float64)
    xs = np.array([kp[2] for kp in raw_keypoints], dtype=np.float64)
    scales = np.array(
        [1.2 * filter_sizes[kp[0]] / 9.0 for kp in raw_keypoints]
    )
    descriptors = _describe_batch(table, ys, xs, scales)
    return [
        SurfFeature(
            x=float(xs[i]),
            y=float(ys[i]),
            scale=float(scales[i]),
            response=raw_keypoints[i][3],
            descriptor=descriptors[i],
        )
        for i in range(len(raw_keypoints))
    ]


@shaped(out="(N,D) float64 descriptors")
def descriptor_matrix(features: Sequence[SurfFeature]) -> np.ndarray:
    """Stack feature descriptors into an (N, D) matrix (empty-safe).

    D is 64 for real SURF features; the contract keeps it symbolic so the
    matcher also works on truncated descriptors in tests.
    """
    if not features:
        return np.zeros((0, 64), dtype=np.float64)
    return np.stack([f.descriptor for f in features])
