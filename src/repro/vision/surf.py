"""SURF-style interest points and descriptors (Bay et al., ECCV 2006).

CrowdMap's precise key-frame matching stage (paper Algorithm 1) extracts
SURF descriptors from both frames and mutually matches them. This module
implements the same pipeline shape on integral images:

- a fast-Hessian detector: box-filter approximations of the Hessian's
  second-order derivatives at several filter sizes, with 3x3x3 non-maximum
  suppression across space and scale;
- an upright 64-dimensional descriptor: Haar-wavelet responses summed over a
  4x4 grid of subregions around each keypoint (U-SURF — the phone is held
  level during SRS/SWS capture, so in-plane rotation invariance is not
  needed and skipping it roughly doubles speed, as in the original paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.contracts import shaped
from repro.vision.image import to_grayscale_stack
from repro.vision.integral import DenseBoxSums, integral_image_stack

#: Box-filter sizes of the scale stack (SURF's first octave uses 9,15,21,27).
DEFAULT_FILTER_SIZES = (9, 15, 21, 27)

#: Weight balancing Dxy against Dxx*Dyy in the Hessian determinant.
_DXY_WEIGHT = 0.9


@dataclass(frozen=True)
class SurfFeature:
    """One detected interest point with its descriptor."""

    x: float
    y: float
    scale: float
    response: float
    descriptor: np.ndarray

    def distance_to(self, other: "SurfFeature") -> float:
        """Euclidean distance between descriptors (the paper's ``d``)."""
        return float(np.linalg.norm(self.descriptor - other.descriptor))


def _hessian_response(table: np.ndarray, size: int) -> np.ndarray:
    """Approximated Hessian determinant for one box-filter ``size``.

    Uses the classic 3-lobe Dyy/Dxx and 4-lobe Dxy box layouts. ``size``
    must be ``9 + 6k``; the lobe width is ``size // 3``. ``table`` may be
    a single integral table or an ``(N, H+1, W+1)`` stack; every step is
    a slice combination or elementwise op, so each lane of a stacked
    response is bit-identical to the 2-D call on that lane.
    """
    lobe = size // 3
    half = size // 2
    # Every box below is anchored at every pixel; the padded dense view
    # serves them all through slicing (no fancy-index gathers).
    dense = DenseBoxSums(table, margin=half + 1)

    # Dyy: three stacked lobes of height `lobe`, middle weighted -2; the
    # filter is (2*lobe - 1) wide. whole - 3*middle realizes (+1, -2, +1).
    wx1, wx2 = -(lobe - 1), lobe  # (2*lobe - 1) columns centred on x
    dyy = dense.box(-half, wx1, half + 1, wx2)
    middle = dense.box(-(lobe // 2), wx1, lobe // 2 + 1, wx2)
    middle *= 3.0
    dyy -= middle  # whole - 3*middle, accumulated in place

    # Dxx: transpose of the Dyy layout.
    dxx = dense.box(wx1, -half, wx2, half + 1)
    middle = dense.box(wx1, -(lobe // 2), wx2, lobe // 2 + 1)
    middle *= 3.0
    dxx -= middle

    # Dxy: four lobe x lobe quadrants with alternating signs.
    q = lobe
    dxy = dense.box(-q, -q, 0, 0)  # top-left
    dxy += dense.box(1, 1, q + 1, q + 1)  # bottom-right
    dxy -= dense.box(-q, 1, 0, q + 1)  # top-right
    dxy -= dense.box(1, -q, q + 1, 0)  # bottom-left

    norm = 1.0 / (size * size)
    dxx *= norm
    dyy *= norm
    dxy *= norm
    response = dxx * dyy
    dxy *= _DXY_WEIGHT
    dxy *= dxy
    response -= dxy
    # Box sums are clamped at the image border, which fabricates strong
    # responses there; blank the border band the filter cannot fully cover.
    margin = half + 1
    response[..., :margin, :] = 0.0
    response[..., -margin:, :] = 0.0
    response[..., :, :margin] = 0.0
    response[..., :, -margin:] = 0.0
    return response


def _non_max_suppression(
    stack: np.ndarray, threshold: float
) -> tuple:
    """3x3x3 maxima of a (scales, H, W) response stack above ``threshold``.

    Vectorized: a point survives when it strictly exceeds all 26 neighbours
    in the scale-space cube (ties are dropped, as in the reference SURF).
    Returns ``(scale_idx, ys, xs, values)`` integer/float arrays in
    row-major scan order.
    """
    empty = (np.array([], dtype=int),) * 3 + (np.array([]),)
    n_scales, h, w = stack.shape
    if n_scales < 3 or h < 3 or w < 3:
        return empty
    center = stack[1:-1, 1:-1, 1:-1]
    is_max = center > threshold
    for ds in (-1, 0, 1):  # crowdlint: allow[CM006] loop is over the 26 stencil offsets; each compare is a full-array slice op
        for dy in (-1, 0, 1):  # crowdlint: allow[CM006] loop is over the 26 stencil offsets; each compare is a full-array slice op
            for dx in (-1, 0, 1):  # crowdlint: allow[CM006] loop is over the 26 stencil offsets; each compare is a full-array slice op
                if ds == 0 and dy == 0 and dx == 0:
                    continue
                neighbour = stack[
                    1 + ds : n_scales - 1 + ds,
                    1 + dy : h - 1 + dy,
                    1 + dx : w - 1 + dx,
                ]
                is_max &= center > neighbour
                if not is_max.any():
                    return empty
    ss, ys, xs = np.nonzero(is_max)
    values = center[ss, ys, xs]
    return ss + 1, ys + 1, xs + 1, values


def _haar_responses(
    table: np.ndarray, ys: np.ndarray, xs: np.ndarray, size: int
) -> tuple:
    """Haar wavelet responses (dx, dy) of side ``2*size`` at sample points.

    The four half-boxes (left/right/top/bottom) share their integral-table
    corners: all sixteen lie on the 3x3 grid ``(y, x) +- size``. Gathering
    the eight distinct corners once and combining them with the same
    grouping :func:`~repro.vision.integral.box_sum_grid` uses halves the
    gather traffic of four independent box-sum calls, bit-identically.
    """
    h, w = table.shape[0] - 1, table.shape[1] - 1
    stride = w + 1
    flat = table.ravel()
    ym = np.clip(ys - size, 0, h) * stride
    y0 = np.clip(ys, 0, h) * stride
    yp = np.clip(ys + size, 0, h) * stride
    xm = np.clip(xs - size, 0, w)
    x0 = np.clip(xs, 0, w)
    xp = np.clip(xs + size, 0, w)
    t_mm = flat[ym + xm]
    t_m0 = flat[ym + x0]
    t_mp = flat[ym + xp]
    t_0m = flat[y0 + xm]
    t_0p = flat[y0 + xp]
    t_pm = flat[yp + xm]
    t_p0 = flat[yp + x0]
    t_pp = flat[yp + xp]
    left = t_p0 - t_m0 - t_pm + t_mm
    right = t_pp - t_mp - t_p0 + t_m0
    top = t_0p - t_mp - t_0m + t_mm
    bottom = t_pp - t_0p - t_pm + t_0m
    return right - left, bottom - top


def _describe_batch(
    table: np.ndarray,
    ys: np.ndarray,
    xs: np.ndarray,
    scales: np.ndarray,
) -> np.ndarray:
    """Upright 64-d SURF descriptors for K keypoints at once, (K, 64).

    Keypoints are grouped by their integer sampling step so each group's
    20x20 Haar-response grid is computed in a single vectorized pass.
    """
    k = len(ys)
    descriptors = np.zeros((k, 64), dtype=np.float64)
    steps = np.maximum(1, np.round(scales).astype(int))
    grid = (np.arange(20) - 9.5)  # sample offsets in units of step
    for step in np.unique(steps):
        sel = np.nonzero(steps == step)[0]
        offsets = grid * step
        sy = np.round(ys[sel, None, None] + offsets[None, :, None]).astype(int)
        sx = np.round(xs[sel, None, None] + offsets[None, None, :]).astype(int)
        sy = np.broadcast_to(sy, (len(sel), 20, 20))
        sx = np.broadcast_to(sx, (len(sel), 20, 20))
        dx, dy = _haar_responses(table, sy, sx, int(step))
        # Gaussian weighting centred on the keypoint (sigma = 3.3 * scale).
        sigma = 3.3 * scales[sel]
        gy = np.exp(-0.5 * (offsets[None, :] / sigma[:, None]) ** 2)
        weight = gy[:, :, None] * gy[:, None, :]
        dx = dx * weight
        dy = dy * weight
        # 4x4 subregions of 5x5 samples each.
        dx_sub = dx.reshape(len(sel), 4, 5, 4, 5)
        dy_sub = dy.reshape(len(sel), 4, 5, 4, 5)
        parts = np.stack(
            [
                dx_sub.sum(axis=(2, 4)),
                dy_sub.sum(axis=(2, 4)),
                np.abs(dx_sub).sum(axis=(2, 4)),
                np.abs(dy_sub).sum(axis=(2, 4)),
            ],
            axis=-1,
        )  # (k, 4, 4, 4)
        descriptors[sel] = parts.reshape(len(sel), 64)
    norms = np.linalg.norm(descriptors, axis=1, keepdims=True)
    norms[norms == 0] = 1.0
    return descriptors / norms


def _standardize_grays(grays: np.ndarray) -> np.ndarray:
    """Per-frame range + contrast standardization of an (N, H, W) stack.

    The decisions ([0, 255] rescale, contrast standardization) depend on
    per-frame scalars, so they run frame by frame over the stack — the
    exact scalar sequence the single-frame path computes.
    """
    out = np.empty_like(grays, dtype=np.float64)
    for i in range(grays.shape[0]):  # crowdlint: allow[CM006] per-frame scalar decisions (rescale, contrast) must run in single-frame order to stay bit-identical
        gray = grays[i]
        if gray.max() > 1.5:  # tolerate [0, 255] input
            gray = gray / 255.0
        # Contrast standardization: the Hessian determinant scales with
        # the square of image contrast, so un-normalized night captures
        # would lose most of their interest points to the fixed threshold.
        std = gray.std()
        if std > 1e-6:
            gray = (gray - gray.mean()) / (4.0 * std) + 0.5
        out[i] = gray
    return out


def _features_from_responses(
    table: np.ndarray,
    stack: np.ndarray,
    threshold: float,
    max_features: int,
    filter_sizes: Sequence[int],
) -> List[SurfFeature]:
    """NMS + descriptors for one frame's (scales, H, W) response stack."""
    ss, ys_i, xs_i, values = _non_max_suppression(stack, threshold)
    if ss.size == 0:
        return []
    # Strongest first; stable sort keeps scan order on ties, matching the
    # list-sort behaviour this replaced.
    order = np.argsort(-values, kind="stable")[:max_features]
    ss, values = ss[order], values[order]
    ys = ys_i[order].astype(np.float64)
    xs = xs_i[order].astype(np.float64)
    # SURF maps filter size L to scale sigma = 1.2 * L / 9.
    scales = 1.2 * np.asarray(filter_sizes, dtype=np.float64)[ss] / 9.0
    descriptors = _describe_batch(table, ys, xs, scales)
    return [
        SurfFeature(
            x=float(xs[i]),
            y=float(ys[i]),
            scale=float(scales[i]),
            response=float(values[i]),
            descriptor=descriptors[i],
        )
        for i in range(ss.size)
    ]


def detect_and_describe(
    image: np.ndarray,
    threshold: float = 0.0001,
    max_features: int = 200,
    filter_sizes: Sequence[int] = DEFAULT_FILTER_SIZES,
) -> List[SurfFeature]:
    """Detect fast-Hessian interest points and compute their descriptors.

    ``threshold`` is on the normalized Hessian determinant; raise it to keep
    only stronger blobs. At most ``max_features`` strongest features are
    described (sorted by response), which bounds matching cost.

    Delegates to :func:`surf_detect_batch` with a one-frame batch — the
    same pattern ``hog_descriptor`` uses — so there is exactly one
    detection code path to keep bit-exact.
    """
    return surf_detect_batch(
        [image],
        threshold=threshold,
        max_features=max_features,
        filter_sizes=filter_sizes,
    )[0]


def surf_detect_batch(
    images: Sequence[np.ndarray],
    threshold: float = 0.0001,
    max_features: int = 200,
    filter_sizes: Sequence[int] = DEFAULT_FILTER_SIZES,
) -> List[List[SurfFeature]]:
    """SURF features for many frames, batching the detector across frames.

    Frames are grouped by shape; each group shares one stacked integral
    table and one stacked Hessian response per filter size, which
    amortizes the box-sum padding and slice arithmetic that dominate
    per-frame detection. Non-maximum suppression and description remain
    per frame (their outputs are ragged). Every frame's features are
    bit-identical to ``detect_and_describe`` on that frame alone: the
    batched steps are slice/elementwise ops over independent lanes, and
    the per-frame scalar decisions are made frame by frame.
    """
    results: List[Optional[List[SurfFeature]]] = [None] * len(images)
    groups: Dict[tuple, List[int]] = {}
    for idx, image in enumerate(images):
        groups.setdefault(np.asarray(image).shape, []).append(idx)
    for indices in groups.values():
        members = [np.asarray(images[idx]) for idx in indices]
        # A one-frame group gets a broadcast view, not a stack copy.
        stacked = members[0][None] if len(members) == 1 else np.stack(members)
        grays = _standardize_grays(to_grayscale_stack(stacked))
        tables = integral_image_stack(grays)
        # (N, S, H, W): one vectorized Hessian pass per filter size.
        responses = np.stack(
            [_hessian_response(tables, s) for s in filter_sizes], axis=1
        )
        for lane, idx in enumerate(indices):  # crowdlint: allow[CM006] NMS + description outputs are ragged per frame; only the lane loop scatters them
            results[idx] = _features_from_responses(
                tables[lane], responses[lane],
                threshold, max_features, filter_sizes,
            )
    return [features if features is not None else [] for features in results]


@shaped(out="(N,D) float64 descriptors")
def descriptor_matrix(features: Sequence[SurfFeature]) -> np.ndarray:
    """Stack feature descriptors into an (N, D) matrix (empty-safe).

    D is 64 for real SURF features; the contract keeps it symbolic so the
    matcher also works on truncated descriptors in tests.
    """
    if not features:
        return np.zeros((0, 64), dtype=np.float64)
    return np.stack([f.descriptor for f in features])
