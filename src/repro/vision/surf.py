"""SURF-style interest points and descriptors (Bay et al., ECCV 2006).

CrowdMap's precise key-frame matching stage (paper Algorithm 1) extracts
SURF descriptors from both frames and mutually matches them. This module
implements the same pipeline shape on integral images:

- a fast-Hessian detector: box-filter approximations of the Hessian's
  second-order derivatives at several filter sizes, with 3x3x3 non-maximum
  suppression across space and scale;
- an upright 64-dimensional descriptor: Haar-wavelet responses summed over a
  4x4 grid of subregions around each keypoint (U-SURF — the phone is held
  level during SRS/SWS capture, so in-plane rotation invariance is not
  needed and skipping it roughly doubles speed, as in the original paper).
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Sequence

import numpy as np

from repro.core.contracts import shaped
from repro.vision.framestack import standardize_gray
from repro.vision.image import to_grayscale_stack
from repro.vision.integral import DenseBoxSums, integral_image_stack

#: Box-filter sizes of the scale stack (SURF's first octave uses 9,15,21,27).
DEFAULT_FILTER_SIZES = (9, 15, 21, 27)

#: Weight balancing Dxy against Dxx*Dyy in the Hessian determinant.
_DXY_WEIGHT = 0.9


class SurfFeature(NamedTuple):
    """One detected interest point with its descriptor.

    A ``NamedTuple`` rather than a frozen dataclass: construction is a
    single tuple allocation instead of five guarded ``__setattr__`` calls,
    which matters because the detector materializes hundreds of features
    per frame (same field names, immutability and pickling behaviour).
    """

    x: float
    y: float
    scale: float
    response: float
    descriptor: np.ndarray

    def distance_to(self, other: "SurfFeature") -> float:
        """Euclidean distance between descriptors (the paper's ``d``)."""
        return float(np.linalg.norm(self.descriptor - other.descriptor))


def _hessian_response(
    table: np.ndarray, size: int, dense: Optional[DenseBoxSums] = None
) -> np.ndarray:
    """Approximated Hessian determinant for one box-filter ``size``.

    Uses the classic 3-lobe Dyy/Dxx and 4-lobe Dxy box layouts. ``size``
    must be ``9 + 6k``; the lobe width is ``size // 3``. ``table`` may be
    a single integral table or an ``(N, H+1, W+1)`` stack; every step is
    a slice combination or elementwise op, so each lane of a stacked
    response is bit-identical to the 2-D call on that lane.

    ``dense`` may carry a pre-padded :class:`DenseBoxSums` of the same
    table with margin >= ``size // 2 + 1``: edge padding is replication,
    so a larger-margin pad serves every smaller filter's corner views
    with exactly the same values, letting one pad feed the whole scale
    stack.
    """
    lobe = size // 3
    half = size // 2
    # Every box below is anchored at every pixel; the padded dense view
    # serves them all through slicing (no fancy-index gathers).
    if dense is None or dense.margin < half + 1:
        dense = DenseBoxSums(table, margin=half + 1)

    # Dyy: three stacked lobes of height `lobe`, middle weighted -2; the
    # filter is (2*lobe - 1) wide. whole - 3*middle realizes (+1, -2, +1).
    wx1, wx2 = -(lobe - 1), lobe  # (2*lobe - 1) columns centred on x
    dyy = dense.box(-half, wx1, half + 1, wx2)
    middle = dense.box(-(lobe // 2), wx1, lobe // 2 + 1, wx2)
    middle *= 3.0
    dyy -= middle  # whole - 3*middle, accumulated in place

    # Dxx: transpose of the Dyy layout.
    dxx = dense.box(wx1, -half, wx2, half + 1)
    middle = dense.box(wx1, -(lobe // 2), wx2, lobe // 2 + 1)
    middle *= 3.0
    dxx -= middle

    # Dxy: four lobe x lobe quadrants with alternating signs.
    q = lobe
    dxy = dense.box(-q, -q, 0, 0)  # top-left
    dxy += dense.box(1, 1, q + 1, q + 1)  # bottom-right
    dxy -= dense.box(-q, 1, 0, q + 1)  # top-right
    dxy -= dense.box(1, -q, q + 1, 0)  # bottom-left

    norm = 1.0 / (size * size)
    dxx *= norm
    dyy *= norm
    dxy *= norm
    response = dxx * dyy
    dxy *= _DXY_WEIGHT
    dxy *= dxy
    response -= dxy
    # Box sums are clamped at the image border, which fabricates strong
    # responses there; blank the border band the filter cannot fully cover.
    margin = half + 1
    response[..., :margin, :] = 0.0
    response[..., -margin:, :] = 0.0
    response[..., :, :margin] = 0.0
    response[..., :, -margin:] = 0.0
    return response


def _non_max_suppression(
    stack: np.ndarray, threshold: float
) -> tuple:
    """3x3x3 maxima of a (scales, H, W) response stack above ``threshold``.

    Vectorized: a point survives when it strictly exceeds all 26 neighbours
    in the scale-space cube (ties are dropped, as in the reference SURF).
    Returns ``(scale_idx, ys, xs, values)`` integer/float arrays in
    row-major scan order.
    """
    empty = (np.array([], dtype=int),) * 3 + (np.array([]),)
    n_scales, h, w = stack.shape
    if n_scales < 3 or h < 3 or w < 3:
        return empty
    center = stack[1:-1, 1:-1, 1:-1]
    # Candidate pass: a separable 3x3x3 running maximum (6 full-array
    # maximum ops instead of 26 shifted compares). The cube max includes
    # the centre itself, so ``center >= cube_max`` keeps exactly the
    # points that are >= all 26 neighbours — a superset of the strict
    # maxima (a strict maximum IS the cube max). The sparse pass below
    # then enforces the original strict-> predicate exactly, so ties are
    # dropped just as the 26-compare loop dropped them.
    m = np.maximum(stack[:-2], stack[1:-1])
    np.maximum(m, stack[2:], out=m)
    my = np.maximum(m[:, :-2], m[:, 1:-1])
    np.maximum(my, m[:, 2:], out=my)
    cube = np.maximum(my[:, :, :-2], my[:, :, 1:-1])
    np.maximum(cube, my[:, :, 2:], out=cube)
    candidates = center > threshold
    candidates &= center >= cube
    ss, ys, xs = np.nonzero(candidates)
    if ss.size == 0:
        return empty
    # Strict over all 26 neighbours <=> the candidate's 3x3x3 cube holds
    # exactly one entry (the centre) equal to its maximum. One flat
    # gather of every candidate's cube checks all ties at once.
    flat = stack.ravel()
    base = (ss + 1) * (h * w) + (ys + 1) * w + (xs + 1)
    d = np.array([-1, 0, 1])
    cube_offsets = (
        d[:, None, None] * (h * w) + d[None, :, None] * w + d[None, None, :]
    ).ravel()
    cubes = flat[base[:, None] + cube_offsets[None, :]]  # (K, 27)
    centre_vals = center[ss, ys, xs]
    keep = (
        np.count_nonzero(cubes == centre_vals[:, None], axis=1) == 1
    )
    ss, ys, xs = ss[keep], ys[keep], xs[keep]
    return ss + 1, ys + 1, xs + 1, centre_vals[keep]


def _haar_responses(
    table: np.ndarray, ys: np.ndarray, xs: np.ndarray, size: int
) -> tuple:
    """Haar wavelet responses (dx, dy) of side ``2*size`` at sample points.

    The four half-boxes (left/right/top/bottom) share their integral-table
    corners: all sixteen lie on the 3x3 grid ``(y, x) +- size``. Gathering
    the eight distinct corners once and combining them with the same
    grouping :func:`~repro.vision.integral.box_sum_grid` uses halves the
    gather traffic of four independent box-sum calls, bit-identically.

    ``ys``/``xs`` may be separable anchor axes — ``(K, G)`` row and column
    coordinates instead of full ``(K, G, G)`` grids. The clip/stride
    arithmetic then runs once per axis and only the eight gathers see the
    broadcast ``(K, G, G)`` index sums, which cuts the integer traffic by
    ~G per corner without changing a single gathered value.
    """
    h, w = table.shape[0] - 1, table.shape[1] - 1
    stride = w + 1
    flat = table.ravel()
    separable = ys.ndim == 2 and xs.ndim == 2
    ym = np.clip(ys - size, 0, h) * stride
    y0 = np.clip(ys, 0, h) * stride
    yp = np.clip(ys + size, 0, h) * stride
    xm = np.clip(xs - size, 0, w)
    x0 = np.clip(xs, 0, w)
    xp = np.clip(xs + size, 0, w)
    if separable:
        ym = ym[:, :, None]
        y0 = y0[:, :, None]
        yp = yp[:, :, None]
        xm = xm[:, None, :]
        x0 = x0[:, None, :]
        xp = xp[:, None, :]
    t_mm = flat[ym + xm]
    t_m0 = flat[ym + x0]
    t_mp = flat[ym + xp]
    t_0m = flat[y0 + xm]
    t_0p = flat[y0 + xp]
    t_pm = flat[yp + xm]
    t_p0 = flat[yp + x0]
    t_pp = flat[yp + xp]
    left = t_p0 - t_m0 - t_pm + t_mm
    right = t_pp - t_mp - t_p0 + t_m0
    top = t_0p - t_mp - t_0m + t_mm
    bottom = t_pp - t_0p - t_pm + t_0m
    return right - left, bottom - top


def _describe_batch(
    table: np.ndarray,
    ys: np.ndarray,
    xs: np.ndarray,
    scales: np.ndarray,
) -> np.ndarray:
    """Upright 64-d SURF descriptors for K keypoints at once, (K, 64).

    Keypoints are grouped by their integer sampling step so each group's
    20x20 Haar-response grid is computed in a single vectorized pass.
    """
    k = len(ys)
    descriptors = np.zeros((k, 64), dtype=np.float64)
    steps = np.maximum(1, np.round(scales).astype(int))
    grid = (np.arange(20) - 9.5)  # sample offsets in units of step
    for step in np.unique(steps):
        sel = np.nonzero(steps == step)[0]
        offsets = grid * step
        # Sample rows/columns are separable: the grid at (y, x) is the
        # outer product of a (K, 20) row axis and a (K, 20) column axis,
        # so rounding/clipping runs per axis and only the gathers inside
        # ``_haar_responses`` touch the full (K, 20, 20) grid.
        sy = np.round(ys[sel, None] + offsets[None, :]).astype(int)
        sx = np.round(xs[sel, None] + offsets[None, :]).astype(int)
        dx, dy = _haar_responses(table, sy, sx, int(step))
        # Gaussian weighting centred on the keypoint (sigma = 3.3 * scale).
        sigma = 3.3 * scales[sel]
        gy = np.exp(-0.5 * (offsets[None, :] / sigma[:, None]) ** 2)
        weight = gy[:, :, None] * gy[:, None, :]
        dx *= weight
        dy *= weight
        # 4x4 subregions of 5x5 samples each.
        dx_sub = dx.reshape(len(sel), 4, 5, 4, 5)
        dy_sub = dy.reshape(len(sel), 4, 5, 4, 5)
        parts = np.stack(
            [
                dx_sub.sum(axis=(2, 4)),
                dy_sub.sum(axis=(2, 4)),
                np.abs(dx_sub).sum(axis=(2, 4)),
                np.abs(dy_sub).sum(axis=(2, 4)),
            ],
            axis=-1,
        )  # (k, 4, 4, 4)
        descriptors[sel] = parts.reshape(len(sel), 64)
    norms = np.linalg.norm(descriptors, axis=1, keepdims=True)
    norms[norms == 0] = 1.0
    return descriptors / norms


def _standardize_grays(grays: np.ndarray) -> np.ndarray:
    """Per-frame range + contrast standardization of an (N, H, W) stack.

    The decisions ([0, 255] rescale, contrast standardization) depend on
    per-frame scalars, so they run frame by frame over the stack — the
    exact scalar sequence :func:`repro.vision.framestack.standardize_gray`
    (the single-frame definition both paths share) computes.
    """
    out = np.empty_like(grays, dtype=np.float64)
    for i in range(grays.shape[0]):  # crowdlint: allow[CM006] per-frame scalar decisions (rescale, contrast) must run in single-frame order to stay bit-identical
        out[i] = standardize_gray(grays[i])
    return out


def _features_from_responses(
    table: np.ndarray,
    stack: np.ndarray,
    threshold: float,
    max_features: int,
    filter_sizes: Sequence[int],
) -> List[SurfFeature]:
    """NMS + descriptors for one frame's (scales, H, W) response stack."""
    ss, ys_i, xs_i, values = _non_max_suppression(stack, threshold)
    if ss.size == 0:
        return []
    # Strongest first; stable sort keeps scan order on ties, matching the
    # list-sort behaviour this replaced.
    order = np.argsort(-values, kind="stable")[:max_features]
    ss, values = ss[order], values[order]
    ys = ys_i[order].astype(np.float64)
    xs = xs_i[order].astype(np.float64)
    # SURF maps filter size L to scale sigma = 1.2 * L / 9.
    scales = 1.2 * np.asarray(filter_sizes, dtype=np.float64)[ss] / 9.0
    descriptors = _describe_batch(table, ys, xs, scales)
    xs_l, ys_l = xs.tolist(), ys.tolist()
    scales_l, values_l = scales.tolist(), values.tolist()
    return [
        SurfFeature(xs_l[i], ys_l[i], scales_l[i], values_l[i], descriptors[i])
        for i in range(ss.size)
    ]


def detect_and_describe(
    image: np.ndarray,
    threshold: float = 0.0001,
    max_features: int = 200,
    filter_sizes: Sequence[int] = DEFAULT_FILTER_SIZES,
    stack=None,
) -> List[SurfFeature]:
    """Detect fast-Hessian interest points and compute their descriptors.

    ``threshold`` is on the normalized Hessian determinant; raise it to keep
    only stronger blobs. At most ``max_features`` strongest features are
    described (sorted by response), which bounds matching cost.

    ``stack`` optionally carries the frame's shared
    :class:`~repro.vision.framestack.FrameStack`, whose grayscale /
    standardized / integral planes are reused instead of recomputed —
    the planes are built by the exact expressions this path would use,
    so the features are bit-identical either way.

    Delegates to :func:`surf_detect_batch` with a one-frame batch — the
    same pattern ``hog_descriptor`` uses — so there is exactly one
    detection code path to keep bit-exact.
    """
    return surf_detect_batch(
        [image],
        threshold=threshold,
        max_features=max_features,
        filter_sizes=filter_sizes,
        stacks=None if stack is None else [stack],
    )[0]


def surf_detect_batch(
    images: Sequence[np.ndarray],
    threshold: float = 0.0001,
    max_features: int = 200,
    filter_sizes: Sequence[int] = DEFAULT_FILTER_SIZES,
    stacks=None,
) -> List[List[SurfFeature]]:
    """SURF features for many frames, batching the detector across frames.

    Frames are grouped by shape; each group shares one stacked integral
    table and one stacked Hessian response per filter size, which
    amortizes the box-sum padding and slice arithmetic that dominate
    per-frame detection. Non-maximum suppression and description remain
    per frame (their outputs are ragged). Every frame's features are
    bit-identical to ``detect_and_describe`` on that frame alone: the
    batched steps are slice/elementwise ops over independent lanes, and
    the per-frame scalar decisions are made frame by frame.

    ``stacks`` optionally carries one FrameStack per image; the shared
    grayscale/standardized/integral planes then replace this function's
    own conversions. A stack's integral table is built per frame
    (:func:`~repro.vision.integral.integral_image`), which is
    bit-identical per lane to the stacked table build.
    """
    results: List[Optional[List[SurfFeature]]] = [None] * len(images)
    groups: Dict[tuple, List[int]] = {}
    for idx, image in enumerate(images):
        groups.setdefault(np.asarray(image).shape, []).append(idx)
    for indices in groups.values():
        if stacks is not None:
            member_tables = [stacks[idx].integral() for idx in indices]
            tables = (
                member_tables[0][None]
                if len(member_tables) == 1
                else np.stack(member_tables)
            )
        else:
            members = [np.asarray(images[idx]) for idx in indices]
            # A one-frame group gets a broadcast view, not a stack copy.
            stacked = (
                members[0][None] if len(members) == 1 else np.stack(members)
            )
            grays = _standardize_grays(to_grayscale_stack(stacked))
            tables = integral_image_stack(grays)
        # (N, S, H, W): one vectorized Hessian pass per filter size, all
        # sizes sharing a single max-margin edge pad of the tables.
        shared = DenseBoxSums(tables, margin=max(filter_sizes) // 2 + 1)
        responses = np.stack(
            [_hessian_response(tables, s, dense=shared) for s in filter_sizes],
            axis=1,
        )
        for lane, idx in enumerate(indices):  # crowdlint: allow[CM006] NMS + description outputs are ragged per frame; only the lane loop scatters them
            results[idx] = _features_from_responses(
                tables[lane], responses[lane],
                threshold, max_features, filter_sizes,
            )
    return [features if features is not None else [] for features in results]


@shaped(out="(N,D) float64 descriptors")
def descriptor_matrix(features: Sequence[SurfFeature]) -> np.ndarray:
    """Stack feature descriptors into an (N, D) matrix (empty-safe).

    D is 64 for real SURF features; the contract keeps it symbolic so the
    matcher also works on truncated descriptors in tests.
    """
    if not features:
        return np.zeros((0, 64), dtype=np.float64)
    return np.stack([f.descriptor for f in features])
