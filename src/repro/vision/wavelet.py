"""Haar-wavelet image-querying signatures (Jacobs et al., SIGGRAPH 1995).

Third rung of CrowdMap's hierarchical key-frame comparison. "Fast
Multiresolution Image Querying" decomposes each image with a standard 2D
Haar wavelet transform, keeps only the sign and position of the largest-
magnitude coefficients, and scores candidates by how many significant
coefficients they share. We implement the same idea: a full 2D Haar
transform on a power-of-two resample, truncation to the top-``m``
coefficients, and a shared-coefficient similarity score.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.contracts import shaped
from repro.vision.image import resize_nearest, to_grayscale


@shaped(image="(S,S)", out="(S,S) float64")
def haar_transform_2d(image: np.ndarray) -> np.ndarray:
    """Full standard 2D Haar wavelet transform of a square power-of-2 image."""
    h, w = image.shape
    if h != w or h & (h - 1):
        raise ValueError("haar_transform_2d needs a square power-of-two image")
    data = image.astype(np.float64).copy()

    def transform_rows(arr: np.ndarray) -> np.ndarray:
        out = arr.copy()
        size = arr.shape[1]
        while size > 1:
            half = size // 2
            evens = out[:, 0:size:2].copy()
            odds = out[:, 1:size:2].copy()
            out[:, :half] = (evens + odds) / np.sqrt(2.0)
            out[:, half:size] = (evens - odds) / np.sqrt(2.0)
            size = half
        return out

    data = transform_rows(data)
    data = transform_rows(data.T).T
    return data


@dataclass(frozen=True)
class WaveletSignature:
    """Truncated wavelet signature: overall brightness + top coefficients."""

    mean: float
    positions: np.ndarray  # flat indices of the kept coefficients
    signs: np.ndarray  # +1/-1 per kept coefficient


def wavelet_signature(
    image: np.ndarray, size: int = 64, keep: int = 60,
    gray: np.ndarray = None,
) -> WaveletSignature:
    """Jacobs-style truncated signature of ``image``.

    The image is resampled to ``size`` x ``size``, Haar-transformed, and the
    ``keep`` largest-magnitude non-DC coefficients are retained as
    (position, sign) pairs. ``gray`` optionally carries the frame's
    shared grayscale plane (the untouched ``to_grayscale(image)``
    output) so the conversion is not repeated per signature.
    """
    if size & (size - 1):
        raise ValueError("size must be a power of two")
    if gray is None:
        gray = to_grayscale(image)
    if gray.max() > 1.5:
        gray = gray / 255.0
    small = resize_nearest(gray, size, size)
    coeffs = haar_transform_2d(small)
    mean = float(coeffs[0, 0])
    flat = coeffs.ravel().copy()
    flat[0] = 0.0  # drop the DC term — brightness handled separately
    order = np.argsort(-np.abs(flat))[:keep]
    signs = np.sign(flat[order]).astype(np.int8)
    nonzero = signs != 0
    return WaveletSignature(
        mean=mean, positions=order[nonzero], signs=signs[nonzero]
    )


def wavelet_similarity(sig_a: WaveletSignature, sig_b: WaveletSignature) -> float:
    """Fraction of significant coefficients shared with matching sign, in [0, 1].

    Score = |{(pos, sign)} common to both| / max(kept_a, kept_b), discounted
    by large overall brightness differences (Jacobs et al. weight the DC term
    separately; we fold it in as a multiplicative factor).
    """
    if sig_a.positions.size == 0 and sig_b.positions.size == 0:
        return 1.0
    set_a = {(int(p), int(s)) for p, s in zip(sig_a.positions, sig_a.signs)}
    set_b = {(int(p), int(s)) for p, s in zip(sig_b.positions, sig_b.signs)}
    denom = max(len(set_a), len(set_b))
    if denom == 0:
        return 1.0
    shared = len(set_a & set_b) / denom
    brightness_penalty = 1.0 / (1.0 + abs(sig_a.mean - sig_b.mean) / 25.0)
    return shared * brightness_penalty
