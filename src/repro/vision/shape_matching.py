"""Edge-orientation shape signatures (after Kato et al., IAPR 1992).

Second rung of CrowdMap's hierarchical key-frame comparison. Kato's
query-by-visual-example compares sketch-like abstractions of images; we
capture the same notion with a spatial grid of edge-orientation histograms:
the image is divided into coarse cells and each cell contributes a small
histogram of its dominant edge directions, so two frames agree when their
scene *structure* (wall edges, door frames, furniture outlines) lines up,
regardless of absolute color.
"""

from __future__ import annotations

import numpy as np

from repro.core.contracts import shaped
from repro.vision.filters import gradient_magnitude_orientation
from repro.vision.image import to_grayscale


@shaped(image="(H,W)|(H,W,3)", out="(?,) float64")
def shape_signature(
    image: np.ndarray,
    grid: int = 4,
    n_bins: int = 8,
    gray: np.ndarray = None,
) -> np.ndarray:
    """Grid-of-edge-orientation-histograms signature, L1-normalized per cell.

    The image is split into ``grid`` x ``grid`` cells; each contributes an
    ``n_bins`` histogram of gradient orientations weighted by magnitude.
    ``gray`` optionally carries the frame's shared grayscale plane (the
    untouched ``to_grayscale(image)`` output) so the conversion is not
    repeated per signature.
    """
    if grid < 1:
        raise ValueError("grid must be positive")
    if gray is None:
        gray = to_grayscale(image)
    h, w = gray.shape
    if h < grid or w < grid:
        raise ValueError(f"image {gray.shape} smaller than grid {grid}")
    magnitude, orientation = gradient_magnitude_orientation(gray)
    bin_idx = np.minimum((orientation / np.pi * n_bins).astype(int), n_bins - 1)

    cell_h = h // grid
    cell_w = w // grid
    # All cells in one bincount: each pixel scatters its magnitude into
    # flat slot (cell_y * grid + cell_x) * n_bins + bin. The global
    # row-major scan visits any one cell's pixels in that cell's own
    # row-major order, so every slot accumulates in the same order the
    # per-cell loop used — bit-identical histograms.
    ch, cw = cell_h * grid, cell_w * grid
    cell_row = np.arange(ch) // cell_h
    cell_col = np.arange(cw) // cell_w
    base = (cell_row[:, None] * grid + cell_col[None, :]) * n_bins
    signature = np.bincount(
        (base + bin_idx[:ch, :cw]).ravel(),
        weights=magnitude[:ch, :cw].ravel(),
        minlength=grid * grid * n_bins,
    ).reshape(grid, grid, n_bins)
    totals = signature.sum(axis=2)
    signature /= np.where(totals > 0, totals, 1.0)[:, :, None]
    return signature.ravel()


@shaped(sig_a="(D,)", sig_b="(D,)")
def shape_similarity(sig_a: np.ndarray, sig_b: np.ndarray) -> float:
    """Histogram-intersection similarity of two shape signatures, in [0, 1]."""
    if sig_a.shape != sig_b.shape:
        raise ValueError("signatures must have identical shape")
    total = sig_a.sum()
    if total == 0:
        return 1.0 if sig_b.sum() == 0 else 0.0
    return float(np.minimum(sig_a, sig_b).sum() / total)
