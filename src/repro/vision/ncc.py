"""Normalized cross-correlation between images.

The key-frame selection stage (paper Section III.B.I) quantifies the
similarity of consecutive frames by "the normalized cross-correlation score
Scc" after HOG filtering; frames whose score stays above a threshold are
considered redundant and dropped.
"""

from __future__ import annotations

import numpy as np

from repro.core.contracts import shaped
from repro.vision.image import to_grayscale


@shaped(image_a="(H,W)|(H,W,3)", image_b="(H,W)|(H,W,3)")
def normalized_cross_correlation(image_a: np.ndarray, image_b: np.ndarray) -> float:
    """Zero-mean NCC of two same-shaped images, in [-1, 1].

    Perfectly correlated images score 1, uncorrelated ~0, inverted -1.
    Two constant images score 1 if equal (both have zero variance).
    """
    a = to_grayscale(image_a).astype(np.float64)
    b = to_grayscale(image_b).astype(np.float64)
    if a.shape != b.shape:
        raise ValueError(f"image shapes differ: {a.shape} vs {b.shape}")
    a = a - a.mean()
    b = b - b.mean()
    denom = np.sqrt((a * a).sum() * (b * b).sum())
    if denom <= 0.0:
        return 1.0 if np.allclose(a, b) else 0.0
    return float((a * b).sum() / denom)
