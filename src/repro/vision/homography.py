"""Planar homography estimation: normalized DLT with RANSAC.

Panorama generation stitches overlapping key-frames; each pairwise
registration needs the 3x3 projective transform that maps points of one
frame into the other. We implement the standard recipe (Hartley & Zisserman):
Hartley-normalize the correspondences, solve the DLT system by SVD, and wrap
the solver in RANSAC to survive the outlier matches that mutual-NN SURF
matching inevitably lets through.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.contracts import shaped


def _normalization_transform(points: np.ndarray) -> np.ndarray:
    """Similarity transform moving points to centroid 0 / mean dist sqrt(2)."""
    centroid = points.mean(axis=0)
    dists = np.linalg.norm(points - centroid, axis=1)
    mean_dist = dists.mean()
    scale = np.sqrt(2.0) / mean_dist if mean_dist > 1e-12 else 1.0
    return np.array(
        [
            [scale, 0.0, -scale * centroid[0]],
            [0.0, scale, -scale * centroid[1]],
            [0.0, 0.0, 1.0],
        ]
    )


def _to_homogeneous(points: np.ndarray) -> np.ndarray:
    return np.hstack([points, np.ones((len(points), 1))])


@shaped(src="(N,2)", dst="(N,2)", out="(3,3) float64 homography")
def estimate_homography(src: np.ndarray, dst: np.ndarray) -> np.ndarray:
    """Least-squares homography H with ``dst ~ H @ src`` (normalized DLT).

    ``src`` and ``dst`` are (N, 2) arrays with N >= 4 correspondences.
    """
    if len(src) < 4 or len(dst) < 4:
        raise ValueError("homography needs at least 4 correspondences")
    if src.shape != dst.shape:
        raise ValueError("src and dst must have the same shape")
    t_src = _normalization_transform(src)
    t_dst = _normalization_transform(dst)
    src_n = (_to_homogeneous(src) @ t_src.T)[:, :2]
    dst_n = (_to_homogeneous(dst) @ t_dst.T)[:, :2]

    n = len(src_n)
    x, y = src_n[:, 0], src_n[:, 1]
    u, v = dst_n[:, 0], dst_n[:, 1]
    # DLT design matrix, both row families filled by strided column
    # assignment instead of a per-correspondence loop.
    a = np.zeros((2 * n, 9))
    a[0::2, 0] = -x
    a[0::2, 1] = -y
    a[0::2, 2] = -1.0
    a[0::2, 6] = u * x
    a[0::2, 7] = u * y
    a[0::2, 8] = u
    a[1::2, 3] = -x
    a[1::2, 4] = -y
    a[1::2, 5] = -1.0
    a[1::2, 6] = v * x
    a[1::2, 7] = v * y
    a[1::2, 8] = v
    _, _, vt = np.linalg.svd(a)
    h_norm = vt[-1].reshape(3, 3)
    h = np.linalg.inv(t_dst) @ h_norm @ t_src
    if abs(h[2, 2]) > 1e-12:
        h = h / h[2, 2]
    return h


@shaped(h="(3,3) homography", points="(N,2)", out="(N,2)")
def apply_homography(h: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Apply H to (N, 2) points, returning (N, 2) dehomogenized results."""
    homog = _to_homogeneous(points) @ h.T
    w = homog[:, 2:3]
    w = np.where(np.abs(w) < 1e-12, 1e-12, w)
    return homog[:, :2] / w


@dataclass(frozen=True)
class RansacResult:
    """Estimated homography plus its inlier support."""

    homography: np.ndarray
    inlier_mask: np.ndarray
    n_inliers: int


@shaped(src="(N,2)", dst="(N,2)")
def ransac_homography(
    src: np.ndarray,
    dst: np.ndarray,
    n_iterations: int = 300,
    inlier_threshold: float = 3.0,
    rng: Optional[np.random.Generator] = None,
    min_inliers: int = 6,
) -> Optional[RansacResult]:
    """RANSAC-robust homography, or None when no model finds enough support.

    Each iteration samples 4 correspondences, fits a homography and counts
    reprojection inliers within ``inlier_threshold`` pixels; the best model
    is refit on all of its inliers.
    """
    if len(src) < 4:
        return None
    rng = rng or np.random.default_rng(0)
    n = len(src)
    best_mask: Optional[np.ndarray] = None
    best_count = 0
    for _ in range(n_iterations):
        sample = rng.choice(n, size=4, replace=False)
        try:
            h = estimate_homography(src[sample], dst[sample])
        except np.linalg.LinAlgError:
            continue
        projected = apply_homography(h, src)
        errors = np.linalg.norm(projected - dst, axis=1)
        mask = errors < inlier_threshold
        count = int(mask.sum())
        if count > best_count:
            best_count = count
            best_mask = mask
    if best_mask is None or best_count < max(4, min_inliers):
        return None
    refined = estimate_homography(src[best_mask], dst[best_mask])
    projected = apply_homography(refined, src)
    errors = np.linalg.norm(projected - dst, axis=1)
    final_mask = errors < inlier_threshold
    if int(final_mask.sum()) < max(4, min_inliers):
        return None
    return RansacResult(
        homography=refined,
        inlier_mask=final_mask,
        n_inliers=int(final_mask.sum()),
    )
