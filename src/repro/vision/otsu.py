"""Otsu's automatic threshold selection (Otsu, 1975).

Step three of the floor-path skeleton reconstruction binarizes the
occupancy-grid access probabilities with "a binarization technique [21]
applied to automatically calculate an optimal threshold" — reference [21]
is Otsu's method. The classic formulation maximizes between-class variance
over all candidate thresholds of a histogram.
"""

from __future__ import annotations

import numpy as np


def otsu_threshold(values: np.ndarray, n_bins: int = 64) -> float:
    """Otsu's optimal threshold for an array of non-negative values.

    Builds an ``n_bins`` histogram over the value range and returns the bin
    edge maximizing between-class variance. Degenerate inputs (constant
    arrays) return the constant value itself so that ``values > threshold``
    selects nothing, matching the "no signal" case.
    """
    flat = np.asarray(values, dtype=np.float64).ravel()
    if flat.size == 0:
        raise ValueError("cannot threshold an empty array")
    vmin, vmax = float(flat.min()), float(flat.max())
    if vmax - vmin < 1e-12:
        return vmax
    hist, edges = np.histogram(flat, bins=n_bins, range=(vmin, vmax))
    hist = hist.astype(np.float64)
    total = hist.sum()
    probabilities = hist / total
    centers = (edges[:-1] + edges[1:]) / 2.0

    omega = np.cumsum(probabilities)  # class-0 probability up to each bin
    mu = np.cumsum(probabilities * centers)  # class-0 mean mass
    mu_total = mu[-1]
    with np.errstate(divide="ignore", invalid="ignore"):
        sigma_between = (mu_total * omega - mu) ** 2 / (omega * (1.0 - omega))
    sigma_between[~np.isfinite(sigma_between)] = -1.0
    best = int(np.argmax(sigma_between))
    return float(edges[best + 1])


def binarize(values: np.ndarray, n_bins: int = 64) -> np.ndarray:
    """Boolean mask of values strictly above the Otsu threshold."""
    return values > otsu_threshold(values, n_bins=n_bins)
