"""Hough line transform and vanishing-structure voting (Hough, 1959).

After LSD finds line segments in the room panorama, the paper "applies the
Hough Transform to the panorama to find the vanishing lines of these line
segments" (Section III.C.II). We provide the classic rho-theta accumulator
over edge pixels plus a segment-space variant that votes detected segments
directly into the accumulator — the latter is what the layout generator
uses to find the dominant vertical (wall-corner) directions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.vision.filters import sobel_gradients
from repro.vision.image import to_grayscale
from repro.vision.lsd import LineSegment2D


@dataclass(frozen=True)
class HoughLine:
    """A line in normal form ``x*cos(theta) + y*sin(theta) = rho``."""

    rho: float
    theta: float
    votes: float


def hough_lines(
    image: np.ndarray,
    n_thetas: int = 180,
    rho_resolution: float = 1.0,
    magnitude_quantile: float = 0.8,
    max_lines: int = 32,
    suppression_radius: int = 2,
) -> List[HoughLine]:
    """Dominant lines of an image via the rho-theta Hough accumulator.

    Edge pixels (gradient magnitude above the given quantile) vote for all
    (rho, theta) pairs passing through them; local maxima of the accumulator
    are returned strongest-first with a small suppression window so near-
    duplicate lines collapse to one.
    """
    gray = to_grayscale(image)
    if gray.max() > 1.5:
        gray = gray / 255.0
    gx, gy = sobel_gradients(gray)
    magnitude = np.hypot(gx, gy)
    positive = magnitude[magnitude > 0]
    if positive.size == 0:
        return []
    threshold = np.quantile(positive, magnitude_quantile)
    ys, xs = np.nonzero(magnitude >= max(threshold, 1e-9))
    if ys.size == 0:
        return []

    h, w = gray.shape
    diag = math.hypot(h, w)
    n_rhos = int(2 * diag / rho_resolution) + 1
    thetas = np.linspace(0.0, math.pi, n_thetas, endpoint=False)
    cos_t = np.cos(thetas)
    sin_t = np.sin(thetas)

    weights = magnitude[ys, xs]
    rhos = xs[:, None] * cos_t[None, :] + ys[:, None] * sin_t[None, :]
    rho_idx = np.round((rhos + diag) / rho_resolution).astype(int)
    rho_idx = np.clip(rho_idx, 0, n_rhos - 1)
    # One bincount over (theta, rho) flat slots instead of a per-theta
    # loop; each slot still accumulates its votes in point order, so the
    # accumulator matches the per-column version bit for bit.
    slots = rho_idx + (np.arange(n_thetas) * n_rhos)[None, :]
    accumulator = np.bincount(
        slots.ravel(),
        weights=np.broadcast_to(weights[:, None], slots.shape).ravel(),
        minlength=n_rhos * n_thetas,
    ).reshape(-1, n_rhos).T
    accumulator = np.ascontiguousarray(accumulator)

    return _extract_peaks(
        accumulator, thetas, diag, rho_resolution, max_lines, suppression_radius
    )


def hough_from_segments(
    segments: Sequence[LineSegment2D],
    image_shape: tuple,
    n_thetas: int = 180,
    rho_resolution: float = 2.0,
    max_lines: int = 16,
    suppression_radius: int = 3,
) -> List[HoughLine]:
    """Hough voting in segment space: each segment votes with its strength.

    A segment votes for the single (rho, theta) of its own supporting line,
    weighted by ``strength * length``, so long confident segments dominate.
    """
    h, w = image_shape[:2]
    diag = math.hypot(h, w)
    n_rhos = int(2 * diag / rho_resolution) + 1
    accumulator = np.zeros((n_rhos, n_thetas), dtype=np.float64)
    thetas = np.linspace(0.0, math.pi, n_thetas, endpoint=False)
    for seg in segments:
        # Normal direction of the segment's line.
        angle = seg.angle()
        theta = (angle + math.pi / 2.0) % math.pi
        mx, my = seg.midpoint()
        rho = mx * math.cos(theta) + my * math.sin(theta)
        t_idx = int(round(theta / math.pi * n_thetas)) % n_thetas
        r_idx = int(round((rho + diag) / rho_resolution))
        if 0 <= r_idx < n_rhos:
            accumulator[r_idx, t_idx] += seg.strength * seg.length()
    return _extract_peaks(
        accumulator, thetas, diag, rho_resolution, max_lines, suppression_radius
    )


def _extract_peaks(
    accumulator: np.ndarray,
    thetas: np.ndarray,
    diag: float,
    rho_resolution: float,
    max_lines: int,
    suppression_radius: int,
) -> List[HoughLine]:
    acc = accumulator.copy()
    n_rhos, n_thetas = acc.shape
    lines: List[HoughLine] = []
    for _ in range(max_lines):
        peak = int(acc.argmax())
        r_idx, t_idx = divmod(peak, n_thetas)
        votes = float(acc[r_idx, t_idx])
        if votes <= 0:
            break
        lines.append(
            HoughLine(
                rho=r_idx * rho_resolution - diag,
                theta=float(thetas[t_idx]),
                votes=votes,
            )
        )
        r0, r1 = max(0, r_idx - suppression_radius), min(n_rhos, r_idx + suppression_radius + 1)
        t0, t1 = max(0, t_idx - suppression_radius), min(n_thetas, t_idx + suppression_radius + 1)
        acc[r0:r1, t0:t1] = 0.0
        # Theta wraps around at pi (rho flips sign); suppress the wrap too.
        if t_idx - suppression_radius < 0 or t_idx + suppression_radius >= n_thetas:
            acc[:, : suppression_radius] *= (t_idx + suppression_radius < n_thetas)
    return lines


def dominant_vertical_columns(
    segments: Sequence[LineSegment2D],
    image_width: int,
    tolerance: float = math.pi / 10,
    bin_width: int = 4,
) -> List[tuple]:
    """Panorama columns with strong vertical line support, strongest first.

    Room corners appear as long vertical lines in a cylindrical panorama;
    this bins near-vertical segments by their column and returns
    ``(column, support)`` pairs sorted by support. It is the segment-space
    analogue of finding vanishing lines with the Hough transform.
    """
    n_bins = max(1, image_width // bin_width)
    support = np.zeros(n_bins, dtype=np.float64)
    for seg in segments:
        if not seg.is_vertical(tolerance):
            continue
        mx, _ = seg.midpoint()
        b = min(n_bins - 1, max(0, int(mx / image_width * n_bins)))
        support[b] += seg.length() * seg.strength
    ranked = [
        (int((b + 0.5) * bin_width), float(support[b]))
        for b in np.argsort(-support)
        if support[b] > 0
    ]
    return ranked
