"""Integral images and constant-time box sums.

SURF's fast-Hessian detector evaluates box filters of many sizes; integral
images make every box sum O(1) regardless of size, which is what makes the
detector "speeded up". The integral image ``I`` is padded with a zero row
and column so ``I[y2, x2] - I[y1, x2] - I[y2, x1] + I[y1, x1]`` sums the
half-open pixel window ``[y1, y2) x [x1, x2)``.
"""

from __future__ import annotations

import numpy as np

from repro.core.contracts import shaped


@shaped(image="(H,W)", out="(?,?) float64")
def integral_image(image: np.ndarray) -> np.ndarray:
    """Zero-padded cumulative-sum table of a grayscale image."""
    if image.ndim != 2:
        raise ValueError("integral_image expects a grayscale image")
    h, w = image.shape
    table = np.zeros((h + 1, w + 1), dtype=np.float64)
    table[1:, 1:] = image.astype(np.float64).cumsum(axis=0).cumsum(axis=1)
    return table


@shaped(images="(N,H,W)", out="(N,?,?) float64")
def integral_image_stack(images: np.ndarray) -> np.ndarray:
    """Integral tables for a whole ``(N, H, W)`` stack at once.

    The cumulative sums run along the last two axes, so each frame's
    lane is the exact sequence of additions :func:`integral_image`
    performs on that frame alone — row ``i`` of the stack is
    bit-identical to ``integral_image(images[i])``.
    """
    if images.ndim != 3:
        raise ValueError("integral_image_stack expects an (N, H, W) stack")
    n, h, w = images.shape
    tables = np.zeros((n, h + 1, w + 1), dtype=np.float64)
    tables[:, 1:, 1:] = (
        images.astype(np.float64).cumsum(axis=1).cumsum(axis=2)
    )
    return tables


def box_sum(table: np.ndarray, y1: int, x1: int, y2: int, x2: int) -> float:
    """Sum of pixels in the half-open window ``[y1, y2) x [x1, x2)``.

    Coordinates are clamped to the image, so partially out-of-bounds boxes
    return the sum of their in-bounds part (standard SURF border handling).
    """
    h, w = table.shape[0] - 1, table.shape[1] - 1
    y1 = min(max(y1, 0), h)
    y2 = min(max(y2, 0), h)
    x1 = min(max(x1, 0), w)
    x2 = min(max(x2, 0), w)
    if y2 <= y1 or x2 <= x1:
        return 0.0
    return float(table[y2, x2] - table[y1, x2] - table[y2, x1] + table[y1, x1])


def box_sum_grid(
    table: np.ndarray,
    ys: np.ndarray,
    xs: np.ndarray,
    dy1: int,
    dx1: int,
    dy2: int,
    dx2: int,
) -> np.ndarray:
    """Vectorized box sums for windows ``[y+dy1, y+dy2) x [x+dx1, x+dx2)``.

    ``ys``/``xs`` are broadcastable integer arrays of window anchor points.
    Out-of-bounds coordinates are clamped, matching :func:`box_sum`.

    Corners are fetched through flat indices into the raveled table —
    one integer gather per corner instead of tuple advanced indexing —
    which roughly halves the per-call cost for the descriptor-sized
    anchor grids SURF uses. The values gathered are identical.
    """
    h, w = table.shape[0] - 1, table.shape[1] - 1
    row = w + 1
    y1 = np.clip(ys + dy1, 0, h) * row
    y2 = np.clip(ys + dy2, 0, h) * row
    x1 = np.clip(xs + dx1, 0, w)
    x2 = np.clip(xs + dx2, 0, w)
    flat = table.ravel()
    return flat[y2 + x2] - flat[y1 + x2] - flat[y2 + x1] + flat[y1 + x1]


class DenseBoxSums:
    """Box sums anchored at *every* pixel, served by slicing alone.

    :func:`box_sum_grid` with full ``arange`` anchor grids spends its time
    gathering 4 fancy-indexed corner arrays per call. Anchored at every
    pixel, the clamped corner lookup ``table[clip(i + d, 0, h)]`` is just a
    shifted read of the table with edge replication — so padding the table
    once by ``margin`` with ``mode="edge"`` turns every subsequent box sum
    into four contiguous slice views and three subtractions. The fast-
    Hessian detector evaluates 10 box layouts per filter size on the same
    table; this class amortizes the single pad across all of them.

    Results are bit-identical to ``box_sum_grid(table, arange(h)[:, None],
    arange(w)[None, :], ...)`` — same corner values combined in the same
    order.

    Accepts a single ``(H+1, W+1)`` table or an ``(N, H+1, W+1)`` stack
    of tables: leading axes are carried through untouched (padding and
    corner slices act on the last two axes only), so each lane of a
    stacked box sum is bit-identical to the 2-D call on that lane.
    """

    def __init__(self, table: np.ndarray, margin: int):
        if margin < 0:
            raise ValueError("margin must be non-negative")
        if table.ndim < 2:
            raise ValueError("DenseBoxSums expects at least a 2-D table")
        self.h = table.shape[-2] - 1
        self.w = table.shape[-1] - 1
        self.margin = margin
        pad = [(0, 0)] * (table.ndim - 2) + [(margin, margin)] * 2
        self._padded = np.pad(table, pad, mode="edge")

    def _corner(self, dy: int, dx: int) -> np.ndarray:
        """View of ``table[..., clip(arange(h) + dy), clip(arange(w) + dx)]``."""
        if max(abs(dy), abs(dx)) > self.margin:
            raise ValueError(
                f"offset ({dy}, {dx}) exceeds padding margin {self.margin}"
            )
        y0 = self.margin + dy
        x0 = self.margin + dx
        return self._padded[..., y0 : y0 + self.h, x0 : x0 + self.w]

    def box(self, dy1: int, dx1: int, dy2: int, dx2: int) -> np.ndarray:
        """Sums of ``[y+dy1, y+dy2) x [x+dx1, x+dx2)`` for every pixel."""
        out = self._corner(dy2, dx2) - self._corner(dy1, dx2)
        out -= self._corner(dy2, dx1)
        out += self._corner(dy1, dx1)
        return out
