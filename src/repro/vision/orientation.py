"""SURF orientation assignment (full rotation invariance).

The pipeline's default descriptors are upright (U-SURF): phones are held
level during SRS/SWS, so in-plane rotation invariance is unnecessary and
skipping it halves the cost — exactly the trade the original SURF paper
recommends for that setting. This module supplies the full variant for
callers that need it (e.g. matching frames from a tilted source): the
dominant orientation is estimated from Haar responses in a circular
neighbourhood with the classic sliding 60-degree window, and descriptors
are computed on a rotated sampling grid.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from repro.vision.image import to_grayscale
from repro.vision.integral import box_sum_grid, integral_image
from repro.vision.surf import SurfFeature, detect_and_describe


def assign_orientation(
    table: np.ndarray, x: float, y: float, scale: float
) -> float:
    """Dominant gradient orientation at a keypoint (radians).

    Haar responses are sampled on a disc of radius ``6 * scale``, Gaussian
    weighted, and scanned with a sliding 60-degree window; the window with
    the largest summed response vector defines the orientation.
    """
    step = max(1, int(round(scale)))
    haar = max(1, int(round(2 * scale)))
    offsets = []
    for dy in range(-6, 7):
        for dx in range(-6, 7):
            if dx * dx + dy * dy <= 36:
                offsets.append((dy, dx))
    arr = np.array(offsets)
    sy = np.round(y + arr[:, 0] * step).astype(int)
    sx = np.round(x + arr[:, 1] * step).astype(int)

    left = box_sum_grid(table, sy, sx, -haar, -haar, haar, 0)
    right = box_sum_grid(table, sy, sx, -haar, 0, haar, haar)
    top = box_sum_grid(table, sy, sx, -haar, -haar, 0, haar)
    bottom = box_sum_grid(table, sy, sx, 0, -haar, haar, haar)
    dx = right - left
    dy = bottom - top
    weight = np.exp(-(arr[:, 0] ** 2 + arr[:, 1] ** 2) / (2 * 2.5**2))
    dx = dx * weight
    dy = dy * weight

    angles = np.arctan2(dy, dx)
    best_angle = 0.0
    best_norm = -1.0
    for window_start in np.linspace(-math.pi, math.pi, 36, endpoint=False):
        diff = np.angle(np.exp(1j * (angles - window_start)))
        in_window = (diff >= 0) & (diff < math.pi / 3.0)
        if not in_window.any():
            continue
        sum_x = float(dx[in_window].sum())
        sum_y = float(dy[in_window].sum())
        norm = math.hypot(sum_x, sum_y)
        if norm > best_norm:
            best_norm = norm
            best_angle = math.atan2(sum_y, sum_x)
    return best_angle


def _describe_rotated(
    table: np.ndarray, x: float, y: float, scale: float, angle: float
) -> np.ndarray:
    """64-d descriptor on a sampling grid rotated by ``angle``."""
    step = max(1, int(round(scale)))
    haar = max(1, int(round(scale)))
    grid = (np.arange(20) - 9.5) * step
    gx, gy = np.meshgrid(grid, grid)
    c, s = math.cos(angle), math.sin(angle)
    rx = c * gx - s * gy
    ry = s * gx + c * gy
    sy = np.round(y + ry).astype(int)
    sx = np.round(x + rx).astype(int)

    left = box_sum_grid(table, sy, sx, -haar, -haar, haar, 0)
    right = box_sum_grid(table, sy, sx, -haar, 0, haar, haar)
    top = box_sum_grid(table, sy, sx, -haar, -haar, 0, haar)
    bottom = box_sum_grid(table, sy, sx, 0, -haar, haar, haar)
    raw_dx = right - left
    raw_dy = bottom - top
    # Rotate the responses into the keypoint's frame.
    dx = c * raw_dx + s * raw_dy
    dy = -s * raw_dx + c * raw_dy

    sigma = 3.3 * scale
    g = np.exp(-0.5 * (grid / sigma) ** 2)
    weight = g[:, None] * g[None, :]
    dx = dx * weight
    dy = dy * weight

    # 4x4 subregions of 5x5 samples, all reduced at once (same block
    # layout as repro.vision.surf._describe_batch).
    dx_sub = dx.reshape(4, 5, 4, 5)
    dy_sub = dy.reshape(4, 5, 4, 5)
    parts = np.stack(
        [
            dx_sub.sum(axis=(1, 3)),
            dy_sub.sum(axis=(1, 3)),
            np.abs(dx_sub).sum(axis=(1, 3)),
            np.abs(dy_sub).sum(axis=(1, 3)),
        ],
        axis=-1,
    )  # (4, 4, 4): block row, block col, (dx, dy, |dx|, |dy|)
    descriptor = parts.reshape(64)
    norm = np.linalg.norm(descriptor)
    if norm > 0:
        descriptor /= norm
    return descriptor


def detect_and_describe_rotation_invariant(
    image: np.ndarray,
    threshold: float = 0.0001,
    max_features: int = 200,
) -> List[SurfFeature]:
    """Full SURF: detection + orientation assignment + rotated descriptors.

    Roughly 2x the cost of the upright variant; use only when the capture
    cannot be assumed level.
    """
    upright = detect_and_describe(
        image, threshold=threshold, max_features=max_features
    )
    if not upright:
        return []
    gray = to_grayscale(image)
    if gray.max() > 1.5:
        gray = gray / 255.0
    std = gray.std()
    if std > 1e-6:
        gray = (gray - gray.mean()) / (4.0 * std) + 0.5
    table = integral_image(gray)
    rotated: List[SurfFeature] = []
    for feature in upright:
        angle = assign_orientation(table, feature.x, feature.y, feature.scale)
        descriptor = _describe_rotated(
            table, feature.x, feature.y, feature.scale, angle
        )
        rotated.append(
            SurfFeature(
                x=feature.x, y=feature.y, scale=feature.scale,
                response=feature.response, descriptor=descriptor,
            )
        )
    return rotated
