"""Cylindrical 360-degree panorama composition.

The paper feeds overlapping SRS key-frames to AutoStitch. Offline we
composite the panorama ourselves: each key-frame carries the camera heading
recorded by the inertial track, so frames are warped onto a shared
cylindrical canvas indexed by azimuth and feather-blended in their overlap
regions. An optional NCC-based refinement nudges each frame's azimuth to
sub-gyro accuracy, mirroring AutoStitch's bundle-adjustment role at the
fidelity the layout generator needs (straight vertical structure and
continuous 360-degree coverage).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.vision.image import Frame, to_grayscale

TWO_PI = 2.0 * math.pi


@dataclass
class Panorama:
    """A stitched 360-degree cylindrical panorama.

    ``pixels`` is (H, W, 3); column ``c`` looks along azimuth
    ``azimuth_of_column(c)``. ``coverage`` holds per-column blend weight so
    callers can detect unfilled gaps.
    """

    pixels: np.ndarray
    coverage: np.ndarray
    #: Memoized grayscale plane; the layout estimator's evidence stages
    #: (boundary profile, corner detection) share one conversion.
    _gray_cache: Optional[np.ndarray] = field(
        default=None, repr=False, compare=False
    )

    @property
    def height(self) -> int:
        return int(self.pixels.shape[0])

    @property
    def width(self) -> int:
        return int(self.pixels.shape[1])

    def azimuth_of_column(self, column: int) -> float:
        """World azimuth (radians, CCW from +x) at panorama column."""
        return wrap_to_2pi(column / self.width * TWO_PI)

    def column_of_azimuth(self, azimuth: float) -> int:
        return int(wrap_to_2pi(azimuth) / TWO_PI * self.width) % self.width

    def gap_fraction(self) -> float:
        """Fraction of panorama columns with no contributing frame."""
        column_cover = self.coverage.max(axis=0)
        return float(np.count_nonzero(column_cover == 0) / self.width)

    def grayscale(self) -> np.ndarray:
        if self._gray_cache is None:
            self._gray_cache = to_grayscale(self.pixels)
        return self._gray_cache


def wrap_to_2pi(theta: float) -> float:
    """Wrap an angle into ``[0, 2*pi)``."""
    wrapped = math.fmod(theta, TWO_PI)
    if wrapped < 0:
        wrapped += TWO_PI
    return wrapped


def _refine_offset(
    canvas_gray: np.ndarray,
    canvas_weight: np.ndarray,
    frame_gray: np.ndarray,
    col_start: int,
    max_shift: int,
) -> int:
    """Column shift in [-max_shift, max_shift] maximizing overlap NCC.

    All candidate shifts are scored in one pass: the canvas band the
    shifts jointly touch is gathered once, every shift's window is a
    stride-tricks view into it, and the per-shift masked NCC comes from
    masked sums (sum, sum of squares, cross sum) instead of boolean
    gathers — the same statistic the per-shift loop computed, without
    materializing the overlap pixels per shift.
    """
    height, width = canvas_gray.shape
    fw = frame_gray.shape[1]
    n_shifts = 2 * max_shift + 1
    ext_cols = (np.arange(fw + 2 * max_shift) + col_start - max_shift) % width
    gray_ext = canvas_gray[:, ext_cols]
    mask_ext = (canvas_weight[:, ext_cols] > 0).astype(np.float64)
    # (height, n_shifts, fw): window j is the overlap at shift j - max_shift.
    windows = sliding_window_view(gray_ext, fw, axis=1)
    masks = sliding_window_view(mask_ext, fw, axis=1)

    n = masks.sum(axis=(0, 2))  # overlap pixel count per shift
    valid = n >= 0.05 * (height * fw)
    if not valid.any():
        return 0
    masked = windows * masks
    sum_a = masked.sum(axis=(0, 2))
    sum_aa = (masked * windows).sum(axis=(0, 2))
    sum_b = np.einsum("hw,hsw->s", frame_gray, masks)
    sum_bb = np.einsum("hw,hsw->s", frame_gray * frame_gray, masks)
    sum_ab = np.einsum("hw,hsw->s", frame_gray, masked)
    counts = np.maximum(n, 1.0)
    cov = sum_ab - sum_a * sum_b / counts
    var_a = np.maximum(sum_aa - sum_a * sum_a / counts, 0.0)
    var_b = np.maximum(sum_bb - sum_b * sum_b / counts, 0.0)
    denom = np.sqrt(var_a * var_b)
    scores = np.divide(
        cov, denom, out=np.zeros(n_shifts), where=denom > 0
    )
    scores[~valid] = -np.inf
    # argmax takes the first maximum, matching the loop's low-to-high
    # shift order on ties.
    return int(np.argmax(scores)) - max_shift


def stitch_cylindrical(
    frames: Sequence[Frame],
    horizontal_fov: float,
    panorama_width: int = 720,
    panorama_height: Optional[int] = None,
    refine: bool = True,
    max_refine_shift: int = 6,
) -> Panorama:
    """Composite frames onto a 360-degree cylindrical canvas.

    Each frame occupies the azimuth window ``heading ± horizontal_fov/2``;
    pixels are feather-blended (weight tapering toward the frame's left and
    right edges) so seams in overlap regions stay smooth. With ``refine``,
    every frame after the first is NCC-registered against the partially
    built canvas within ``±max_refine_shift`` columns to absorb small gyro
    heading errors.
    """
    if not frames:
        raise ValueError("cannot stitch an empty frame list")
    if not (0 < horizontal_fov < TWO_PI):
        raise ValueError("horizontal_fov must be in (0, 2*pi)")
    height = panorama_height or frames[0].height
    canvas = np.zeros((height, panorama_width, 3), dtype=np.float64)
    weight = np.zeros((height, panorama_width), dtype=np.float64)
    canvas_gray = np.zeros((height, panorama_width), dtype=np.float64)

    cols_per_radian = panorama_width / TWO_PI
    ordered = sorted(frames, key=lambda f: f.timestamp)

    for frame in ordered:
        pix = frame.pixels
        if pix.shape[0] != height:
            from repro.vision.image import resize_nearest

            new_w = max(1, int(round(pix.shape[1] * height / pix.shape[0])))
            pix = resize_nearest(pix, height, new_w)
        fh, fw = pix.shape[:2]
        frame_cols = max(2, int(round(horizontal_fov * cols_per_radian)))
        # Resample frame columns onto the canvas column pitch.
        src_cols = np.minimum(
            (np.arange(frame_cols) * fw / frame_cols).astype(int), fw - 1
        )
        resampled = pix[:, src_cols]
        # Camera looks along `heading`; image left edge shows heading+fov/2
        # (azimuth grows CCW while image x grows to the camera's right), so
        # the frame is flipped to lay onto the canvas in increasing azimuth,
        # anchored at the azimuth of its *right* edge (heading - fov/2).
        flipped = resampled[:, ::-1]
        gray = to_grayscale(flipped)
        anchor = int(round(wrap_to_2pi(frame.heading - horizontal_fov / 2.0)
                           * cols_per_radian))
        if refine and weight.any():
            shift = _refine_offset(canvas_gray, weight, gray, anchor,
                                   max_refine_shift)
        else:
            shift = 0
        # Feathering: triangular weight across the frame width.
        ramp = 1.0 - np.abs(np.linspace(-1.0, 1.0, frame_cols))
        ramp = np.maximum(ramp, 0.05)
        # The destination columns are a contiguous run modulo the canvas
        # width, so the blend works on plain slices (one segment, or two
        # when the run wraps past column 0) instead of fancy gathers.
        start = (anchor + shift) % panorama_width
        first_len = min(frame_cols, panorama_width - start)
        segments = [(start, 0, first_len)]
        if first_len < frame_cols:
            segments.append((0, first_len, frame_cols - first_len))
        for dst, src, length in segments:
            sl = slice(dst, dst + length)
            fr = slice(src, src + length)
            canvas[:, sl] += flipped[:, fr] * ramp[None, fr, None]
            weight[:, sl] += ramp[None, fr]
            weight_cols = weight[:, sl]
            blended = (
                canvas[:, sl] / np.maximum(weight_cols, 1e-12)[:, :, None]
            )
            blended_gray = to_grayscale(blended)
            canvas_gray[:, sl] = np.where(
                weight_cols > 0, blended_gray, canvas_gray[:, sl]
            )

    filled = weight > 0
    result = np.zeros_like(canvas)
    result[filled] = canvas[filled] / weight[filled][:, None]
    return Panorama(pixels=result, coverage=weight)


def select_panorama_frames(
    frames: Sequence[Frame],
    horizontal_fov: float,
    min_overlap: float = 0.15,
) -> List[Frame]:
    """Pick key-frames satisfying the paper's panorama criteria (Fig. 4).

    Greedy sweep over azimuth: starting from the frame with the smallest
    heading, repeatedly choose the next frame whose view overlaps the
    current one by at least ``min_overlap`` of the FOV while extending
    coverage the furthest. Returns the selected subset (possibly all
    frames); callers should check 360-degree closure via
    :func:`covers_full_circle`.
    """
    if not frames:
        return []
    ordered = sorted(frames, key=lambda f: wrap_to_2pi(f.heading))
    selected = [ordered[0]]
    coverage_end = wrap_to_2pi(ordered[0].heading) + horizontal_fov / 2.0
    total_sweep = horizontal_fov
    idx = 1
    n = len(ordered)
    while total_sweep < TWO_PI and idx < 2 * n:
        frame = ordered[idx % n]
        center = wrap_to_2pi(frame.heading)
        if idx >= n:
            center += TWO_PI
        left = center - horizontal_fov / 2.0
        right = center + horizontal_fov / 2.0
        overlap = coverage_end - left
        if overlap >= min_overlap * horizontal_fov and right > coverage_end:
            selected.append(frame)
            total_sweep += right - coverage_end
            coverage_end = right
        idx += 1
    return selected


def covers_full_circle(
    frames: Sequence[Frame], horizontal_fov: float, min_overlap: float = 0.0
) -> bool:
    """True when the frames' view windows jointly cover all 360 degrees.

    Checks the paper's two panorama-candidate conditions: adjacent selected
    key-frames overlap (by at least ``min_overlap`` of the FOV) and the
    union of viewing angles covers the full circle.
    """
    if not frames:
        return False
    half = horizontal_fov / 2.0
    intervals = sorted(
        (wrap_to_2pi(f.heading) - half, wrap_to_2pi(f.heading) + half)
        for f in frames
    )
    required_gap = -min_overlap * horizontal_fov
    # Unroll the circle: append the first interval shifted by 2*pi.
    first = intervals[0]
    intervals.append((first[0] + TWO_PI, first[1] + TWO_PI))
    reach = intervals[0][1]
    for left, right in intervals[1:]:
        if left - reach > required_gap + 1e-9:
            return False
        reach = max(reach, right)
        if reach >= intervals[0][0] + TWO_PI:
            return True
    return reach >= intervals[0][0] + TWO_PI
