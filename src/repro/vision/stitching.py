"""Cylindrical 360-degree panorama composition.

The paper feeds overlapping SRS key-frames to AutoStitch. Offline we
composite the panorama ourselves: each key-frame carries the camera heading
recorded by the inertial track, so frames are warped onto a shared
cylindrical canvas indexed by azimuth and feather-blended in their overlap
regions. An optional NCC-based refinement nudges each frame's azimuth to
sub-gyro accuracy, mirroring AutoStitch's bundle-adjustment role at the
fidelity the layout generator needs (straight vertical structure and
continuous 360-degree coverage).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.vision.image import Frame, to_grayscale

TWO_PI = 2.0 * math.pi


@dataclass
class Panorama:
    """A stitched 360-degree cylindrical panorama.

    ``pixels`` is (H, W, 3); column ``c`` looks along azimuth
    ``azimuth_of_column(c)``. ``coverage`` holds per-column blend weight so
    callers can detect unfilled gaps.
    """

    pixels: np.ndarray
    coverage: np.ndarray

    @property
    def height(self) -> int:
        return int(self.pixels.shape[0])

    @property
    def width(self) -> int:
        return int(self.pixels.shape[1])

    def azimuth_of_column(self, column: int) -> float:
        """World azimuth (radians, CCW from +x) at panorama column."""
        return wrap_to_2pi(column / self.width * TWO_PI)

    def column_of_azimuth(self, azimuth: float) -> int:
        return int(wrap_to_2pi(azimuth) / TWO_PI * self.width) % self.width

    def gap_fraction(self) -> float:
        """Fraction of panorama columns with no contributing frame."""
        column_cover = self.coverage.max(axis=0)
        return float(np.count_nonzero(column_cover == 0) / self.width)

    def grayscale(self) -> np.ndarray:
        return to_grayscale(self.pixels)


def wrap_to_2pi(theta: float) -> float:
    """Wrap an angle into ``[0, 2*pi)``."""
    wrapped = math.fmod(theta, TWO_PI)
    if wrapped < 0:
        wrapped += TWO_PI
    return wrapped


def _refine_offset(
    canvas_gray: np.ndarray,
    canvas_weight: np.ndarray,
    frame_gray: np.ndarray,
    col_start: int,
    max_shift: int,
) -> int:
    """Column shift in [-max_shift, max_shift] maximizing overlap NCC."""
    height, width = canvas_gray.shape
    fw = frame_gray.shape[1]
    best_shift, best_score = 0, -2.0
    for shift in range(-max_shift, max_shift + 1):
        cols = (np.arange(fw) + col_start + shift) % width
        existing = canvas_weight[:, cols] > 0
        if existing.sum() < 0.05 * existing.size:
            continue
        a = canvas_gray[:, cols][existing]
        b = frame_gray[existing]
        a = a - a.mean()
        b = b - b.mean()
        denom = np.sqrt((a * a).sum() * (b * b).sum())
        score = float((a * b).sum() / denom) if denom > 0 else 0.0
        if score > best_score:
            best_score, best_shift = score, shift
    return best_shift


def stitch_cylindrical(
    frames: Sequence[Frame],
    horizontal_fov: float,
    panorama_width: int = 720,
    panorama_height: Optional[int] = None,
    refine: bool = True,
    max_refine_shift: int = 6,
) -> Panorama:
    """Composite frames onto a 360-degree cylindrical canvas.

    Each frame occupies the azimuth window ``heading ± horizontal_fov/2``;
    pixels are feather-blended (weight tapering toward the frame's left and
    right edges) so seams in overlap regions stay smooth. With ``refine``,
    every frame after the first is NCC-registered against the partially
    built canvas within ``±max_refine_shift`` columns to absorb small gyro
    heading errors.
    """
    if not frames:
        raise ValueError("cannot stitch an empty frame list")
    if not (0 < horizontal_fov < TWO_PI):
        raise ValueError("horizontal_fov must be in (0, 2*pi)")
    height = panorama_height or frames[0].height
    canvas = np.zeros((height, panorama_width, 3), dtype=np.float64)
    weight = np.zeros((height, panorama_width), dtype=np.float64)
    canvas_gray = np.zeros((height, panorama_width), dtype=np.float64)

    cols_per_radian = panorama_width / TWO_PI
    ordered = sorted(frames, key=lambda f: f.timestamp)

    for frame in ordered:
        pix = frame.pixels
        if pix.shape[0] != height:
            from repro.vision.image import resize_nearest

            new_w = max(1, int(round(pix.shape[1] * height / pix.shape[0])))
            pix = resize_nearest(pix, height, new_w)
        fh, fw = pix.shape[:2]
        frame_cols = max(2, int(round(horizontal_fov * cols_per_radian)))
        # Resample frame columns onto the canvas column pitch.
        src_cols = np.minimum(
            (np.arange(frame_cols) * fw / frame_cols).astype(int), fw - 1
        )
        resampled = pix[:, src_cols]
        # Camera looks along `heading`; image left edge shows heading+fov/2
        # (azimuth grows CCW while image x grows to the camera's right), so
        # the frame is flipped to lay onto the canvas in increasing azimuth,
        # anchored at the azimuth of its *right* edge (heading - fov/2).
        flipped = resampled[:, ::-1]
        gray = to_grayscale(flipped)
        anchor = int(round(wrap_to_2pi(frame.heading - horizontal_fov / 2.0)
                           * cols_per_radian))
        if refine and weight.any():
            shift = _refine_offset(canvas_gray, weight, gray, anchor,
                                   max_refine_shift)
        else:
            shift = 0
        cols = (np.arange(frame_cols) + anchor + shift) % panorama_width
        # Feathering: triangular weight across the frame width.
        ramp = 1.0 - np.abs(np.linspace(-1.0, 1.0, frame_cols))
        ramp = np.maximum(ramp, 0.05)
        canvas[:, cols] += flipped * ramp[None, :, None]
        weight[:, cols] += ramp[None, :]
        nz = weight[:, cols] > 0
        blended = canvas[:, cols] / np.maximum(weight[:, cols], 1e-12)[:, :, None]
        blended_gray = to_grayscale(blended)
        canvas_gray[:, cols] = np.where(nz, blended_gray, canvas_gray[:, cols])

    filled = weight > 0
    result = np.zeros_like(canvas)
    result[filled] = canvas[filled] / weight[filled][:, None]
    return Panorama(pixels=result, coverage=weight)


def select_panorama_frames(
    frames: Sequence[Frame],
    horizontal_fov: float,
    min_overlap: float = 0.15,
) -> List[Frame]:
    """Pick key-frames satisfying the paper's panorama criteria (Fig. 4).

    Greedy sweep over azimuth: starting from the frame with the smallest
    heading, repeatedly choose the next frame whose view overlaps the
    current one by at least ``min_overlap`` of the FOV while extending
    coverage the furthest. Returns the selected subset (possibly all
    frames); callers should check 360-degree closure via
    :func:`covers_full_circle`.
    """
    if not frames:
        return []
    ordered = sorted(frames, key=lambda f: wrap_to_2pi(f.heading))
    selected = [ordered[0]]
    coverage_end = wrap_to_2pi(ordered[0].heading) + horizontal_fov / 2.0
    total_sweep = horizontal_fov
    idx = 1
    n = len(ordered)
    while total_sweep < TWO_PI and idx < 2 * n:
        frame = ordered[idx % n]
        center = wrap_to_2pi(frame.heading)
        if idx >= n:
            center += TWO_PI
        left = center - horizontal_fov / 2.0
        right = center + horizontal_fov / 2.0
        overlap = coverage_end - left
        if overlap >= min_overlap * horizontal_fov and right > coverage_end:
            selected.append(frame)
            total_sweep += right - coverage_end
            coverage_end = right
        idx += 1
    return selected


def covers_full_circle(
    frames: Sequence[Frame], horizontal_fov: float, min_overlap: float = 0.0
) -> bool:
    """True when the frames' view windows jointly cover all 360 degrees.

    Checks the paper's two panorama-candidate conditions: adjacent selected
    key-frames overlap (by at least ``min_overlap`` of the FOV) and the
    union of viewing angles covers the full circle.
    """
    if not frames:
        return False
    half = horizontal_fov / 2.0
    intervals = sorted(
        (wrap_to_2pi(f.heading) - half, wrap_to_2pi(f.heading) + half)
        for f in frames
    )
    required_gap = -min_overlap * horizontal_fov
    # Unroll the circle: append the first interval shifted by 2*pi.
    first = intervals[0]
    intervals.append((first[0] + TWO_PI, first[1] + TWO_PI))
    reach = intervals[0][1]
    for left, right in intervals[1:]:
        if left - reach > required_gap + 1e-9:
            return False
        reach = max(reach, right)
        if reach >= intervals[0][0] + TWO_PI:
            return True
    return reach >= intervals[0][0] + TWO_PI
