"""Single-image trajectory aggregation baseline (paper Fig. 7a).

Merges two trajectories as soon as *one* key-frame pair matches, using that
single anchor's transform — no sequence consistency, no LCSS validation.
The paper's finding: "when the number of user trajectories data reaches
above 65, the accuracy of single image aggregation method actually
decreases... indoor scenes in the same floor have a high similarity.
Hence, using single image only as an anchor point is insufficient and
leads to errors." This baseline exists to reproduce exactly that failure.
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.aggregation import (
    AggregationResult,
    AnchoredTrajectory,
    MergeCandidate,
)
from repro.core.comparison import KeyframeComparator
from repro.core.config import CrowdMapConfig
from repro.geometry.primitives import Transform2D, wrap_angle


class SingleImageAggregator:
    """Merge-on-first-matching-key-frame aggregation."""

    def __init__(
        self,
        config: Optional[CrowdMapConfig] = None,
        comparator: Optional[KeyframeComparator] = None,
        mapper: Optional[Callable[..., Iterable]] = None,
    ):
        self.config = config or CrowdMapConfig()
        self.comparator = comparator or KeyframeComparator(self.config)
        # Pair scoring is embarrassingly parallel; callers that want the
        # backend worker pool inject ``map_parallel`` here. Defaulting to
        # serial map keeps this baseline free of any upward dependency on
        # repro.backend (layering contract CM010) — and on pure-Python
        # scoring the thread backend was serial-equivalent anyway.
        self._map = mapper or (lambda fn, items, **_kw: [fn(x) for x in items])

    def score_pair(
        self,
        a: AnchoredTrajectory,
        b: AnchoredTrajectory,
        index_a: int = 0,
        index_b: int = 1,
    ) -> MergeCandidate:
        """Merge decision from the single best-matching key-frame pair."""
        best: Optional[Tuple[float, int, int]] = None
        for i, kf_a in enumerate(a.keyframes):
            for j, kf_b in enumerate(b.keyframes):
                result = self.comparator.compare(kf_a, kf_b)
                if result.matched and (best is None or result.s2 > best[0]):
                    best = (result.s2, i, j)
        if best is None:
            return MergeCandidate(
                index_a=index_a, index_b=index_b, s3=0.0,
                transform=Transform2D.identity(),
                n_anchor_matches=0, mergeable=False,
            )
        s2, i, j = best
        interval = self.config.resample_interval
        src = b.anchor_point(b.keyframes[j], interval)
        dst = a.anchor_point(a.keyframes[i], interval)
        rotation = wrap_angle(a.keyframes[i].heading - b.keyframes[j].heading)
        c, s = math.cos(rotation), math.sin(rotation)
        rotated = np.array(
            [c * src[0] - s * src[1], s * src[0] + c * src[1]]
        )
        transform = Transform2D(
            rotation, float(dst[0] - rotated[0]), float(dst[1] - rotated[1])
        )
        # Same geo-prior gate the sequence aggregator applies, so the
        # Fig. 7a comparison isolates the sequence-vs-single difference.
        if b.trajectory.points:
            from repro.geometry.primitives import Point

            origin_b = Point(b.trajectory.points[0].x, b.trajectory.points[0].y)
            if transform.apply(origin_b).distance_to(origin_b) > \
                    self.config.max_geo_displacement:
                return MergeCandidate(
                    index_a=index_a, index_b=index_b, s3=0.0,
                    transform=Transform2D.identity(),
                    n_anchor_matches=1, mergeable=False,
                )
        return MergeCandidate(
            index_a=index_a, index_b=index_b, s3=s2,
            transform=transform, n_anchor_matches=1, mergeable=True,
        )

    def aggregate(
        self, anchored: Sequence[AnchoredTrajectory]
    ) -> AggregationResult:
        """Pairwise single-anchor merging with spanning-tree registration.

        Structurally identical to
        :meth:`repro.core.aggregation.SequenceAggregator.aggregate` so the
        two methods are directly comparable in Fig. 7a.
        """
        n = len(anchored)
        pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
        candidates = self._map(
            lambda ij: self.score_pair(anchored[ij[0]], anchored[ij[1]], *ij),
            pairs,
            max_workers=self.config.n_workers,
        )
        adjacency = {i: [] for i in range(n)}
        for cand in candidates:
            if not cand.mergeable:
                continue
            adjacency[cand.index_a].append((cand.index_b, cand.transform))
            adjacency[cand.index_b].append(
                (cand.index_a, cand.transform.inverse())
            )
        transforms: List[Optional[Transform2D]] = [None] * n
        components: List[List[int]] = []
        for root in range(n):
            if transforms[root] is not None:
                continue
            component = [root]
            transforms[root] = Transform2D.identity()
            frontier = [root]
            while frontier:
                node = frontier.pop()
                for neighbour, edge in adjacency[node]:
                    if transforms[neighbour] is None:
                        transforms[neighbour] = transforms[node].compose(edge)
                        component.append(neighbour)
                        frontier.append(neighbour)
            components.append(sorted(component))
        moved = []
        for i, anc in enumerate(anchored):
            t = transforms[i] or Transform2D.identity()
            moved.append(anc.trajectory.transformed(t.theta, t.tx, t.ty))
        return AggregationResult(
            trajectories=moved,
            transforms=[t or Transform2D.identity() for t in transforms],
            candidates=list(candidates),
            components=components,
        )
