"""Structure-from-Motion camera tracking simulation (paper Fig. 9).

The paper argues SfM is unreliable for crowdsourced indoor imagery: "the
state-of-the-art Structure-from-Motion technique is not reliable when used
in a highly cluttered and featureless indoor environment" — camera poses
come out wrong unless participants are trained photographers.

We exercise that claim on real pixels: a visual-odometry SfM front end
(SURF matching between consecutive frames, yaw increments from the median
horizontal feature displacement) tracks the camera through a rendered
sequence. On richly textured walls it recovers the rotation track well; as
wall ``richness`` drops toward zero, matches dry up or turn spurious and
the recovered track collapses — reproducing Fig. 9's failure mode with the
actual feature pipeline rather than a noise model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.config import CrowdMapConfig
from repro.vision.image import Frame
from repro.vision.matching import match_descriptors, matched_point_pairs
from repro.vision.surf import detect_and_describe
from repro.world.renderer import Camera


@dataclass
class SfmTrackResult:
    """Recovered camera track and its registration quality."""

    estimated_headings: np.ndarray  # per frame, radians (first = truth)
    true_headings: np.ndarray
    registered: np.ndarray  # bool per frame transition: enough inliers?

    @property
    def registration_rate(self) -> float:
        """Fraction of frame transitions with a usable match set."""
        if self.registered.size == 0:
            return 0.0
        return float(self.registered.mean())

    def heading_rmse(self) -> float:
        """RMSE (radians) of the recovered heading track."""
        err = self.estimated_headings - self.true_headings
        return float(np.sqrt(np.mean(err**2)))

    def max_heading_error(self) -> float:
        return float(np.max(np.abs(self.estimated_headings - self.true_headings)))


class SfmSimulator:
    """SURF-based visual odometry over a rendered frame sequence."""

    def __init__(
        self,
        camera: Optional[Camera] = None,
        config: Optional[CrowdMapConfig] = None,
        min_inlier_matches: int = 8,
    ):
        self.camera = camera or Camera()
        self.config = config or CrowdMapConfig()
        self.min_inlier_matches = min_inlier_matches

    def _relative_yaw(self, frame_a: Frame, frame_b: Frame) -> Optional[float]:
        """Yaw increment between consecutive frames, or None if unregistered.

        A pure-rotation camera shifts all features horizontally by
        ``focal * tan(dyaw)``; the median horizontal displacement of
        mutually matched SURF features (with a coherence check) recovers
        the rotation. Too few coherent matches means the frame pair cannot
        be registered — SfM loses the camera.
        """
        feats_a = detect_and_describe(
            frame_a.pixels,
            threshold=self.config.surf_response_threshold,
            max_features=self.config.surf_max_features,
        )
        feats_b = detect_and_describe(
            frame_b.pixels,
            threshold=self.config.surf_response_threshold,
            max_features=self.config.surf_max_features,
        )
        result = match_descriptors(
            feats_a, feats_b,
            distance_threshold=self.config.surf_distance_threshold,
        )
        pts_a, pts_b = matched_point_pairs(feats_a, feats_b, result)
        if len(pts_a) < self.min_inlier_matches:
            return None
        dx = pts_b[:, 0] - pts_a[:, 0]
        median_dx = float(np.median(dx))
        coherent = np.abs(dx - median_dx) < 6.0
        if int(coherent.sum()) < self.min_inlier_matches:
            return None
        shift = float(np.median(dx[coherent]))
        # Image x grows to the camera's right; a CCW rotation moves
        # features right, so yaw increment has the same sign as the shift.
        return math.atan2(shift, self.camera.focal_px)

    def track(self, frames: Sequence[Frame], true_headings: Sequence[float]) -> SfmTrackResult:
        """Recover the camera heading track along a frame sequence.

        Starts from the true initial heading (SfM fixes gauge freedom with
        the first camera); unregistered transitions propagate the previous
        estimate (zero rotation), which is how the drift blows up in
        featureless scenes.
        """
        if len(frames) != len(true_headings):
            raise ValueError("need one true heading per frame")
        if not frames:
            return SfmTrackResult(
                estimated_headings=np.empty(0),
                true_headings=np.empty(0),
                registered=np.empty(0, dtype=bool),
            )
        true_arr = np.unwrap(np.asarray(true_headings, dtype=np.float64))
        estimates = [float(true_arr[0])]
        registered: List[bool] = []
        for a, b in zip(frames[:-1], frames[1:]):
            dyaw = self._relative_yaw(a, b)
            if dyaw is None:
                registered.append(False)
                estimates.append(estimates[-1])
            else:
                registered.append(True)
                estimates.append(estimates[-1] + dyaw)
        return SfmTrackResult(
            estimated_headings=np.array(estimates),
            true_headings=true_arr,
            registered=np.array(registered, dtype=bool),
        )
