"""Inertial-only room layout baseline (CrowdInside-style, Fig. 8a/8b).

Sensor-only systems infer a room's shape from the user's motion trace
inside it: walk around, dead-reckon, and take the trace's extent as the
room. Two error sources make this much worse than the visual method, both
simulated here:

- **inaccessible edges**: furniture blocks the walls, so the trace never
  reaches the true extents ("the edge of an indoor scene is usually
  blocked by furniture or other objects") — a per-wall accessibility
  margin shrinks the wanderable area;
- **dead-reckoning drift**: stride-length error and heading drift distort
  the trace the estimate is built from.
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from repro.core.room_layout import RoomLayout
from repro.geometry.primitives import Point
from repro.sensors.dead_reckoning import DeadReckoningConfig, dead_reckon
from repro.sensors.imu import ImuSimulator
from repro.sensors.trajectory import Trajectory
from repro.world.floorplan_model import Room
from repro.world.walker import GroundTruthMotion

_GT_RATE = 20.0


def generate_room_wander(
    room: Room,
    rng: np.random.Generator,
    n_waypoints: int = 25,
    base_margin: float = 0.2,
    furniture_margin: float = 0.5,
    furniture_walls: int = 1,
    walking_speed: float = 1.0,
    step_length: float = 0.7,
) -> GroundTruthMotion:
    """Ground-truth motion of a user wandering a room's accessible area.

    ``furniture_walls`` of the four walls get an extra inaccessible margin
    (desks, shelves), so the wander never observes those extents.
    """
    bb = room.bounding_box()
    margins = np.full(4, base_margin)  # W, E, S, N
    blocked = rng.choice(4, size=min(furniture_walls, 4), replace=False)
    margins[blocked] += furniture_margin
    lo_x, hi_x = bb.min_x + margins[0], bb.max_x - margins[1]
    lo_y, hi_y = bb.min_y + margins[2], bb.max_y - margins[3]
    if lo_x >= hi_x or lo_y >= hi_y:
        lo_x = hi_x = (bb.min_x + bb.max_x) / 2.0
        lo_y = hi_y = (bb.min_y + bb.max_y) / 2.0
    waypoints = [
        Point(float(rng.uniform(lo_x, hi_x)), float(rng.uniform(lo_y, hi_y)))
        for _ in range(max(2, n_waypoints))
    ]

    times: List[float] = [0.0]
    xs: List[float] = [waypoints[0].x]
    ys: List[float] = [waypoints[0].y]
    headings: List[float] = [0.0]
    step_times: List[float] = []
    t = 0.0
    for a, b in zip(waypoints[:-1], waypoints[1:]):
        dist = a.distance_to(b)
        if dist < 1e-6:
            continue
        heading = math.atan2(b.y - a.y, b.x - a.x)
        leg_time = dist / walking_speed
        n_samples = max(2, int(leg_time * _GT_RATE))
        for k in range(1, n_samples + 1):
            frac = k / n_samples
            times.append(t + frac * leg_time)
            xs.append(a.x + frac * (b.x - a.x))
            ys.append(a.y + frac * (b.y - a.y))
            headings.append(heading)
        step_period = step_length / walking_speed
        step_times.extend(
            np.arange(t + step_period / 2.0, t + leg_time, step_period)
        )
        t += leg_time
    return GroundTruthMotion(
        times=np.array(times),
        positions=np.stack([xs, ys], axis=1),
        headings=np.array(headings),
        step_times=[float(s) for s in step_times],
    )


class InertialRoomEstimator:
    """Room layout from a dead-reckoned wander trace."""

    def __init__(self, rng: Optional[np.random.Generator] = None):
        # Seeded fallback (CM001) so baseline numbers are reproducible.
        self.rng = rng if rng is not None else np.random.default_rng(0)

    def trace_from_motion(self, motion: GroundTruthMotion) -> Trajectory:
        """Dead-reckon the wander through a simulated IMU."""
        sim = ImuSimulator(rng=self.rng)
        imu = sim.record(
            motion.times, motion.positions, motion.headings, motion.step_times
        )
        return dead_reckon(
            imu,
            DeadReckoningConfig(),
            origin=(float(motion.positions[0][0]), float(motion.positions[0][1])),
            initial_heading=float(motion.headings[0]),
        )

    @staticmethod
    def layout_from_trace(trace: Trajectory) -> RoomLayout:
        """Oriented bounding rectangle (PCA) of the trace points.

        The trace can only cover the accessible interior, so the rectangle
        systematically underestimates the true room; drift adds noise on
        top.
        """
        pts = trace.as_array()
        if len(pts) < 3:
            raise ValueError("wander trace too short to fit a room")
        centroid = pts.mean(axis=0)
        centered = pts - centroid
        cov = centered.T @ centered / len(pts)
        eigvals, eigvecs = np.linalg.eigh(cov)
        major = eigvecs[:, int(np.argmax(eigvals))]
        theta = math.atan2(major[1], major[0]) % math.pi
        c, s = math.cos(theta), math.sin(theta)
        along = centered @ np.array([c, s])
        across = centered @ np.array([-s, c])
        width = float(along.max() - along.min())
        depth = float(across.max() - across.min())
        return RoomLayout(
            center=Point(float(centroid[0]), float(centroid[1])),
            width=max(width, 0.1),
            depth=max(depth, 0.1),
            orientation=theta,
            consistency=0.0,
        )

    def estimate(self, room: Room, **wander_kwargs) -> RoomLayout:
        """Full baseline: wander the room, dead-reckon, fit the rectangle."""
        motion = generate_room_wander(room, self.rng, **wander_kwargs)
        trace = self.trace_from_motion(motion)
        return self.layout_from_trace(trace)
