"""Jigsaw-style room layout baseline.

Jigsaw (MobiCom 2014) photographs landmarks — notably room entrances — and
recovers wall *segments* near them from imagery, but "still uses aggregated
user motion trace and camera position to determine the shape of the room".
This baseline models that hybrid: the wall containing the door is known
accurately (image-derived), while the remaining extents come from the
inertial wander trace. It sits between the pure-inertial baseline and
CrowdMap's full-visual method, as it does in the paper's Fig. 8 narrative.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.inertial_only import InertialRoomEstimator, generate_room_wander
from repro.core.room_layout import RoomLayout
from repro.geometry.primitives import Point
from repro.world.floorplan_model import Room


class JigsawRoomEstimator:
    """Inertial wander trace + one image-derived wall line."""

    def __init__(self, rng: Optional[np.random.Generator] = None,
                 door_wall_noise: float = 0.12):
        # Seeded fallback (CM001) so baseline numbers are reproducible.
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self._inertial = InertialRoomEstimator(rng=self.rng)
        #: Residual error (m) of the image-derived door-wall position.
        self.door_wall_noise = door_wall_noise

    def estimate(self, room: Room, **wander_kwargs) -> RoomLayout:
        """Wander trace for the extents; exact door wall from imagery."""
        motion = generate_room_wander(room, self.rng, **wander_kwargs)
        trace = self._inertial.trace_from_motion(motion)
        pts = trace.as_array()
        bb = room.bounding_box()
        # The image-derived wall ordinate (with small measurement noise).
        noise = float(self.rng.normal(0.0, self.door_wall_noise))
        wall = room.door.wall
        min_x, max_x = pts[:, 0].min(), pts[:, 0].max()
        min_y, max_y = pts[:, 1].min(), pts[:, 1].max()
        if wall == "S":
            min_y = bb.min_y + noise
        elif wall == "N":
            max_y = bb.max_y + noise
        elif wall == "W":
            min_x = bb.min_x + noise
        else:
            max_x = bb.max_x + noise
        width = max(float(max_x - min_x), 0.1)
        depth = max(float(max_y - min_y), 0.1)
        return RoomLayout(
            center=Point((min_x + max_x) / 2.0, (min_y + max_y) / 2.0),
            width=width,
            depth=depth,
            orientation=0.0,
            consistency=0.0,
        )
