"""Baselines the paper compares against.

- :mod:`repro.baselines.single_image` — single-image anchor aggregation
  (the Fig. 7a comparator that degrades at high trajectory counts);
- :mod:`repro.baselines.inertial_only` — CrowdInside-style room layout
  from user motion traces alone (the Fig. 8a/8b comparator);
- :mod:`repro.baselines.jigsaw` — Jigsaw-style hybrid: motion traces plus
  a single image-derived wall segment at the room entrance;
- :mod:`repro.baselines.sfm` — Structure-from-Motion visual odometry whose
  reliability collapses in featureless indoor scenes (Fig. 9).
"""

from repro.baselines.single_image import SingleImageAggregator
from repro.baselines.inertial_only import (
    InertialRoomEstimator,
    generate_room_wander,
)
from repro.baselines.jigsaw import JigsawRoomEstimator
from repro.baselines.sfm import SfmSimulator, SfmTrackResult

__all__ = [
    "SingleImageAggregator",
    "InertialRoomEstimator",
    "generate_room_wander",
    "JigsawRoomEstimator",
    "SfmSimulator",
    "SfmTrackResult",
]
