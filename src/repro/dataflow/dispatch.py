"""Size-dispatched convolution: FFT vs direct, chosen by a cost model.

The vision kernels convolve directly (windowed contraction or per-tap
accumulation) because at the pipeline's usual sizes — 13-tap separable
Gaussians on 192x160 frames — direct wins and is bit-reproducible. But
direct cost grows linearly with tap count while FFT cost is (almost)
size-independent, so large kernels cross over. This module holds the
crossover model and the FFT implementations.

FFT convolution is **not bit-exact** versus direct (different summation
order), so the planner only routes through the dispatcher in
``CROWDMAP_PLANNER=aggressive`` mode; the default planner mode never
calls it. Values match direct convolution to ~1e-12 relative — well
inside the accuracy gate's tolerance bands — and both FFT paths pad with
the same reflect boundary as their direct counterparts, so outputs are
shape- and boundary-compatible.

The crossover constants were measured on the bench box (see
EXPERIMENTS.md): direct separable blur costs ~2k multiply-adds per pixel
for a k-tap kernel, dense direct costs ``kh*kw``, and the padded 2-D
real FFT round-trip costs roughly ``C * log2(area)`` per pixel with
``C ~ 6``. The model only has to get the *ordering* right near the
crossover; mispredicting by a few taps costs microseconds, not
correctness.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Tuple

import numpy as np
from scipy.fft import next_fast_len

from repro.vision.filters import (
    _reflect_pad,
    convolve2d,
    gaussian_blur_stack,
    gaussian_kernel_1d,
)

#: Per-pixel cost multiplier of one padded rfft2+irfft2 round trip,
#: relative to one fused multiply-add of the direct path. Measured, not
#: derived; biased high so the dispatcher only leaves the bit-stable
#: direct path when FFT wins clearly.
_FFT_COST_FACTOR = 6.0

#: The separable direct path streams two 1-D passes through BLAS-shaped
#: contractions, so its effective per-tap cost is below a dense
#: multiply-add; the smaller factor still lands the crossover near the
#: measured one (~37 taps on 192x160 frames — FFT wins from sigma ~6).
_SEPARABLE_FFT_COST_FACTOR = 5.0


def _fft_cost(h: int, w: int, factor: float) -> float:
    """Modeled per-pixel cost of FFT convolution on an ``(h, w)`` image."""
    area = float(max(h * w, 2))
    return factor * np.log2(area)


def choose_separable(sigma: float, shape: Tuple[int, ...]) -> str:
    """``"direct"`` or ``"fft"`` for a separable Gaussian of ``sigma``.

    Direct separable filtering costs ``2k`` multiply-adds per pixel for a
    ``k``-tap kernel (one horizontal + one vertical pass); FFT costs
    ``~C*log2(HW)`` regardless of ``k``.
    """
    k = gaussian_kernel_1d(sigma).size
    h, w = shape[-2], shape[-1]
    cost = _fft_cost(h, w, _SEPARABLE_FFT_COST_FACTOR)
    return "fft" if 2.0 * k > cost else "direct"


def choose_dense(kernel_shape: Tuple[int, int], shape: Tuple[int, ...]) -> str:
    """``"direct"`` or ``"fft"`` for a dense 2-D kernel."""
    kh, kw = kernel_shape
    h, w = shape[-2], shape[-1]
    cost = _fft_cost(h, w, _FFT_COST_FACTOR)
    return "fft" if float(kh * kw) > cost else "direct"


@lru_cache(maxsize=64)
def _kernel_spectrum(
    key: Tuple[str, float, int, int, int, int]
) -> np.ndarray:
    """Cached rfft2 of a kernel zero-padded to the FFT size.

    ``key`` is (kind, param, kh, kw, fft_h, fft_w) where kind/param
    reconstruct the kernel deterministically — caching the spectrum, not
    the kernel, because the transform is the expensive part.
    """
    kind, param, kh, kw, fft_h, fft_w = key
    if kind == "gauss":
        k1 = gaussian_kernel_1d(param)
        kernel = np.outer(k1, k1)
    else:  # pragma: no cover - dense kernels pass their spectrum directly
        raise ValueError(f"unknown cached kernel kind {kind!r}")
    padded = np.zeros((fft_h, fft_w), dtype=np.float64)
    padded[:kh, :kw] = kernel
    return np.fft.rfft2(padded)


def _fft_convolve_padded(
    padded: np.ndarray, spectrum: np.ndarray, out_h: int, out_w: int,
    kh: int, kw: int,
) -> np.ndarray:
    """Linear convolution of reflect-padded input via the padded spectrum.

    ``padded`` is the reflect-padded image (stack), already grown by the
    kernel radius on each side; the full linear convolution is computed
    on the zero-extended FFT grid and the central ``(out_h, out_w)``
    window — the same window direct convolution produces — is returned.
    FFT sizes round up to the next fast (smooth-radix) length so the
    transform never lands on a slow prime-factor grid.
    """
    fft_h = next_fast_len(padded.shape[-2] + kh - 1)
    fft_w = next_fast_len(padded.shape[-1] + kw - 1)
    spec = np.fft.rfft2(padded, s=(fft_h, fft_w))
    conv = np.fft.irfft2(spec * spectrum, s=(fft_h, fft_w))
    top = kh - 1
    left = kw - 1
    return np.ascontiguousarray(
        conv[..., top : top + out_h, left : left + out_w]
    )


def gaussian_blur_stack_fft(images: np.ndarray, sigma: float) -> np.ndarray:
    """Gaussian blur of an ``(N, H, W)`` stack (or one image) via FFT.

    Matches :func:`repro.vision.filters.gaussian_blur_stack` to floating
    point round-off: same reflect padding, same truncated kernel, FFT
    summation order instead of separable passes.
    """
    img = np.asarray(images, dtype=np.float64)
    k1 = gaussian_kernel_1d(sigma)
    k = k1.size
    pad = k // 2
    h, w = img.shape[-2], img.shape[-1]
    lead = [(0, 0)] * (img.ndim - 2)
    padded = np.pad(img, lead + [(pad, pad), (pad, pad)], mode="reflect")
    fft_h = next_fast_len(padded.shape[-2] + k - 1)
    fft_w = next_fast_len(padded.shape[-1] + k - 1)
    spectrum = _kernel_spectrum(("gauss", float(sigma), k, k, fft_h, fft_w))
    return _fft_convolve_padded(padded, spectrum, h, w, k, k)


def convolve2d_fft(image: np.ndarray, kernel: np.ndarray) -> np.ndarray:
    """Dense 2-D convolution via FFT, reflect-padded like ``convolve2d``."""
    img = np.asarray(image, dtype=np.float64)
    kh, kw = kernel.shape
    pad_h, pad_w = kh // 2, kw // 2
    padded = _reflect_pad(img, pad_h, pad_w)
    h, w = img.shape
    fft_h = next_fast_len(padded.shape[0] + kh - 1)
    fft_w = next_fast_len(padded.shape[1] + kw - 1)
    # Convolution (not correlation): the kernel enters un-flipped because
    # the FFT product computes the true convolution sum directly.
    spec_kernel = np.zeros((fft_h, fft_w), dtype=np.float64)
    spec_kernel[:kh, :kw] = np.asarray(kernel, dtype=np.float64)
    spectrum = np.fft.rfft2(spec_kernel)
    return _fft_convolve_padded(padded, spectrum, h, w, kh, kw)


def gaussian_blur_stack_planned(
    images: np.ndarray, sigma: float, aggressive: bool
) -> Tuple[np.ndarray, str]:
    """Blur a stack through the dispatcher; returns ``(result, choice)``.

    In default mode the choice is always ``"direct"`` (bit-identical to
    the cascade); aggressive mode consults the cost model. The choice is
    returned so callers can key caches per-implementation — FFT and
    direct outputs must never share a content-cache slot.
    """
    choice = choose_separable(sigma, images.shape) if aggressive else "direct"
    if choice == "fft":
        return gaussian_blur_stack_fft(images, sigma), choice
    return gaussian_blur_stack(images, sigma), choice


def convolve2d_planned(
    image: np.ndarray, kernel: np.ndarray, aggressive: bool = True
) -> np.ndarray:
    """Dense convolution through the size dispatcher."""
    if aggressive and choose_dense(kernel.shape, image.shape) == "fft":
        return convolve2d_fft(image, kernel)
    return convolve2d(image, kernel)
