"""Byte-identity diffing between two reconstruction results.

The planner's default-mode contract is *scheduling-only* change: every
artifact must agree with the legacy cascade bit for bit. This module
turns that contract into a checkable diff — ``diff_reconstruction``
returns one human-readable line per mismatching artifact, and an empty
list when the two results are byte-identical. The CLI
(``python -m repro planner-check``) and CI both gate on it.

Results are compared duck-typed (the ``ReconstructionResult`` surface
from :mod:`repro.core.pipeline`), so the diff never imports above the
dataflow layer.
"""

from __future__ import annotations

from typing import List

import numpy as np


def _diff_arrays(label: str, a, b, out: List[str]) -> None:
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape:
        out.append(f"{label}: shape {a.shape} != {b.shape}")
    elif not np.array_equal(a, b):
        n = int(np.sum(a != b))
        out.append(f"{label}: {n}/{a.size} elements differ")


def diff_reconstruction(a, b) -> List[str]:
    """Every artifact-level byte difference between two results.

    Empty list means byte-identical. Each entry names the artifact and
    summarises how it differs — enough to localise a regression without
    dumping arrays.
    """
    out: List[str] = []

    _diff_arrays("skeleton.probability", a.skeleton.probability,
                 b.skeleton.probability, out)
    _diff_arrays("skeleton.binarized", a.skeleton.binarized,
                 b.skeleton.binarized, out)
    _diff_arrays("skeleton.skeleton", a.skeleton.skeleton,
                 b.skeleton.skeleton, out)

    ta, tb = a.aggregation.trajectories, b.aggregation.trajectories
    if len(ta) != len(tb):
        out.append(f"trajectories: count {len(ta)} != {len(tb)}")
    else:
        for i, (x, y) in enumerate(zip(ta, tb)):
            _diff_arrays(f"trajectory[{i}].points", x.as_array(),
                         y.as_array(), out)
            _diff_arrays(f"trajectory[{i}].times", x.times(), y.times(), out)

    if len(a.panoramas) != len(b.panoramas):
        out.append(
            f"panoramas: count {len(a.panoramas)} != {len(b.panoramas)}"
        )
    else:
        for i, (pa, pb) in enumerate(zip(a.panoramas, b.panoramas)):
            if pa.room_hint != pb.room_hint:
                out.append(
                    f"panorama[{i}].room_hint: "
                    f"{pa.room_hint!r} != {pb.room_hint!r}"
                )
            _diff_arrays(f"panorama[{i}].pixels", pa.panorama.pixels,
                         pb.panorama.pixels, out)

    ra, rb = a.floorplan.rooms, b.floorplan.rooms
    if len(ra) != len(rb):
        out.append(f"floorplan.rooms: count {len(ra)} != {len(rb)}")
    else:
        for i, (x, y) in enumerate(zip(ra, rb)):
            same = (
                x.name == y.name
                and (x.center.x, x.center.y) == (y.center.x, y.center.y)
                and (x.layout.width, x.layout.depth, x.layout.orientation)
                == (y.layout.width, y.layout.depth, y.layout.orientation)
            )
            if not same:
                out.append(f"floorplan.rooms[{i}] ({x.name}): placement "
                           "or layout differs")
    if a.floorplan.render_ascii() != b.floorplan.render_ascii():
        out.append("floorplan.render_ascii: rendered plans differ")

    fa = [(f.stage, f.item_id) for f in a.failures]
    fb = [(f.stage, f.item_id) for f in b.failures]
    if fa != fb:
        out.append(f"failures: {fa} != {fb}")

    return out
