"""The reconstruction dataflow graph: nodes, content keys, dependencies.

The legacy cascade runs pathway → rooms → floor plan as three opaque
stage calls. Here the same computation is an explicit DAG whose nodes
are the kernel-invocation groups the paper's Fig. 7c latency breakdown
names, each keyed by a *content address*:

- ``fs:<session>`` — the shared per-frame stack of derived planes
  (grayscale, blurred, gradients, standardized, integral) every consumer
  kernel reads. Key = session digest + the stack's config scope; the
  key-frame and room nodes of the session depend on it, so a session
  content change invalidates exactly its own stack subgraph.
- ``kf:<session>`` — key-frame selection for one session. Key = digest
  of the session's frames + trajectory + capture metadata, scoped to the
  HOG/NCC config fields the selection reads.
- ``pair:<a>+<b>`` — pairwise merge scoring between two sessions. Key =
  both key-frame node keys + the comparison/LCSS config fields. A pair
  node's key therefore changes exactly when either input session (or a
  threshold it reads) changes — no interior value is re-hashed.
- ``pathway`` — registration, drift calibration and the floor-path
  skeleton over every surviving pair. Key = ordered key-frame and pair
  node keys (+ skeleton/drift fields).
- ``room:<cells>`` — panorama + layout for one SRS cell group. Key = the
  group's session digests + panorama/layout fields.
- ``floorplan`` — force-directed assembly. Key = pathway key + room node
  keys + force-model fields.

Keys compose recursively: a node's key embeds its producers' *keys*, not
their values, so skipping an entire warm subgraph costs one digest per
graph input (memoized on the session object) and zero re-hashing of
interior arrays. Quarantined producers contribute a failure marker to
their consumers' keys, keeping degraded runs content-addressed too.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.config import CrowdMapConfig
from repro.dataflow.runtime import get_runtime

#: Config fields each node kind reads — the scope of its fingerprint.
#: Over-inclusion is safe (spurious invalidation); under-inclusion is a
#: correctness bug (stale reuse), so every group errs toward inclusion.
#: The shared frame stack (repro.vision.framestack) derives per-frame
#: planes — grayscale, blurred, gradients, standardized, integral — whose
#: only config input is the HOG blur sigma (every other plane is a pure
#: function of the pixels).
FRAMESTACK_FIELDS: Tuple[str, ...] = ("hog_blur_sigma",)
KEYFRAME_FIELDS: Tuple[str, ...] = (
    "keyframe_ncc_threshold", "hog_cell_size", "hog_blur_sigma",
    "keyframe_prescreen_threshold", "keyframe_prescreen_heading",
)
COMPARISON_FIELDS: Tuple[str, ...] = (
    "s1_weights", "s1_threshold", "surf_distance_threshold",
    "s2_threshold", "max_heading_difference",
    "surf_response_threshold", "surf_max_features",
    "lcss_epsilon", "lcss_delta", "s3_threshold", "resample_interval",
    "max_anchor_proposals", "min_anchor_matches", "max_geo_displacement",
)
PATHWAY_FIELDS: Tuple[str, ...] = (
    "drift_calibration_iterations", "grid_cell_size", "alpha",
    "repair_radius", "trajectory_splat_radius", "binarize_cap_quantile",
    "min_visits", "seed",
)
ROOM_FIELDS: Tuple[str, ...] = KEYFRAME_FIELDS + (
    "panorama_width", "layout_samples", "camera_height",
    "panorama_min_overlap", "panorama_max_gap",
    "surf_response_threshold", "surf_max_features", "seed",
)
FLOORPLAN_FIELDS: Tuple[str, ...] = (
    "force_attract", "force_repulse", "force_iterations",
    "force_tolerance", "seed",
)


def trajectory_digest(trajectory: Any) -> str:
    """Content digest of a device trajectory (positions + timestamps)."""
    rt = get_runtime()
    return rt.value_fingerprint(
        rt.array_digest(trajectory.as_array()),
        rt.array_digest(trajectory.times()),
    )


def session_digest(session: Any) -> str:
    """Content digest of one capture session, memoized on the object.

    Covers everything downstream nodes can read: per-frame pixel digests
    (memoized on each frame), capture metadata (timestamps, headings,
    frame indices), the device trajectory, and the session identity
    fields. Mutating a frame *in place* violates the content-addressing
    contract everywhere in this codebase — replace frames (or sessions)
    to change content.
    """
    memoized = getattr(session, "_crowdmap_session_digest", None)
    if memoized is not None:
        return memoized
    rt = get_runtime()
    parts: List[Any] = [
        session.session_id, session.task, session.room_name,
        trajectory_digest(session.device_trajectory),
    ]
    for frame in session.frames:
        parts.append(rt.frame_digest(frame))
        parts.append((frame.timestamp, frame.heading, frame.frame_index))
    digest = rt.value_fingerprint(*parts)
    try:
        session._crowdmap_session_digest = digest
    except AttributeError:  # slots/frozen containers just recompute
        pass
    return digest


@dataclass
class Node:
    """One unit of plannable work, content-addressed by ``key``."""

    node_id: str              # stable human-readable id ("kf:u0-s1")
    kind: str                 # "framestack" | "keyframes" | "pair" | "pathway" | "room" | "floorplan"
    stage: str                # timings bucket: "pathway" | "rooms" | "floorplan"
    key: Optional[str]        # content address; late-keyed nodes start None
    deps: Tuple[str, ...] = ()  # producer node_ids


@dataclass
class ReconstructionPlan:
    """The static dataflow graph for one session list.

    Key-frame, pair and room node keys are pure content addresses and
    are known before anything executes; the pathway and floor-plan nodes
    are *late-keyed* — their keys depend on which producers survive
    quarantine, so the planner seals them as soon as the producer
    outcomes are known (still before any of their own work runs).
    """

    sws_sessions: List[Any]
    srs_groups: List[List[Any]]
    kf_nodes: List[Node]
    pair_nodes: Dict[Tuple[int, int], Node]
    room_nodes: List[Node]
    pathway_node: Node
    floorplan_node: Node
    comparison_fp: str
    #: Per-session shared frame-stack nodes, keyed by session_id. First
    #: class so the planner can account (and the cache can invalidate)
    #: the shared-plane computation subgraph-locally: a session content
    #: change re-runs exactly its own stack node, nothing else.
    fs_nodes: Dict[str, Node] = field(default_factory=dict)
    nodes: Dict[str, Node] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for node in self.iter_nodes():
            self.nodes[node.node_id] = node

    def iter_nodes(self) -> List[Node]:
        return (
            list(self.fs_nodes.values())
            + self.kf_nodes
            + list(self.pair_nodes.values())
            + [self.pathway_node]
            + self.room_nodes
            + [self.floorplan_node]
        )


def build_plan(
    pipeline: Any, sessions: Sequence[Any]
) -> ReconstructionPlan:
    """Build the content-addressed dataflow graph for a session list.

    Pure planning: digests sessions (once each, memoized) and lays out
    nodes + dependencies; executes nothing. Room grouping reuses the
    pipeline's skeleton-cell bucketing so planner and cascade agree on
    group identity byte for byte.
    """
    rt = get_runtime()
    config: CrowdMapConfig = pipeline.config
    sws = [s for s in sessions if s.task == "SWS"]
    srs = [s for s in sessions if s.task == "SRS"]

    kf_fp = rt.config_fingerprint(config, KEYFRAME_FIELDS)
    fs_fp = rt.config_fingerprint(config, FRAMESTACK_FIELDS)
    comparison_fp = rt.config_fingerprint(config, COMPARISON_FIELDS)
    room_fp = rt.config_fingerprint(config, ROOM_FIELDS)

    # One shared frame-stack node per session (SWS and SRS alike): the
    # derived per-frame planes every consumer kernel reads. Its key is
    # the session content plus the stack's own config scope, so a pixel
    # change invalidates exactly that session's stack node.
    fs_nodes = {
        session.session_id: Node(
            node_id=f"fs:{session.session_id}",
            kind="framestack",
            stage="pathway" if session.task == "SWS" else "rooms",
            key=rt.value_fingerprint("fs", session_digest(session), fs_fp),
        )
        for session in sws + srs
    }

    kf_nodes = [
        Node(
            node_id=f"kf:{session.session_id}",
            kind="keyframes",
            stage="pathway",
            key=rt.value_fingerprint("kf", session_digest(session), kf_fp),
            deps=(fs_nodes[session.session_id].node_id,),
        )
        for session in sws
    ]

    pair_nodes: Dict[Tuple[int, int], Node] = {}
    for i in range(len(sws)):
        for j in range(i + 1, len(sws)):
            a, b = kf_nodes[i], kf_nodes[j]
            pair_nodes[(i, j)] = Node(
                node_id=f"pair:{sws[i].session_id}+{sws[j].session_id}",
                kind="pair",
                stage="pathway",
                key=rt.value_fingerprint(
                    "pair", a.key, b.key, comparison_fp
                ),
                deps=(a.node_id, b.node_id),
            )

    pathway_node = Node(
        node_id="pathway",
        kind="pathway",
        stage="pathway",
        key=None,  # sealed once quarantine outcomes are known
        deps=tuple(n.node_id for n in kf_nodes)
        + tuple(n.node_id for n in pair_nodes.values()),
    )

    groups = pipeline.group_srs_sessions(srs)
    room_nodes = [
        Node(
            node_id="room:" + "+".join(s.session_id for s in group),
            kind="room",
            stage="rooms",
            key=rt.value_fingerprint(
                "room", *[session_digest(s) for s in group], room_fp
            ),
            deps=tuple(
                fs_nodes[s.session_id].node_id for s in group
            ),
        )
        for group in groups
    ]

    floorplan_node = Node(
        node_id="floorplan",
        kind="floorplan",
        stage="floorplan",
        key=None,  # sealed from the pathway key + room outcomes
        deps=("pathway",) + tuple(n.node_id for n in room_nodes),
    )

    return ReconstructionPlan(
        sws_sessions=sws,
        srs_groups=groups,
        kf_nodes=kf_nodes,
        pair_nodes=pair_nodes,
        room_nodes=room_nodes,
        pathway_node=pathway_node,
        floorplan_node=floorplan_node,
        comparison_fp=comparison_fp,
        fs_nodes=fs_nodes,
    )


def seal_pathway_key(
    plan: ReconstructionPlan,
    surviving_pairs: Sequence[Tuple[int, int]],
    failed_session_ids: Sequence[str],
    config: CrowdMapConfig,
) -> str:
    """Finalize the pathway node's key from its producers' outcomes."""
    rt = get_runtime()
    return rt.value_fingerprint(
        "pathway",
        *[n.key for n in plan.kf_nodes],
        *[plan.pair_nodes[ij].key for ij in surviving_pairs],
        *[f"failed:{sid}" for sid in failed_session_ids],
        rt.config_fingerprint(config, PATHWAY_FIELDS),
    )


def seal_floorplan_key(
    plan: ReconstructionPlan,
    pathway_key: str,
    room_outcomes: Sequence[str],
    config: CrowdMapConfig,
) -> str:
    """Finalize the floor-plan key from the pathway key + room outcomes.

    ``room_outcomes`` carries, in group order, each room node's key for
    successes or a ``failed:<group>`` marker for quarantined groups.
    """
    rt = get_runtime()
    return rt.value_fingerprint(
        "floorplan",
        pathway_key,
        *room_outcomes,
        rt.config_fingerprint(config, FLOORPLAN_FIELDS),
    )
